//! Property-based tests of the coding substrates: field laws, Reed–Solomon
//! round-trips under the full correction envelope, and per-scheme
//! encode→inject→correct invariants.

use ecc_codes::gf::{poly, Field, Gf256, Gf65536};
use ecc_codes::rs::ReedSolomon;
use ecc_codes::traits::{inject_chip_error, CorrectionSplit, DetectOutcome, MemoryEcc};
use ecc_codes::{Chipkill18, Chipkill36, LotEcc, Raim};
use proptest::prelude::*;

proptest! {
    #[test]
    fn gf256_field_laws(a in any::<u8>(), b in any::<u8>(), c in any::<u8>()) {
        prop_assert_eq!(Gf256::mul(a, b), Gf256::mul(b, a));
        prop_assert_eq!(
            Gf256::mul(a, Gf256::add(b, c)),
            Gf256::add(Gf256::mul(a, b), Gf256::mul(a, c))
        );
        prop_assert_eq!(Gf256::mul(Gf256::mul(a, b), c), Gf256::mul(a, Gf256::mul(b, c)));
        if a != 0 {
            prop_assert_eq!(Gf256::mul(a, Gf256::inv(a)), 1);
            prop_assert_eq!(Gf256::div(Gf256::mul(a, b), a), b);
        }
    }

    #[test]
    fn gf65536_field_laws(a in any::<u16>(), b in any::<u16>()) {
        prop_assert_eq!(Gf65536::mul(a, b), Gf65536::mul(b, a));
        if a != 0 {
            prop_assert_eq!(Gf65536::mul(a, Gf65536::inv(a)), 1);
        }
        prop_assert_eq!(Gf65536::add(a, a), 0);
    }

    #[test]
    fn poly_eval_is_ring_homomorphism(
        p in prop::collection::vec(any::<u8>(), 1..8),
        q in prop::collection::vec(any::<u8>(), 1..8),
        x in any::<u8>(),
    ) {
        // (p*q)(x) == p(x)*q(x) and (p+q)(x) == p(x)+q(x)
        let pq = poly::mul::<Gf256>(&p, &q);
        prop_assert_eq!(
            poly::eval::<Gf256>(&pq, x),
            Gf256::mul(poly::eval::<Gf256>(&p, x), poly::eval::<Gf256>(&q, x))
        );
        let ps = poly::add::<Gf256>(&p, &q);
        prop_assert_eq!(
            poly::eval::<Gf256>(&ps, x),
            Gf256::add(poly::eval::<Gf256>(&p, x), poly::eval::<Gf256>(&q, x))
        );
    }

    #[test]
    fn rs_corrects_any_pattern_within_envelope(
        data in prop::collection::vec(any::<u8>(), 16..40),
        seed in any::<u64>(),
        nerr in 0usize..=2,
        nera in 0usize..=2,
    ) {
        // nroots = 6 comfortably covers 2e + f <= 6 for e<=2, f<=2.
        prop_assume!(2 * nerr + nera <= 6);
        let rs = ReedSolomon::<Gf256>::new(6);
        let mut cw = data.clone();
        cw.extend(rs.encode(&data));
        let clean = cw.clone();
        // deterministic error placement from the seed
        let mut s = seed;
        let mut positions = vec![];
        while positions.len() < nerr + nera {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let p = (s >> 33) as usize % cw.len();
            if !positions.contains(&p) {
                positions.push(p);
            }
        }
        for (i, &p) in positions.iter().enumerate() {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
            let flip = ((s >> 40) as u8) | 1;
            cw[p] ^= flip;
            let _ = i;
        }
        let erasures: Vec<usize> = positions[nerr..].to_vec();
        rs.decode(&mut cw, &erasures, None).unwrap();
        prop_assert_eq!(cw, clean);
    }

    #[test]
    fn rs_never_accepts_invalid_as_valid(
        data in prop::collection::vec(any::<u8>(), 8..24),
        pos in any::<usize>(),
        flip in 1u8..,
    ) {
        let rs = ReedSolomon::<Gf256>::new(4);
        let mut cw = data.clone();
        cw.extend(rs.encode(&data));
        prop_assert!(rs.is_valid(&cw));
        let p = pos % cw.len();
        cw[p] ^= flip;
        prop_assert!(!rs.is_valid(&cw), "single symbol error must break validity");
    }

    #[test]
    fn chipkill36_single_chip_always_corrects(
        data in prop::collection::vec(any::<u8>(), 128..=128),
        chip in 0usize..36,
        pattern in 1u8..,
    ) {
        let ck = Chipkill36::new();
        let mut cw = ck.encode(&data);
        inject_chip_error(&ck, &mut cw, chip, |b| *b ^= pattern);
        let mut noisy = cw.data.clone();
        ck.correct(&mut noisy, &cw.detection, &cw.correction, None).unwrap();
        prop_assert_eq!(noisy, data);
    }

    #[test]
    fn chipkill18_single_chip_always_corrects(
        data in prop::collection::vec(any::<u8>(), 64..=64),
        chip in 0usize..18,
        pattern in 1u8..,
    ) {
        let ck = Chipkill18::new();
        let mut cw = ck.encode(&data);
        inject_chip_error(&ck, &mut cw, chip, |b| *b ^= pattern);
        let mut noisy = cw.data.clone();
        ck.correct(&mut noisy, &cw.detection, &cw.correction, None).unwrap();
        prop_assert_eq!(noisy, data);
    }

    #[test]
    fn lotecc_variants_detected_chip_error_corrects_exactly(
        data in prop::collection::vec(any::<u8>(), 64..=64),
        which in 0usize..2,
        chip_sel in any::<usize>(),
        pattern in 1u8..,
    ) {
        // Tier-1 checksums are *probabilistic* detectors: an adversarial XOR
        // pattern whose per-byte deltas cancel in the ones'-complement sum
        // can evade them (the paper's reliability analysis accounts for
        // realistic fault modes, not adversarial patterns). The invariant we
        // guarantee: whenever the corruption IS detected, correction
        // restores the exact original — never a silent miscorrection.
        let l = if which == 0 { LotEcc::five() } else { LotEcc::nine() };
        let nd = l.chips_per_rank() - 1;
        let chip = chip_sel % nd;
        let seg = 64 / nd;
        let cw = l.encode(&data);
        let mut noisy = cw.data.clone();
        for b in &mut noisy[chip * seg..(chip + 1) * seg] {
            *b ^= pattern;
        }
        if l.detect(&noisy, &cw.detection) == DetectOutcome::ErrorDetected {
            l.correct(&mut noisy, &cw.detection, &cw.correction, None).unwrap();
            prop_assert_eq!(noisy, data);
        } else {
            // Checksum collision: must still be correctable via the erasure
            // hint (the bank-health path supplies it for known-bad chips).
            l.correct(&mut noisy, &cw.detection, &cw.correction, Some(chip)).unwrap();
            prop_assert_eq!(noisy, data);
        }
    }

    #[test]
    fn raim_any_single_dimm_scramble_corrects(
        data in prop::collection::vec(any::<u8>(), 128..=128),
        dimm in 0usize..4,
        seed in any::<u64>(),
    ) {
        let r = Raim::new();
        let cw = r.encode(&data);
        let mut noisy = data.clone();
        let mut s = seed | 1;
        for b in &mut noisy[dimm * 32..(dimm + 1) * 32] {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(99);
            *b ^= (s >> 35) as u8 | 1;
        }
        r.correct(&mut noisy, &cw.detection, &cw.correction, None).unwrap();
        prop_assert_eq!(noisy, data);
    }

    #[test]
    fn correction_split_is_consistent_with_encode(
        data in prop::collection::vec(any::<u8>(), 64..=64),
    ) {
        // CorrectionSplit::correction_of / detection_of must equal the
        // corresponding pieces of a full encode — the ECC Parity write path
        // depends on this identity.
        let l = LotEcc::five();
        let cw = l.encode(&data);
        prop_assert_eq!(l.correction_of(&data), cw.correction);
        prop_assert_eq!(l.detection_of(&data), cw.detection);
    }
}
