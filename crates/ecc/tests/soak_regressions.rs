//! Regressions distilled from resilience-soak forensics: minimal codec-level
//! replays of access patterns that once produced (or helped rule out) silent
//! corruption in the full-stack harness.

use ecc_codes::lotecc::LotEcc5Rs;
use ecc_codes::traits::{DetectOutcome, MemoryEcc};

#[test]
fn stored_ecc_line_corrects_single_chip_store_corruption() {
    // Replays the soak SDC: a migrated bank's store is corrupted in place on
    // one data chip (distinct pattern per 2-byte span), detection and the
    // stored ECC line still describe the true data.
    let ecc = LotEcc5Rs::new();
    let data: Vec<u8> = (0..64u8)
        .map(|i| i.wrapping_mul(37).wrapping_add(11))
        .collect();
    let cw = ecc.encode(&data);
    let layout = ecc.chip_layout();
    for (chip, spans) in layout.iter().take(4).enumerate() {
        let mut noisy = cw.data.clone();
        for (k, span) in spans.iter().enumerate() {
            for (b, x) in noisy[span.start..span.start + span.len]
                .iter_mut()
                .zip([0x5A ^ (k as u8), 0xC3 ^ (k as u8 * 17)])
            {
                *b ^= x;
            }
        }
        assert_eq!(
            ecc.detect(&noisy, &cw.detection),
            DetectOutcome::ErrorDetected
        );
        let mut fixed = noisy.clone();
        let out = ecc.correct(&mut fixed, &cw.detection, &cw.correction, None);
        assert!(out.is_ok(), "chip {chip}: correct() errored: {out:?}");
        assert_eq!(
            fixed, data,
            "chip {chip}: correct() returned Ok with wrong bytes"
        );
    }
}

/// The batched codec entry points must be byte-identical to their per-line
/// equivalents for every scheme the soak harness can run — over healthy,
/// degenerate (all-0x00/0xFF), and degraded line contents (a migrated
/// bank's store corrupted on one chip), at every batch size the write path
/// produces — and the equality must hold through `Box<dyn CorrectionSplit>`
/// so the trait-object forwarding the harness actually uses is what's
/// tested.
#[test]
fn batched_codec_calls_match_per_line_for_every_scheme() {
    use ecc_codes::raim::RaimParityCode;
    use ecc_codes::traits::{inject_chip_error, CorrectionSplit};
    use ecc_codes::{Chipkill18, Chipkill36, ChipkillDouble, LotEcc, Raim};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    let schemes: Vec<Box<dyn CorrectionSplit>> = vec![
        Box::new(LotEcc::five()),
        Box::new(LotEcc::nine()),
        Box::new(LotEcc5Rs::new()),
        Box::new(Chipkill18::new()),
        Box::new(Chipkill36::new()),
        Box::new(ChipkillDouble::new()),
        Box::new(Raim::new()),
        Box::new(RaimParityCode::new()),
    ];
    let mut rng = StdRng::seed_from_u64(0xECC);
    for ecc in &schemes {
        let n = ecc.data_bytes();
        let mut pool: Vec<Vec<u8>> = vec![vec![0u8; n], vec![0xFF; n]];
        for _ in 0..30 {
            pool.push((0..n).map(|_| rng.gen()).collect());
        }
        // Degraded lines: encoded data with a whole-chip corruption, both
        // as the store would hold it (uncorrected) and after correction.
        for chip in 0..ecc.chips_per_rank().min(4) {
            let data: Vec<u8> = (0..n).map(|_| rng.gen()).collect();
            let mut cw = ecc.encode(&data);
            inject_chip_error(ecc.as_ref(), &mut cw, chip, |b| *b ^= 0xA5);
            pool.push(cw.data.clone());
            let mut fixed = cw.data.clone();
            if ecc
                .correct(&mut fixed, &cw.detection, &cw.correction, Some(chip))
                .is_ok()
            {
                pool.push(fixed);
            }
        }
        for batch in [0usize, 1, 2, 7, 64] {
            let lines: Vec<&[u8]> = (0..batch)
                .map(|i| pool[i % pool.len()].as_slice())
                .collect();
            let batched = ecc.encode_lines(&lines);
            assert_eq!(batched.len(), lines.len());
            for (cw, line) in batched.iter().zip(&lines) {
                let per_line = ecc.encode(line);
                assert_eq!(cw.data, per_line.data, "{}: data", ecc.name());
                assert_eq!(
                    cw.detection,
                    per_line.detection,
                    "{}: batch {batch} detection",
                    ecc.name()
                );
                assert_eq!(
                    cw.correction,
                    per_line.correction,
                    "{}: batch {batch} correction",
                    ecc.name()
                );
            }
            let corr = ecc.correction_of_lines(&lines);
            let det = ecc.detection_of_lines(&lines);
            for (i, line) in lines.iter().enumerate() {
                assert_eq!(corr[i], ecc.correction_of(line), "{}: corr", ecc.name());
                assert_eq!(det[i], ecc.detection_of(line), "{}: det", ecc.name());
            }
        }
    }
}
