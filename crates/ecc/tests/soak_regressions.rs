//! Regressions distilled from resilience-soak forensics: minimal codec-level
//! replays of access patterns that once produced (or helped rule out) silent
//! corruption in the full-stack harness.

use ecc_codes::lotecc::LotEcc5Rs;
use ecc_codes::traits::{DetectOutcome, MemoryEcc};

#[test]
fn stored_ecc_line_corrects_single_chip_store_corruption() {
    // Replays the soak SDC: a migrated bank's store is corrupted in place on
    // one data chip (distinct pattern per 2-byte span), detection and the
    // stored ECC line still describe the true data.
    let ecc = LotEcc5Rs::new();
    let data: Vec<u8> = (0..64u8)
        .map(|i| i.wrapping_mul(37).wrapping_add(11))
        .collect();
    let cw = ecc.encode(&data);
    let layout = ecc.chip_layout();
    for (chip, spans) in layout.iter().take(4).enumerate() {
        let mut noisy = cw.data.clone();
        for (k, span) in spans.iter().enumerate() {
            for (b, x) in noisy[span.start..span.start + span.len]
                .iter_mut()
                .zip([0x5A ^ (k as u8), 0xC3 ^ (k as u8 * 17)])
            {
                *b ^= x;
            }
        }
        assert_eq!(
            ecc.detect(&noisy, &cw.detection),
            DetectOutcome::ErrorDetected
        );
        let mut fixed = noisy.clone();
        let out = ecc.correct(&mut fixed, &cw.detection, &cw.correction, None);
        assert!(out.is_ok(), "chip {chip}: correct() errored: {out:?}");
        assert_eq!(
            fixed, data,
            "chip {chip}: correct() returned Ok with wrong bytes"
        );
    }
}
