//! Corner-case tests for the coding substrates: redundancy-only
//! corruption, minimal codes, zero data, and detection/correction region
//! interactions that the main round-trip tests don't isolate.

use ecc_codes::gf::Gf256;
use ecc_codes::rs::{ReedSolomon, RsError};
use ecc_codes::traits::{inject_chip_error, DetectOutcome, MemoryEcc};
use ecc_codes::{Chipkill18, Chipkill36, ChipkillDouble, LotEcc, MultiEcc, Raim};

#[test]
fn rs_minimal_message_roundtrip() {
    let rs = ReedSolomon::<Gf256>::new(2);
    for msg in [vec![0u8], vec![0xFF], vec![0x5A]] {
        let mut cw = msg.clone();
        cw.extend(rs.encode(&msg));
        assert!(rs.is_valid(&cw));
        cw[0] ^= 0x11;
        rs.decode(&mut cw, &[], None).unwrap();
        assert_eq!(cw[0], msg[0]);
    }
}

#[test]
fn rs_all_zero_codeword_is_valid_and_stable() {
    let rs = ReedSolomon::<Gf256>::new(4);
    let data = vec![0u8; 16];
    let parity = rs.encode(&data);
    assert!(parity.iter().all(|&p| p == 0), "linear code: 0 -> 0");
    let mut cw = data;
    cw.extend(parity);
    let info = rs.decode(&mut cw, &[], None).unwrap();
    assert!(info.corrected.is_empty());
}

#[test]
fn rs_error_in_check_symbols_only() {
    let rs = ReedSolomon::<Gf256>::new(4);
    let data: Vec<u8> = (0..20).map(|i| i as u8 * 3).collect();
    let mut cw = data.clone();
    cw.extend(rs.encode(&data));
    let n = cw.len();
    cw[n - 1] ^= 0x42; // corrupt a check symbol
    rs.decode(&mut cw, &[], None).unwrap();
    assert_eq!(&cw[..data.len()], &data[..], "data untouched");
    assert!(rs.is_valid(&cw), "check symbol repaired");
}

#[test]
fn rs_erasures_at_check_positions() {
    let rs = ReedSolomon::<Gf256>::new(4);
    let data: Vec<u8> = (0..12).map(|i| 200 - i as u8).collect();
    let mut cw = data.clone();
    cw.extend(rs.encode(&data));
    let n = cw.len();
    cw[n - 1] = 0;
    cw[n - 3] = 0;
    rs.decode(&mut cw, &[n - 1, n - 3], None).unwrap();
    assert_eq!(&cw[..data.len()], &data[..]);
    assert!(rs.is_valid(&cw));
}

#[test]
fn rs_duplicate_independent_errors_in_one_word() {
    // Two errors in the SAME symbol position cancel or merge into one
    // error; either way the decoder must handle it.
    let rs = ReedSolomon::<Gf256>::new(4);
    let data = vec![9u8; 24];
    let mut cw = data.clone();
    cw.extend(rs.encode(&data));
    cw[5] ^= 0x0F;
    cw[5] ^= 0x0F; // cancels out
    let info = rs.decode(&mut cw, &[], None).unwrap();
    assert!(info.corrected.is_empty());
}

#[test]
fn rs_policy_zero_errors_rejects_everything_corrupt() {
    let rs = ReedSolomon::<Gf256>::new(4);
    let data = vec![1u8; 10];
    let mut cw = data.clone();
    cw.extend(rs.encode(&data));
    cw[2] ^= 1;
    assert_eq!(
        rs.decode(&mut cw, &[], Some(0)),
        Err(RsError::DetectedUncorrectable),
        "max_errors = 0 means detect-only"
    );
}

#[test]
fn chipkill36_detection_chip_corruption_flags_and_repairs() {
    // Errors confined to a detection chip: the comparison mismatches (the
    // stored symbols differ from the recomputed ones) and correction must
    // leave the data bit-exact.
    let ck = Chipkill36::new();
    let data: Vec<u8> = (0..128).map(|i| i as u8).collect();
    let mut cw = ck.encode(&data);
    inject_chip_error(&ck, &mut cw, 32, |b| *b ^= 0x77); // detection chip
    assert_eq!(
        ck.detect(&cw.data, &cw.detection),
        DetectOutcome::ErrorDetected
    );
    let mut d = cw.data.clone();
    let out = ck
        .correct(&mut d, &cw.detection, &cw.correction, None)
        .unwrap();
    assert_eq!(d, data);
    assert_eq!(out.repaired_bytes, 4, "one symbol per word repaired");
}

#[test]
fn chipkill36_correction_chip_corruption_is_invisible_to_detection() {
    // Corrupted correction symbols don't fire the on-the-fly check (they
    // are not compared on reads) but decode still succeeds.
    let ck = Chipkill36::new();
    let data: Vec<u8> = (0..128).map(|i| (i * 7) as u8).collect();
    let mut cw = ck.encode(&data);
    inject_chip_error(&ck, &mut cw, 35, |b| *b ^= 0x55); // correction chip
    assert_eq!(ck.detect(&cw.data, &cw.detection), DetectOutcome::Clean);
    let mut d = cw.data.clone();
    ck.correct(&mut d, &cw.detection, &cw.correction, None)
        .unwrap();
    assert_eq!(d, data);
}

#[test]
fn raim_parity_dimm_corruption_leaves_data_clean() {
    let r = Raim::new();
    let data: Vec<u8> = (0..128).map(|i| (255 - i) as u8).collect();
    let mut cw = r.encode(&data);
    // chips 36..45 are the parity DIMM
    inject_chip_error(&r, &mut cw, 40, |b| *b = 0);
    assert_eq!(r.detect(&cw.data, &cw.detection), DetectOutcome::Clean);
    let mut d = cw.data.clone();
    let out = r
        .correct(&mut d, &cw.detection, &cw.correction, None)
        .unwrap();
    assert_eq!(d, data);
    assert_eq!(out.repaired_bytes, 0);
}

#[test]
fn lotecc_all_zero_and_all_ones_lines() {
    for l in [LotEcc::five(), LotEcc::nine()] {
        for fill in [0u8, 0xFF] {
            let data = vec![fill; 64];
            let cw = l.encode(&data);
            assert_eq!(l.detect(&cw.data, &cw.detection), DetectOutcome::Clean);
            let mut d = cw.data.clone();
            l.correct(&mut d, &cw.detection, &cw.correction, None)
                .unwrap();
            assert_eq!(d, data);
        }
    }
}

#[test]
fn multiecc_group_of_identical_lines() {
    // XOR parity of an even group of identical lines is zero; correction
    // must still rebuild a victim exactly.
    let m = MultiEcc::new(4);
    let line = vec![0xABu8; 64];
    let mut lines = vec![line.clone(); 4];
    let parity = m.group_parity(&lines);
    assert!(parity.iter().all(|&b| b == 0));
    let det = m.encode(&line).detection;
    for b in &mut lines[2][8..16] {
        *b = 0;
    }
    m.correct_in_group(&mut lines, 2, &det, &parity, None)
        .unwrap();
    assert_eq!(lines[2], line);
}

#[test]
fn double_chipkill_mixed_detection_and_data_chip_failure() {
    let d = ChipkillDouble::new();
    let data: Vec<u8> = (0..128).map(|i| (i * 13) as u8).collect();
    let mut cw = d.encode(&data);
    inject_chip_error(&d, &mut cw, 33, |b| *b ^= 0x0F); // detection chip
    inject_chip_error(&d, &mut cw, 7, |b| *b ^= 0xF0); // data chip
    let mut fixed = cw.data.clone();
    d.correct(&mut fixed, &cw.detection, &cw.correction, None)
        .unwrap();
    assert_eq!(fixed, data);
}

#[test]
fn every_code_reports_consistent_layout_sizes() {
    let ck36 = Chipkill36::new();
    let ck18 = Chipkill18::new();
    let ckd = ChipkillDouble::new();
    let lot5 = LotEcc::five();
    let lot9 = LotEcc::nine();
    let raim = Raim::new();
    let codes: Vec<&dyn MemoryEcc> = vec![&ck36, &ck18, &ckd, &lot5, &lot9, &raim];
    for c in codes {
        let layout = c.chip_layout();
        assert_eq!(layout.len(), c.chips_per_rank(), "{}", c.name());
        // every span stays within its region's bounds
        for spans in &layout {
            for s in spans {
                let limit = match s.region {
                    ecc_codes::traits::Region::Data => c.data_bytes(),
                    ecc_codes::traits::Region::Detection => c.detection_bytes(),
                    ecc_codes::traits::Region::Correction => c.correction_bytes(),
                };
                assert!(s.start + s.len <= limit, "{}: span out of bounds", c.name());
            }
        }
        // encode produces the advertised sizes
        let data = vec![0x3Cu8; c.data_bytes()];
        let cw = c.encode(&data);
        assert_eq!(cw.detection.len(), c.detection_bytes());
        assert_eq!(cw.correction.len(), c.correction_bytes());
    }
}
