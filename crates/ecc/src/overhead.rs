//! Capacity-overhead accounting: the split of every scheme's ECC storage
//! into detection bits and correction bits (paper Fig. 1) and the static
//! capacity overheads of ECC Parity organizations (paper Table III).
//!
//! Conventions (all ratios are relative to data capacity):
//!
//! * Schemes whose correction bits live in dedicated ECC chips (the
//!   commercial chipkill codes, RAIM) need no extra protection for them —
//!   the inline code covers the whole codeword.
//! * Schemes whose correction bits live in *data memory* as ECC lines
//!   (LOT-ECC tier-2, Multi-ECC parity lines, ECC Parity's parity lines)
//!   pay an extra 12.5% on those bits for the lines' own detection bits
//!   (the `1 + 12.5%` factor in the paper's formula, §III-E).
//! * ECC Parity stores correction bits of one line as `R/(N-1)` of a line
//!   (the XOR is shared by N-1 channels); faulty regions later pay `2R`
//!   (§III-B allocates twice the parity-line footprint).

use crate::traits::MemoryEcc;

/// A capacity overhead split into its detection and correction components.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CapacityBreakdown {
    /// Detection-bit overhead (fraction of data capacity).
    pub detection: f64,
    /// Correction-bit overhead (fraction of data capacity), including any
    /// self-protection factor for correction bits stored in data memory.
    pub correction: f64,
}

impl CapacityBreakdown {
    /// Total capacity overhead: detection plus correction.
    pub fn total(&self) -> f64 {
        self.detection + self.correction
    }
}

/// Extra capacity factor for redundancy stored as lines in data memory:
/// those lines carry their own detection bits in the rank's ECC chips.
pub const SELF_PROTECT: f64 = 1.125;

/// Capacity accounting entry points.
pub struct OverheadModel;

impl OverheadModel {
    /// Breakdown of a baseline (no ECC Parity) scheme. `in_data_memory`
    /// marks schemes whose correction bits are ECC lines in data memory and
    /// therefore pay the [`SELF_PROTECT`] factor (LOT-ECC; not the
    /// commercial codes or RAIM, whose redundancy sits in dedicated chips).
    pub fn baseline(ecc: &dyn MemoryEcc, in_data_memory: bool) -> CapacityBreakdown {
        let d = ecc.data_bytes() as f64;
        let factor = if in_data_memory { SELF_PROTECT } else { 1.0 };
        CapacityBreakdown {
            detection: ecc.detection_bytes() as f64 / d,
            correction: ecc.correction_bytes() as f64 * factor / d,
        }
    }

    /// Static breakdown of an ECC-Parity organization over `channels`
    /// logical channels sharing parities, for an underlying code with
    /// correction ratio `r` (paper formula: `(1+12.5%) * R / (N-1)`).
    pub fn ecc_parity(r: f64, channels: usize) -> CapacityBreakdown {
        assert!(channels >= 2, "ECC parity needs at least two channels");
        CapacityBreakdown {
            detection: 0.125,
            correction: SELF_PROTECT * r / (channels - 1) as f64,
        }
    }

    /// End-of-life average overhead: static parity-line overhead plus the
    /// expected extra storage for the fraction `faulty_fraction` of memory
    /// whose regions have migrated to stored ECC correction bits (each such
    /// region pays `2R` instead of `R/(N-1)`, §III-B/§III-E).
    pub fn ecc_parity_eol(r: f64, channels: usize, faulty_fraction: f64) -> CapacityBreakdown {
        let mut b = Self::ecc_parity(r, channels);
        let per_line_parity = SELF_PROTECT * r / (channels - 1) as f64;
        let per_line_stored = 2.0 * r;
        b.correction += faulty_fraction * (per_line_stored - per_line_parity);
        b
    }

    /// The paper's Fig. 1 rows: (label, breakdown).
    pub fn figure1() -> Vec<(&'static str, CapacityBreakdown)> {
        vec![
            (
                "Commercial chipkill correct",
                CapacityBreakdown {
                    detection: 0.0625,
                    correction: 0.0625,
                },
            ),
            (
                "Commercial DIMM-kill correct (RAIM)",
                CapacityBreakdown {
                    detection: 0.125,
                    correction: 0.28125,
                },
            ),
            (
                "LOT-ECC I (9 chips/rank)",
                CapacityBreakdown {
                    detection: 0.125,
                    correction: 8.0 * SELF_PROTECT / 64.0,
                },
            ),
            (
                "LOT-ECC II (5 chips/rank)",
                CapacityBreakdown {
                    detection: 0.125,
                    correction: 16.0 * SELF_PROTECT / 64.0,
                },
            ),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::raim::RaimParityCode;
    use crate::{Chipkill18, Chipkill36, LotEcc, Raim};

    #[test]
    fn fig1_totals_match_paper() {
        let rows = OverheadModel::figure1();
        let totals: Vec<f64> = rows.iter().map(|(_, b)| b.total()).collect();
        assert!((totals[0] - 0.125).abs() < 1e-9); // commercial chipkill 12.5%
        assert!((totals[1] - 0.40625).abs() < 1e-9); // RAIM 40.6%
        assert!((totals[2] - 0.2656).abs() < 1e-3); // LOT-ECC I 26.5%
        assert!((totals[3] - 0.40625).abs() < 1e-9); // LOT-ECC II 40.6%
                                                     // "Typically 50% or more of the ECC capacity overhead comes from the
                                                     // ECC correction bits" — check the claim holds for all rows.
        for (name, b) in &rows {
            assert!(
                b.correction >= b.detection * 0.99,
                "{name}: correction {} < detection {}",
                b.correction,
                b.detection
            );
        }
    }

    #[test]
    fn baseline_breakdowns_from_real_codes() {
        let ck36 = OverheadModel::baseline(&Chipkill36::new(), false);
        assert!((ck36.total() - 0.125).abs() < 1e-9);
        let ck18 = OverheadModel::baseline(&Chipkill18::new(), false);
        assert!((ck18.total() - 0.125).abs() < 1e-9);
        let lot5 = OverheadModel::baseline(&LotEcc::five(), true);
        assert!((lot5.total() - 0.40625).abs() < 1e-9, "LOT-ECC5 40.6%");
        let lot9 = OverheadModel::baseline(&LotEcc::nine(), true);
        assert!((lot9.total() - 0.265625).abs() < 1e-9, "LOT-ECC9 26.5%");
        let raim = OverheadModel::baseline(&Raim::new(), false);
        assert!((raim.total() - 0.40625).abs() < 1e-9, "RAIM 40.6%");
    }

    #[test]
    fn table3_static_rows_match_paper() {
        // 8-chan LOT-ECC5 + ECC Parity: 16.5%
        let b = OverheadModel::ecc_parity(0.25, 8);
        assert!((b.total() - 0.1652).abs() < 5e-4, "got {}", b.total());
        // 4-chan LOT-ECC5 + ECC Parity: 21.9%
        let b = OverheadModel::ecc_parity(0.25, 4);
        assert!((b.total() - 0.21875).abs() < 1e-9);
        // 10-chan RAIM + ECC Parity: 18.8%
        let b = OverheadModel::ecc_parity(0.5, 10);
        assert!((b.total() - 0.1875).abs() < 1e-9);
        // 5-chan RAIM + ECC Parity: 26.6%
        let b = OverheadModel::ecc_parity(0.5, 5);
        assert!((b.total() - 0.265625).abs() < 1e-9);
    }

    #[test]
    fn table3_r_values_match_real_codes() {
        assert!((LotEcc::five().correction_ratio() - 0.25).abs() < 1e-12);
        assert!((RaimParityCode::new().correction_ratio() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn eol_grows_with_faulty_fraction() {
        // Paper: ~0.4% of memory migrates after 7 years, EOL avg 16.7% for
        // the 8-channel LOT-ECC5 config (vs 16.5% static).
        let static_b = OverheadModel::ecc_parity(0.25, 8);
        let eol = OverheadModel::ecc_parity_eol(0.25, 8, 0.004);
        assert!(eol.total() > static_b.total());
        assert!((eol.total() - 0.167).abs() < 2e-3, "got {}", eol.total());
    }

    #[test]
    #[should_panic(expected = "at least two channels")]
    fn ecc_parity_rejects_single_channel() {
        OverheadModel::ecc_parity(0.25, 1);
    }
}
