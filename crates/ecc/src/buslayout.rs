//! Bit-level bus layout: how a codeword's symbols ride the DDR wire.
//!
//! The schemes' symbol geometry is grounded in physics: an x4 device
//! contributes 4 bits per beat, so one 8-bit Reed–Solomon symbol per device
//! spans **two beats** of the burst; an x8 device yields one symbol per
//! beat; an x16 device two. A burst of eight beats therefore carries, per
//! device, `width * 8` bits = `width` bytes — which is exactly why the
//! 36-device rank moves 128B of data + 16B of check per access and the
//! 72-bit organizations move 64B + 8B.
//!
//! [`BusLayout`] materializes that mapping — `(chip, beat, bit-in-beat)`
//! for every codeword bit — and the tests prove it is a bijection, so the
//! whole-chip fault injection used everywhere else corresponds exactly to
//! "all bits this device drove during the burst".

use serde::{Deserialize, Serialize};

/// One device's wire contribution for one burst.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct WireSlot {
    /// Device index within the rank.
    pub chip: usize,
    /// Beat of the burst (0..burst_length).
    pub beat: usize,
    /// Bit lane within the device's width.
    pub lane: usize,
}

/// Wire layout of a rank: uniform devices of `width` bits, `chips` of them,
/// `burst` beats per access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BusLayout {
    /// Number of DRAM devices on the bus.
    pub chips: usize,
    /// Bits each device contributes per beat (x4/x8/x16).
    pub width: usize,
    /// Beats per access (DDR3 burst length 8).
    pub burst: usize,
}

impl BusLayout {
    /// A layout of `chips` devices of `width` bits with `burst` beats.
    pub fn new(chips: usize, width: usize, burst: usize) -> BusLayout {
        assert!(width == 4 || width == 8 || width == 16, "DDR3 widths");
        BusLayout {
            chips,
            width,
            burst,
        }
    }

    /// The 36-device commercial chipkill rank (x4, burst 8).
    pub fn chipkill36() -> BusLayout {
        Self::new(36, 4, 8)
    }

    /// The 18-device rank.
    pub fn chipkill18() -> BusLayout {
        Self::new(18, 4, 8)
    }

    /// LOT-ECC9 / Multi-ECC rank (x8).
    pub fn x8_nine() -> BusLayout {
        Self::new(9, 8, 8)
    }

    /// Bits transferred per burst.
    pub fn bits_per_burst(&self) -> usize {
        self.chips * self.width * self.burst
    }

    /// Bytes per burst.
    pub fn bytes_per_burst(&self) -> usize {
        self.bits_per_burst() / 8
    }

    /// Beats one 8-bit symbol of a given device spans: `8 / width`.
    pub fn beats_per_symbol(&self) -> usize {
        (8 / self.width).max(1)
    }

    /// 8-bit symbols each device contributes per burst.
    pub fn symbols_per_chip(&self) -> usize {
        self.width * self.burst / 8
    }

    /// Map a codeword bit to its wire slot. Codeword bit order: symbol-major
    /// — symbol `s` of chip `c` occupies bits `(c * symbols_per_chip + s) * 8
    /// ..+8`; each device streams its bits beat-major, `width` lanes at a
    /// time (so an x4 device takes two beats per symbol, an x16 device packs
    /// two symbols into one beat).
    pub fn slot_of_bit(&self, bit: usize) -> WireSlot {
        assert!(bit < self.bits_per_burst());
        let symbol = bit / 8;
        let bit_in_symbol = bit % 8;
        let chip = symbol / self.symbols_per_chip();
        let sym_in_chip = symbol % self.symbols_per_chip();
        // the device's local bit stream: 8 bits per symbol, in order
        let local = sym_in_chip * 8 + bit_in_symbol;
        WireSlot {
            chip,
            beat: local / self.width,
            lane: local % self.width,
        }
    }

    /// Inverse of [`Self::slot_of_bit`].
    pub fn bit_of_slot(&self, slot: WireSlot) -> usize {
        assert!(slot.chip < self.chips && slot.beat < self.burst && slot.lane < self.width);
        let local = slot.beat * self.width + slot.lane;
        let sym_in_chip = local / 8;
        let bit_in_symbol = local % 8;
        (slot.chip * self.symbols_per_chip() + sym_in_chip) * 8 + bit_in_symbol
    }

    /// All codeword bits a device drives during the burst (the byte-exact
    /// footprint of a whole-chip failure).
    pub fn bits_of_chip(&self, chip: usize) -> Vec<usize> {
        let spc = self.symbols_per_chip();
        (chip * spc * 8..(chip + 1) * spc * 8).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn physical_throughput_matches_table2() {
        // 36 x4 chips * 8 beats = 144B per burst: 128B data + 16B check.
        assert_eq!(BusLayout::chipkill36().bytes_per_burst(), 144);
        // 18 x4 = 72B: 64B data + 8B check.
        assert_eq!(BusLayout::chipkill18().bytes_per_burst(), 72);
        // 9 x8 = 72B as well.
        assert_eq!(BusLayout::x8_nine().bytes_per_burst(), 72);
    }

    #[test]
    fn x4_symbols_span_two_beats() {
        let l = BusLayout::chipkill36();
        assert_eq!(l.beats_per_symbol(), 2);
        assert_eq!(l.symbols_per_chip(), 4, "4 symbols per chip per line");
        // the 8 bits of chip 0's first symbol occupy beats 0 and 1
        let beats: HashSet<usize> = (0..8).map(|b| l.slot_of_bit(b).beat).collect();
        assert_eq!(beats, HashSet::from([0, 1]));
    }

    #[test]
    fn x8_symbols_span_one_beat() {
        let l = BusLayout::x8_nine();
        assert_eq!(l.beats_per_symbol(), 1);
        let beats: HashSet<usize> = (0..8).map(|b| l.slot_of_bit(b).beat).collect();
        assert_eq!(beats, HashSet::from([0]));
    }

    #[test]
    fn x16_symbols_are_half_a_beat_pair() {
        let l = BusLayout::new(4, 16, 8);
        assert_eq!(l.symbols_per_chip(), 16, "16B per x16 chip per burst");
        // two 8-bit symbols share each beat
        let s0: HashSet<usize> = (0..8).map(|b| l.slot_of_bit(b).beat).collect();
        let s1: HashSet<usize> = (8..16).map(|b| l.slot_of_bit(b).beat).collect();
        assert_eq!(s0, HashSet::from([0]));
        assert_eq!(
            s1,
            HashSet::from([0]),
            "symbols 0 and 1 ride beat 0 together"
        );
    }

    #[test]
    fn mapping_is_a_bijection_for_every_layout() {
        for l in [
            BusLayout::chipkill36(),
            BusLayout::chipkill18(),
            BusLayout::x8_nine(),
            BusLayout::new(4, 16, 8),
            BusLayout::new(45, 4, 8),
            BusLayout::new(40, 4, 8),
        ] {
            let mut seen = HashSet::new();
            for bit in 0..l.bits_per_burst() {
                let slot = l.slot_of_bit(bit);
                assert!(slot.chip < l.chips && slot.beat < l.burst && slot.lane < l.width);
                assert!(seen.insert((slot.chip, slot.beat, slot.lane)));
                assert_eq!(l.bit_of_slot(slot), bit, "round trip");
            }
            assert_eq!(seen.len(), l.bits_per_burst());
        }
    }

    #[test]
    fn chip_footprint_is_contiguous_symbols() {
        let l = BusLayout::chipkill36();
        let bits = l.bits_of_chip(17);
        assert_eq!(bits.len(), 32, "4 symbols * 8 bits");
        for &b in &bits {
            assert_eq!(l.slot_of_bit(b).chip, 17);
        }
        // and no other chip's bits map to chip 17
        for b in 0..l.bits_per_burst() {
            if !bits.contains(&b) {
                assert_ne!(l.slot_of_bit(b).chip, 17);
            }
        }
    }

    #[test]
    fn a_beat_is_exactly_the_bus_width() {
        // Every beat across all chips carries chips*width bits — the rank's
        // physical bus width (144 for the 36-device rank).
        let l = BusLayout::chipkill36();
        let mut per_beat = vec![0usize; l.burst];
        for bit in 0..l.bits_per_burst() {
            per_beat[l.slot_of_bit(bit).beat] += 1;
        }
        assert!(per_beat.iter().all(|&n| n == 144));
    }
}
