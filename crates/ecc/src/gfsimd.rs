//! SIMD fixed-multiplier GF(2^8) kernels via 4-bit split tables.
//!
//! The codec hot loops (Reed–Solomon encode LFSR, syndrome accumulation)
//! multiply long streams of bytes by one *fixed* field element. The scalar
//! answer is the 256-byte multiplication-table row of [`crate::gf::Gf256`];
//! this module goes one step further and splits that row by nibbles: for a
//! fixed multiplier `a`,
//!
//! ```text
//! a·b  =  a·(b & 0x0F)  ⊕  a·(b & 0xF0)
//! ```
//!
//! so two 16-entry tables (`lo[x] = a·x`, `hi[x] = a·(x<<4)`) replace the
//! 256-byte row. Sixteen-entry tables fit a vector register, and the x86
//! `PSHUFB` byte shuffle performs 16 (SSE) or 2×16 (AVX2) table lookups per
//! instruction — turning a fixed-multiplier pass over an N-byte slice into
//! roughly N/16 or N/32 shuffle/xor steps.
//!
//! Three tiers are selected once per process, at first use:
//!
//! * **avx2** — 32 lanes per step (`_mm256_shuffle_epi8`);
//! * **ssse3** — 16 lanes per step (`_mm_shuffle_epi8`);
//! * **scalar** — the portable nibble-lookup fallback, also used for the
//!   tail bytes of the vector paths.
//!
//! All three are **bit-identical**: the split tables are derived from the
//! same flat multiplication table, and GF arithmetic is exact. The scalar
//! tier can be forced with `ECC_PARITY_NO_SIMD=1` (useful for differential
//! testing and for ruling the vector paths out of a miscompare). The chosen
//! tier is reported once as a `kernel.dispatch` trace event when
//! `ECC_PARITY_TRACE` is active.

use crate::gf::{Field, Gf256};
use std::sync::OnceLock;

/// Split multiplication tables of one fixed GF(2^8) multiplier: 32 bytes
/// that answer `a·b` for every `b` via two nibble lookups. Build once per
/// multiplier (cheap — 32 reads of the flat table), reuse across a batch.
#[derive(Debug, Clone, Copy)]
pub struct NibbleCtx {
    lo: [u8; 16],
    hi: [u8; 16],
}

impl NibbleCtx {
    /// The split tables of fixed multiplier `a`.
    pub fn new(a: u8) -> NibbleCtx {
        let mut lo = [0u8; 16];
        let mut hi = [0u8; 16];
        for x in 0..16u8 {
            lo[x as usize] = Gf256::mul(a, x);
            hi[x as usize] = Gf256::mul(a, x << 4);
        }
        NibbleCtx { lo, hi }
    }

    /// Scalar nibble-lookup multiply: `a·b` for the captured `a`.
    #[inline]
    pub fn mul(&self, b: u8) -> u8 {
        self.lo[(b & 0x0F) as usize] ^ self.hi[(b >> 4) as usize]
    }
}

/// The vector-instruction tier the process dispatches to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimdTier {
    /// 32 bytes per step via `_mm256_shuffle_epi8`.
    Avx2,
    /// 16 bytes per step via `_mm_shuffle_epi8`.
    Ssse3,
    /// Portable nibble lookups, one byte at a time.
    Scalar,
}

impl SimdTier {
    /// Stable lowercase name (used by the `kernel.dispatch` trace event).
    pub fn as_str(self) -> &'static str {
        match self {
            SimdTier::Avx2 => "avx2",
            SimdTier::Ssse3 => "ssse3",
            SimdTier::Scalar => "scalar",
        }
    }
}

fn detect_tier() -> SimdTier {
    let forced_off = std::env::var("ECC_PARITY_NO_SIMD")
        .map(|v| v == "1")
        .unwrap_or(false);
    if forced_off {
        return SimdTier::Scalar;
    }
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx2") {
            return SimdTier::Avx2;
        }
        if std::arch::is_x86_feature_detected!("ssse3") {
            return SimdTier::Ssse3;
        }
    }
    SimdTier::Scalar
}

/// The tier selected for this process (runtime CPU detection, overridden to
/// scalar by `ECC_PARITY_NO_SIMD=1`). Decided once; the decision is traced
/// as a `kernel.dispatch` event when tracing is active.
pub fn tier() -> SimdTier {
    static TIER: OnceLock<SimdTier> = OnceLock::new();
    *TIER.get_or_init(|| {
        let t = detect_tier();
        if obs::trace::enabled() {
            obs::trace::event(
                "kernel.dispatch",
                &[
                    ("tier", obs::trace::Value::Str(t.as_str())),
                    ("kernel", obs::trace::Value::Str("gf256_nibble_mul")),
                ],
            );
        }
        t
    })
}

/// `dst[i] = a·src[i]` for the fixed multiplier captured in `ctx`.
///
/// Panics if the slices differ in length.
pub fn mul_slice(ctx: &NibbleCtx, src: &[u8], dst: &mut [u8]) {
    assert_eq!(src.len(), dst.len(), "mul_slice length mismatch");
    #[cfg(target_arch = "x86_64")]
    match tier() {
        SimdTier::Avx2 => return unsafe { mul_slice_avx2(ctx, src, dst) },
        SimdTier::Ssse3 => return unsafe { mul_slice_ssse3(ctx, src, dst) },
        SimdTier::Scalar => {}
    }
    mul_slice_scalar(ctx, src, dst);
}

/// `buf[i] = a·buf[i]` in place.
pub fn mul_slice_inplace(ctx: &NibbleCtx, buf: &mut [u8]) {
    #[cfg(target_arch = "x86_64")]
    match tier() {
        SimdTier::Avx2 => return unsafe { mul_inplace_avx2(ctx, buf) },
        SimdTier::Ssse3 => return unsafe { mul_inplace_ssse3(ctx, buf) },
        SimdTier::Scalar => {}
    }
    mul_inplace_scalar(ctx, buf);
}

/// `acc[i] ^= a·src[i]` — the multiply-accumulate shape of the encode LFSR.
///
/// Panics if the slices differ in length.
pub fn mul_xor_slice(ctx: &NibbleCtx, src: &[u8], acc: &mut [u8]) {
    assert_eq!(src.len(), acc.len(), "mul_xor_slice length mismatch");
    #[cfg(target_arch = "x86_64")]
    match tier() {
        SimdTier::Avx2 => return unsafe { mul_xor_avx2(ctx, src, acc) },
        SimdTier::Ssse3 => return unsafe { mul_xor_ssse3(ctx, src, acc) },
        SimdTier::Scalar => {}
    }
    mul_xor_slice_scalar(ctx, src, acc);
}

/// Portable scalar [`mul_slice`] — public so differential tests and
/// benchmarks can pin the fallback tier regardless of CPU detection.
pub fn mul_slice_scalar(ctx: &NibbleCtx, src: &[u8], dst: &mut [u8]) {
    assert_eq!(src.len(), dst.len(), "mul_slice length mismatch");
    for (d, &s) in dst.iter_mut().zip(src) {
        *d = ctx.mul(s);
    }
}

fn mul_inplace_scalar(ctx: &NibbleCtx, buf: &mut [u8]) {
    for b in buf.iter_mut() {
        *b = ctx.mul(*b);
    }
}

/// Portable scalar [`mul_xor_slice`] — public for the same reason as
/// [`mul_slice_scalar`].
pub fn mul_xor_slice_scalar(ctx: &NibbleCtx, src: &[u8], acc: &mut [u8]) {
    assert_eq!(src.len(), acc.len(), "mul_xor_slice length mismatch");
    for (a, &s) in acc.iter_mut().zip(src) {
        *a ^= ctx.mul(s);
    }
}

#[cfg(target_arch = "x86_64")]
mod x86 {
    use super::NibbleCtx;
    use std::arch::x86_64::*;

    // SAFETY contract of every function here: the caller has verified (via
    // `tier()`) that the CPU supports the named feature set, and paired
    // slices have equal lengths.

    #[target_feature(enable = "ssse3")]
    pub(super) unsafe fn mul_slice_ssse3(ctx: &NibbleCtx, src: &[u8], dst: &mut [u8]) {
        let lo = _mm_loadu_si128(ctx.lo.as_ptr() as *const __m128i);
        let hi = _mm_loadu_si128(ctx.hi.as_ptr() as *const __m128i);
        let mask = _mm_set1_epi8(0x0F);
        let n = src.len();
        let mut i = 0;
        while i + 16 <= n {
            let v = _mm_loadu_si128(src.as_ptr().add(i) as *const __m128i);
            let p = nib_mul128(lo, hi, mask, v);
            _mm_storeu_si128(dst.as_mut_ptr().add(i) as *mut __m128i, p);
            i += 16;
        }
        super::mul_slice_scalar(ctx, &src[i..], &mut dst[i..]);
    }

    #[target_feature(enable = "ssse3")]
    pub(super) unsafe fn mul_inplace_ssse3(ctx: &NibbleCtx, buf: &mut [u8]) {
        let lo = _mm_loadu_si128(ctx.lo.as_ptr() as *const __m128i);
        let hi = _mm_loadu_si128(ctx.hi.as_ptr() as *const __m128i);
        let mask = _mm_set1_epi8(0x0F);
        let n = buf.len();
        let mut i = 0;
        while i + 16 <= n {
            let v = _mm_loadu_si128(buf.as_ptr().add(i) as *const __m128i);
            let p = nib_mul128(lo, hi, mask, v);
            _mm_storeu_si128(buf.as_mut_ptr().add(i) as *mut __m128i, p);
            i += 16;
        }
        super::mul_inplace_scalar(ctx, &mut buf[i..]);
    }

    #[target_feature(enable = "ssse3")]
    pub(super) unsafe fn mul_xor_ssse3(ctx: &NibbleCtx, src: &[u8], acc: &mut [u8]) {
        let lo = _mm_loadu_si128(ctx.lo.as_ptr() as *const __m128i);
        let hi = _mm_loadu_si128(ctx.hi.as_ptr() as *const __m128i);
        let mask = _mm_set1_epi8(0x0F);
        let n = src.len();
        let mut i = 0;
        while i + 16 <= n {
            let v = _mm_loadu_si128(src.as_ptr().add(i) as *const __m128i);
            let a = _mm_loadu_si128(acc.as_ptr().add(i) as *const __m128i);
            let p = _mm_xor_si128(a, nib_mul128(lo, hi, mask, v));
            _mm_storeu_si128(acc.as_mut_ptr().add(i) as *mut __m128i, p);
            i += 16;
        }
        super::mul_xor_slice_scalar(ctx, &src[i..], &mut acc[i..]);
    }

    #[inline]
    #[target_feature(enable = "ssse3")]
    unsafe fn nib_mul128(lo: __m128i, hi: __m128i, mask: __m128i, v: __m128i) -> __m128i {
        let l = _mm_shuffle_epi8(lo, _mm_and_si128(v, mask));
        let h = _mm_shuffle_epi8(hi, _mm_and_si128(_mm_srli_epi16(v, 4), mask));
        _mm_xor_si128(l, h)
    }

    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn mul_slice_avx2(ctx: &NibbleCtx, src: &[u8], dst: &mut [u8]) {
        let lo = _mm256_broadcastsi128_si256(_mm_loadu_si128(ctx.lo.as_ptr() as *const __m128i));
        let hi = _mm256_broadcastsi128_si256(_mm_loadu_si128(ctx.hi.as_ptr() as *const __m128i));
        let mask = _mm256_set1_epi8(0x0F);
        let n = src.len();
        let mut i = 0;
        while i + 32 <= n {
            let v = _mm256_loadu_si256(src.as_ptr().add(i) as *const __m256i);
            let p = nib_mul256(lo, hi, mask, v);
            _mm256_storeu_si256(dst.as_mut_ptr().add(i) as *mut __m256i, p);
            i += 32;
        }
        super::mul_slice_scalar(ctx, &src[i..], &mut dst[i..]);
    }

    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn mul_inplace_avx2(ctx: &NibbleCtx, buf: &mut [u8]) {
        let lo = _mm256_broadcastsi128_si256(_mm_loadu_si128(ctx.lo.as_ptr() as *const __m128i));
        let hi = _mm256_broadcastsi128_si256(_mm_loadu_si128(ctx.hi.as_ptr() as *const __m128i));
        let mask = _mm256_set1_epi8(0x0F);
        let n = buf.len();
        let mut i = 0;
        while i + 32 <= n {
            let v = _mm256_loadu_si256(buf.as_ptr().add(i) as *const __m256i);
            let p = nib_mul256(lo, hi, mask, v);
            _mm256_storeu_si256(buf.as_mut_ptr().add(i) as *mut __m256i, p);
            i += 32;
        }
        super::mul_inplace_scalar(ctx, &mut buf[i..]);
    }

    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn mul_xor_avx2(ctx: &NibbleCtx, src: &[u8], acc: &mut [u8]) {
        let lo = _mm256_broadcastsi128_si256(_mm_loadu_si128(ctx.lo.as_ptr() as *const __m128i));
        let hi = _mm256_broadcastsi128_si256(_mm_loadu_si128(ctx.hi.as_ptr() as *const __m128i));
        let mask = _mm256_set1_epi8(0x0F);
        let n = src.len();
        let mut i = 0;
        while i + 32 <= n {
            let v = _mm256_loadu_si256(src.as_ptr().add(i) as *const __m256i);
            let a = _mm256_loadu_si256(acc.as_ptr().add(i) as *const __m256i);
            let p = _mm256_xor_si256(a, nib_mul256(lo, hi, mask, v));
            _mm256_storeu_si256(acc.as_mut_ptr().add(i) as *mut __m256i, p);
            i += 32;
        }
        super::mul_xor_slice_scalar(ctx, &src[i..], &mut acc[i..]);
    }

    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn nib_mul256(lo: __m256i, hi: __m256i, mask: __m256i, v: __m256i) -> __m256i {
        let l = _mm256_shuffle_epi8(lo, _mm256_and_si256(v, mask));
        let h = _mm256_shuffle_epi8(hi, _mm256_and_si256(_mm256_srli_epi16(v, 4), mask));
        _mm256_xor_si256(l, h)
    }
}

#[cfg(target_arch = "x86_64")]
use x86::{
    mul_inplace_avx2, mul_inplace_ssse3, mul_slice_avx2, mul_slice_ssse3, mul_xor_avx2,
    mul_xor_ssse3,
};

#[cfg(test)]
mod tests {
    use super::*;

    /// Every buffer length that exercises both the vector body and the
    /// scalar tail of each path.
    const LENS: &[usize] = &[0, 1, 15, 16, 17, 31, 32, 33, 63, 64, 100, 256];

    fn all_bytes() -> Vec<u8> {
        (0..=255u8).collect()
    }

    #[test]
    fn nibble_ctx_matches_flat_table_exhaustive() {
        // All 65,536 (a, b) pairs: the split tables must agree with the
        // flat multiplication table bit for bit.
        for a in 0..=255u8 {
            let ctx = NibbleCtx::new(a);
            for b in 0..=255u8 {
                assert_eq!(ctx.mul(b), Gf256::mul(a, b), "a={a:#04x} b={b:#04x}");
            }
        }
    }

    #[test]
    fn dispatched_mul_slice_matches_scalar_exhaustive() {
        // All 65,536 pairs again, through the dispatched slice kernel (the
        // core::arch path on capable CPUs, the portable fallback otherwise —
        // CI runs this test both ways via ECC_PARITY_NO_SIMD).
        let src = all_bytes();
        let mut dst = vec![0u8; 256];
        let mut dst_scalar = vec![0u8; 256];
        for a in 0..=255u8 {
            let ctx = NibbleCtx::new(a);
            mul_slice(&ctx, &src, &mut dst);
            mul_slice_scalar(&ctx, &src, &mut dst_scalar);
            assert_eq!(dst, dst_scalar, "a={a:#04x} tier={:?}", tier());
            for (b, &got) in dst.iter().enumerate() {
                assert_eq!(got, Gf256::mul(a, b as u8));
            }
        }
    }

    #[cfg(target_arch = "x86_64")]
    #[test]
    fn core_arch_tiers_match_scalar_exhaustive() {
        // Drive the SSSE3 and AVX2 kernels directly (when the CPU has
        // them), independent of the dispatched tier, so the vector paths
        // are covered even under ECC_PARITY_NO_SIMD=1.
        let src = all_bytes();
        for a in 0..=255u8 {
            let ctx = NibbleCtx::new(a);
            let want: Vec<u8> = src.iter().map(|&b| Gf256::mul(a, b)).collect();
            if std::arch::is_x86_feature_detected!("ssse3") {
                let mut dst = vec![0u8; 256];
                unsafe { mul_slice_ssse3(&ctx, &src, &mut dst) };
                assert_eq!(dst, want, "ssse3 a={a:#04x}");
            }
            if std::arch::is_x86_feature_detected!("avx2") {
                let mut dst = vec![0u8; 256];
                unsafe { mul_slice_avx2(&ctx, &src, &mut dst) };
                assert_eq!(dst, want, "avx2 a={a:#04x}");
            }
        }
    }

    #[test]
    fn all_kernels_agree_on_awkward_lengths() {
        // Deterministic pseudo-random content, every tail length.
        let mut state = 0x2545_F491_4F6C_DD1Du64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 24) as u8
        };
        for &len in LENS {
            let src: Vec<u8> = (0..len).map(|_| next()).collect();
            let base: Vec<u8> = (0..len).map(|_| next()).collect();
            for a in [0u8, 1, 2, 0x1D, 0x5A, 0x8E, 0xFF] {
                let ctx = NibbleCtx::new(a);
                let want: Vec<u8> = src.iter().map(|&b| Gf256::mul(a, b)).collect();

                let mut dst = vec![0u8; len];
                mul_slice(&ctx, &src, &mut dst);
                assert_eq!(dst, want, "mul_slice len={len} a={a:#04x}");

                let mut buf = src.clone();
                mul_slice_inplace(&ctx, &mut buf);
                assert_eq!(buf, want, "mul_slice_inplace len={len} a={a:#04x}");

                let mut acc = base.clone();
                mul_xor_slice(&ctx, &src, &mut acc);
                let want_xor: Vec<u8> = base.iter().zip(&want).map(|(&b, &w)| b ^ w).collect();
                assert_eq!(acc, want_xor, "mul_xor_slice len={len} a={a:#04x}");

                let mut acc2 = base.clone();
                mul_xor_slice_scalar(&ctx, &src, &mut acc2);
                assert_eq!(acc2, want_xor, "mul_xor_slice_scalar len={len} a={a:#04x}");
            }
        }
    }

    #[test]
    fn tier_is_stable_and_named() {
        let t = tier();
        assert_eq!(t, tier(), "tier must be decided once");
        assert!(["avx2", "ssse3", "scalar"].contains(&t.as_str()));
    }
}
