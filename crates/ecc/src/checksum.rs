//! Intra-chip checksums used by LOT-ECC's tier-1 protection and Multi-ECC's
//! per-line detection code.
//!
//! LOT-ECC computes a local checksum over the bytes each chip contributes to
//! a line; a mismatching checksum both *detects* an error and *localizes* it
//! to a chip, turning the inter-chip parity into an erasure code. We use a
//! ones'-complement additive checksum (the classic Internet-checksum
//! construction) because, unlike plain XOR, it catches the common
//! "stuck-at" whole-chip patterns where XOR folds cancel.

/// 8-bit ones'-complement additive checksum of `bytes`.
pub fn checksum8(bytes: &[u8]) -> u8 {
    let mut acc: u32 = 0;
    for &b in bytes {
        acc += b as u32;
    }
    // Fold carries (ones'-complement addition).
    while acc > 0xFF {
        acc = (acc & 0xFF) + (acc >> 8);
    }
    !(acc as u8)
}

/// 16-bit ones'-complement additive checksum of `bytes` (pairs of bytes,
/// big-endian; an odd trailing byte is zero-padded).
pub fn checksum16(bytes: &[u8]) -> u16 {
    let mut acc: u32 = 0;
    let mut chunks = bytes.chunks_exact(2);
    for c in &mut chunks {
        acc += u16::from_be_bytes([c[0], c[1]]) as u32;
    }
    if let [last] = chunks.remainder() {
        acc += u16::from_be_bytes([*last, 0]) as u32;
    }
    while acc > 0xFFFF {
        acc = (acc & 0xFFFF) + (acc >> 16);
    }
    !(acc as u16)
}

/// Verify an 8-bit checksum.
pub fn verify8(bytes: &[u8], stored: u8) -> bool {
    checksum8(bytes) == stored
}

/// Verify a 16-bit checksum.
pub fn verify16(bytes: &[u8], stored: u16) -> bool {
    checksum16(bytes) == stored
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn checksum8_roundtrip_and_sensitivity() {
        let data = [1u8, 2, 3, 4, 5, 6, 7, 8];
        let c = checksum8(&data);
        assert!(verify8(&data, c));
        let mut bad = data;
        bad[3] ^= 0x10;
        assert!(!verify8(&bad, c));
    }

    #[test]
    fn checksum8_detects_single_byte_changes() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..200 {
            let data: Vec<u8> = (0..16).map(|_| rng.gen()).collect();
            let c = checksum8(&data);
            let i = rng.gen_range(0..data.len());
            let delta: u8 = rng.gen_range(1..=255);
            let mut bad = data.clone();
            bad[i] = bad[i].wrapping_add(delta);
            // Additive deltas never wrap to zero sum change unless delta == 0
            // mod 255 folding; 0xFF additions alias to 0 in ones' complement,
            // so skip that single alias case.
            if delta != 0xFF {
                assert!(!verify8(&bad, c), "missed delta {delta:#x} at {i}");
            }
        }
    }

    #[test]
    fn checksum16_detects_stuck_at_patterns() {
        // XOR-fold checksums miss paired stuck-at faults; the additive one
        // must catch all-zero and all-one chip outputs on random data.
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..100 {
            let data: Vec<u8> = (0..16).map(|_| rng.gen()).collect();
            let c = checksum16(&data);
            if data.iter().any(|&b| b != 0) {
                assert!(!verify16(&[0u8; 16], c));
            }
            if data.iter().any(|&b| b != 0xFF) {
                // all-ones data has checksum that differs from random unless
                // data was already all-ones
                let ones = vec![0xFFu8; 16];
                if data != ones {
                    assert!(!verify16(&ones, c) || checksum16(&ones) == c);
                }
            }
        }
    }

    #[test]
    fn checksum16_odd_length() {
        let data = [0xAB, 0xCD, 0xEF];
        let c = checksum16(&data);
        assert!(verify16(&data, c));
        assert!(!verify16(&[0xAB, 0xCD, 0xEE], c));
    }

    #[test]
    fn checksum_empty_input() {
        assert_eq!(checksum8(&[]), 0xFF);
        assert_eq!(checksum16(&[]), 0xFFFF);
        assert!(verify8(&[], 0xFF));
    }
}
