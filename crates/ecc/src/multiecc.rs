//! Multi-ECC (Jian et al., SC 2013): chipkill correct via multi-line error
//! correction.
//!
//! Rank organization: nine x8 chips, 64B lines (8B per data chip; the ninth
//! chip stores per-chip tier-1 checksums that detect *and localize* errors
//! on the fly). Correction resources are shared across a large **group** of
//! lines: one XOR parity line per `group_size` data lines, stored in
//! ordinary data memory. Correcting a localized error reconstructs the
//! victim line's faulty segment by XORing the parity line with the
//! corresponding segments of every other line in the group — expensive, but
//! correction is rare while detection is per-access.
//!
//! With the default `group_size = 256`, correction storage is
//! 64·(1+12.5%)/(64·256) ≈ 0.44% of data, giving the published ≈12.9% total
//! capacity overhead (12.5% detection + ~0.4% correction).
//!
//! Multi-line correction only works when at most one line per group is
//! erroneous at a time — the same "faults are rare, scrub promptly"
//! assumption ECC Parity generalizes across channels.

use crate::checksum::checksum8;
use crate::traits::{
    ChipSpan, Codeword, CorrectOutcome, DetectOutcome, EccError, MemoryEcc, Region,
};

const DATA_CHIPS: usize = 8;
const SEG: usize = 8; // bytes per chip per line
const LINE: usize = 64;

/// Multi-ECC with shared multi-line correction (see module docs).
pub struct MultiEcc {
    group_size: usize,
}

impl Default for MultiEcc {
    fn default() -> Self {
        Self::new(256)
    }
}

impl MultiEcc {
    /// `group_size`: number of data lines sharing one parity line.
    pub fn new(group_size: usize) -> Self {
        assert!(group_size >= 2);
        Self { group_size }
    }

    /// Lines per parity group (the paper evaluates 4).
    pub fn group_size(&self) -> usize {
        self.group_size
    }

    /// Fractional correction-capacity overhead (correction bits / data),
    /// including the 12.5% detection-of-parity-line factor.
    pub fn correction_overhead(&self) -> f64 {
        1.125 / self.group_size as f64
    }

    /// Total capacity overhead (the published ~12.9% at group_size = 256).
    pub fn total_overhead(&self) -> f64 {
        0.125 + self.correction_overhead()
    }

    fn mismatched_chips(&self, data: &[u8], detection: &[u8]) -> Vec<usize> {
        (0..DATA_CHIPS)
            .filter(|&c| checksum8(&data[c * SEG..(c + 1) * SEG]) != detection[c])
            .collect()
    }

    /// Compute the group parity line: bytewise XOR of all lines in the group.
    pub fn group_parity(&self, lines: &[Vec<u8>]) -> Vec<u8> {
        assert!(!lines.is_empty() && lines.len() <= self.group_size);
        let mut p = vec![0u8; LINE];
        for l in lines {
            assert_eq!(l.len(), LINE);
            for (i, &b) in l.iter().enumerate() {
                p[i] ^= b;
            }
        }
        p
    }

    /// Correct line `victim` of a group in place.
    ///
    /// `lines[victim]` contains the (possibly corrupted) victim; every other
    /// line must be clean (the multi-line correction precondition). The
    /// faulty chip is localized with the victim's detection bits, then its
    /// segment is rebuilt from the parity line.
    pub fn correct_in_group(
        &self,
        lines: &mut [Vec<u8>],
        victim: usize,
        victim_detection: &[u8],
        parity: &[u8],
        erased_chip: Option<usize>,
    ) -> Result<CorrectOutcome, EccError> {
        assert!(victim < lines.len());
        assert_eq!(parity.len(), LINE);
        let mut bad = self.mismatched_chips(&lines[victim], victim_detection);
        if let Some(c) = erased_chip {
            if c < DATA_CHIPS && !bad.contains(&c) {
                bad.push(c);
            }
        }
        match bad.len() {
            0 => Ok(CorrectOutcome { repaired_bytes: 0 }),
            1 => {
                let chip = bad[0];
                let mut seg = parity[chip * SEG..(chip + 1) * SEG].to_vec();
                for (i, l) in lines.iter().enumerate() {
                    if i == victim {
                        continue;
                    }
                    for (k, &b) in l[chip * SEG..(chip + 1) * SEG].iter().enumerate() {
                        seg[k] ^= b;
                    }
                }
                if checksum8(&seg) != victim_detection[chip] && erased_chip != Some(chip) {
                    return Err(EccError::Uncorrectable);
                }
                let changed = lines[victim][chip * SEG..(chip + 1) * SEG]
                    .iter()
                    .zip(&seg)
                    .filter(|(a, b)| a != b)
                    .count();
                lines[victim][chip * SEG..(chip + 1) * SEG].copy_from_slice(&seg);
                crate::traits::record_correction(self.name(), changed);
                Ok(CorrectOutcome {
                    repaired_bytes: changed,
                })
            }
            _ => Err(EccError::Uncorrectable),
        }
    }
}

impl MemoryEcc for MultiEcc {
    fn name(&self) -> &'static str {
        "Multi-ECC"
    }

    fn data_bytes(&self) -> usize {
        LINE
    }

    fn detection_bytes(&self) -> usize {
        DATA_CHIPS // one checksum byte per data chip, in the ninth chip
    }

    /// Correction bits per *line* round to zero: they are shared across the
    /// group (use [`MultiEcc::correction_overhead`] for capacity math and the
    /// group API for functional correction).
    fn correction_bytes(&self) -> usize {
        0
    }

    fn chips_per_rank(&self) -> usize {
        DATA_CHIPS + 1
    }

    fn chip_layout(&self) -> Vec<Vec<ChipSpan>> {
        let mut layout: Vec<Vec<ChipSpan>> = Vec::with_capacity(9);
        for c in 0..DATA_CHIPS {
            layout.push(vec![ChipSpan {
                region: Region::Data,
                start: c * SEG,
                len: SEG,
            }]);
        }
        layout.push(vec![ChipSpan {
            region: Region::Detection,
            start: 0,
            len: DATA_CHIPS,
        }]);
        layout
    }

    fn encode(&self, data: &[u8]) -> Codeword {
        assert_eq!(data.len(), LINE);
        let detection = (0..DATA_CHIPS)
            .map(|c| checksum8(&data[c * SEG..(c + 1) * SEG]))
            .collect();
        Codeword {
            data: data.to_vec(),
            detection,
            correction: vec![],
        }
    }

    fn detect(&self, data: &[u8], detection: &[u8]) -> DetectOutcome {
        if self.mismatched_chips(data, detection).is_empty() {
            DetectOutcome::Clean
        } else {
            DetectOutcome::ErrorDetected
        }
    }

    /// Per-line correction is impossible by design — correction state lives
    /// at group granularity. Clean lines pass; anything else needs
    /// [`MultiEcc::correct_in_group`].
    fn correct(
        &self,
        data: &mut [u8],
        detection: &[u8],
        _correction: &[u8],
        _erased_chip: Option<usize>,
    ) -> Result<CorrectOutcome, EccError> {
        if self.mismatched_chips(data, detection).is_empty() {
            Ok(CorrectOutcome { repaired_bytes: 0 })
        } else {
            Err(EccError::Uncorrectable)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn group(rng: &mut StdRng, n: usize) -> Vec<Vec<u8>> {
        (0..n)
            .map(|_| (0..LINE).map(|_| rng.gen()).collect())
            .collect()
    }

    #[test]
    fn overhead_matches_published() {
        let m = MultiEcc::default();
        assert!((m.total_overhead() - 0.129).abs() < 0.001);
    }

    #[test]
    fn detects_chip_error_per_line() {
        let m = MultiEcc::default();
        let mut rng = StdRng::seed_from_u64(30);
        let data: Vec<u8> = (0..LINE).map(|_| rng.gen()).collect();
        let cw = m.encode(&data);
        assert_eq!(m.detect(&cw.data, &cw.detection), DetectOutcome::Clean);
        let mut noisy = data.clone();
        for b in &mut noisy[16..24] {
            *b ^= 0x0f;
        }
        assert_eq!(
            m.detect(&noisy, &cw.detection),
            DetectOutcome::ErrorDetected
        );
    }

    #[test]
    fn multi_line_correction_rebuilds_chip_segment() {
        let m = MultiEcc::new(16);
        let mut rng = StdRng::seed_from_u64(31);
        let mut lines = group(&mut rng, 16);
        let parity = m.group_parity(&lines);
        let victim = 5;
        let clean = lines[victim].clone();
        let det = m.encode(&clean).detection;
        for b in &mut lines[victim][24..32] {
            *b = rng.gen();
        }
        m.correct_in_group(&mut lines, victim, &det, &parity, None)
            .expect("single localized chip must correct");
        assert_eq!(lines[victim], clean);
    }

    #[test]
    fn two_bad_chips_in_victim_uncorrectable() {
        let m = MultiEcc::new(8);
        let mut rng = StdRng::seed_from_u64(32);
        let mut lines = group(&mut rng, 8);
        let parity = m.group_parity(&lines);
        let det = m.encode(&lines[0]).detection;
        lines[0][0] ^= 1;
        lines[0][63] ^= 1;
        assert_eq!(
            m.correct_in_group(&mut lines, 0, &det, &parity, None),
            Err(EccError::Uncorrectable)
        );
    }

    #[test]
    fn erasure_hint_allows_stale_checksum() {
        let m = MultiEcc::new(4);
        let mut rng = StdRng::seed_from_u64(33);
        let mut lines = group(&mut rng, 4);
        let parity = m.group_parity(&lines);
        let clean = lines[2].clone();
        let det = m.encode(&clean).detection;
        for b in &mut lines[2][56..64] {
            *b = 0;
        }
        m.correct_in_group(&mut lines, 2, &det, &parity, Some(7))
            .unwrap();
        assert_eq!(lines[2], clean);
    }

    #[test]
    fn group_parity_linearity() {
        // parity(new group) = parity(old) ^ old_line ^ new_line — the update
        // identity the write path relies on.
        let m = MultiEcc::new(8);
        let mut rng = StdRng::seed_from_u64(34);
        let mut lines = group(&mut rng, 8);
        let p_old = m.group_parity(&lines);
        let old3 = lines[3].clone();
        let new3: Vec<u8> = (0..LINE).map(|_| rng.gen()).collect();
        lines[3] = new3.clone();
        let p_new = m.group_parity(&lines);
        let expect: Vec<u8> = p_old
            .iter()
            .zip(&old3)
            .zip(&new3)
            .map(|((&p, &o), &n)| p ^ o ^ n)
            .collect();
        assert_eq!(p_new, expect);
    }
}
