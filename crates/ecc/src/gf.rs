//! Galois-field arithmetic over GF(2^8) and GF(2^16).
//!
//! Both fields are implemented with exp/log tables built once at first use.
//! GF(2^8) uses the primitive polynomial `x^8 + x^4 + x^3 + x^2 + 1`
//! (0x11D), the conventional choice for byte-oriented Reed–Solomon codes.
//! GF(2^16) uses `x^16 + x^12 + x^3 + x + 1` (0x1100B), a primitive
//! polynomial commonly used for 16-bit symbol codes such as the
//! Reed–Solomon variant in Section VI-D of the paper.

use std::sync::OnceLock;

/// A finite field of characteristic 2 with table-based arithmetic.
///
/// Implementors are zero-sized tags; elements are the unsigned integer type
/// `Elem`. All operations are total: division by zero panics (a programming
/// error in codec logic, never data-dependent).
pub trait Field: Copy + Clone + Send + Sync + 'static {
    /// Element representation (u8 for GF(2^8), u16 for GF(2^16)).
    type Elem: Copy
        + Clone
        + PartialEq
        + Eq
        + std::fmt::Debug
        + std::hash::Hash
        + Send
        + Sync
        + 'static;

    /// Number of elements in the field.
    const ORDER: usize;
    /// Bits per symbol.
    const BITS: usize;

    /// The additive identity.
    fn zero() -> Self::Elem;
    /// The multiplicative identity.
    fn one() -> Self::Elem;
    /// The primitive element alpha (generator of the multiplicative group).
    fn alpha() -> Self::Elem;
    /// True if `x` is the additive identity.
    fn is_zero(x: Self::Elem) -> bool;
    /// Field addition (XOR in characteristic 2).
    fn add(a: Self::Elem, b: Self::Elem) -> Self::Elem;
    /// Field multiplication.
    fn mul(a: Self::Elem, b: Self::Elem) -> Self::Elem;
    /// Multiplicative inverse. Panics on zero.
    fn inv(a: Self::Elem) -> Self::Elem;
    /// `alpha^power` for arbitrary (possibly negative-equivalent) exponents.
    fn alpha_pow(power: i64) -> Self::Elem;
    /// Discrete logarithm base alpha. Panics on zero.
    fn log(a: Self::Elem) -> usize;
    /// Convert from a `usize` (low bits); used by tests and generators.
    fn from_usize(v: usize) -> Self::Elem;
    /// Convert to `usize`.
    fn to_usize(a: Self::Elem) -> usize;

    /// Field subtraction; identical to addition in characteristic 2.
    #[inline]
    fn sub(a: Self::Elem, b: Self::Elem) -> Self::Elem {
        Self::add(a, b)
    }

    /// Field division. Panics when `b` is zero.
    #[inline]
    fn div(a: Self::Elem, b: Self::Elem) -> Self::Elem {
        Self::mul(a, Self::inv(b))
    }

    /// `a^n` by exp/log arithmetic.
    fn pow(a: Self::Elem, n: usize) -> Self::Elem {
        if Self::is_zero(a) {
            return if n == 0 { Self::one() } else { Self::zero() };
        }
        let l = Self::log(a) * n % (Self::ORDER - 1);
        Self::alpha_pow(l as i64)
    }
}

struct Tables<T> {
    exp: Vec<T>,
    log: Vec<u32>,
}

fn build_tables_u16(bits: usize, poly: u32) -> Tables<u16> {
    let order = 1usize << bits;
    let mut exp = vec![0u16; 2 * (order - 1)];
    let mut log = vec![0u32; order];
    let mut x: u32 = 1;
    for (i, e) in exp.iter_mut().enumerate().take(order - 1) {
        *e = x as u16;
        log[x as usize] = i as u32;
        x <<= 1;
        if x & (order as u32) != 0 {
            x ^= poly;
        }
    }
    // Duplicate the table so `exp[log a + log b]` never needs a modulo.
    for i in 0..(order - 1) {
        exp[order - 1 + i] = exp[i];
    }
    Tables { exp, log }
}

/// GF(2^8) with primitive polynomial 0x11D.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct Gf256;

static GF256_TABLES: OnceLock<Tables<u16>> = OnceLock::new();

impl Gf256 {
    fn tables() -> &'static Tables<u16> {
        GF256_TABLES.get_or_init(|| build_tables_u16(8, 0x11D))
    }
}

impl Field for Gf256 {
    type Elem = u8;
    const ORDER: usize = 256;
    const BITS: usize = 8;

    #[inline]
    fn zero() -> u8 {
        0
    }
    #[inline]
    fn one() -> u8 {
        1
    }
    #[inline]
    fn alpha() -> u8 {
        2
    }
    #[inline]
    fn is_zero(x: u8) -> bool {
        x == 0
    }
    #[inline]
    fn add(a: u8, b: u8) -> u8 {
        a ^ b
    }

    #[inline]
    fn mul(a: u8, b: u8) -> u8 {
        if a == 0 || b == 0 {
            return 0;
        }
        let t = Self::tables();
        t.exp[(t.log[a as usize] + t.log[b as usize]) as usize] as u8
    }

    #[inline]
    fn inv(a: u8) -> u8 {
        assert!(a != 0, "GF(256) inverse of zero");
        let t = Self::tables();
        t.exp[(Self::ORDER - 1) - t.log[a as usize] as usize] as u8
    }

    #[inline]
    fn alpha_pow(power: i64) -> u8 {
        let m = (Self::ORDER - 1) as i64;
        let p = power.rem_euclid(m) as usize;
        Self::tables().exp[p] as u8
    }

    #[inline]
    fn log(a: u8) -> usize {
        assert!(a != 0, "GF(256) log of zero");
        Self::tables().log[a as usize] as usize
    }

    #[inline]
    fn from_usize(v: usize) -> u8 {
        v as u8
    }
    #[inline]
    fn to_usize(a: u8) -> usize {
        a as usize
    }
}

/// GF(2^16) with primitive polynomial 0x1100B.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct Gf65536;

static GF65536_TABLES: OnceLock<Tables<u16>> = OnceLock::new();

impl Gf65536 {
    fn tables() -> &'static Tables<u16> {
        GF65536_TABLES.get_or_init(|| build_tables_u16(16, 0x1100B))
    }
}

impl Field for Gf65536 {
    type Elem = u16;
    const ORDER: usize = 65536;
    const BITS: usize = 16;

    #[inline]
    fn zero() -> u16 {
        0
    }
    #[inline]
    fn one() -> u16 {
        1
    }
    #[inline]
    fn alpha() -> u16 {
        2
    }
    #[inline]
    fn is_zero(x: u16) -> bool {
        x == 0
    }
    #[inline]
    fn add(a: u16, b: u16) -> u16 {
        a ^ b
    }

    #[inline]
    fn mul(a: u16, b: u16) -> u16 {
        if a == 0 || b == 0 {
            return 0;
        }
        let t = Self::tables();
        t.exp[(t.log[a as usize] + t.log[b as usize]) as usize]
    }

    #[inline]
    fn inv(a: u16) -> u16 {
        assert!(a != 0, "GF(65536) inverse of zero");
        let t = Self::tables();
        t.exp[(Self::ORDER - 1) - t.log[a as usize] as usize]
    }

    #[inline]
    fn alpha_pow(power: i64) -> u16 {
        let m = (Self::ORDER - 1) as i64;
        let p = power.rem_euclid(m) as usize;
        Self::tables().exp[p]
    }

    #[inline]
    fn log(a: u16) -> usize {
        assert!(a != 0, "GF(65536) log of zero");
        Self::tables().log[a as usize] as usize
    }

    #[inline]
    fn from_usize(v: usize) -> u16 {
        v as u16
    }
    #[inline]
    fn to_usize(a: u16) -> usize {
        a as usize
    }
}

/// Polynomial helpers over an arbitrary [`Field`]. Polynomials are stored
/// lowest-degree-first (`p[0]` is the constant term).
pub mod poly {
    use super::Field;

    /// Evaluate `p` at `x` by Horner's rule.
    pub fn eval<F: Field>(p: &[F::Elem], x: F::Elem) -> F::Elem {
        let mut acc = F::zero();
        for &c in p.iter().rev() {
            acc = F::add(F::mul(acc, x), c);
        }
        acc
    }

    /// Multiply two polynomials.
    pub fn mul<F: Field>(a: &[F::Elem], b: &[F::Elem]) -> Vec<F::Elem> {
        if a.is_empty() || b.is_empty() {
            return vec![];
        }
        let mut out = vec![F::zero(); a.len() + b.len() - 1];
        for (i, &ai) in a.iter().enumerate() {
            if F::is_zero(ai) {
                continue;
            }
            for (j, &bj) in b.iter().enumerate() {
                out[i + j] = F::add(out[i + j], F::mul(ai, bj));
            }
        }
        out
    }

    /// Add two polynomials.
    pub fn add<F: Field>(a: &[F::Elem], b: &[F::Elem]) -> Vec<F::Elem> {
        let n = a.len().max(b.len());
        let mut out = vec![F::zero(); n];
        for (i, o) in out.iter_mut().enumerate() {
            let av = a.get(i).copied().unwrap_or_else(F::zero);
            let bv = b.get(i).copied().unwrap_or_else(F::zero);
            *o = F::add(av, bv);
        }
        out
    }

    /// Scale a polynomial by a field element.
    pub fn scale<F: Field>(p: &[F::Elem], s: F::Elem) -> Vec<F::Elem> {
        p.iter().map(|&c| F::mul(c, s)).collect()
    }

    /// Formal derivative (characteristic 2: odd-degree terms survive).
    pub fn derivative<F: Field>(p: &[F::Elem]) -> Vec<F::Elem> {
        if p.len() <= 1 {
            return vec![];
        }
        let mut out = Vec::with_capacity(p.len() - 1);
        for (i, &c) in p.iter().enumerate().skip(1) {
            if i % 2 == 1 {
                out.push(c);
            } else {
                out.push(F::zero());
            }
        }
        out
    }

    /// Degree of `p`, treating the empty/zero polynomial as degree 0.
    pub fn degree<F: Field>(p: &[F::Elem]) -> usize {
        for (i, &c) in p.iter().enumerate().rev() {
            if !F::is_zero(c) {
                return i;
            }
        }
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_field_axioms<F: Field>(sample: &[F::Elem]) {
        for &a in sample {
            // additive identity & self-inverse
            assert_eq!(F::add(a, F::zero()), a);
            assert!(F::is_zero(F::add(a, a)));
            // multiplicative identity
            assert_eq!(F::mul(a, F::one()), a);
            if !F::is_zero(a) {
                assert_eq!(F::mul(a, F::inv(a)), F::one());
            }
            for &b in sample {
                assert_eq!(F::mul(a, b), F::mul(b, a));
                for &c in sample {
                    // distributivity
                    assert_eq!(
                        F::mul(a, F::add(b, c)),
                        F::add(F::mul(a, b), F::mul(a, c))
                    );
                    // associativity
                    assert_eq!(F::mul(F::mul(a, b), c), F::mul(a, F::mul(b, c)));
                }
            }
        }
    }

    #[test]
    fn gf256_axioms_exhaustive_pairs() {
        // Every element participates in identity/inverse checks.
        for v in 0..256usize {
            let a = v as u8;
            assert_eq!(Gf256::mul(a, 1), a);
            if a != 0 {
                assert_eq!(Gf256::mul(a, Gf256::inv(a)), 1);
                assert_eq!(Gf256::alpha_pow(Gf256::log(a) as i64), a);
            }
        }
        let sample: Vec<u8> = vec![0, 1, 2, 3, 7, 0x53, 0x8e, 0xca, 0xff];
        check_field_axioms::<Gf256>(&sample);
    }

    #[test]
    fn gf256_alpha_generates_group() {
        let mut seen = vec![false; 256];
        for i in 0..255 {
            let e = Gf256::alpha_pow(i);
            assert!(!seen[e as usize], "alpha^{i} repeated");
            seen[e as usize] = true;
        }
        assert!(!seen[0], "alpha powers must never hit zero");
    }

    #[test]
    fn gf65536_axioms_sampled() {
        for v in [1usize, 2, 3, 0x1234, 0x8000, 0xFFFF] {
            let a = v as u16;
            assert_eq!(Gf65536::mul(a, 1), a);
            assert_eq!(Gf65536::mul(a, Gf65536::inv(a)), 1);
            assert_eq!(Gf65536::alpha_pow(Gf65536::log(a) as i64), a);
        }
        let sample: Vec<u16> = vec![0, 1, 2, 0x1234, 0xABCD, 0xFFFF];
        check_field_axioms::<Gf65536>(&sample);
    }

    #[test]
    fn gf65536_alpha_order_is_full() {
        // alpha^(2^16-1) == 1 and no smaller power among the prime divisors
        // 3, 5, 17, 257 of 65535 gives 1.
        assert_eq!(Gf65536::alpha_pow(65535), 1);
        for d in [65535 / 3, 65535 / 5, 65535 / 17, 65535 / 257] {
            assert_ne!(Gf65536::alpha_pow(d as i64), 1, "alpha order divides {d}");
        }
    }

    #[test]
    fn alpha_pow_negative_exponents() {
        let a = Gf256::alpha_pow(-1);
        assert_eq!(Gf256::mul(a, 2), 1);
        let b = Gf65536::alpha_pow(-7);
        assert_eq!(Gf65536::mul(b, Gf65536::alpha_pow(7)), 1);
    }

    #[test]
    fn pow_matches_repeated_mul() {
        for v in [1u8, 2, 3, 0x35, 0xd1] {
            let mut acc = 1u8;
            for n in 0..20 {
                assert_eq!(Gf256::pow(v, n), acc);
                acc = Gf256::mul(acc, v);
            }
        }
        assert_eq!(Gf256::pow(0, 0), 1);
        assert_eq!(Gf256::pow(0, 5), 0);
    }

    #[test]
    fn poly_eval_and_mul() {
        // p(x) = 1 + x over GF(256); p(alpha) = alpha ^ 1.
        let p = vec![1u8, 1];
        assert_eq!(poly::eval::<Gf256>(&p, 2), 3);
        // (1 + x)^2 = 1 + x^2 in characteristic 2.
        let sq = poly::mul::<Gf256>(&p, &p);
        assert_eq!(sq, vec![1, 0, 1]);
        assert_eq!(poly::degree::<Gf256>(&sq), 2);
    }

    #[test]
    fn poly_derivative_char2() {
        // d/dx (c0 + c1 x + c2 x^2 + c3 x^3) = c1 + c3 x^2 (char 2).
        let p = vec![5u8, 7, 9, 11];
        let d = poly::derivative::<Gf256>(&p);
        assert_eq!(d, vec![7, 0, 11]);
    }
}
