//! Galois-field arithmetic over GF(2^8) and GF(2^16).
//!
//! GF(2^8) uses the primitive polynomial `x^8 + x^4 + x^3 + x^2 + 1`
//! (0x11D), the conventional choice for byte-oriented Reed–Solomon codes.
//! GF(2^16) uses `x^16 + x^12 + x^3 + x + 1` (0x1100B), a primitive
//! polynomial commonly used for 16-bit symbol codes such as the
//! Reed–Solomon variant in Section VI-D of the paper.
//!
//! Both fields build exp/log tables once at first use. GF(2^8)
//! additionally materializes a flat 64 KiB full multiplication table and a
//! 256-byte inverse table from them, so the hot [`Field::mul`] path is a
//! single branchless lookup instead of two log lookups, an add, and an exp
//! lookup behind two zero checks. The original exp/log product survives as
//! [`Gf256::mul_exp_log`] so benchmarks can compare the kernels.
//!
//! For loops that multiply many values by one fixed operand (Horner
//! evaluation, the Reed–Solomon encode LFSR and syndrome loops), the
//! [`Field::mul_ctx`] / [`Field::ctx_mul`] pair lets the caller hoist the
//! per-operand table work out of the loop: for GF(2^8) the context is the
//! fixed operand's 256-byte row of the multiplication table, making each
//! in-loop multiply one indexed load from an L1-resident slice.

use std::sync::OnceLock;

/// A finite field of characteristic 2 with table-based arithmetic.
///
/// Implementors are zero-sized tags; elements are the unsigned integer type
/// `Elem`. All operations are total: division by zero panics (a programming
/// error in codec logic, never data-dependent).
pub trait Field: Copy + Clone + Send + Sync + 'static {
    /// Element representation (u8 for GF(2^8), u16 for GF(2^16)).
    type Elem: Copy
        + Clone
        + PartialEq
        + Eq
        + std::fmt::Debug
        + std::hash::Hash
        + Send
        + Sync
        + 'static;

    /// Precomputed context for repeated multiplication by one fixed
    /// operand. For GF(2^8) this is the operand's row of the full
    /// multiplication table; for GF(2^16) (where a full table would be
    /// 8 GiB) it is just the operand itself.
    type MulCtx: Copy + Clone + Send + Sync + 'static;

    /// Number of elements in the field.
    const ORDER: usize;
    /// Bits per symbol.
    const BITS: usize;

    /// The additive identity.
    fn zero() -> Self::Elem;
    /// The multiplicative identity.
    fn one() -> Self::Elem;
    /// The primitive element alpha (generator of the multiplicative group).
    fn alpha() -> Self::Elem;
    /// True if `x` is the additive identity.
    fn is_zero(x: Self::Elem) -> bool;
    /// Field addition (XOR in characteristic 2).
    fn add(a: Self::Elem, b: Self::Elem) -> Self::Elem;
    /// Field multiplication.
    fn mul(a: Self::Elem, b: Self::Elem) -> Self::Elem;
    /// Multiplicative inverse. Panics on zero.
    fn inv(a: Self::Elem) -> Self::Elem;
    /// `alpha^power` for arbitrary (possibly negative-equivalent) exponents.
    fn alpha_pow(power: i64) -> Self::Elem;
    /// Discrete logarithm base alpha. Panics on zero.
    fn log(a: Self::Elem) -> usize;
    /// Convert from a `usize` (low bits); used by tests and generators.
    fn from_usize(v: usize) -> Self::Elem;
    /// Convert to `usize`.
    fn to_usize(a: Self::Elem) -> usize;
    /// Build the reusable context for multiplying by fixed operand `a`.
    fn mul_ctx(a: Self::Elem) -> Self::MulCtx;
    /// Multiply by the fixed operand captured in `ctx`:
    /// `ctx_mul(mul_ctx(a), b) == mul(a, b)`.
    fn ctx_mul(ctx: Self::MulCtx, b: Self::Elem) -> Self::Elem;

    /// Field subtraction; identical to addition in characteristic 2.
    #[inline]
    fn sub(a: Self::Elem, b: Self::Elem) -> Self::Elem {
        Self::add(a, b)
    }

    /// Field division. Panics when `b` is zero.
    #[inline]
    fn div(a: Self::Elem, b: Self::Elem) -> Self::Elem {
        Self::mul(a, Self::inv(b))
    }

    /// `a^n` by exp/log arithmetic.
    fn pow(a: Self::Elem, n: usize) -> Self::Elem {
        if Self::is_zero(a) {
            return if n == 0 { Self::one() } else { Self::zero() };
        }
        let l = Self::log(a) * n % (Self::ORDER - 1);
        Self::alpha_pow(l as i64)
    }
}

struct Tables<T> {
    exp: Vec<T>,
    log: Vec<u32>,
}

fn build_tables_u16(bits: usize, poly: u32) -> Tables<u16> {
    let order = 1usize << bits;
    let mut exp = vec![0u16; 2 * (order - 1)];
    let mut log = vec![0u32; order];
    let mut x: u32 = 1;
    for (i, e) in exp.iter_mut().enumerate().take(order - 1) {
        *e = x as u16;
        log[x as usize] = i as u32;
        x <<= 1;
        if x & (order as u32) != 0 {
            x ^= poly;
        }
    }
    // Duplicate the table so `exp[log a + log b]` never needs a modulo.
    for i in 0..(order - 1) {
        exp[order - 1 + i] = exp[i];
    }
    Tables { exp, log }
}

/// GF(2^8) with primitive polynomial 0x11D.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct Gf256;

static GF256_TABLES: OnceLock<Tables<u16>> = OnceLock::new();

/// Flat 256×256 multiplication table plus the 256-entry inverse table,
/// derived from the exp/log tables once at first use. 64 KiB + 256 B.
struct Gf256Kernels {
    mul: Box<[u8; 65536]>,
    inv: [u8; 256],
}

static GF256_KERNELS: OnceLock<Gf256Kernels> = OnceLock::new();

impl Gf256 {
    fn tables() -> &'static Tables<u16> {
        GF256_TABLES.get_or_init(|| build_tables_u16(8, 0x11D))
    }

    fn kernels() -> &'static Gf256Kernels {
        GF256_KERNELS.get_or_init(|| {
            let t = Self::tables();
            let mut mul = vec![0u8; 65536].into_boxed_slice();
            let mut inv = [0u8; 256];
            for a in 1..256usize {
                let la = t.log[a];
                let row = &mut mul[a << 8..(a << 8) + 256];
                for (b, slot) in row.iter_mut().enumerate().skip(1) {
                    *slot = t.exp[(la + t.log[b]) as usize] as u8;
                }
                inv[a] = t.exp[255 - la as usize] as u8;
            }
            Gf256Kernels {
                mul: mul.try_into().expect("mul table is 65536 bytes"),
                inv,
            }
        })
    }

    /// Baseline exp/log multiplication — the pre-table kernel, kept public
    /// so benchmarks can measure the flat-table speedup against it.
    #[inline]
    pub fn mul_exp_log(a: u8, b: u8) -> u8 {
        if a == 0 || b == 0 {
            return 0;
        }
        let t = Self::tables();
        t.exp[(t.log[a as usize] + t.log[b as usize]) as usize] as u8
    }
}

impl Field for Gf256 {
    type Elem = u8;
    type MulCtx = &'static [u8; 256];
    const ORDER: usize = 256;
    const BITS: usize = 8;

    #[inline]
    fn zero() -> u8 {
        0
    }
    #[inline]
    fn one() -> u8 {
        1
    }
    #[inline]
    fn alpha() -> u8 {
        2
    }
    #[inline]
    fn is_zero(x: u8) -> bool {
        x == 0
    }
    #[inline]
    fn add(a: u8, b: u8) -> u8 {
        a ^ b
    }

    #[inline]
    fn mul(a: u8, b: u8) -> u8 {
        // Zero rows/columns are part of the table: no branches.
        Self::kernels().mul[((a as usize) << 8) | b as usize]
    }

    #[inline]
    fn inv(a: u8) -> u8 {
        assert!(a != 0, "GF(256) inverse of zero");
        Self::kernels().inv[a as usize]
    }

    #[inline]
    fn alpha_pow(power: i64) -> u8 {
        let m = (Self::ORDER - 1) as i64;
        let p = power.rem_euclid(m) as usize;
        Self::tables().exp[p] as u8
    }

    #[inline]
    fn log(a: u8) -> usize {
        assert!(a != 0, "GF(256) log of zero");
        Self::tables().log[a as usize] as usize
    }

    #[inline]
    fn from_usize(v: usize) -> u8 {
        v as u8
    }
    #[inline]
    fn to_usize(a: u8) -> usize {
        a as usize
    }

    #[inline]
    fn mul_ctx(a: u8) -> &'static [u8; 256] {
        let off = (a as usize) << 8;
        (&Self::kernels().mul[off..off + 256])
            .try_into()
            .expect("row is 256 bytes")
    }

    #[inline]
    fn ctx_mul(ctx: &'static [u8; 256], b: u8) -> u8 {
        ctx[b as usize]
    }
}

/// GF(2^16) with primitive polynomial 0x1100B.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct Gf65536;

static GF65536_TABLES: OnceLock<Tables<u16>> = OnceLock::new();

impl Gf65536 {
    fn tables() -> &'static Tables<u16> {
        GF65536_TABLES.get_or_init(|| build_tables_u16(16, 0x1100B))
    }
}

impl Field for Gf65536 {
    type Elem = u16;
    type MulCtx = u16;
    const ORDER: usize = 65536;
    const BITS: usize = 16;

    #[inline]
    fn zero() -> u16 {
        0
    }
    #[inline]
    fn one() -> u16 {
        1
    }
    #[inline]
    fn alpha() -> u16 {
        2
    }
    #[inline]
    fn is_zero(x: u16) -> bool {
        x == 0
    }
    #[inline]
    fn add(a: u16, b: u16) -> u16 {
        a ^ b
    }

    #[inline]
    fn mul(a: u16, b: u16) -> u16 {
        if a == 0 || b == 0 {
            return 0;
        }
        let t = Self::tables();
        t.exp[(t.log[a as usize] + t.log[b as usize]) as usize]
    }

    #[inline]
    fn inv(a: u16) -> u16 {
        assert!(a != 0, "GF(65536) inverse of zero");
        let t = Self::tables();
        t.exp[(Self::ORDER - 1) - t.log[a as usize] as usize]
    }

    #[inline]
    fn alpha_pow(power: i64) -> u16 {
        let m = (Self::ORDER - 1) as i64;
        let p = power.rem_euclid(m) as usize;
        Self::tables().exp[p]
    }

    #[inline]
    fn log(a: u16) -> usize {
        assert!(a != 0, "GF(65536) log of zero");
        Self::tables().log[a as usize] as usize
    }

    #[inline]
    fn from_usize(v: usize) -> u16 {
        v as u16
    }
    #[inline]
    fn to_usize(a: u16) -> usize {
        a as usize
    }

    #[inline]
    fn mul_ctx(a: u16) -> u16 {
        a
    }

    #[inline]
    fn ctx_mul(ctx: u16, b: u16) -> u16 {
        Self::mul(ctx, b)
    }
}

/// Polynomial helpers over an arbitrary [`Field`]. Polynomials are stored
/// lowest-degree-first (`p[0]` is the constant term).
pub mod poly {
    use super::Field;

    /// Evaluate `p` at `x` by Horner's rule. The multiplier `x` is fixed
    /// across the loop, so its multiplication context is hoisted once.
    pub fn eval<F: Field>(p: &[F::Elem], x: F::Elem) -> F::Elem {
        let ctx = F::mul_ctx(x);
        let mut acc = F::zero();
        for &c in p.iter().rev() {
            acc = F::add(F::ctx_mul(ctx, acc), c);
        }
        acc
    }

    /// Multiply two polynomials.
    pub fn mul<F: Field>(a: &[F::Elem], b: &[F::Elem]) -> Vec<F::Elem> {
        if a.is_empty() || b.is_empty() {
            return vec![];
        }
        let mut out = vec![F::zero(); a.len() + b.len() - 1];
        for (i, &ai) in a.iter().enumerate() {
            if F::is_zero(ai) {
                continue;
            }
            let ctx = F::mul_ctx(ai);
            for (j, &bj) in b.iter().enumerate() {
                out[i + j] = F::add(out[i + j], F::ctx_mul(ctx, bj));
            }
        }
        out
    }

    /// Add two polynomials.
    pub fn add<F: Field>(a: &[F::Elem], b: &[F::Elem]) -> Vec<F::Elem> {
        let n = a.len().max(b.len());
        let mut out = vec![F::zero(); n];
        for (i, o) in out.iter_mut().enumerate() {
            let av = a.get(i).copied().unwrap_or_else(F::zero);
            let bv = b.get(i).copied().unwrap_or_else(F::zero);
            *o = F::add(av, bv);
        }
        out
    }

    /// Scale a polynomial by a field element.
    pub fn scale<F: Field>(p: &[F::Elem], s: F::Elem) -> Vec<F::Elem> {
        let ctx = F::mul_ctx(s);
        p.iter().map(|&c| F::ctx_mul(ctx, c)).collect()
    }

    /// Formal derivative (characteristic 2: odd-degree terms survive).
    pub fn derivative<F: Field>(p: &[F::Elem]) -> Vec<F::Elem> {
        if p.len() <= 1 {
            return vec![];
        }
        let mut out = Vec::with_capacity(p.len() - 1);
        for (i, &c) in p.iter().enumerate().skip(1) {
            if i % 2 == 1 {
                out.push(c);
            } else {
                out.push(F::zero());
            }
        }
        out
    }

    /// Degree of `p`, treating the empty/zero polynomial as degree 0.
    pub fn degree<F: Field>(p: &[F::Elem]) -> usize {
        for (i, &c) in p.iter().enumerate().rev() {
            if !F::is_zero(c) {
                return i;
            }
        }
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_field_axioms<F: Field>(sample: &[F::Elem]) {
        for &a in sample {
            // additive identity & self-inverse
            assert_eq!(F::add(a, F::zero()), a);
            assert!(F::is_zero(F::add(a, a)));
            // multiplicative identity
            assert_eq!(F::mul(a, F::one()), a);
            if !F::is_zero(a) {
                assert_eq!(F::mul(a, F::inv(a)), F::one());
            }
            for &b in sample {
                assert_eq!(F::mul(a, b), F::mul(b, a));
                for &c in sample {
                    // distributivity
                    assert_eq!(F::mul(a, F::add(b, c)), F::add(F::mul(a, b), F::mul(a, c)));
                    // associativity
                    assert_eq!(F::mul(F::mul(a, b), c), F::mul(a, F::mul(b, c)));
                }
            }
        }
    }

    #[test]
    fn gf256_axioms_exhaustive_pairs() {
        // Every element participates in identity/inverse checks.
        for v in 0..256usize {
            let a = v as u8;
            assert_eq!(Gf256::mul(a, 1), a);
            if a != 0 {
                assert_eq!(Gf256::mul(a, Gf256::inv(a)), 1);
                assert_eq!(Gf256::alpha_pow(Gf256::log(a) as i64), a);
            }
        }
        let sample: Vec<u8> = vec![0, 1, 2, 3, 7, 0x53, 0x8e, 0xca, 0xff];
        check_field_axioms::<Gf256>(&sample);
    }

    #[test]
    fn gf256_alpha_generates_group() {
        let mut seen = vec![false; 256];
        for i in 0..255 {
            let e = Gf256::alpha_pow(i);
            assert!(!seen[e as usize], "alpha^{i} repeated");
            seen[e as usize] = true;
        }
        assert!(!seen[0], "alpha powers must never hit zero");
    }

    #[test]
    fn gf65536_axioms_sampled() {
        for v in [1usize, 2, 3, 0x1234, 0x8000, 0xFFFF] {
            let a = v as u16;
            assert_eq!(Gf65536::mul(a, 1), a);
            assert_eq!(Gf65536::mul(a, Gf65536::inv(a)), 1);
            assert_eq!(Gf65536::alpha_pow(Gf65536::log(a) as i64), a);
        }
        let sample: Vec<u16> = vec![0, 1, 2, 0x1234, 0xABCD, 0xFFFF];
        check_field_axioms::<Gf65536>(&sample);
    }

    #[test]
    fn gf65536_alpha_order_is_full() {
        // alpha^(2^16-1) == 1 and no smaller power among the prime divisors
        // 3, 5, 17, 257 of 65535 gives 1.
        assert_eq!(Gf65536::alpha_pow(65535), 1);
        for d in [65535 / 3, 65535 / 5, 65535 / 17, 65535 / 257] {
            assert_ne!(Gf65536::alpha_pow(d as i64), 1, "alpha order divides {d}");
        }
    }

    #[test]
    fn alpha_pow_negative_exponents() {
        let a = Gf256::alpha_pow(-1);
        assert_eq!(Gf256::mul(a, 2), 1);
        let b = Gf65536::alpha_pow(-7);
        assert_eq!(Gf65536::mul(b, Gf65536::alpha_pow(7)), 1);
    }

    #[test]
    fn pow_matches_repeated_mul() {
        for v in [1u8, 2, 3, 0x35, 0xd1] {
            let mut acc = 1u8;
            for n in 0..20 {
                assert_eq!(Gf256::pow(v, n), acc);
                acc = Gf256::mul(acc, v);
            }
        }
        assert_eq!(Gf256::pow(0, 0), 1);
        assert_eq!(Gf256::pow(0, 5), 0);
    }

    #[test]
    fn poly_eval_and_mul() {
        // p(x) = 1 + x over GF(256); p(alpha) = alpha ^ 1.
        let p = vec![1u8, 1];
        assert_eq!(poly::eval::<Gf256>(&p, 2), 3);
        // (1 + x)^2 = 1 + x^2 in characteristic 2.
        let sq = poly::mul::<Gf256>(&p, &p);
        assert_eq!(sq, vec![1, 0, 1]);
        assert_eq!(poly::degree::<Gf256>(&sq), 2);
    }

    #[test]
    fn gf256_table_kernel_matches_exp_log_exhaustive() {
        // The flat 64 KiB table and the exp/log baseline must agree on all
        // 65536 operand pairs, including the zero row and column.
        for a in 0..256usize {
            let ctx = Gf256::mul_ctx(a as u8);
            for b in 0..256usize {
                let want = Gf256::mul_exp_log(a as u8, b as u8);
                assert_eq!(Gf256::mul(a as u8, b as u8), want);
                assert_eq!(Gf256::ctx_mul(ctx, b as u8), want);
            }
        }
    }

    #[test]
    fn gf256_inv_table_matches_exp_log() {
        let t = |a: u8| {
            // exp/log formulation the table was built from
            Gf256::alpha_pow(255 - Gf256::log(a) as i64)
        };
        for a in 1..=255u8 {
            assert_eq!(Gf256::inv(a), t(a));
        }
    }

    #[test]
    fn gf65536_ctx_mul_matches_mul() {
        for a in [0u16, 1, 2, 0x1234, 0xABCD, 0xFFFF] {
            let ctx = Gf65536::mul_ctx(a);
            for b in [0u16, 1, 3, 0x8000, 0xFFFE] {
                assert_eq!(Gf65536::ctx_mul(ctx, b), Gf65536::mul(a, b));
            }
        }
    }

    #[test]
    fn poly_derivative_char2() {
        // d/dx (c0 + c1 x + c2 x^2 + c3 x^3) = c1 + c3 x^2 (char 2).
        let p = vec![5u8, 7, 9, 11];
        let d = poly::derivative::<Gf256>(&p);
        assert_eq!(d, vec![7, 0, 11]);
    }
}
