//! The 18-device commercial chipkill-correct ECC (AMD Family 15h style).
//!
//! Each rank has 18 x4 DRAM devices and moves a 64-byte line. Every ECC word
//! consists of 18 eight-bit symbols: 16 data and only **two** Reed–Solomon
//! check symbols. Two check symbols can correct any single-symbol error
//! (SSC), halving the chips accessed per request compared to the 36-device
//! organization — but, as the paper notes, "potentially slightly impacts
//! error detection coverage": a double-symbol error is no longer guaranteed
//! to be detected (correction consumes the full redundancy).
//!
//! For the detection/correction split we attribute one check symbol per word
//! to each role (4B + 4B per 64B line); the code is used as a whole for both.

use crate::gf::Gf256;
use crate::rs::{ReedSolomon, RsError};
use crate::traits::{
    ChipSpan, Codeword, CorrectOutcome, CorrectionSplit, DetectOutcome, EccError, MemoryEcc, Region,
};

const DATA_SYMBOLS: usize = 16;
const CHECK_SYMBOLS: usize = 2;
const WORDS_PER_LINE: usize = 4;
const LINE_BYTES: usize = DATA_SYMBOLS * WORDS_PER_LINE; // 64

/// 18-device commercial chipkill correct (see module docs).
pub struct Chipkill18 {
    rs: ReedSolomon<Gf256>,
}

impl Default for Chipkill18 {
    fn default() -> Self {
        Self::new()
    }
}

impl Chipkill18 {
    /// The 18-device chipkill-correct code with its RS decoder.
    pub fn new() -> Self {
        Self {
            rs: ReedSolomon::new(CHECK_SYMBOLS),
        }
    }

    fn word_checks(&self, data: &[u8], w: usize) -> Vec<u8> {
        let word = &data[w * DATA_SYMBOLS..(w + 1) * DATA_SYMBOLS];
        self.rs.encode(word)
    }

    /// Check symbols of every word of every line via one lane-parallel
    /// batched RS encode (generator nibble tables built once per batch).
    fn batch_word_checks(&self, lines: &[&[u8]]) -> Vec<Vec<u8>> {
        let mut words = Vec::with_capacity(lines.len() * WORDS_PER_LINE);
        for data in lines {
            assert_eq!(data.len(), LINE_BYTES);
            for w in 0..WORDS_PER_LINE {
                words.push(&data[w * DATA_SYMBOLS..(w + 1) * DATA_SYMBOLS]);
            }
        }
        self.rs.encode_lines(&words)
    }

    fn assemble(
        data: &[u8],
        detection: &[u8],
        correction: &[u8],
        w: usize,
    ) -> [u8; DATA_SYMBOLS + CHECK_SYMBOLS] {
        let mut cw = [0u8; DATA_SYMBOLS + CHECK_SYMBOLS];
        cw[..DATA_SYMBOLS].copy_from_slice(&data[w * DATA_SYMBOLS..(w + 1) * DATA_SYMBOLS]);
        cw[DATA_SYMBOLS] = detection[w];
        cw[DATA_SYMBOLS + 1] = correction[w];
        cw
    }
}

impl MemoryEcc for Chipkill18 {
    fn name(&self) -> &'static str {
        "18-device commercial chipkill correct"
    }

    fn data_bytes(&self) -> usize {
        LINE_BYTES
    }

    fn detection_bytes(&self) -> usize {
        WORDS_PER_LINE // first check symbol of each word
    }

    fn correction_bytes(&self) -> usize {
        WORDS_PER_LINE // second check symbol of each word
    }

    fn chips_per_rank(&self) -> usize {
        18
    }

    fn chip_layout(&self) -> Vec<Vec<ChipSpan>> {
        let mut layout = Vec::with_capacity(18);
        for chip in 0..18 {
            let mut spans = Vec::with_capacity(WORDS_PER_LINE);
            for w in 0..WORDS_PER_LINE {
                let span = if chip < DATA_SYMBOLS {
                    ChipSpan {
                        region: Region::Data,
                        start: w * DATA_SYMBOLS + chip,
                        len: 1,
                    }
                } else if chip == DATA_SYMBOLS {
                    ChipSpan {
                        region: Region::Detection,
                        start: w,
                        len: 1,
                    }
                } else {
                    ChipSpan {
                        region: Region::Correction,
                        start: w,
                        len: 1,
                    }
                };
                spans.push(span);
            }
            layout.push(spans);
        }
        layout
    }

    fn encode(&self, data: &[u8]) -> Codeword {
        assert_eq!(data.len(), LINE_BYTES);
        let mut detection = Vec::with_capacity(self.detection_bytes());
        let mut correction = Vec::with_capacity(self.correction_bytes());
        for w in 0..WORDS_PER_LINE {
            let checks = self.word_checks(data, w);
            detection.push(checks[0]);
            correction.push(checks[1]);
        }
        Codeword {
            data: data.to_vec(),
            detection,
            correction,
        }
    }

    fn encode_lines(&self, lines: &[&[u8]]) -> Vec<Codeword> {
        crate::traits::record_batch(lines.len());
        let checks = self.batch_word_checks(lines);
        lines
            .iter()
            .enumerate()
            .map(|(i, data)| {
                let mut detection = Vec::with_capacity(self.detection_bytes());
                let mut correction = Vec::with_capacity(self.correction_bytes());
                for w in 0..WORDS_PER_LINE {
                    let c = &checks[i * WORDS_PER_LINE + w];
                    detection.push(c[0]);
                    correction.push(c[1]);
                }
                Codeword {
                    data: data.to_vec(),
                    detection,
                    correction,
                }
            })
            .collect()
    }

    fn detect(&self, data: &[u8], detection: &[u8]) -> DetectOutcome {
        assert_eq!(data.len(), LINE_BYTES);
        for (w, &det) in detection.iter().enumerate().take(WORDS_PER_LINE) {
            let checks = self.word_checks(data, w);
            if checks[0] != det {
                return DetectOutcome::ErrorDetected;
            }
        }
        DetectOutcome::Clean
    }

    fn correct(
        &self,
        data: &mut [u8],
        detection: &[u8],
        correction: &[u8],
        erased_chip: Option<usize>,
    ) -> Result<CorrectOutcome, EccError> {
        if data.len() != LINE_BYTES {
            return Err(EccError::InputLength {
                expected: LINE_BYTES,
                got: data.len(),
            });
        }
        let mut repaired = 0usize;
        for w in 0..WORDS_PER_LINE {
            let mut cw = Self::assemble(data, detection, correction, w);
            let erasures: Vec<usize> = erased_chip.into_iter().collect();
            match self.rs.decode(&mut cw, &erasures, Some(1)) {
                Ok(info) => {
                    repaired += info.corrected.len();
                    data[w * DATA_SYMBOLS..(w + 1) * DATA_SYMBOLS]
                        .copy_from_slice(&cw[..DATA_SYMBOLS]);
                }
                Err(RsError::DetectedUncorrectable) => return Err(EccError::Uncorrectable),
            }
        }
        crate::traits::record_correction(self.name(), repaired);
        Ok(CorrectOutcome {
            repaired_bytes: repaired,
        })
    }
}

impl CorrectionSplit for Chipkill18 {
    fn correction_of_lines(&self, lines: &[&[u8]]) -> Vec<Vec<u8>> {
        crate::traits::record_batch(lines.len());
        let checks = self.batch_word_checks(lines);
        (0..lines.len())
            .map(|i| {
                (0..WORDS_PER_LINE)
                    .map(|w| checks[i * WORDS_PER_LINE + w][1])
                    .collect()
            })
            .collect()
    }

    fn detection_of_lines(&self, lines: &[&[u8]]) -> Vec<Vec<u8>> {
        crate::traits::record_batch(lines.len());
        let checks = self.batch_word_checks(lines);
        (0..lines.len())
            .map(|i| {
                (0..WORDS_PER_LINE)
                    .map(|w| checks[i * WORDS_PER_LINE + w][0])
                    .collect()
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::inject_chip_error;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn single_chip_error_corrected() {
        let ck = Chipkill18::new();
        let mut rng = StdRng::seed_from_u64(10);
        for chip in 0..18 {
            let data: Vec<u8> = (0..64).map(|_| rng.gen()).collect();
            let mut cw = ck.encode(&data);
            inject_chip_error(&ck, &mut cw, chip, |b| *b ^= 0x77);
            let mut noisy = cw.data.clone();
            ck.correct(&mut noisy, &cw.detection, &cw.correction, None)
                .expect("single chip correctable");
            assert_eq!(noisy, data);
        }
    }

    #[test]
    fn data_chip_error_visible_to_detection_symbol() {
        let ck = Chipkill18::new();
        let mut rng = StdRng::seed_from_u64(11);
        for chip in 0..16 {
            let data: Vec<u8> = (0..64).map(|_| rng.gen()).collect();
            let mut cw = ck.encode(&data);
            inject_chip_error(&ck, &mut cw, chip, |b| *b ^= 0x55);
            assert_eq!(
                ck.detect(&cw.data, &cw.detection),
                DetectOutcome::ErrorDetected
            );
        }
    }

    #[test]
    fn erased_chip_plus_clean_rest_corrected() {
        let ck = Chipkill18::new();
        let mut rng = StdRng::seed_from_u64(12);
        for _ in 0..30 {
            let chip = rng.gen_range(0..18);
            let data: Vec<u8> = (0..64).map(|_| rng.gen()).collect();
            let mut cw = ck.encode(&data);
            inject_chip_error(&ck, &mut cw, chip, |b| *b = rng.gen());
            let mut noisy = cw.data.clone();
            ck.correct(&mut noisy, &cw.detection, &cw.correction, Some(chip))
                .unwrap();
            assert_eq!(noisy, data);
        }
    }

    #[test]
    fn double_error_weaker_detection_than_36dev() {
        // With only two check symbols the code either reports uncorrectable
        // or silently miscorrects a double error — it must never panic. We
        // record that at least some double errors are NOT cleanly corrected,
        // demonstrating the reduced guarantee the paper mentions.
        let ck = Chipkill18::new();
        let mut rng = StdRng::seed_from_u64(13);
        let mut not_silent_ok = 0;
        for _ in 0..100 {
            let data: Vec<u8> = (0..64).map(|_| rng.gen()).collect();
            let mut cw = ck.encode(&data);
            inject_chip_error(&ck, &mut cw, 2, |b| *b ^= 0x21);
            inject_chip_error(&ck, &mut cw, 9, |b| *b ^= 0x84);
            let mut noisy = cw.data.clone();
            match ck.correct(&mut noisy, &cw.detection, &cw.correction, None) {
                Err(EccError::Uncorrectable) => not_silent_ok += 1,
                Err(e) => panic!("unexpected error class: {e:?}"),
                Ok(_) => {
                    if noisy != data {
                        // miscorrection: possible with SSC; counted as unsafe
                    } else {
                        not_silent_ok += 1;
                    }
                }
            }
        }
        assert!(not_silent_ok > 0);
    }

    #[test]
    fn overhead_matches_paper() {
        let ck = Chipkill18::new();
        assert_eq!(ck.data_bytes(), 64);
        assert!((ck.baseline_overhead() - 0.125).abs() < 1e-12);
        assert_eq!(ck.chips_per_rank(), 18);
    }
}
