//! RAIM — Redundant Array of Independent Memory (IBM zEnterprise), the
//! paper's commercial DIMM-kill-correct baseline, plus the reorganized
//! underlying code used by RAIM + ECC Parity.
//!
//! **Baseline [`Raim`]**: each rank spans five DIMMs of nine x4 chips each
//! (45 chips). A 128B line stripes 32B over each of four data DIMMs; the
//! fifth DIMM stores their bitwise XOR. The ninth chip of each DIMM holds
//! detection checksums for that DIMM's 32B stripe. A whole-DIMM failure
//! (or any single-chip failure, a special case) is corrected by
//! reconstructing the failed DIMM's stripe from the parity DIMM. Capacity
//! overhead 13/32 = 40.6%: detection 4/32 = 12.5%, correction 9/32 = 28.1%
//! (Fig. 1).
//!
//! **[`RaimParityCode`]** — the underlying ECC of "RAIM + ECC Parity"
//! (Table II: 18 x4 chips, 64B lines): the rank is two 9-chip DIMMs; each
//! DIMM contributes 32B of the line plus a 4B detection checksum in its
//! ninth chip. The *correction bits* are the 32B XOR of the two DIMM
//! stripes — ratio R = 32/64 = 0.5, exactly the R that reproduces the
//! paper's Table III capacity numbers (18.8% at 10 channels, 26.6% at 5).
//! Losing either DIMM erases a known half of the chips; the correction bits
//! (reconstructed from the cross-channel ECC parity) rebuild it.

use crate::checksum::checksum16;
use crate::traits::{
    ChipSpan, Codeword, CorrectOutcome, CorrectionSplit, DetectOutcome, EccError, MemoryEcc, Region,
};

const CHIP_BYTES: usize = 4; // bytes each x4 chip supplies per line
const CHIPS_PER_DIMM: usize = 9; // 8 data + 1 detection
const DIMM_DATA: usize = 8 * CHIP_BYTES; // 32B per DIMM stripe

/// Detection checksum of one DIMM stripe: two 16-bit ones'-complement sums
/// over the stripe halves, stored in the DIMM's ninth chip (4B).
fn dimm_checksum(stripe: &[u8]) -> [u8; 4] {
    debug_assert_eq!(stripe.len(), DIMM_DATA);
    let a = checksum16(&stripe[..16]).to_be_bytes();
    let b = checksum16(&stripe[16..]).to_be_bytes();
    [a[0], a[1], b[0], b[1]]
}

/// Commercial RAIM DIMM-kill correct (see module docs).
pub struct Raim;

impl Default for Raim {
    fn default() -> Self {
        Self
    }
}

impl Raim {
    /// The commercial RAIM DIMM-kill-correct organization.
    pub fn new() -> Self {
        Self
    }

    fn stripe(data: &[u8], dimm: usize) -> &[u8] {
        &data[dimm * DIMM_DATA..(dimm + 1) * DIMM_DATA]
    }

    /// XOR of the four data-DIMM stripes (the parity DIMM's data content).
    fn parity_stripe(data: &[u8]) -> Vec<u8> {
        let mut p = vec![0u8; DIMM_DATA];
        for d in 0..4 {
            for (i, &b) in Self::stripe(data, d).iter().enumerate() {
                p[i] ^= b;
            }
        }
        p
    }

    fn bad_data_dimms(data: &[u8], detection: &[u8]) -> Vec<usize> {
        (0..4)
            .filter(|&d| dimm_checksum(Self::stripe(data, d)) != detection[d * 4..d * 4 + 4])
            .collect()
    }
}

impl MemoryEcc for Raim {
    fn name(&self) -> &'static str {
        "RAIM (commercial DIMM-kill correct)"
    }

    fn data_bytes(&self) -> usize {
        128
    }

    fn detection_bytes(&self) -> usize {
        16 // 4B per data DIMM
    }

    fn correction_bytes(&self) -> usize {
        36 // parity DIMM: 32B stripe + its own 4B checksum
    }

    fn chips_per_rank(&self) -> usize {
        45
    }

    fn chip_layout(&self) -> Vec<Vec<ChipSpan>> {
        let mut layout: Vec<Vec<ChipSpan>> = Vec::with_capacity(45);
        for dimm in 0..5 {
            for chip in 0..CHIPS_PER_DIMM {
                let span = if dimm < 4 {
                    if chip < 8 {
                        ChipSpan {
                            region: Region::Data,
                            start: dimm * DIMM_DATA + chip * CHIP_BYTES,
                            len: CHIP_BYTES,
                        }
                    } else {
                        ChipSpan {
                            region: Region::Detection,
                            start: dimm * 4,
                            len: 4,
                        }
                    }
                } else if chip < 8 {
                    ChipSpan {
                        region: Region::Correction,
                        start: chip * CHIP_BYTES,
                        len: CHIP_BYTES,
                    }
                } else {
                    ChipSpan {
                        region: Region::Correction,
                        start: DIMM_DATA,
                        len: 4,
                    }
                };
                layout.push(vec![span]);
            }
        }
        layout
    }

    fn encode(&self, data: &[u8]) -> Codeword {
        assert_eq!(data.len(), 128);
        let mut detection = Vec::with_capacity(16);
        for d in 0..4 {
            detection.extend(dimm_checksum(Self::stripe(data, d)));
        }
        let p = Self::parity_stripe(data);
        let mut correction = p.clone();
        correction.extend(dimm_checksum(&p));
        Codeword {
            data: data.to_vec(),
            detection,
            correction,
        }
    }

    fn detect(&self, data: &[u8], detection: &[u8]) -> DetectOutcome {
        if Self::bad_data_dimms(data, detection).is_empty() {
            DetectOutcome::Clean
        } else {
            DetectOutcome::ErrorDetected
        }
    }

    fn correct(
        &self,
        data: &mut [u8],
        detection: &[u8],
        correction: &[u8],
        erased_chip: Option<usize>,
    ) -> Result<CorrectOutcome, EccError> {
        if data.len() != 128 {
            return Err(EccError::InputLength {
                expected: 128,
                got: data.len(),
            });
        }
        let mut bad = Self::bad_data_dimms(data, detection);
        if let Some(chip) = erased_chip {
            let dimm = chip / CHIPS_PER_DIMM;
            if dimm < 4 && !bad.contains(&dimm) {
                bad.push(dimm);
            }
        }
        match bad.len() {
            0 => Ok(CorrectOutcome { repaired_bytes: 0 }),
            1 => {
                let victim = bad[0];
                // rebuilt = parity-stripe ^ other three data stripes
                let mut rebuilt = correction[..DIMM_DATA].to_vec();
                for d in 0..4 {
                    if d == victim {
                        continue;
                    }
                    for (i, &b) in Self::stripe(data, d).iter().enumerate() {
                        rebuilt[i] ^= b;
                    }
                }
                let hinted = erased_chip.map(|c| c / CHIPS_PER_DIMM) == Some(victim);
                if dimm_checksum(&rebuilt) != detection[victim * 4..victim * 4 + 4] && !hinted {
                    return Err(EccError::Uncorrectable);
                }
                let changed = Self::stripe(data, victim)
                    .iter()
                    .zip(&rebuilt)
                    .filter(|(a, b)| a != b)
                    .count();
                data[victim * DIMM_DATA..(victim + 1) * DIMM_DATA].copy_from_slice(&rebuilt);
                crate::traits::record_correction(self.name(), changed);
                Ok(CorrectOutcome {
                    repaired_bytes: changed,
                })
            }
            _ => Err(EccError::Uncorrectable),
        }
    }
}

impl CorrectionSplit for Raim {}

/// Underlying ECC of "RAIM + ECC Parity": 18 x4 chips (two 9-chip DIMMs),
/// 64B lines, correction = inter-DIMM XOR with ratio R = 0.5 (see module
/// docs).
pub struct RaimParityCode;

impl Default for RaimParityCode {
    fn default() -> Self {
        Self
    }
}

impl RaimParityCode {
    /// The 18-device RAIM underlying code ECC Parity builds on.
    pub fn new() -> Self {
        Self
    }

    fn stripe(data: &[u8], dimm: usize) -> &[u8] {
        &data[dimm * DIMM_DATA..(dimm + 1) * DIMM_DATA]
    }

    fn bad_dimms(data: &[u8], detection: &[u8]) -> Vec<usize> {
        (0..2)
            .filter(|&d| dimm_checksum(Self::stripe(data, d)) != detection[d * 4..d * 4 + 4])
            .collect()
    }
}

impl MemoryEcc for RaimParityCode {
    fn name(&self) -> &'static str {
        "RAIM underlying code for ECC Parity (18-device DIMM-kill)"
    }

    fn data_bytes(&self) -> usize {
        64
    }

    fn detection_bytes(&self) -> usize {
        8 // 4B per DIMM
    }

    fn correction_bytes(&self) -> usize {
        32 // XOR of the two 32B DIMM stripes: R = 0.5
    }

    fn chips_per_rank(&self) -> usize {
        18
    }

    fn chip_layout(&self) -> Vec<Vec<ChipSpan>> {
        let mut layout: Vec<Vec<ChipSpan>> = Vec::with_capacity(18);
        for dimm in 0..2 {
            for chip in 0..CHIPS_PER_DIMM {
                let span = if chip < 8 {
                    ChipSpan {
                        region: Region::Data,
                        start: dimm * DIMM_DATA + chip * CHIP_BYTES,
                        len: CHIP_BYTES,
                    }
                } else {
                    ChipSpan {
                        region: Region::Detection,
                        start: dimm * 4,
                        len: 4,
                    }
                };
                layout.push(vec![span]);
            }
        }
        layout
    }

    fn encode(&self, data: &[u8]) -> Codeword {
        assert_eq!(data.len(), 64);
        let mut detection = Vec::with_capacity(8);
        detection.extend(dimm_checksum(Self::stripe(data, 0)));
        detection.extend(dimm_checksum(Self::stripe(data, 1)));
        let correction = Self::stripe(data, 0)
            .iter()
            .zip(Self::stripe(data, 1))
            .map(|(&a, &b)| a ^ b)
            .collect();
        Codeword {
            data: data.to_vec(),
            detection,
            correction,
        }
    }

    fn detect(&self, data: &[u8], detection: &[u8]) -> DetectOutcome {
        if Self::bad_dimms(data, detection).is_empty() {
            DetectOutcome::Clean
        } else {
            DetectOutcome::ErrorDetected
        }
    }

    fn correct(
        &self,
        data: &mut [u8],
        detection: &[u8],
        correction: &[u8],
        erased_chip: Option<usize>,
    ) -> Result<CorrectOutcome, EccError> {
        if data.len() != 64 {
            return Err(EccError::InputLength {
                expected: 64,
                got: data.len(),
            });
        }
        let mut bad = Self::bad_dimms(data, detection);
        if let Some(chip) = erased_chip {
            let dimm = chip / CHIPS_PER_DIMM;
            if dimm < 2 && !bad.contains(&dimm) {
                bad.push(dimm);
            }
        }
        match bad.len() {
            0 => Ok(CorrectOutcome { repaired_bytes: 0 }),
            1 => {
                let victim = bad[0];
                let other = 1 - victim;
                let rebuilt: Vec<u8> = correction
                    .iter()
                    .zip(Self::stripe(data, other))
                    .map(|(&p, &o)| p ^ o)
                    .collect();
                let hinted = erased_chip.map(|c| c / CHIPS_PER_DIMM) == Some(victim);
                if dimm_checksum(&rebuilt) != detection[victim * 4..victim * 4 + 4] && !hinted {
                    return Err(EccError::Uncorrectable);
                }
                let changed = Self::stripe(data, victim)
                    .iter()
                    .zip(&rebuilt)
                    .filter(|(a, b)| a != b)
                    .count();
                data[victim * DIMM_DATA..(victim + 1) * DIMM_DATA].copy_from_slice(&rebuilt);
                crate::traits::record_correction(self.name(), changed);
                Ok(CorrectOutcome {
                    repaired_bytes: changed,
                })
            }
            _ => Err(EccError::Uncorrectable),
        }
    }
}

impl CorrectionSplit for RaimParityCode {}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn line128(rng: &mut StdRng) -> Vec<u8> {
        (0..128).map(|_| rng.gen()).collect()
    }

    #[test]
    fn raim_overheads_match_fig1() {
        let r = Raim::new();
        assert_eq!(r.chips_per_rank(), 45);
        // 16B detection / 128B = 12.5%; 36B correction / 128B = 28.1%
        assert!((r.detection_bytes() as f64 / 128.0 - 0.125).abs() < 1e-12);
        assert!((r.correction_bytes() as f64 / 128.0 - 0.28125).abs() < 1e-12);
        assert!((r.baseline_overhead() - 0.40625).abs() < 1e-12);
    }

    #[test]
    fn raim_dimm_kill_corrected() {
        let r = Raim::new();
        let mut rng = StdRng::seed_from_u64(40);
        for dimm in 0..4 {
            let data = line128(&mut rng);
            let cw = r.encode(&data);
            let mut noisy = data.clone();
            // whole-DIMM failure: scramble its 32B stripe
            for b in &mut noisy[dimm * 32..(dimm + 1) * 32] {
                *b = rng.gen();
            }
            assert_eq!(
                r.detect(&noisy, &cw.detection),
                DetectOutcome::ErrorDetected
            );
            r.correct(&mut noisy, &cw.detection, &cw.correction, None)
                .expect("DIMM-kill must be corrected");
            assert_eq!(noisy, data);
        }
    }

    #[test]
    fn raim_single_chip_error_corrected() {
        let r = Raim::new();
        let mut rng = StdRng::seed_from_u64(41);
        for _ in 0..30 {
            let data = line128(&mut rng);
            let cw = r.encode(&data);
            let chip = rng.gen_range(0..32usize); // a data chip
            let dimm = chip / 8;
            let off = dimm * 32 + (chip % 8) * 4;
            let mut noisy = data.clone();
            for b in &mut noisy[off..off + 4] {
                *b ^= 0xbe;
            }
            r.correct(&mut noisy, &cw.detection, &cw.correction, None)
                .unwrap();
            assert_eq!(noisy, data);
        }
    }

    #[test]
    fn raim_two_dimm_failure_uncorrectable() {
        let r = Raim::new();
        let mut rng = StdRng::seed_from_u64(42);
        let data = line128(&mut rng);
        let cw = r.encode(&data);
        let mut noisy = data.clone();
        for b in &mut noisy[0..32] {
            *b ^= 0x01;
        }
        for b in &mut noisy[32..64] {
            *b ^= 0x02;
        }
        assert_eq!(
            r.correct(&mut noisy, &cw.detection, &cw.correction, None),
            Err(EccError::Uncorrectable)
        );
    }

    #[test]
    fn raim_erasure_hint_for_marked_dimm() {
        let r = Raim::new();
        let mut rng = StdRng::seed_from_u64(43);
        let data = line128(&mut rng);
        let cw = r.encode(&data);
        let mut noisy = data.clone();
        for b in &mut noisy[96..128] {
            *b = 0;
        }
        // chip 30 belongs to DIMM 3
        r.correct(&mut noisy, &cw.detection, &cw.correction, Some(30))
            .unwrap();
        assert_eq!(noisy, data);
    }

    #[test]
    fn raim_parity_code_r_is_half() {
        let c = RaimParityCode::new();
        assert_eq!(c.chips_per_rank(), 18);
        assert!((c.correction_ratio() - 0.5).abs() < 1e-12);
        assert!((c.detection_bytes() as f64 / 64.0 - 0.125).abs() < 1e-12);
    }

    #[test]
    fn raim_parity_code_dimm_kill() {
        let c = RaimParityCode::new();
        let mut rng = StdRng::seed_from_u64(44);
        for dimm in 0..2 {
            let data: Vec<u8> = (0..64).map(|_| rng.gen()).collect();
            let cw = c.encode(&data);
            let mut noisy = data.clone();
            for b in &mut noisy[dimm * 32..(dimm + 1) * 32] {
                *b = rng.gen();
            }
            c.correct(&mut noisy, &cw.detection, &cw.correction, None)
                .expect("half-rank DIMM kill must correct");
            assert_eq!(noisy, data);
        }
    }

    #[test]
    fn raim_parity_code_chip_error() {
        let c = RaimParityCode::new();
        let mut rng = StdRng::seed_from_u64(45);
        for chip in 0..16 {
            let dimm = chip / 8;
            let data: Vec<u8> = (0..64).map(|_| rng.gen()).collect();
            let cw = c.encode(&data);
            let off = dimm * 32 + (chip % 8) * 4;
            let mut noisy = data.clone();
            for b in &mut noisy[off..off + 4] {
                *b ^= 0x33;
            }
            c.correct(&mut noisy, &cw.detection, &cw.correction, None)
                .unwrap();
            assert_eq!(noisy, data);
        }
    }

    #[test]
    fn raim_parity_code_double_dimm_uncorrectable() {
        let c = RaimParityCode::new();
        let data = vec![7u8; 64];
        let cw = c.encode(&data);
        let mut noisy = data.clone();
        noisy[0] ^= 1;
        noisy[40] ^= 1;
        assert_eq!(
            c.correct(&mut noisy, &cw.detection, &cw.correction, None),
            Err(EccError::Uncorrectable)
        );
    }
}
