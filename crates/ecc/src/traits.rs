//! The common interface implemented by every memory ECC in this crate.
//!
//! The central abstraction is the **detection / correction split**: every
//! code's redundancy decomposes into *detection bits*, which must stay inline
//! with the data so every read can be checked on the fly, and *correction
//! bits*, which are only consulted after an error is detected. ECC Parity
//! (the paper's contribution, in the `ecc-parity` crate) replaces the
//! per-channel storage of the correction bits with one cross-channel XOR.

/// Which region of a codeword a chip's bytes belong to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Region {
    /// Application data bytes.
    Data,
    /// Detection bits (always stored inline with the data in the rank).
    Detection,
    /// Correction bits (stored inline by baselines; via parity by ECC Parity).
    Correction,
}

/// A contiguous byte range owned by one chip within one codeword region.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChipSpan {
    /// Which codeword region the span belongs to.
    pub region: Region,
    /// Byte offset within the region.
    pub start: usize,
    /// Number of bytes.
    pub len: usize,
}

/// One encoded memory line: data plus split redundancy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Codeword {
    /// Application data bytes.
    pub data: Vec<u8>,
    /// Detection bits (stored inline with the data).
    pub detection: Vec<u8>,
    /// Correction bits (inline in baselines; via parity under ECC Parity).
    pub correction: Vec<u8>,
}

/// Result of an on-the-fly detection check.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DetectOutcome {
    /// Data and detection bits are consistent.
    Clean,
    /// An inconsistency was found; correction is required.
    ErrorDetected,
}

/// Result of a successful correction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CorrectOutcome {
    /// Number of data bytes whose value was repaired.
    pub repaired_bytes: usize,
}

/// Correction failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EccError {
    /// The error pattern exceeds the code's correction capability.
    Uncorrectable,
    /// A buffer handed to the codec has the wrong length for this code
    /// (caller bug surfaced as a typed error instead of a panic).
    InputLength {
        /// Expected byte length.
        expected: usize,
        /// Actual byte length received.
        got: usize,
    },
}

impl std::fmt::Display for EccError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EccError::Uncorrectable => write!(f, "uncorrectable memory error"),
            EccError::InputLength { expected, got } => {
                write!(
                    f,
                    "codec input length mismatch: expected {expected} bytes, got {got}"
                )
            }
        }
    }
}

impl std::error::Error for EccError {}

/// A memory error-correction code operating on one cache-line-sized unit.
///
/// # Example
///
/// Encode a line, corrupt one chip, then detect and repair the damage:
///
/// ```
/// use ecc_codes::traits::inject_chip_error;
/// use ecc_codes::{Chipkill36, DetectOutcome, MemoryEcc};
///
/// let code = Chipkill36::new();
/// let line = vec![0xA5u8; code.data_bytes()];
/// let mut cw = code.encode(&line);
/// inject_chip_error(&code, &mut cw, 7, |b| *b ^= 0x0F);
/// assert_eq!(code.detect(&cw.data, &cw.detection), DetectOutcome::ErrorDetected);
/// let out = code
///     .correct(&mut cw.data, &cw.detection, &cw.correction, None)
///     .unwrap();
/// assert!(out.repaired_bytes > 0);
/// assert_eq!(cw.data, line);
/// ```
pub trait MemoryEcc: Send + Sync {
    /// Human-readable scheme name (matches the paper's terminology).
    fn name(&self) -> &'static str;

    /// Data bytes per protected line (64 or 128 in the paper's systems).
    fn data_bytes(&self) -> usize;

    /// Detection bits per line, in bytes. Always stored inline.
    fn detection_bytes(&self) -> usize;

    /// Correction bits per line, in bytes. This is the quantity ECC Parity
    /// compresses across channels; its ratio to [`Self::data_bytes`] is the
    /// paper's `R`.
    fn correction_bytes(&self) -> usize;

    /// Total DRAM devices per rank (data + redundancy).
    fn chips_per_rank(&self) -> usize;

    /// Byte-ownership map: `layout()[chip]` lists the spans chip `chip`
    /// stores. Chips owning no bytes of a region simply omit it. A span with
    /// `Region::Correction` is meaningful only when correction bits are
    /// stored inline (the baseline organization).
    fn chip_layout(&self) -> Vec<Vec<ChipSpan>>;

    /// Encode a data line into a full codeword.
    fn encode(&self, data: &[u8]) -> Codeword;

    /// Encode a batch of data lines at once. Semantically exactly
    /// `lines.iter().map(|l| self.encode(l))` — the default does just that —
    /// but schemes built on Reed–Solomon override it with lane-parallel
    /// kernels so table/context setup is amortized across the whole batch
    /// (see [`crate::rs::ReedSolomon::encode_lines`]).
    ///
    /// Implementations (including overrides) call [`record_batch`] once per
    /// invocation so the `codec.batch.lines` counter and batch-size
    /// histogram stay accurate.
    fn encode_lines(&self, lines: &[&[u8]]) -> Vec<Codeword> {
        record_batch(lines.len());
        lines.iter().map(|l| self.encode(l)).collect()
    }

    /// On-the-fly check of `data` against stored `detection` bits.
    fn detect(&self, data: &[u8], detection: &[u8]) -> DetectOutcome;

    /// Correct `data` in place using detection and correction bits.
    ///
    /// `erased_chip`: a chip index the caller already knows is faulty (e.g.
    /// from the bank-health table or DIMM marking); enables erasure decoding.
    fn correct(
        &self,
        data: &mut [u8],
        detection: &[u8],
        correction: &[u8],
        erased_chip: Option<usize>,
    ) -> Result<CorrectOutcome, EccError>;

    /// The paper's `R`: correction-bit size over data-line size.
    fn correction_ratio(&self) -> f64 {
        self.correction_bytes() as f64 / self.data_bytes() as f64
    }

    /// Static capacity overhead of the *baseline* organization (all
    /// redundancy stored inline): (detection + correction) / data.
    fn baseline_overhead(&self) -> f64 {
        (self.detection_bytes() + self.correction_bytes()) as f64 / self.data_bytes() as f64
    }
}

/// Extension trait for codes whose correction bits can be recomputed from
/// clean data alone — the property ECC Parity relies on: the correction bits
/// of healthy channels are derived on demand, never read from memory.
///
/// # Example
///
/// ```
/// use ecc_codes::{Chipkill36, CorrectionSplit, MemoryEcc};
///
/// let code = Chipkill36::new();
/// let line = vec![3u8; code.data_bytes()];
/// // Correction bits derived from clean data match the encoder's output.
/// assert_eq!(code.correction_of(&line), code.encode(&line).correction);
/// ```
pub trait CorrectionSplit: MemoryEcc {
    /// Compute only the correction bits for a clean data line.
    fn correction_of(&self, data: &[u8]) -> Vec<u8> {
        self.encode(data).correction
    }

    /// Compute only the detection bits for a clean data line.
    fn detection_of(&self, data: &[u8]) -> Vec<u8> {
        self.encode(data).detection
    }

    /// Correction bits of a whole batch of clean lines; semantically
    /// `lines.iter().map(|l| self.correction_of(l))`. Overridden by
    /// Reed–Solomon schemes to run lane-parallel. Implementations call
    /// [`record_batch`] once per invocation.
    fn correction_of_lines(&self, lines: &[&[u8]]) -> Vec<Vec<u8>> {
        record_batch(lines.len());
        lines.iter().map(|l| self.correction_of(l)).collect()
    }

    /// Detection bits of a whole batch of clean lines; semantically
    /// `lines.iter().map(|l| self.detection_of(l))`. Implementations call
    /// [`record_batch`] once per invocation.
    fn detection_of_lines(&self, lines: &[&[u8]]) -> Vec<Vec<u8>> {
        record_batch(lines.len());
        lines.iter().map(|l| self.detection_of(l)).collect()
    }
}

impl MemoryEcc for Box<dyn CorrectionSplit> {
    fn name(&self) -> &'static str {
        (**self).name()
    }
    fn data_bytes(&self) -> usize {
        (**self).data_bytes()
    }
    fn detection_bytes(&self) -> usize {
        (**self).detection_bytes()
    }
    fn correction_bytes(&self) -> usize {
        (**self).correction_bytes()
    }
    fn chips_per_rank(&self) -> usize {
        (**self).chips_per_rank()
    }
    fn chip_layout(&self) -> Vec<Vec<ChipSpan>> {
        (**self).chip_layout()
    }
    fn encode(&self, data: &[u8]) -> Codeword {
        (**self).encode(data)
    }
    fn encode_lines(&self, lines: &[&[u8]]) -> Vec<Codeword> {
        // Forward, don't default: a boxed scheme must keep its batched
        // override (and record_batch must fire exactly once).
        (**self).encode_lines(lines)
    }
    fn detect(&self, data: &[u8], detection: &[u8]) -> DetectOutcome {
        (**self).detect(data, detection)
    }
    fn correct(
        &self,
        data: &mut [u8],
        detection: &[u8],
        correction: &[u8],
        erased_chip: Option<usize>,
    ) -> Result<CorrectOutcome, EccError> {
        (**self).correct(data, detection, correction, erased_chip)
    }
}

/// Boxed codes delegate the split too, so `ParityMemory<Box<dyn
/// CorrectionSplit>>` works — the resilience soak harness drives every
/// scheme through one memory type this way.
impl CorrectionSplit for Box<dyn CorrectionSplit> {
    fn correction_of(&self, data: &[u8]) -> Vec<u8> {
        (**self).correction_of(data)
    }
    fn detection_of(&self, data: &[u8]) -> Vec<u8> {
        (**self).detection_of(data)
    }
    fn correction_of_lines(&self, lines: &[&[u8]]) -> Vec<Vec<u8>> {
        (**self).correction_of_lines(lines)
    }
    fn detection_of_lines(&self, lines: &[&[u8]]) -> Vec<Vec<u8>> {
        (**self).detection_of_lines(lines)
    }
}

/// Record a successful correction in the observability registry (`obs`
/// crate). Every codec calls this on its repair path; while
/// `ECC_PARITY_METRICS` is unset the call is one relaxed load and a branch.
///
/// Emits a global `ecc.corrections` counter, a per-scheme
/// `ecc.corrections.<name>` counter, and an `ecc.repaired_bytes` histogram
/// of the repair size in bytes.
pub fn record_correction(code: &'static str, repaired_bytes: usize) {
    if !obs::metrics::enabled() {
        return;
    }
    obs::counter!("ecc.corrections").inc();
    obs::histogram!("ecc.repaired_bytes").observe(repaired_bytes as u64);
    per_code_counter(code).inc();
}

/// Record one batched-codec invocation covering `lines` lines. Emits the
/// `codec.batch.lines` counter (total lines pushed through batched entry
/// points) and the `codec.batch.size` log2 histogram of batch sizes. While
/// `ECC_PARITY_METRICS` is unset the call is one relaxed load and a branch.
pub fn record_batch(lines: usize) {
    if !obs::metrics::enabled() {
        return;
    }
    obs::counter!("codec.batch.lines").add(lines as u64);
    obs::histogram!("codec.batch.size").observe(lines as u64);
}

/// Per-scheme counters are keyed by the scheme's `name()`; the composed
/// metric name is leaked once per scheme (a handful of schemes exist).
fn per_code_counter(code: &'static str) -> &'static obs::Counter {
    use std::collections::HashMap;
    use std::sync::{Mutex, OnceLock};
    static CACHE: OnceLock<Mutex<HashMap<&'static str, &'static obs::Counter>>> = OnceLock::new();
    let mut map = CACHE.get_or_init(Default::default).lock().unwrap();
    map.entry(code).or_insert_with(|| {
        obs::metrics::counter(Box::leak(
            format!("ecc.corrections.{code}").into_boxed_str(),
        ))
    })
}

/// Helper: corrupt every byte a chip owns within a codeword. Used by tests
/// and the fault-injection machinery to model whole-chip failures.
pub fn inject_chip_error(
    ecc: &dyn MemoryEcc,
    cw: &mut Codeword,
    chip: usize,
    mut mutate: impl FnMut(&mut u8),
) {
    let layout = ecc.chip_layout();
    assert!(chip < layout.len(), "chip index out of range");
    for span in &layout[chip] {
        let region: &mut Vec<u8> = match span.region {
            Region::Data => &mut cw.data,
            Region::Detection => &mut cw.detection,
            Region::Correction => &mut cw.correction,
        };
        for b in &mut region[span.start..span.start + span.len] {
            mutate(b);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Dummy;
    impl MemoryEcc for Dummy {
        fn name(&self) -> &'static str {
            "dummy"
        }
        fn data_bytes(&self) -> usize {
            64
        }
        fn detection_bytes(&self) -> usize {
            8
        }
        fn correction_bytes(&self) -> usize {
            16
        }
        fn chips_per_rank(&self) -> usize {
            2
        }
        fn chip_layout(&self) -> Vec<Vec<ChipSpan>> {
            vec![
                vec![ChipSpan {
                    region: Region::Data,
                    start: 0,
                    len: 32,
                }],
                vec![ChipSpan {
                    region: Region::Data,
                    start: 32,
                    len: 32,
                }],
            ]
        }
        fn encode(&self, data: &[u8]) -> Codeword {
            Codeword {
                data: data.to_vec(),
                detection: vec![0; 8],
                correction: vec![0; 16],
            }
        }
        fn detect(&self, _: &[u8], _: &[u8]) -> DetectOutcome {
            DetectOutcome::Clean
        }
        fn correct(
            &self,
            _: &mut [u8],
            _: &[u8],
            _: &[u8],
            _: Option<usize>,
        ) -> Result<CorrectOutcome, EccError> {
            Ok(CorrectOutcome { repaired_bytes: 0 })
        }
    }

    #[test]
    fn ratio_and_overhead_arithmetic() {
        let d = Dummy;
        assert!((d.correction_ratio() - 0.25).abs() < 1e-12);
        assert!((d.baseline_overhead() - 24.0 / 64.0).abs() < 1e-12);
    }

    #[test]
    fn inject_touches_only_owned_bytes() {
        let d = Dummy;
        let mut cw = d.encode(&[7u8; 64]);
        inject_chip_error(&d, &mut cw, 0, |b| *b ^= 0xff);
        assert!(cw.data[..32].iter().all(|&b| b == 7 ^ 0xff));
        assert!(cw.data[32..].iter().all(|&b| b == 7));
        assert!(cw.detection.iter().all(|&b| b == 0));
    }
}
