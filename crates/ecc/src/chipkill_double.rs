//! Double-chipkill correct: tolerates **two** simultaneous device failures
//! per rank. The paper lists it among the ECCs its optimization applies to
//! ("chipkill correct, double chipkill correct, DIMM-kill correct"); this
//! implementation demonstrates that generality end to end.
//!
//! Organization: a 40-device x4 rank moving 128B lines; each ECC word has
//! 32 data symbols and **eight** Reed–Solomon check symbols over GF(2^8).
//! Four check symbols are the detection tier (guaranteeing detection of up
//! to four symbol errors when compared on the fly) and four are the
//! correction tier; jointly the eight-symbol redundancy corrects any two
//! symbol errors (DSC) and, with the bank-health erasure hints, up to four
//! erased symbols. `R = 16B / 128B = 0.125`, so ECC Parity stores the
//! double-chipkill correction bits at `0.125/(N-1)` of data capacity.

use crate::gf::Gf256;
use crate::rs::{ReedSolomon, RsError};
use crate::traits::{
    ChipSpan, Codeword, CorrectOutcome, CorrectionSplit, DetectOutcome, EccError, MemoryEcc, Region,
};

const DATA_SYMBOLS: usize = 32;
const CHECK_SYMBOLS: usize = 8;
const WORDS_PER_LINE: usize = 4;
const LINE_BYTES: usize = DATA_SYMBOLS * WORDS_PER_LINE; // 128

/// Double chipkill correct over a 40-device rank (see module docs).
pub struct ChipkillDouble {
    rs: ReedSolomon<Gf256>,
}

impl Default for ChipkillDouble {
    fn default() -> Self {
        Self::new()
    }
}

impl ChipkillDouble {
    /// The 40-device double-chipkill code with its RS decoder.
    pub fn new() -> Self {
        Self {
            rs: ReedSolomon::new(CHECK_SYMBOLS),
        }
    }

    fn word_checks(&self, data: &[u8], w: usize) -> Vec<u8> {
        self.rs
            .encode(&data[w * DATA_SYMBOLS..(w + 1) * DATA_SYMBOLS])
    }

    /// Check symbols of every word of every line via one lane-parallel
    /// batched RS encode (generator nibble tables built once per batch).
    fn batch_word_checks(&self, lines: &[&[u8]]) -> Vec<Vec<u8>> {
        let mut words = Vec::with_capacity(lines.len() * WORDS_PER_LINE);
        for data in lines {
            assert_eq!(data.len(), LINE_BYTES);
            for w in 0..WORDS_PER_LINE {
                words.push(&data[w * DATA_SYMBOLS..(w + 1) * DATA_SYMBOLS]);
            }
        }
        self.rs.encode_lines(&words)
    }

    fn assemble(
        data: &[u8],
        detection: &[u8],
        correction: &[u8],
        w: usize,
    ) -> [u8; DATA_SYMBOLS + CHECK_SYMBOLS] {
        let mut cw = [0u8; DATA_SYMBOLS + CHECK_SYMBOLS];
        cw[..DATA_SYMBOLS].copy_from_slice(&data[w * DATA_SYMBOLS..(w + 1) * DATA_SYMBOLS]);
        cw[DATA_SYMBOLS..DATA_SYMBOLS + 4].copy_from_slice(&detection[w * 4..(w + 1) * 4]);
        cw[DATA_SYMBOLS + 4..].copy_from_slice(&correction[w * 4..(w + 1) * 4]);
        cw
    }
}

impl MemoryEcc for ChipkillDouble {
    fn name(&self) -> &'static str {
        "double chipkill correct (40-device)"
    }

    fn data_bytes(&self) -> usize {
        LINE_BYTES
    }

    fn detection_bytes(&self) -> usize {
        4 * WORDS_PER_LINE
    }

    fn correction_bytes(&self) -> usize {
        4 * WORDS_PER_LINE
    }

    fn chips_per_rank(&self) -> usize {
        DATA_SYMBOLS + CHECK_SYMBOLS
    }

    fn chip_layout(&self) -> Vec<Vec<ChipSpan>> {
        let mut layout = Vec::with_capacity(40);
        for chip in 0..40 {
            let spans = (0..WORDS_PER_LINE)
                .map(|w| {
                    if chip < DATA_SYMBOLS {
                        ChipSpan {
                            region: Region::Data,
                            start: w * DATA_SYMBOLS + chip,
                            len: 1,
                        }
                    } else if chip < DATA_SYMBOLS + 4 {
                        ChipSpan {
                            region: Region::Detection,
                            start: w * 4 + (chip - DATA_SYMBOLS),
                            len: 1,
                        }
                    } else {
                        ChipSpan {
                            region: Region::Correction,
                            start: w * 4 + (chip - DATA_SYMBOLS - 4),
                            len: 1,
                        }
                    }
                })
                .collect();
            layout.push(spans);
        }
        layout
    }

    fn encode(&self, data: &[u8]) -> Codeword {
        assert_eq!(data.len(), LINE_BYTES);
        let mut detection = Vec::with_capacity(self.detection_bytes());
        let mut correction = Vec::with_capacity(self.correction_bytes());
        for w in 0..WORDS_PER_LINE {
            let checks = self.word_checks(data, w);
            detection.extend_from_slice(&checks[..4]);
            correction.extend_from_slice(&checks[4..]);
        }
        Codeword {
            data: data.to_vec(),
            detection,
            correction,
        }
    }

    fn encode_lines(&self, lines: &[&[u8]]) -> Vec<Codeword> {
        crate::traits::record_batch(lines.len());
        let checks = self.batch_word_checks(lines);
        lines
            .iter()
            .enumerate()
            .map(|(i, data)| {
                let mut detection = Vec::with_capacity(self.detection_bytes());
                let mut correction = Vec::with_capacity(self.correction_bytes());
                for w in 0..WORDS_PER_LINE {
                    let c = &checks[i * WORDS_PER_LINE + w];
                    detection.extend_from_slice(&c[..4]);
                    correction.extend_from_slice(&c[4..]);
                }
                Codeword {
                    data: data.to_vec(),
                    detection,
                    correction,
                }
            })
            .collect()
    }

    fn detect(&self, data: &[u8], detection: &[u8]) -> DetectOutcome {
        for w in 0..WORDS_PER_LINE {
            let checks = self.word_checks(data, w);
            if checks[..4] != detection[w * 4..(w + 1) * 4] {
                return DetectOutcome::ErrorDetected;
            }
        }
        DetectOutcome::Clean
    }

    fn correct(
        &self,
        data: &mut [u8],
        detection: &[u8],
        correction: &[u8],
        erased_chip: Option<usize>,
    ) -> Result<CorrectOutcome, EccError> {
        if data.len() != LINE_BYTES {
            return Err(EccError::InputLength {
                expected: LINE_BYTES,
                got: data.len(),
            });
        }
        let mut repaired = 0usize;
        for w in 0..WORDS_PER_LINE {
            let mut cw = Self::assemble(data, detection, correction, w);
            let erasures: Vec<usize> = erased_chip.into_iter().collect();
            // Policy: correct up to two symbol errors (double chipkill),
            // keeping two syndromes' worth of guaranteed detection margin.
            match self.rs.decode(&mut cw, &erasures, Some(2)) {
                Ok(info) => {
                    repaired += info.corrected.len();
                    data[w * DATA_SYMBOLS..(w + 1) * DATA_SYMBOLS]
                        .copy_from_slice(&cw[..DATA_SYMBOLS]);
                }
                Err(RsError::DetectedUncorrectable) => return Err(EccError::Uncorrectable),
            }
        }
        crate::traits::record_correction(self.name(), repaired);
        Ok(CorrectOutcome {
            repaired_bytes: repaired,
        })
    }
}

impl CorrectionSplit for ChipkillDouble {
    fn correction_of_lines(&self, lines: &[&[u8]]) -> Vec<Vec<u8>> {
        crate::traits::record_batch(lines.len());
        let checks = self.batch_word_checks(lines);
        (0..lines.len())
            .map(|i| {
                let mut correction = Vec::with_capacity(self.correction_bytes());
                for w in 0..WORDS_PER_LINE {
                    correction.extend_from_slice(&checks[i * WORDS_PER_LINE + w][4..]);
                }
                correction
            })
            .collect()
    }

    fn detection_of_lines(&self, lines: &[&[u8]]) -> Vec<Vec<u8>> {
        crate::traits::record_batch(lines.len());
        let checks = self.batch_word_checks(lines);
        (0..lines.len())
            .map(|i| {
                let mut detection = Vec::with_capacity(self.detection_bytes());
                for w in 0..WORDS_PER_LINE {
                    detection.extend_from_slice(&checks[i * WORDS_PER_LINE + w][..4]);
                }
                detection
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::inject_chip_error;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn line(rng: &mut StdRng) -> Vec<u8> {
        (0..LINE_BYTES).map(|_| rng.gen()).collect()
    }

    #[test]
    fn overhead_split() {
        let d = ChipkillDouble::new();
        assert_eq!(d.chips_per_rank(), 40);
        assert!((d.baseline_overhead() - 0.25).abs() < 1e-12);
        assert!((d.correction_ratio() - 0.125).abs() < 1e-12);
    }

    #[test]
    fn two_simultaneous_chip_failures_corrected() {
        let d = ChipkillDouble::new();
        let mut rng = StdRng::seed_from_u64(60);
        for _ in 0..25 {
            let data = line(&mut rng);
            let cw = d.encode(&data);
            let c1 = rng.gen_range(0..40);
            let mut c2 = rng.gen_range(0..40);
            while c2 == c1 {
                c2 = rng.gen_range(0..40);
            }
            let mut noisy = cw.clone();
            inject_chip_error(&d, &mut noisy, c1, |b| *b = rng.gen());
            inject_chip_error(&d, &mut noisy, c2, |b| *b ^= 0x3c);
            let mut fixed = noisy.data.clone();
            d.correct(&mut fixed, &noisy.detection, &noisy.correction, None)
                .expect("double chipkill corrects two chips");
            assert_eq!(fixed, data);
        }
    }

    #[test]
    fn three_chip_failures_detected_uncorrectable() {
        let d = ChipkillDouble::new();
        let mut rng = StdRng::seed_from_u64(61);
        let data = line(&mut rng);
        let cw = d.encode(&data);
        let mut noisy = cw.clone();
        for c in [3, 11, 27] {
            inject_chip_error(&d, &mut noisy, c, |b| *b ^= 0x99);
        }
        let mut fixed = noisy.data.clone();
        assert_eq!(
            d.correct(&mut fixed, &noisy.detection, &noisy.correction, None),
            Err(EccError::Uncorrectable)
        );
    }

    #[test]
    fn detection_tier_sees_up_to_two_data_chip_errors() {
        let d = ChipkillDouble::new();
        let mut rng = StdRng::seed_from_u64(62);
        for _ in 0..30 {
            let data = line(&mut rng);
            let cw = d.encode(&data);
            let mut noisy = cw.data.clone();
            let c1 = rng.gen_range(0..DATA_SYMBOLS);
            let c2 = (c1 + 1 + rng.gen_range(0..DATA_SYMBOLS - 1)) % DATA_SYMBOLS;
            for w in 0..WORDS_PER_LINE {
                noisy[w * DATA_SYMBOLS + c1] ^= 0x41;
                noisy[w * DATA_SYMBOLS + c2] ^= 0x87;
            }
            assert_eq!(
                d.detect(&noisy, &cw.detection),
                DetectOutcome::ErrorDetected
            );
        }
    }

    #[test]
    fn erasure_hint_plus_two_errors() {
        // 2e + f <= 8 with e = 2, f = 1.
        let d = ChipkillDouble::new();
        let mut rng = StdRng::seed_from_u64(63);
        let data = line(&mut rng);
        let cw = d.encode(&data);
        let mut noisy = cw.clone();
        inject_chip_error(&d, &mut noisy, 7, |b| *b = rng.gen());
        inject_chip_error(&d, &mut noisy, 19, |b| *b ^= 0x11);
        inject_chip_error(&d, &mut noisy, 33, |b| *b ^= 0x22);
        let mut fixed = noisy.data.clone();
        d.correct(&mut fixed, &noisy.detection, &noisy.correction, Some(7))
            .unwrap();
        assert_eq!(fixed, data);
    }
}
