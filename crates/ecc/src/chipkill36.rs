//! The 36-device commercial chipkill-correct ECC (AMD-style).
//!
//! Each rank has 36 x4 DRAM devices; a memory access moves a 128-byte line.
//! Every ECC *word* consists of 36 eight-bit symbols — one per device (two
//! x4 beats) — of which 32 are data and 4 are Reed–Solomon check symbols
//! over GF(2^8). Per the paper (and Yoon & Erez), **two** of the four check
//! symbols suffice for error detection while the other **two** are needed
//! only for correcting detected errors; this SSC-DSD organization corrects
//! any single-symbol (= single-chip) error and is guaranteed to detect any
//! double-symbol error.
//!
//! A 128B line therefore contains 4 words: 8 detection bytes + 8 correction
//! bytes per line, a 12.5% capacity overhead split evenly between detection
//! and correction (Fig. 1 of the paper).

use crate::gf::Gf256;
use crate::rs::{ReedSolomon, RsError};
use crate::traits::{
    ChipSpan, Codeword, CorrectOutcome, CorrectionSplit, DetectOutcome, EccError, MemoryEcc, Region,
};

const DATA_SYMBOLS: usize = 32;
const CHECK_SYMBOLS: usize = 4;
const WORDS_PER_LINE: usize = 4;
const LINE_BYTES: usize = DATA_SYMBOLS * WORDS_PER_LINE; // 128

/// 36-device commercial chipkill correct (see module docs).
pub struct Chipkill36 {
    rs: ReedSolomon<Gf256>,
}

impl Default for Chipkill36 {
    fn default() -> Self {
        Self::new()
    }
}

impl Chipkill36 {
    /// The 36-device chipkill-correct code with its RS decoder.
    pub fn new() -> Self {
        Self {
            rs: ReedSolomon::new(CHECK_SYMBOLS),
        }
    }

    /// Compute the four check symbols of word `w` from a data line.
    fn word_checks(&self, data: &[u8], w: usize) -> Vec<u8> {
        let word = &data[w * DATA_SYMBOLS..(w + 1) * DATA_SYMBOLS];
        self.rs.encode(word)
    }

    /// Check symbols of every word of every line, lane-parallel: one
    /// batched RS encode over `lines.len() * WORDS_PER_LINE` words, so the
    /// generator nibble tables are built once for the whole batch.
    fn batch_word_checks(&self, lines: &[&[u8]]) -> Vec<Vec<u8>> {
        let mut words = Vec::with_capacity(lines.len() * WORDS_PER_LINE);
        for data in lines {
            assert_eq!(data.len(), LINE_BYTES);
            for w in 0..WORDS_PER_LINE {
                words.push(&data[w * DATA_SYMBOLS..(w + 1) * DATA_SYMBOLS]);
            }
        }
        self.rs.encode_lines(&words)
    }

    /// Assemble the full 36-symbol codeword of word `w`.
    fn assemble(
        data: &[u8],
        detection: &[u8],
        correction: &[u8],
        w: usize,
    ) -> [u8; DATA_SYMBOLS + CHECK_SYMBOLS] {
        let mut cw = [0u8; DATA_SYMBOLS + CHECK_SYMBOLS];
        cw[..DATA_SYMBOLS].copy_from_slice(&data[w * DATA_SYMBOLS..(w + 1) * DATA_SYMBOLS]);
        cw[DATA_SYMBOLS] = detection[w * 2];
        cw[DATA_SYMBOLS + 1] = detection[w * 2 + 1];
        cw[DATA_SYMBOLS + 2] = correction[w * 2];
        cw[DATA_SYMBOLS + 3] = correction[w * 2 + 1];
        cw
    }
}

impl MemoryEcc for Chipkill36 {
    fn name(&self) -> &'static str {
        "36-device commercial chipkill correct"
    }

    fn data_bytes(&self) -> usize {
        LINE_BYTES
    }

    fn detection_bytes(&self) -> usize {
        2 * WORDS_PER_LINE // first two check symbols of each word
    }

    fn correction_bytes(&self) -> usize {
        2 * WORDS_PER_LINE // last two check symbols of each word
    }

    fn chips_per_rank(&self) -> usize {
        36
    }

    fn chip_layout(&self) -> Vec<Vec<ChipSpan>> {
        let mut layout = Vec::with_capacity(36);
        for chip in 0..36 {
            let mut spans = Vec::with_capacity(WORDS_PER_LINE);
            for w in 0..WORDS_PER_LINE {
                let span = if chip < DATA_SYMBOLS {
                    ChipSpan {
                        region: Region::Data,
                        start: w * DATA_SYMBOLS + chip,
                        len: 1,
                    }
                } else if chip < DATA_SYMBOLS + 2 {
                    ChipSpan {
                        region: Region::Detection,
                        start: w * 2 + (chip - DATA_SYMBOLS),
                        len: 1,
                    }
                } else {
                    ChipSpan {
                        region: Region::Correction,
                        start: w * 2 + (chip - DATA_SYMBOLS - 2),
                        len: 1,
                    }
                };
                spans.push(span);
            }
            layout.push(spans);
        }
        layout
    }

    fn encode(&self, data: &[u8]) -> Codeword {
        assert_eq!(data.len(), LINE_BYTES);
        let mut detection = Vec::with_capacity(self.detection_bytes());
        let mut correction = Vec::with_capacity(self.correction_bytes());
        for w in 0..WORDS_PER_LINE {
            let checks = self.word_checks(data, w);
            detection.push(checks[0]);
            detection.push(checks[1]);
            correction.push(checks[2]);
            correction.push(checks[3]);
        }
        Codeword {
            data: data.to_vec(),
            detection,
            correction,
        }
    }

    fn encode_lines(&self, lines: &[&[u8]]) -> Vec<Codeword> {
        crate::traits::record_batch(lines.len());
        let checks = self.batch_word_checks(lines);
        lines
            .iter()
            .enumerate()
            .map(|(i, data)| {
                let mut detection = Vec::with_capacity(self.detection_bytes());
                let mut correction = Vec::with_capacity(self.correction_bytes());
                for w in 0..WORDS_PER_LINE {
                    let c = &checks[i * WORDS_PER_LINE + w];
                    detection.push(c[0]);
                    detection.push(c[1]);
                    correction.push(c[2]);
                    correction.push(c[3]);
                }
                Codeword {
                    data: data.to_vec(),
                    detection,
                    correction,
                }
            })
            .collect()
    }

    fn detect(&self, data: &[u8], detection: &[u8]) -> DetectOutcome {
        assert_eq!(data.len(), LINE_BYTES);
        assert_eq!(detection.len(), self.detection_bytes());
        for w in 0..WORDS_PER_LINE {
            let checks = self.word_checks(data, w);
            if checks[0] != detection[w * 2] || checks[1] != detection[w * 2 + 1] {
                return DetectOutcome::ErrorDetected;
            }
        }
        DetectOutcome::Clean
    }

    fn correct(
        &self,
        data: &mut [u8],
        detection: &[u8],
        correction: &[u8],
        erased_chip: Option<usize>,
    ) -> Result<CorrectOutcome, EccError> {
        if data.len() != LINE_BYTES {
            return Err(EccError::InputLength {
                expected: LINE_BYTES,
                got: data.len(),
            });
        }
        let mut repaired = 0usize;
        for w in 0..WORDS_PER_LINE {
            let mut cw = Self::assemble(data, detection, correction, w);
            // Chip index equals symbol position in the word codeword.
            let erasures: Vec<usize> = erased_chip.into_iter().collect();
            match self.rs.decode(&mut cw, &erasures, Some(1)) {
                Ok(info) => {
                    repaired += info.corrected.len();
                    data[w * DATA_SYMBOLS..(w + 1) * DATA_SYMBOLS]
                        .copy_from_slice(&cw[..DATA_SYMBOLS]);
                }
                Err(RsError::DetectedUncorrectable) => return Err(EccError::Uncorrectable),
            }
        }
        crate::traits::record_correction(self.name(), repaired);
        Ok(CorrectOutcome {
            repaired_bytes: repaired,
        })
    }
}

impl CorrectionSplit for Chipkill36 {
    fn correction_of_lines(&self, lines: &[&[u8]]) -> Vec<Vec<u8>> {
        crate::traits::record_batch(lines.len());
        let checks = self.batch_word_checks(lines);
        (0..lines.len())
            .map(|i| {
                let mut correction = Vec::with_capacity(self.correction_bytes());
                for w in 0..WORDS_PER_LINE {
                    let c = &checks[i * WORDS_PER_LINE + w];
                    correction.push(c[2]);
                    correction.push(c[3]);
                }
                correction
            })
            .collect()
    }

    fn detection_of_lines(&self, lines: &[&[u8]]) -> Vec<Vec<u8>> {
        crate::traits::record_batch(lines.len());
        let checks = self.batch_word_checks(lines);
        (0..lines.len())
            .map(|i| {
                let mut detection = Vec::with_capacity(self.detection_bytes());
                for w in 0..WORDS_PER_LINE {
                    let c = &checks[i * WORDS_PER_LINE + w];
                    detection.push(c[0]);
                    detection.push(c[1]);
                }
                detection
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::inject_chip_error;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_line(rng: &mut StdRng) -> Vec<u8> {
        (0..LINE_BYTES).map(|_| rng.gen()).collect()
    }

    #[test]
    fn clean_line_detects_clean() {
        let ck = Chipkill36::new();
        let mut rng = StdRng::seed_from_u64(1);
        let data = random_line(&mut rng);
        let cw = ck.encode(&data);
        assert_eq!(ck.detect(&cw.data, &cw.detection), DetectOutcome::Clean);
    }

    #[test]
    fn single_chip_error_detected_and_corrected() {
        let ck = Chipkill36::new();
        let mut rng = StdRng::seed_from_u64(2);
        for chip in 0..36 {
            let data = random_line(&mut rng);
            let mut cw = ck.encode(&data);
            inject_chip_error(&ck, &mut cw, chip, |b| *b ^= 0xA5);
            if chip < DATA_SYMBOLS {
                assert_eq!(
                    ck.detect(&cw.data, &cw.detection),
                    DetectOutcome::ErrorDetected,
                    "data chip {chip} error must be detected on the fly"
                );
            }
            let mut noisy = cw.data.clone();
            ck.correct(&mut noisy, &cw.detection, &cw.correction, None)
                .expect("single chip error must be correctable");
            assert_eq!(noisy, data);
        }
    }

    #[test]
    fn whole_chip_random_failure_corrected_with_erasure_hint() {
        let ck = Chipkill36::new();
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..20 {
            let chip = rng.gen_range(0..36);
            let data = random_line(&mut rng);
            let mut cw = ck.encode(&data);
            inject_chip_error(&ck, &mut cw, chip, |b| *b = rng.gen());
            let mut noisy = cw.data.clone();
            ck.correct(&mut noisy, &cw.detection, &cw.correction, Some(chip))
                .expect("erased chip must be correctable");
            assert_eq!(noisy, data);
        }
    }

    #[test]
    fn double_chip_error_is_detected_not_miscorrected() {
        let ck = Chipkill36::new();
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..50 {
            let data = random_line(&mut rng);
            let mut cw = ck.encode(&data);
            let c1 = rng.gen_range(0..32);
            let mut c2 = rng.gen_range(0..32);
            while c2 == c1 {
                c2 = rng.gen_range(0..32);
            }
            inject_chip_error(&ck, &mut cw, c1, |b| *b ^= 0x3c);
            inject_chip_error(&ck, &mut cw, c2, |b| *b ^= 0xd2);
            assert_eq!(
                ck.detect(&cw.data, &cw.detection),
                DetectOutcome::ErrorDetected
            );
            let mut noisy = cw.data.clone();
            assert_eq!(
                ck.correct(&mut noisy, &cw.detection, &cw.correction, None),
                Err(EccError::Uncorrectable),
                "SSC-DSD must refuse to correct a double-chip error"
            );
        }
    }

    #[test]
    fn erasure_plus_one_error_corrected() {
        // 2e + f <= 4 with e = 1, f = 1: a marked-faulty chip plus a new
        // error elsewhere is still correctable.
        let ck = Chipkill36::new();
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..20 {
            let data = random_line(&mut rng);
            let mut cw = ck.encode(&data);
            inject_chip_error(&ck, &mut cw, 7, |b| *b = rng.gen());
            inject_chip_error(&ck, &mut cw, 21, |b| *b ^= 0x11);
            let mut noisy = cw.data.clone();
            ck.correct(&mut noisy, &cw.detection, &cw.correction, Some(7))
                .unwrap();
            assert_eq!(noisy, data);
        }
    }

    #[test]
    fn overhead_matches_paper() {
        let ck = Chipkill36::new();
        assert_eq!(ck.data_bytes(), 128);
        assert_eq!(ck.detection_bytes(), 8);
        assert_eq!(ck.correction_bytes(), 8);
        assert!((ck.baseline_overhead() - 0.125).abs() < 1e-12);
        assert!((ck.correction_ratio() - 0.0625).abs() < 1e-12);
        assert_eq!(ck.chips_per_rank(), 36);
    }

    #[test]
    fn chip_layout_covers_every_byte_exactly_once() {
        let ck = Chipkill36::new();
        let layout = ck.chip_layout();
        let mut data_seen = vec![0u32; ck.data_bytes()];
        let mut det_seen = vec![0u32; ck.detection_bytes()];
        let mut corr_seen = vec![0u32; ck.correction_bytes()];
        for spans in &layout {
            for s in spans {
                let target = match s.region {
                    Region::Data => &mut data_seen,
                    Region::Detection => &mut det_seen,
                    Region::Correction => &mut corr_seen,
                };
                for t in target.iter_mut().skip(s.start).take(s.len) {
                    *t += 1;
                }
            }
        }
        assert!(data_seen.iter().all(|&c| c == 1));
        assert!(det_seen.iter().all(|&c| c == 1));
        assert!(corr_seen.iter().all(|&c| c == 1));
    }
}
