//! Systematic Reed–Solomon encoder and errors-and-erasures decoder,
//! generic over the symbol field.
//!
//! A code with `nroots` check symbols corrects `e` symbol errors and `f`
//! symbol erasures whenever `2e + f <= nroots`. Memory ECCs additionally
//! impose a *policy* cap on the number of corrected errors to preserve
//! detection guarantees — e.g. the 36-device commercial chipkill code has
//! four check symbols but corrects only one symbol error so that any two
//! symbol errors remain guaranteed-detectable (SSC-DSD). The cap is the
//! `max_errors` argument of [`ReedSolomon::decode`].
//!
//! Codeword layout: `codeword[0..k]` are data symbols, `codeword[k..n]` are
//! check symbols; symbol `i` is the coefficient of `x^(n-1-i)`, so data
//! occupies the high-degree coefficients (the usual systematic convention).

use crate::gf::{poly, Field, Gf256};
use crate::gfsimd::{self, NibbleCtx};

/// Symbols consumed per step by the slice-by-N syndrome kernel. Four breaks
/// the Horner multiply→add serial dependency into four independent table
/// lookups per step, which out-of-order cores overlap.
const SYND_SLICE: usize = 4;

/// Precomputed contexts of one syndrome root for the slice-by-N kernel.
#[derive(Clone, Copy)]
struct SlicedRoot<F: Field> {
    /// `mul_ctx(alpha^(j*N))`: the per-chunk accumulator stride.
    stride: F::MulCtx,
    /// `mul_ctx(alpha^(j*(t+1)))` for `t` in `0..N-1`: the weights of the
    /// chunk's symbols (the last symbol's weight is 1 and needs no context).
    offs: [F::MulCtx; SYND_SLICE - 1],
}

/// Outcome details of a successful decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodeInfo {
    /// Positions (indices into the codeword) whose symbols were corrected.
    /// Empty when the codeword was already clean.
    pub corrected: Vec<usize>,
    /// How many of the corrections were at caller-declared erasure positions.
    pub erasures_used: usize,
}

/// Decoder failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RsError {
    /// The error pattern exceeds the code's (or the policy's) correction
    /// capability; errors were detected but not corrected.
    DetectedUncorrectable,
}

impl std::fmt::Display for RsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RsError::DetectedUncorrectable => write!(f, "detected uncorrectable error pattern"),
        }
    }
}

impl std::error::Error for RsError {}

/// A systematic Reed–Solomon code with `nroots` check symbols over field `F`.
///
/// The same instance encodes/decodes codewords of any length
/// `n <= F::ORDER - 1` (shortened codes): length is taken from the slice.
///
/// ```
/// use ecc_codes::gf::Gf256;
/// use ecc_codes::rs::ReedSolomon;
///
/// let rs = ReedSolomon::<Gf256>::new(4); // corrects 2 symbol errors
/// let data = b"memory line payload.".to_vec();
/// let mut codeword = data.clone();
/// codeword.extend(rs.encode(&data));
///
/// codeword[3] ^= 0x55; // two symbol errors
/// codeword[17] ^= 0xAA;
/// rs.decode(&mut codeword, &[], None).unwrap();
/// assert_eq!(&codeword[..data.len()], &data[..]);
/// ```
#[derive(Clone)]
pub struct ReedSolomon<F: Field> {
    nroots: usize,
    /// Generator polynomial, lowest-degree-first, `genpoly.len() == nroots+1`.
    genpoly: Vec<F::Elem>,
    /// `mul_ctx(genpoly[j])`: the encode LFSR multiplies the feedback symbol
    /// by fixed generator coefficients, so their contexts are hoisted here.
    gen_ctx: Vec<F::MulCtx>,
    /// `mul_ctx(alpha^j)` for `j in 0..nroots`: the syndrome Horner loops
    /// multiply the accumulator by a fixed root power.
    synd_ctx: Vec<F::MulCtx>,
    /// Slice-by-N stride/offset contexts per root (see [`SlicedRoot`]).
    synd_sliced: Vec<SlicedRoot<F>>,
}

impl<F: Field> std::fmt::Debug for ReedSolomon<F> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReedSolomon")
            .field("nroots", &self.nroots)
            .field("genpoly", &self.genpoly)
            .finish()
    }
}

impl<F: Field> ReedSolomon<F> {
    /// Build a code with `nroots` check symbols; roots are
    /// `alpha^0 .. alpha^(nroots-1)`.
    pub fn new(nroots: usize) -> Self {
        assert!(nroots >= 1, "need at least one check symbol");
        assert!(nroots < F::ORDER - 1, "too many check symbols for field");
        let mut genpoly = vec![F::one()];
        for i in 0..nroots {
            // multiply by (x + alpha^i)  (char 2: -a == a)
            let root = F::alpha_pow(i as i64);
            genpoly = poly::mul::<F>(&genpoly, &[root, F::one()]);
        }
        debug_assert_eq!(genpoly.len(), nroots + 1);
        let gen_ctx = genpoly.iter().map(|&g| F::mul_ctx(g)).collect();
        let synd_ctx = (0..nroots)
            .map(|j| F::mul_ctx(F::alpha_pow(j as i64)))
            .collect();
        let synd_sliced = (0..nroots)
            .map(|j| {
                let mut offs = [F::mul_ctx(F::one()); SYND_SLICE - 1];
                for (t, o) in offs.iter_mut().enumerate() {
                    *o = F::mul_ctx(F::alpha_pow((j * (t + 1)) as i64));
                }
                SlicedRoot {
                    stride: F::mul_ctx(F::alpha_pow((j * SYND_SLICE) as i64)),
                    offs,
                }
            })
            .collect();
        Self {
            nroots,
            genpoly,
            gen_ctx,
            synd_ctx,
            synd_sliced,
        }
    }

    /// Number of check symbols.
    #[inline]
    pub fn nroots(&self) -> usize {
        self.nroots
    }

    /// Compute the `nroots` check symbols for `data` (any length
    /// `k <= F::ORDER - 1 - nroots`). Returned check symbols follow the data
    /// in the codeword.
    pub fn encode(&self, data: &[F::Elem]) -> Vec<F::Elem> {
        assert!(
            data.len() + self.nroots < F::ORDER,
            "codeword longer than field allows"
        );
        // Polynomial long division of data(x) * x^nroots by genpoly, keeping
        // the remainder. LFSR formulation.
        let mut parity = vec![F::zero(); self.nroots];
        for &d in data {
            let feedback = F::add(d, parity[0]);
            if !F::is_zero(feedback) {
                for j in 0..self.nroots - 1 {
                    parity[j] = F::add(
                        parity[j + 1],
                        F::ctx_mul(self.gen_ctx[self.nroots - 1 - j], feedback),
                    );
                }
                parity[self.nroots - 1] = F::ctx_mul(self.gen_ctx[0], feedback);
            } else {
                parity.rotate_left(1);
                parity[self.nroots - 1] = F::zero();
            }
        }
        parity
    }

    /// Compute syndromes `S_j = c(alpha^j)` for `j in 0..nroots`.
    /// All-zero syndromes <=> the codeword is a valid codeword.
    ///
    /// Evaluated slice-by-4 (`SYND_SLICE`): each step folds N symbols into the
    /// accumulator through precomputed stride/offset contexts, so the serial
    /// Horner dependency chain shrinks by N× while the result stays
    /// bit-identical (field arithmetic is exact) — see
    /// [`Self::syndromes_horner`] for the one-symbol-per-step baseline.
    pub fn syndromes(&self, codeword: &[F::Elem]) -> Vec<F::Elem> {
        let n = codeword.len();
        let head = n % SYND_SLICE;
        let mut synd = vec![F::zero(); self.nroots];
        for (j, s) in synd.iter_mut().enumerate() {
            let ctx = self.synd_ctx[j];
            let sl = &self.synd_sliced[j];
            // Leading remainder first, plain Horner, so every chunk below is
            // exactly SYND_SLICE symbols.
            let mut acc = F::zero();
            for &c in &codeword[..head] {
                acc = F::add(F::ctx_mul(ctx, acc), c);
            }
            let mut i = head;
            while i < n {
                // acc·alpha^(jN) ⊕ c_i·alpha^(j(N-1)) ⊕ ... ⊕ c_{i+N-1}
                let mut x = F::ctx_mul(sl.stride, acc);
                for t in 0..SYND_SLICE - 1 {
                    x = F::add(x, F::ctx_mul(sl.offs[SYND_SLICE - 2 - t], codeword[i + t]));
                }
                x = F::add(x, codeword[i + SYND_SLICE - 1]);
                acc = x;
                i += SYND_SLICE;
            }
            *s = acc;
        }
        synd
    }

    /// The per-symbol Horner syndrome loop — the pre-slicing kernel, kept
    /// callable so benchmarks and differential tests can compare against
    /// [`Self::syndromes`].
    pub fn syndromes_horner(&self, codeword: &[F::Elem]) -> Vec<F::Elem> {
        let mut synd = vec![F::zero(); self.nroots];
        for (j, s) in synd.iter_mut().enumerate() {
            // S_j = sum_i cw[i] * alpha^(j*(n-1-i)) — Horner over the
            // codeword read left (highest degree) to right, multiplying by
            // the precomputed context of the fixed root power alpha^j.
            let ctx = self.synd_ctx[j];
            let mut acc = F::zero();
            for &c in codeword {
                acc = F::add(F::ctx_mul(ctx, acc), c);
            }
            *s = acc;
        }
        synd
    }

    /// True if `codeword` is a valid codeword (no detected error).
    pub fn is_valid(&self, codeword: &[F::Elem]) -> bool {
        self.syndromes(codeword).iter().all(|&s| F::is_zero(s))
    }

    /// Errors-and-erasures decode in place.
    ///
    /// * `erasures`: caller-known bad positions (e.g. a chip flagged faulty);
    ///   the decoder treats them as erased regardless of content.
    /// * `max_errors`: policy cap on the number of corrected *non-erasure*
    ///   errors (`None` = full capability `(nroots - erasures)/2`).
    ///
    /// On success returns which positions were altered. On failure, the
    /// codeword is left unmodified and the pattern is reported detected-
    /// uncorrectable.
    pub fn decode(
        &self,
        codeword: &mut [F::Elem],
        erasures: &[usize],
        max_errors: Option<usize>,
    ) -> Result<DecodeInfo, RsError> {
        let n = codeword.len();
        assert!(n > self.nroots, "codeword must contain data symbols");
        for &e in erasures {
            assert!(e < n, "erasure position out of range");
        }
        if erasures.len() > self.nroots {
            return Err(RsError::DetectedUncorrectable);
        }

        let synd = self.syndromes(codeword);
        if synd.iter().all(|&s| F::is_zero(s)) {
            // Valid codeword. (Erased positions are consistent as-is.)
            return Ok(DecodeInfo {
                corrected: vec![],
                erasures_used: 0,
            });
        }

        // Erasure locator Gamma(x) = prod (1 + X_e x), X_e = alpha^(n-1-pos).
        let mut gamma = vec![F::one()];
        for &e in erasures {
            let x_e = F::alpha_pow((n - 1 - e) as i64);
            gamma = poly::mul::<F>(&gamma, &[F::one(), x_e]);
        }

        // Modified syndromes Xi(x) = S(x) * Gamma(x) mod x^nroots.
        let sx: Vec<F::Elem> = synd.clone();
        let mut xi = poly::mul::<F>(&sx, &gamma);
        xi.truncate(self.nroots);

        // Berlekamp–Massey on the modified syndromes for the error locator.
        let lambda = self.berlekamp_massey(&xi, erasures.len());
        let nu = poly::degree::<F>(&lambda);
        let cap = (self.nroots - erasures.len()) / 2;
        if nu > cap {
            return Err(RsError::DetectedUncorrectable);
        }
        if let Some(maxe) = max_errors {
            if nu > maxe {
                return Err(RsError::DetectedUncorrectable);
            }
        }

        // Combined locator Psi = Lambda * Gamma; roots give all bad positions.
        let psi = poly::mul::<F>(&lambda, &gamma);
        let psi_deg = poly::degree::<F>(&psi);

        // Chien search over the n positions of this (possibly shortened) code.
        let mut positions = Vec::with_capacity(psi_deg);
        for pos in 0..n {
            let exp = (n - 1 - pos) as i64;
            let x_inv = F::alpha_pow(-exp);
            if F::is_zero(poly::eval::<F>(&psi, x_inv)) {
                positions.push(pos);
            }
        }
        if positions.len() != psi_deg {
            // Locator does not split over the valid positions: uncorrectable.
            return Err(RsError::DetectedUncorrectable);
        }

        // Evaluator Omega(x) = S(x) * Psi(x) mod x^nroots.
        let mut omega = poly::mul::<F>(&sx, &psi);
        omega.truncate(self.nroots);
        let psi_prime = poly::derivative::<F>(&psi);

        // Forney algorithm: magnitude at locator X = alpha^(n-1-pos) is
        // X * Omega(X^-1) / Psi'(X^-1)   (fcr = 0).
        let mut corrected = Vec::with_capacity(positions.len());
        let mut patch = Vec::with_capacity(positions.len());
        for &pos in &positions {
            let exp = (n - 1 - pos) as i64;
            let x = F::alpha_pow(exp);
            let x_inv = F::alpha_pow(-exp);
            let denom = poly::eval::<F>(&psi_prime, x_inv);
            if F::is_zero(denom) {
                return Err(RsError::DetectedUncorrectable);
            }
            let num = F::mul(x, poly::eval::<F>(&omega, x_inv));
            let mag = F::div(num, denom);
            patch.push((pos, mag));
        }
        for &(pos, mag) in &patch {
            codeword[pos] = F::add(codeword[pos], mag);
            if !F::is_zero(mag) {
                corrected.push(pos);
            }
        }

        // Re-verify: a miscorrection beyond capability must not escape.
        if !self.is_valid(codeword) {
            // Roll back.
            for &(pos, mag) in &patch {
                codeword[pos] = F::add(codeword[pos], mag);
            }
            return Err(RsError::DetectedUncorrectable);
        }

        let erasures_used = corrected.iter().filter(|p| erasures.contains(p)).count();
        Ok(DecodeInfo {
            corrected,
            erasures_used,
        })
    }

    /// Berlekamp–Massey over the (modified) syndrome sequence, starting the
    /// iteration after `rho` erasures have consumed the first `rho` discrepancy
    /// steps.
    fn berlekamp_massey(&self, synd: &[F::Elem], rho: usize) -> Vec<F::Elem> {
        let nroots = self.nroots;
        let mut lambda: Vec<F::Elem> = vec![F::one()];
        let mut b: Vec<F::Elem> = vec![F::one()];
        let mut l: usize = 0;
        let mut m: usize = 1;
        let mut bcoef = F::one();

        for r in rho..nroots {
            // discrepancy d = sum_{i=0..l} lambda_i * synd[r - i]
            let mut d = F::zero();
            for i in 0..=l.min(r) {
                if i < lambda.len() {
                    d = F::add(d, F::mul(lambda[i], synd[r - i]));
                }
            }
            if F::is_zero(d) {
                m += 1;
            } else if 2 * l <= r - rho {
                let t = lambda.clone();
                // lambda = lambda - d/bcoef * x^m * b
                let coef = F::div(d, bcoef);
                let mut xb = vec![F::zero(); m];
                xb.extend_from_slice(&b);
                lambda = poly::add::<F>(&lambda, &poly::scale::<F>(&xb, coef));
                l = r + 1 - rho - l;
                b = t;
                bcoef = d;
                m = 1;
            } else {
                let coef = F::div(d, bcoef);
                let mut xb = vec![F::zero(); m];
                xb.extend_from_slice(&b);
                lambda = poly::add::<F>(&lambda, &poly::scale::<F>(&xb, coef));
                m += 1;
            }
        }
        // Trim trailing zeros.
        while lambda.len() > 1 && F::is_zero(*lambda.last().unwrap()) {
            lambda.pop();
        }
        lambda
    }
}

/// Lane-parallel batched kernels, GF(2^8) only: one byte of each line
/// occupies one SIMD lane, so the fixed-multiplier steps of the encode LFSR
/// and the syndrome recurrence run across the whole batch per instruction
/// (see [`crate::gfsimd`]). Outputs are bit-identical to the per-line
/// methods — the batched LFSR uses the branchless form
/// `parity[j] = parity[j+1] ⊕ g·feedback`, which equals the zero-feedback
/// rotate branch of [`ReedSolomon::encode`] because `g·0 = 0`.
impl ReedSolomon<Gf256> {
    /// Encode many equal-length data words at once; `out[i]` equals
    /// `self.encode(datas[i])` exactly.
    ///
    /// The generator-coefficient nibble tables are built once per call and
    /// amortized over every lane and symbol of the batch.
    pub fn encode_lines(&self, datas: &[&[u8]]) -> Vec<Vec<u8>> {
        let lanes = datas.len();
        if lanes == 0 {
            return vec![];
        }
        let k = datas[0].len();
        for d in datas {
            assert_eq!(d.len(), k, "batched encode needs equal-length words");
        }
        assert!(
            k + self.nroots < Gf256::ORDER,
            "codeword longer than field allows"
        );
        let nib: Vec<NibbleCtx> = self.genpoly.iter().map(|&g| NibbleCtx::new(g)).collect();
        // Column-major transpose: symbol position i of every lane is one
        // contiguous row, so each LFSR step streams whole slices.
        let mut cols = vec![0u8; k * lanes];
        for (l, d) in datas.iter().enumerate() {
            for (i, &b) in d.iter().enumerate() {
                cols[i * lanes + l] = b;
            }
        }
        let mut rows: Vec<Vec<u8>> = (0..self.nroots).map(|_| vec![0u8; lanes]).collect();
        let mut fb = vec![0u8; lanes];
        let last = self.nroots - 1;
        for i in 0..k {
            let col = &cols[i * lanes..(i + 1) * lanes];
            for (f, (&c, &p)) in fb.iter_mut().zip(col.iter().zip(&rows[0])) {
                *f = c ^ p;
            }
            // parity[j] = parity[j+1] ⊕ g[nroots-1-j]·fb, parity[last] = g[0]·fb.
            // rotate_left realizes the parity[j+1] shift without copying.
            rows.rotate_left(1);
            gfsimd::mul_slice(&nib[0], &fb, &mut rows[last]);
            for (j, row) in rows.iter_mut().take(last).enumerate() {
                gfsimd::mul_xor_slice(&nib[self.nroots - 1 - j], &fb, row);
            }
        }
        (0..lanes)
            .map(|l| rows.iter().map(|r| r[l]).collect())
            .collect()
    }

    /// Syndromes of many equal-length codewords at once; `out[i]` equals
    /// `self.syndromes(codewords[i])` exactly, computed lane-parallel: per
    /// root, the accumulator of every lane advances through one
    /// fixed-multiplier slice multiply per symbol position.
    pub fn syndromes_lines(&self, codewords: &[&[u8]]) -> Vec<Vec<u8>> {
        let lanes = codewords.len();
        if lanes == 0 {
            return vec![];
        }
        let n = codewords[0].len();
        for cw in codewords {
            assert_eq!(cw.len(), n, "batched syndromes need equal-length codewords");
        }
        let mut cols = vec![0u8; n * lanes];
        for (l, cw) in codewords.iter().enumerate() {
            for (i, &b) in cw.iter().enumerate() {
                cols[i * lanes + l] = b;
            }
        }
        let mut out = vec![vec![0u8; self.nroots]; lanes];
        let mut acc = vec![0u8; lanes];
        for j in 0..self.nroots {
            let nib = NibbleCtx::new(Gf256::alpha_pow(j as i64));
            acc.fill(0);
            for i in 0..n {
                gfsimd::mul_slice_inplace(&nib, &mut acc);
                for (a, &c) in acc.iter_mut().zip(&cols[i * lanes..(i + 1) * lanes]) {
                    *a ^= c;
                }
            }
            for (l, o) in out.iter_mut().enumerate() {
                o[j] = acc[l];
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gf::{Gf256, Gf65536};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn roundtrip_gf256(n_data: usize, nroots: usize, errors: usize, seed: u64) {
        let rs = ReedSolomon::<Gf256>::new(nroots);
        let mut rng = StdRng::seed_from_u64(seed);
        let data: Vec<u8> = (0..n_data).map(|_| rng.gen()).collect();
        let mut cw = data.clone();
        cw.extend(rs.encode(&data));
        assert!(rs.is_valid(&cw));

        let clean = cw.clone();
        // inject `errors` distinct symbol errors
        let mut positions = std::collections::HashSet::new();
        while positions.len() < errors {
            positions.insert(rng.gen_range(0..cw.len()));
        }
        for &p in &positions {
            let flip: u8 = rng.gen_range(1..=255);
            cw[p] ^= flip;
        }
        let info = rs.decode(&mut cw, &[], None).expect("should correct");
        assert_eq!(cw, clean);
        assert_eq!(info.corrected.len(), errors);
    }

    #[test]
    fn rs_corrects_up_to_capability() {
        for seed in 0..20 {
            roundtrip_gf256(32, 4, 1, seed);
            roundtrip_gf256(32, 4, 2, 100 + seed);
            roundtrip_gf256(16, 2, 1, 200 + seed);
            roundtrip_gf256(64, 8, 4, 300 + seed);
        }
    }

    #[test]
    fn rs_zero_errors_is_noop() {
        let rs = ReedSolomon::<Gf256>::new(4);
        let data: Vec<u8> = (0..32).map(|i| i as u8).collect();
        let mut cw = data.clone();
        cw.extend(rs.encode(&data));
        let info = rs.decode(&mut cw, &[], None).unwrap();
        assert!(info.corrected.is_empty());
    }

    #[test]
    fn rs_detects_beyond_capability() {
        let rs = ReedSolomon::<Gf256>::new(4);
        let mut rng = StdRng::seed_from_u64(42);
        let mut detected = 0;
        let trials = 200;
        for _ in 0..trials {
            let data: Vec<u8> = (0..32).map(|_| rng.gen()).collect();
            let mut cw = data.clone();
            cw.extend(rs.encode(&data));
            let clean = cw.clone();
            // 3 errors exceed the (nroots=4 => t=2) guarantee; the decoder must
            // either detect or (rarely, for >t) miscorrect — but our re-verify
            // plus locator-degree check makes silent corruption of *data*
            // without valid-codeword result impossible.
            for p in [3usize, 17, 29] {
                cw[p] ^= rng.gen_range(1..=255u8);
            }
            match rs.decode(&mut cw, &[], None) {
                Err(RsError::DetectedUncorrectable) => {
                    detected += 1;
                    assert_eq!(
                        &cw[..],
                        &{
                            let mut c = clean.clone();
                            c[3] = cw[3];
                            c[17] = cw[17];
                            c[29] = cw[29];
                            c
                        }[..]
                    );
                }
                Ok(_) => {
                    // Miscorrection to a *different* valid codeword is
                    // information-theoretically possible with 3 errors;
                    // it must at least be a valid codeword.
                    assert!(rs.is_valid(&cw));
                }
            }
        }
        // The vast majority of 3-error patterns must be detected.
        assert!(
            detected > trials * 9 / 10,
            "detected only {detected}/{trials}"
        );
    }

    #[test]
    fn rs_policy_cap_ssc_dsd() {
        // nroots = 4 with max_errors = 1: one error corrected, two errors
        // always detected (never miscorrected) — the SSC-DSD contract.
        let rs = ReedSolomon::<Gf256>::new(4);
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..300 {
            let data: Vec<u8> = (0..32).map(|_| rng.gen()).collect();
            let mut cw = data.clone();
            cw.extend(rs.encode(&data));
            let clean = cw.clone();
            let p1 = rng.gen_range(0..cw.len());
            let mut p2 = rng.gen_range(0..cw.len());
            while p2 == p1 {
                p2 = rng.gen_range(0..cw.len());
            }
            cw[p1] ^= rng.gen_range(1..=255u8);
            cw[p2] ^= rng.gen_range(1..=255u8);
            assert_eq!(
                rs.decode(&mut cw, &[], Some(1)),
                Err(RsError::DetectedUncorrectable),
                "double error must be detected under SSC-DSD policy"
            );
            // single error corrects
            let mut cw1 = clean.clone();
            cw1[p1] ^= 0x5a;
            rs.decode(&mut cw1, &[], Some(1)).unwrap();
            assert_eq!(cw1, clean);
        }
    }

    #[test]
    fn rs_erasure_only_decode() {
        // nroots erasures are correctable with zero errors.
        let rs = ReedSolomon::<Gf256>::new(4);
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..50 {
            let data: Vec<u8> = (0..20).map(|_| rng.gen()).collect();
            let mut cw = data.clone();
            cw.extend(rs.encode(&data));
            let clean = cw.clone();
            let mut era = vec![];
            while era.len() < 4 {
                let p = rng.gen_range(0..cw.len());
                if !era.contains(&p) {
                    era.push(p);
                }
            }
            for &p in &era {
                cw[p] = rng.gen();
            }
            rs.decode(&mut cw, &era, None).unwrap();
            assert_eq!(cw, clean);
        }
    }

    #[test]
    fn rs_errors_and_erasures_mixed() {
        // 2e + f <= nroots: with nroots = 4, one error + two erasures works.
        let rs = ReedSolomon::<Gf256>::new(4);
        let mut rng = StdRng::seed_from_u64(13);
        for _ in 0..50 {
            let data: Vec<u8> = (0..24).map(|_| rng.gen()).collect();
            let mut cw = data.clone();
            cw.extend(rs.encode(&data));
            let clean = cw.clone();
            cw[5] ^= rng.gen_range(1..=255u8);
            cw[9] = rng.gen();
            cw[20] = rng.gen();
            rs.decode(&mut cw, &[9, 20], None).unwrap();
            assert_eq!(cw, clean);
        }
    }

    #[test]
    fn rs_erased_position_with_correct_content() {
        // An erasure whose content happens to be right is fine.
        let rs = ReedSolomon::<Gf256>::new(2);
        let data: Vec<u8> = (0..16).map(|i| (i * 7) as u8).collect();
        let mut cw = data.clone();
        cw.extend(rs.encode(&data));
        let clean = cw.clone();
        let info = rs.decode(&mut cw, &[4], None).unwrap();
        assert_eq!(cw, clean);
        assert!(info.corrected.is_empty());
    }

    #[test]
    fn rs_gf65536_roundtrip() {
        // The Section VI-D code: 8 data symbols + 2 check symbols of 16 bits.
        let rs = ReedSolomon::<Gf65536>::new(2);
        let mut rng = StdRng::seed_from_u64(17);
        for _ in 0..100 {
            let data: Vec<u16> = (0..8).map(|_| rng.gen()).collect();
            let mut cw = data.clone();
            cw.extend(rs.encode(&data));
            let clean = cw.clone();
            let p = rng.gen_range(0..cw.len());
            cw[p] ^= rng.gen_range(1..=u16::MAX);
            rs.decode(&mut cw, &[], None).unwrap();
            assert_eq!(cw, clean);
            // erasure pair
            let mut cw2 = clean.clone();
            cw2[1] = rng.gen();
            cw2[6] = rng.gen();
            rs.decode(&mut cw2, &[1, 6], None).unwrap();
            assert_eq!(cw2, clean);
        }
    }

    #[test]
    fn sliced_syndromes_match_horner_gf256() {
        // Every codeword length around the slice width, several nroots:
        // the slice-by-N kernel must agree with per-symbol Horner exactly.
        let mut rng = StdRng::seed_from_u64(23);
        for nroots in [1usize, 2, 4, 8] {
            let rs = ReedSolomon::<Gf256>::new(nroots);
            for n in [1usize, 2, 3, 4, 5, 7, 8, 9, 18, 20, 36, 68, 255] {
                if n <= nroots {
                    continue;
                }
                for _ in 0..10 {
                    let cw: Vec<u8> = (0..n).map(|_| rng.gen()).collect();
                    assert_eq!(
                        rs.syndromes(&cw),
                        rs.syndromes_horner(&cw),
                        "nroots={nroots} n={n}"
                    );
                }
                // and on a valid codeword both must be all-zero
                let data: Vec<u8> = (0..n - nroots).map(|_| rng.gen()).collect();
                let mut cw = data.clone();
                cw.extend(rs.encode(&data));
                assert!(rs.syndromes(&cw).iter().all(|&s| s == 0));
                assert!(rs.syndromes_horner(&cw).iter().all(|&s| s == 0));
            }
        }
    }

    #[test]
    fn sliced_syndromes_match_horner_gf65536() {
        let mut rng = StdRng::seed_from_u64(29);
        let rs = ReedSolomon::<Gf65536>::new(2);
        for n in [3usize, 4, 5, 8, 10, 13] {
            for _ in 0..10 {
                let cw: Vec<u16> = (0..n).map(|_| rng.gen()).collect();
                assert_eq!(rs.syndromes(&cw), rs.syndromes_horner(&cw), "n={n}");
            }
        }
    }

    #[test]
    fn batched_encode_matches_per_line() {
        let mut rng = StdRng::seed_from_u64(31);
        for nroots in [1usize, 2, 4, 8] {
            let rs = ReedSolomon::<Gf256>::new(nroots);
            for k in [1usize, 16, 32, 64] {
                for lanes in [0usize, 1, 2, 3, 16, 33, 64] {
                    let words: Vec<Vec<u8>> = (0..lanes)
                        .map(|_| (0..k).map(|_| rng.gen()).collect())
                        .collect();
                    let refs: Vec<&[u8]> = words.iter().map(|w| w.as_slice()).collect();
                    let batched = rs.encode_lines(&refs);
                    assert_eq!(batched.len(), lanes);
                    for (w, got) in words.iter().zip(&batched) {
                        assert_eq!(got, &rs.encode(w), "nroots={nroots} k={k} lanes={lanes}");
                    }
                }
            }
        }
        // zero feedback path: all-zero words must match too
        let rs = ReedSolomon::<Gf256>::new(4);
        let zero = vec![0u8; 32];
        let refs: Vec<&[u8]> = vec![&zero, &zero];
        for checks in rs.encode_lines(&refs) {
            assert_eq!(checks, rs.encode(&zero));
        }
    }

    #[test]
    fn batched_syndromes_match_per_line() {
        let mut rng = StdRng::seed_from_u64(37);
        let rs = ReedSolomon::<Gf256>::new(4);
        for lanes in [0usize, 1, 5, 17, 64] {
            for n in [5usize, 20, 36, 68] {
                let cws: Vec<Vec<u8>> = (0..lanes)
                    .map(|_| (0..n).map(|_| rng.gen()).collect())
                    .collect();
                let refs: Vec<&[u8]> = cws.iter().map(|c| c.as_slice()).collect();
                let batched = rs.syndromes_lines(&refs);
                assert_eq!(batched.len(), lanes);
                for (cw, got) in cws.iter().zip(&batched) {
                    assert_eq!(got, &rs.syndromes(cw), "lanes={lanes} n={n}");
                }
            }
        }
    }

    #[test]
    fn rs_too_many_erasures_rejected() {
        let rs = ReedSolomon::<Gf256>::new(2);
        let data = vec![1u8; 10];
        let mut cw = data.clone();
        cw.extend(rs.encode(&data));
        cw[0] ^= 1;
        assert_eq!(
            rs.decode(&mut cw, &[0, 1, 2], None),
            Err(RsError::DetectedUncorrectable)
        );
    }
}
