//! # ecc-codes — functional memory ECC implementations
//!
//! This crate implements, bit-for-bit, the memory error-correction codes that
//! the ECC Parity paper (Jian & Kumar, SC 2014) evaluates or builds upon:
//!
//! * [`chipkill36`] — the 36-device commercial chipkill-correct code: a
//!   four-check-symbol Reed–Solomon code per word striped over 36 x4 DRAM
//!   devices (SSC-DSD: single-symbol correct, double-symbol detect).
//! * [`chipkill18`] — the 18-device commercial chipkill-correct code with two
//!   check symbols per word (SSC with reduced detection guarantees).
//! * [`chipkill_double`] — double chipkill correct (two device failures per
//!   rank), demonstrating the "double chipkill" generality the paper claims.
//! * [`lotecc`] — LOT-ECC in its nine-chip (`LOT-ECC9`) and five-chip
//!   (`LOT-ECC5`) per-rank implementations: tiered intra-chip checksums for
//!   detection/localization plus inter-chip parity for erasure correction.
//! * [`multiecc`] — Multi-ECC: per-line detection in a dedicated ECC device
//!   plus a shared multi-line correction code.
//! * [`raim`] — IBM-style RAIM DIMM-kill correct: data striped over four
//!   DIMMs plus one XOR parity DIMM, with intra-DIMM Reed–Solomon detection.
//!
//! All codes implement the [`traits::MemoryEcc`] interface, and every code
//! exposes its **detection bits / correction bits split** through
//! [`traits::CorrectionSplit`]; that split is precisely what the ECC Parity
//! optimization operates on (it stores only the XOR of the *correction* bits
//! of different channels).
//!
//! The underlying machinery — [`gf`] (GF(2^8) and GF(2^16) arithmetic),
//! [`gfsimd`] (SIMD 4-bit split-table fixed-multiplier kernels with runtime
//! CPU dispatch) and [`rs`] (a systematic Reed–Solomon encoder and
//! errors-and-erasures decoder with slice-by-4 and lane-parallel batched
//! evaluation) — is general and independently tested.

#![warn(missing_docs)]

pub mod buslayout;
pub mod checksum;
pub mod chipkill18;
pub mod chipkill36;
pub mod chipkill_double;
pub mod gf;
pub mod gfsimd;
pub mod lotecc;
pub mod multiecc;
pub mod overhead;
pub mod raim;
pub mod rs;
pub mod traits;

pub use buslayout::{BusLayout, WireSlot};
pub use chipkill18::Chipkill18;
pub use chipkill36::Chipkill36;
pub use chipkill_double::ChipkillDouble;
pub use lotecc::{LotEcc, LotEcc5Rs, LotEccVariant};
pub use multiecc::MultiEcc;
pub use overhead::{CapacityBreakdown, OverheadModel};
pub use raim::Raim;
pub use traits::{Codeword, CorrectOutcome, CorrectionSplit, DetectOutcome, EccError, MemoryEcc};
