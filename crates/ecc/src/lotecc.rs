//! LOT-ECC (Udipi et al., ISCA 2012): localized and tiered chipkill correct.
//!
//! Tier-1 (detection + localization): each chip stores an *intra-chip
//! checksum* over the bytes it contributes to a line; a mismatch both
//! detects an error and identifies the faulty chip. Tier-2 (correction):
//! a bitwise XOR parity across the per-chip segments, stored in ordinary
//! data memory, erasure-corrects the localized chip.
//!
//! Two rank organizations from the paper:
//!
//! * **LOT-ECC9** ("LOT-ECC I"): nine x8 chips per rank — 8 data chips
//!   (8B/line each) + 1 chip holding the 8 one-byte checksums.
//!   Correction = 8B XOR parity per line. Total overhead 12.5% + 14.1% ≈ 26.5%.
//! * **LOT-ECC5** ("LOT-ECC II"): four x16 data chips (16B/line each) + one
//!   half-capacity x8 chip holding the four two-byte checksums.
//!   Correction = 16B XOR parity per line, stored as one 72B ECC line per
//!   four 72B data lines ⇒ overhead (8·4+72)/(64·4) = 40.6% (paper, §II).
//!
//! [`LotEcc5Rs`] additionally implements the Section VI-D variant that swaps
//! the inter-device parity for a GF(2^16) Reed–Solomon code so address
//! decoder errors become detectable: two 16-bit check symbols per
//! eight-symbol word, the first stored in the x8 chip for on-the-fly
//! detection, the second (plus the intra-chip checksums) stored via ECC
//! parity.

use crate::checksum::{checksum16, checksum8};
use crate::gf::Gf65536;
use crate::rs::ReedSolomon;
use crate::traits::{
    ChipSpan, Codeword, CorrectOutcome, CorrectionSplit, DetectOutcome, EccError, MemoryEcc, Region,
};

/// Which LOT-ECC rank organization.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LotEccVariant {
    /// Four x16 data chips + one x8 checksum chip (the paper's LOT-ECC5).
    Five,
    /// Eight x8 data chips + one x8 checksum chip (the paper's LOT-ECC9).
    Nine,
}

/// LOT-ECC with checksum tier-1 and XOR-parity tier-2 (see module docs).
pub struct LotEcc {
    variant: LotEccVariant,
}

impl LotEcc {
    /// A LOT-ECC instance of the given tier-1 variant.
    pub fn new(variant: LotEccVariant) -> Self {
        Self { variant }
    }

    /// LOT-ECC5: five x16 devices per rank.
    pub fn five() -> Self {
        Self::new(LotEccVariant::Five)
    }

    /// LOT-ECC9: nine x8 devices per rank.
    pub fn nine() -> Self {
        Self::new(LotEccVariant::Nine)
    }

    /// Which tier-1 variant this instance implements.
    pub fn variant(&self) -> LotEccVariant {
        self.variant
    }

    /// Number of data chips.
    fn data_chips(&self) -> usize {
        match self.variant {
            LotEccVariant::Five => 4,
            LotEccVariant::Nine => 8,
        }
    }

    /// Bytes of the line each data chip supplies.
    fn seg_bytes(&self) -> usize {
        64 / self.data_chips()
    }

    /// Checksum bytes per chip.
    fn sum_bytes(&self) -> usize {
        match self.variant {
            LotEccVariant::Five => 2,
            LotEccVariant::Nine => 1,
        }
    }

    fn segment<'a>(&self, data: &'a [u8], chip: usize) -> &'a [u8] {
        let s = self.seg_bytes();
        &data[chip * s..(chip + 1) * s]
    }

    fn chip_checksum(&self, seg: &[u8]) -> Vec<u8> {
        match self.variant {
            LotEccVariant::Five => checksum16(seg).to_be_bytes().to_vec(),
            LotEccVariant::Nine => vec![checksum8(seg)],
        }
    }

    /// Which data chips' stored checksums disagree with their segments.
    fn mismatched_chips(&self, data: &[u8], detection: &[u8]) -> Vec<usize> {
        let sb = self.sum_bytes();
        (0..self.data_chips())
            .filter(|&c| {
                self.chip_checksum(self.segment(data, c)) != detection[c * sb..(c + 1) * sb]
            })
            .collect()
    }

    /// XOR parity across all data-chip segments.
    fn parity(&self, data: &[u8]) -> Vec<u8> {
        let s = self.seg_bytes();
        let mut p = vec![0u8; s];
        for c in 0..self.data_chips() {
            for (i, &b) in self.segment(data, c).iter().enumerate() {
                p[i] ^= b;
            }
        }
        p
    }
}

impl MemoryEcc for LotEcc {
    fn name(&self) -> &'static str {
        match self.variant {
            LotEccVariant::Five => "LOT-ECC5",
            LotEccVariant::Nine => "LOT-ECC9",
        }
    }

    fn data_bytes(&self) -> usize {
        64
    }

    fn detection_bytes(&self) -> usize {
        8 // per-chip checksums fill the dedicated ECC chip: 12.5%
    }

    fn correction_bytes(&self) -> usize {
        self.seg_bytes() // XOR parity of the segments
    }

    fn chips_per_rank(&self) -> usize {
        self.data_chips() + 1
    }

    fn chip_layout(&self) -> Vec<Vec<ChipSpan>> {
        let s = self.seg_bytes();
        let sb = self.sum_bytes();
        let nd = self.data_chips();
        let mut layout: Vec<Vec<ChipSpan>> = Vec::with_capacity(nd + 1);
        // Correction parity physically lives in data memory of the same
        // chips; attribute it evenly so a chip failure also hits the slice of
        // parity that chip stores.
        let corr_per_chip = self.correction_bytes() / nd;
        for c in 0..nd {
            layout.push(vec![
                ChipSpan {
                    region: Region::Data,
                    start: c * s,
                    len: s,
                },
                ChipSpan {
                    region: Region::Correction,
                    start: c * corr_per_chip,
                    len: corr_per_chip,
                },
            ]);
        }
        layout.push(
            (0..nd)
                .map(|c| ChipSpan {
                    region: Region::Detection,
                    start: c * sb,
                    len: sb,
                })
                .collect(),
        );
        layout
    }

    fn encode(&self, data: &[u8]) -> Codeword {
        assert_eq!(data.len(), 64);
        let mut detection = Vec::with_capacity(self.detection_bytes());
        for c in 0..self.data_chips() {
            detection.extend(self.chip_checksum(self.segment(data, c)));
        }
        Codeword {
            data: data.to_vec(),
            detection,
            correction: self.parity(data),
        }
    }

    fn detect(&self, data: &[u8], detection: &[u8]) -> DetectOutcome {
        if self.mismatched_chips(data, detection).is_empty() {
            DetectOutcome::Clean
        } else {
            DetectOutcome::ErrorDetected
        }
    }

    fn correct(
        &self,
        data: &mut [u8],
        detection: &[u8],
        correction: &[u8],
        erased_chip: Option<usize>,
    ) -> Result<CorrectOutcome, EccError> {
        if data.len() != 64 {
            return Err(EccError::InputLength {
                expected: 64,
                got: data.len(),
            });
        }
        let mut bad = self.mismatched_chips(data, detection);
        if let Some(ch) = erased_chip {
            if ch < self.data_chips() && !bad.contains(&ch) {
                bad.push(ch);
            }
        }

        if bad.is_empty() {
            // Either clean, or the checksum chip itself failed (then the data
            // is fine). Verify against the parity for confidence.
            return Ok(CorrectOutcome { repaired_bytes: 0 });
        }

        if bad.len() > 1 {
            // Multiple mismatches: either a multi-chip error (uncorrectable)
            // or a failure of the checksum chip making every comparison lie.
            // Disambiguate with the tier-2 parity: if the data is consistent
            // with the parity, the data is clean and only detection bits are
            // wrong.
            if self.parity(data) == correction {
                return Ok(CorrectOutcome { repaired_bytes: 0 });
            }
            return Err(EccError::Uncorrectable);
        }

        // Exactly one faulty data chip: erasure-correct it from the parity.
        let victim = bad[0];
        let s = self.seg_bytes();
        let mut rebuilt = correction.to_vec();
        for c in 0..self.data_chips() {
            if c == victim {
                continue;
            }
            for (i, &b) in self.segment(data, c).iter().enumerate() {
                rebuilt[i] ^= b;
            }
        }
        // Verify the reconstruction against the stored checksum (unless the
        // caller erased the chip on external knowledge and the checksum chip
        // may itself be stale).
        let sb = self.sum_bytes();
        let expect = &detection[victim * sb..(victim + 1) * sb];
        if self.chip_checksum(&rebuilt) != expect && erased_chip != Some(victim) {
            return Err(EccError::Uncorrectable);
        }
        let changed = self
            .segment(data, victim)
            .iter()
            .zip(&rebuilt)
            .filter(|(a, b)| a != b)
            .count();
        data[victim * s..(victim + 1) * s].copy_from_slice(&rebuilt);
        crate::traits::record_correction(self.name(), changed);
        Ok(CorrectOutcome {
            repaired_bytes: changed,
        })
    }
}

impl CorrectionSplit for LotEcc {}

/// Section VI-D variant of LOT-ECC5: a GF(2^16) Reed–Solomon inter-device
/// code replaces the XOR parity so that address decoder errors (which
/// intra-chip checksums cannot see) are reliably detected.
///
/// Per eight-symbol (16B) word striped over the four x16 chips, the code has
/// two 16-bit check symbols. Check symbol #1 is stored in the x8 chip and
/// compared on every read (detection); check symbol #2 and the four
/// intra-chip checksums are correction bits (stored via ECC parity).
pub struct LotEcc5Rs {
    rs: ReedSolomon<Gf65536>,
}

const RS5_WORDS: usize = 4; // 4 words of 8 sixteen-bit symbols = 64B
const RS5_SYMS: usize = 8;

impl Default for LotEcc5Rs {
    fn default() -> Self {
        Self::new()
    }
}

impl LotEcc5Rs {
    /// The RS inter-device LOT-ECC5 variant (paper §VI-D).
    pub fn new() -> Self {
        Self {
            rs: ReedSolomon::new(2),
        }
    }

    /// Data symbols of word `w`; symbol `j` lives on chip `j % 4`.
    fn word_symbols(data: &[u8], w: usize) -> [u16; RS5_SYMS] {
        let mut out = [0u16; RS5_SYMS];
        for (j, o) in out.iter_mut().enumerate() {
            let off = w * 16 + j * 2;
            *o = u16::from_be_bytes([data[off], data[off + 1]]);
        }
        out
    }

    fn write_word_symbols(data: &mut [u8], w: usize, syms: &[u16]) {
        for (j, &s) in syms.iter().enumerate() {
            let off = w * 16 + j * 2;
            data[off..off + 2].copy_from_slice(&s.to_be_bytes());
        }
    }

    fn chip_of_symbol(j: usize) -> usize {
        j % 4
    }

    /// The 16 data bytes chip `c` contributes to the line (symbols j with
    /// j % 4 == c across all words).
    fn chip_bytes(data: &[u8], c: usize) -> Vec<u8> {
        let mut out = Vec::with_capacity(16);
        for w in 0..RS5_WORDS {
            for j in 0..RS5_SYMS {
                if Self::chip_of_symbol(j) == c {
                    let off = w * 16 + j * 2;
                    out.push(data[off]);
                    out.push(data[off + 1]);
                }
            }
        }
        out
    }
}

impl MemoryEcc for LotEcc5Rs {
    fn name(&self) -> &'static str {
        "LOT-ECC5 (RS inter-device variant, §VI-D)"
    }

    fn data_bytes(&self) -> usize {
        64
    }

    fn detection_bytes(&self) -> usize {
        2 * RS5_WORDS // first RS check symbol per word, in the x8 chip
    }

    fn correction_bytes(&self) -> usize {
        2 * RS5_WORDS + 2 * 4 // second check symbol per word + 4 chip checksums
    }

    fn chips_per_rank(&self) -> usize {
        5
    }

    fn chip_layout(&self) -> Vec<Vec<ChipSpan>> {
        let mut layout: Vec<Vec<ChipSpan>> = Vec::with_capacity(5);
        for c in 0..4 {
            let mut spans = Vec::new();
            for w in 0..RS5_WORDS {
                for j in 0..RS5_SYMS {
                    if Self::chip_of_symbol(j) == c {
                        spans.push(ChipSpan {
                            region: Region::Data,
                            start: w * 16 + j * 2,
                            len: 2,
                        });
                    }
                }
            }
            layout.push(spans);
        }
        layout.push(
            (0..RS5_WORDS)
                .map(|w| ChipSpan {
                    region: Region::Detection,
                    start: w * 2,
                    len: 2,
                })
                .collect(),
        );
        layout
    }

    fn encode(&self, data: &[u8]) -> Codeword {
        assert_eq!(data.len(), 64);
        let mut detection = Vec::with_capacity(self.detection_bytes());
        let mut correction = Vec::with_capacity(self.correction_bytes());
        for w in 0..RS5_WORDS {
            let syms = Self::word_symbols(data, w);
            let checks = self.rs.encode(&syms);
            detection.extend(checks[0].to_be_bytes());
            correction.extend(checks[1].to_be_bytes());
        }
        for c in 0..4 {
            correction.extend(checksum16(&Self::chip_bytes(data, c)).to_be_bytes());
        }
        Codeword {
            data: data.to_vec(),
            detection,
            correction,
        }
    }

    fn detect(&self, data: &[u8], detection: &[u8]) -> DetectOutcome {
        for w in 0..RS5_WORDS {
            let syms = Self::word_symbols(data, w);
            let checks = self.rs.encode(&syms);
            if checks[0].to_be_bytes() != detection[w * 2..w * 2 + 2] {
                return DetectOutcome::ErrorDetected;
            }
        }
        DetectOutcome::Clean
    }

    fn correct(
        &self,
        data: &mut [u8],
        detection: &[u8],
        correction: &[u8],
        erased_chip: Option<usize>,
    ) -> Result<CorrectOutcome, EccError> {
        if data.len() != 64 {
            return Err(EccError::InputLength {
                expected: 64,
                got: data.len(),
            });
        }
        // Localize via the intra-chip checksums in the correction bits.
        let mut bad: Vec<usize> = (0..4)
            .filter(|&c| {
                let stored = &correction[2 * RS5_WORDS + c * 2..2 * RS5_WORDS + c * 2 + 2];
                checksum16(&Self::chip_bytes(data, c)).to_be_bytes() != stored
            })
            .collect();
        if let Some(ch) = erased_chip {
            if ch < 4 && !bad.contains(&ch) {
                bad.push(ch);
            }
        }
        if bad.len() > 1 {
            return Err(EccError::Uncorrectable);
        }

        let mut repaired = 0usize;
        for w in 0..RS5_WORDS {
            let syms = Self::word_symbols(data, w);
            let mut cw: Vec<u16> = syms.to_vec();
            cw.push(u16::from_be_bytes([detection[w * 2], detection[w * 2 + 1]]));
            cw.push(u16::from_be_bytes([
                correction[w * 2],
                correction[w * 2 + 1],
            ]));
            let erasures: Vec<usize> = if let Some(&c) = bad.first() {
                (0..RS5_SYMS)
                    .filter(|&j| Self::chip_of_symbol(j) == c)
                    .collect()
            } else {
                vec![]
            };
            // A localized x16 chip erases two symbols per word; two check
            // symbols erasure-correct both. Unlocalized single-symbol errors
            // are still correctable (2e <= 2).
            let before = cw.clone();
            match self.rs.decode(&mut cw, &erasures, Some(1)) {
                Ok(_) => {
                    repaired += cw
                        .iter()
                        .zip(&before)
                        .take(RS5_SYMS)
                        .filter(|(a, b)| a != b)
                        .count()
                        * 2;
                    Self::write_word_symbols(data, w, &cw[..RS5_SYMS]);
                }
                Err(_) => return Err(EccError::Uncorrectable),
            }
        }
        crate::traits::record_correction(self.name(), repaired);
        Ok(CorrectOutcome {
            repaired_bytes: repaired,
        })
    }
}

impl CorrectionSplit for LotEcc5Rs {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::inject_chip_error;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn line(rng: &mut StdRng) -> Vec<u8> {
        (0..64).map(|_| rng.gen()).collect()
    }

    #[test]
    fn lot5_overhead_constants() {
        let l = LotEcc::five();
        assert_eq!(l.detection_bytes(), 8);
        assert_eq!(l.correction_bytes(), 16);
        assert!((l.correction_ratio() - 0.25).abs() < 1e-12);
        assert_eq!(l.chips_per_rank(), 5);
    }

    #[test]
    fn lot9_overhead_constants() {
        let l = LotEcc::nine();
        assert_eq!(l.detection_bytes(), 8);
        assert_eq!(l.correction_bytes(), 8);
        assert!((l.correction_ratio() - 0.125).abs() < 1e-12);
        assert_eq!(l.chips_per_rank(), 9);
    }

    #[test]
    fn lot5_single_data_chip_corrected() {
        let l = LotEcc::five();
        let mut rng = StdRng::seed_from_u64(20);
        for chip in 0..4 {
            let data = line(&mut rng);
            let cw = l.encode(&data);
            let mut noisy = cw.data.clone();
            for b in &mut noisy[chip * 16..(chip + 1) * 16] {
                *b = rng.gen();
            }
            assert_eq!(
                l.detect(&noisy, &cw.detection),
                DetectOutcome::ErrorDetected
            );
            l.correct(&mut noisy, &cw.detection, &cw.correction, None)
                .expect("single chip erasure must correct");
            assert_eq!(noisy, data);
        }
    }

    #[test]
    fn lot9_single_data_chip_corrected() {
        let l = LotEcc::nine();
        let mut rng = StdRng::seed_from_u64(21);
        for chip in 0..8 {
            let data = line(&mut rng);
            let cw = l.encode(&data);
            let mut noisy = cw.data.clone();
            for b in &mut noisy[chip * 8..(chip + 1) * 8] {
                *b ^= 0x5A;
            }
            l.correct(&mut noisy, &cw.detection, &cw.correction, None)
                .unwrap();
            assert_eq!(noisy, data);
        }
    }

    #[test]
    fn lot5_checksum_chip_failure_leaves_data_intact() {
        let l = LotEcc::five();
        let mut rng = StdRng::seed_from_u64(22);
        let data = line(&mut rng);
        let mut cw = l.encode(&data);
        // Kill the checksum chip (index 4): detection bits scrambled.
        inject_chip_error(&l, &mut cw, 4, |b| *b = rng.gen());
        let mut noisy = cw.data.clone();
        let out = l
            .correct(&mut noisy, &cw.detection, &cw.correction, None)
            .expect("checksum-chip failure must not corrupt data");
        assert_eq!(out.repaired_bytes, 0);
        assert_eq!(noisy, data);
    }

    #[test]
    fn lot_two_chip_failure_uncorrectable() {
        for l in [LotEcc::five(), LotEcc::nine()] {
            let mut rng = StdRng::seed_from_u64(23);
            let data = line(&mut rng);
            let cw = l.encode(&data);
            let s = 64 / (l.chips_per_rank() - 1);
            let mut noisy = cw.data.clone();
            for b in &mut noisy[0..s] {
                *b ^= 0x0f;
            }
            for b in &mut noisy[s..2 * s] {
                *b ^= 0xf0;
            }
            assert_eq!(
                l.correct(&mut noisy, &cw.detection, &cw.correction, None),
                Err(EccError::Uncorrectable)
            );
        }
    }

    #[test]
    fn lot5_erasure_hint_skips_checksum_verify() {
        let l = LotEcc::five();
        let mut rng = StdRng::seed_from_u64(24);
        let data = line(&mut rng);
        let cw = l.encode(&data);
        let mut noisy = cw.data.clone();
        for b in &mut noisy[32..48] {
            *b = rng.gen();
        }
        l.correct(&mut noisy, &cw.detection, &cw.correction, Some(2))
            .unwrap();
        assert_eq!(noisy, data);
    }

    #[test]
    fn lot5rs_detects_and_corrects_chip_failure() {
        let l = LotEcc5Rs::new();
        let mut rng = StdRng::seed_from_u64(25);
        for chip in 0..4 {
            let data = line(&mut rng);
            let cw = l.encode(&data);
            let mut noisy = cw.data.clone();
            // corrupt every byte the chip owns
            for w in 0..4 {
                for j in 0..8 {
                    if j % 4 == chip {
                        let off = w * 16 + j * 2;
                        noisy[off] ^= 0xde;
                        noisy[off + 1] ^= 0xad;
                    }
                }
            }
            assert_eq!(
                l.detect(&noisy, &cw.detection),
                DetectOutcome::ErrorDetected,
                "inter-chip RS detection must see a whole-chip error"
            );
            let mut fixed = noisy.clone();
            l.correct(&mut fixed, &cw.detection, &cw.correction, None)
                .unwrap();
            assert_eq!(fixed, data);
        }
    }

    #[test]
    fn lot5rs_detects_address_error_pattern() {
        // An address decoder error returns a *different but internally
        // checksum-consistent* line from one chip. Intra-chip checksums by
        // definition can miss it if the checksums travel with the data; the
        // inter-chip RS detection symbol must catch the inconsistency.
        let l = LotEcc5Rs::new();
        let mut rng = StdRng::seed_from_u64(26);
        let a = line(&mut rng);
        let b = line(&mut rng);
        let cw_a = l.encode(&a);
        // chip 1 of line A answers with chip 1 of line B
        let mut noisy = a.clone();
        for w in 0..4 {
            for j in 0..8 {
                if j % 4 == 1 {
                    let off = w * 16 + j * 2;
                    noisy[off] = b[off];
                    noisy[off + 1] = b[off + 1];
                }
            }
        }
        if noisy != a {
            assert_eq!(
                l.detect(&noisy, &cw_a.detection),
                DetectOutcome::ErrorDetected
            );
        }
    }

    #[test]
    fn lot5rs_overheads() {
        let l = LotEcc5Rs::new();
        assert_eq!(l.detection_bytes(), 8);
        assert_eq!(l.correction_bytes(), 16);
        // Same split as baseline LOT-ECC5: no rank or capacity change (§VI-D).
        let base = LotEcc::five();
        assert_eq!(l.detection_bytes(), base.detection_bytes());
        assert_eq!(l.correction_bytes(), base.correction_bytes());
    }
}
