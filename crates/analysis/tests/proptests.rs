//! Property-based tests of the reliability/capacity analyses.

use ecc_codes::OverheadModel;
use mem_faults::SystemGeometry;
use proptest::prelude::*;
use resilience_analysis::capacity::table3_rows;
use resilience_analysis::scrub::{analytic_window_probability, scrub_bandwidth_fraction};
use resilience_analysis::{analytic_mtbf_hours, hpc_stall_fraction, HpcConfig};

proptest! {
    #[test]
    fn window_probability_is_a_probability_and_monotone(
        fit in 1.0f64..5_000.0,
        w1 in 0.1f64..100.0,
        w2 in 0.1f64..100.0,
    ) {
        let geo = SystemGeometry::paper_reliability();
        let p1 = analytic_window_probability(&geo, fit, w1.min(w2));
        let p2 = analytic_window_probability(&geo, fit, w1.max(w2));
        prop_assert!((0.0..=1.0).contains(&p1));
        prop_assert!((0.0..=1.0).contains(&p2));
        prop_assert!(p1 <= p2 + 1e-12, "longer windows catch more: {p1} vs {p2}");
    }

    #[test]
    fn mtbf_monotone_decreasing_in_fit(fa in 1.0f64..1_000.0, fb in 1.0f64..1_000.0) {
        let geo = SystemGeometry::paper_reliability();
        let lo = analytic_mtbf_hours(&geo, fa.min(fb));
        let hi = analytic_mtbf_hours(&geo, fa.max(fb));
        prop_assert!(hi <= lo + 1e-9);
    }

    #[test]
    fn parity_overhead_decreases_with_channels_and_increases_with_r(
        r in 0.05f64..1.0,
        n1 in 2usize..16,
        n2 in 2usize..16,
    ) {
        let lo = OverheadModel::ecc_parity(r, n1.max(n2)).total();
        let hi = OverheadModel::ecc_parity(r, n1.min(n2)).total();
        prop_assert!(lo <= hi + 1e-12, "more channels, less overhead");
        let a = OverheadModel::ecc_parity(r * 0.5, 8).total();
        let b = OverheadModel::ecc_parity(r, 8).total();
        prop_assert!(a <= b + 1e-12, "bigger R, more overhead");
    }

    #[test]
    fn eol_overhead_never_below_static(
        r in 0.05f64..1.0,
        n in 2usize..16,
        frac in 0.0f64..0.2,
    ) {
        let s = OverheadModel::ecc_parity(r, n).total();
        let e = OverheadModel::ecc_parity_eol(r, n, frac).total();
        prop_assert!(e + 1e-12 >= s);
    }

    #[test]
    fn scrub_bandwidth_scales_linearly(cap in 1e9f64..1e13, hours in 0.1f64..200.0) {
        let f1 = scrub_bandwidth_fraction(cap, hours, 1e11);
        let f2 = scrub_bandwidth_fraction(2.0 * cap, hours, 1e11);
        prop_assert!((f2 / f1 - 2.0).abs() < 1e-9);
        let f3 = scrub_bandwidth_fraction(cap, 2.0 * hours, 1e11);
        prop_assert!((f1 / f3 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn hpc_stall_fraction_bounded_and_monotone_in_nic(nic in 1e8f64..1e11) {
        let mut cfg = HpcConfig::paper();
        cfg.nic_bytes_per_sec = nic;
        let f = hpc_stall_fraction(&cfg);
        prop_assert!((0.0..1.0).contains(&f));
        cfg.nic_bytes_per_sec = nic * 2.0;
        prop_assert!(hpc_stall_fraction(&cfg) <= f);
    }
}

#[test]
fn table3_rows_are_internally_consistent() {
    for row in table3_rows(0, 0) {
        assert!(row.static_overhead > 0.0 && row.static_overhead < 0.5);
        if let Some(eol) = row.eol_avg {
            assert!(eol >= row.static_overhead);
        }
    }
}
