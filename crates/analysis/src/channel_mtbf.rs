//! Fig 2: mean time between faults in different channels vs DRAM fault
//! rate, for an eight-channel system with four ranks per channel and nine
//! chips per rank, assuming exponential failure times.
//!
//! Analytically, faults arrive over the whole system as a Poisson process
//! of rate `Λ = chips · FIT · 1e-9` per hour. From any fault, the wait
//! until the next fault *in a different channel* is exponential with rate
//! `Λ · (C-1)/C` (each arrival lands in a different channel with
//! probability `(C-1)/C`), giving mean `C / (Λ · (C-1))`.

use mem_faults::{FitTable, LifetimeSim, SystemGeometry};

/// Closed-form mean time (hours) between faults in different channels.
pub fn analytic_mtbf_hours(geo: &SystemGeometry, fit_per_chip: f64) -> f64 {
    let lambda = geo.total_chips() as f64 * fit_per_chip * 1e-9;
    let c = geo.channels as f64;
    c / (lambda * (c - 1.0))
}

/// One Fig 2 point: FIT rate → (analytic days, Monte Carlo days).
pub fn fig2_point(geo: &SystemGeometry, fit_per_chip: f64, trials: usize, seed: u64) -> (f64, f64) {
    let analytic_days = analytic_mtbf_hours(geo, fit_per_chip) / 24.0;
    let sim = LifetimeSim::new(*geo, FitTable::DDR3_AVERAGE.scaled_to(fit_per_chip));
    let mc_days = sim.mean_time_between_channel_faults(trials, seed) / 24.0;
    (analytic_days, mc_days)
}

/// The Fig 2 series over a FIT sweep. Returns (fit, analytic_days, mc_days).
pub fn fig2_series(fits: &[f64], trials: usize, seed: u64) -> Vec<(f64, f64, f64)> {
    let geo = SystemGeometry::paper_reliability();
    fits.iter()
        .map(|&f| {
            let (a, m) = fig2_point(&geo, f, trials, seed);
            (f, a, m)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn analytic_matches_hand_calculation() {
        // 288 chips at 44 FIT: Λ = 1.267e-5 /h; mean between-channel gap
        // = 8/(7Λ) = 90,164 h ≈ 3,757 days — "order of 100's of days" holds
        // as rates climb toward the figure's upper range.
        let geo = SystemGeometry::paper_reliability();
        let h = analytic_mtbf_hours(&geo, 44.0);
        assert!((h - 90_164.0).abs() / 90_164.0 < 0.01, "got {h}");
    }

    #[test]
    fn mtbf_scales_inversely_with_fit() {
        let geo = SystemGeometry::paper_reliability();
        let a = analytic_mtbf_hours(&geo, 50.0);
        let b = analytic_mtbf_hours(&geo, 200.0);
        assert!((a / b - 4.0).abs() < 1e-9);
    }

    #[test]
    fn monte_carlo_agrees_with_analytic() {
        let geo = SystemGeometry::paper_reliability();
        // High rate so the MC converges quickly.
        let (analytic, mc) = fig2_point(&geo, 400.0, 300, 42);
        let rel = (mc - analytic).abs() / analytic;
        assert!(rel < 0.15, "analytic {analytic} vs MC {mc} ({rel:.2} rel)");
    }

    #[test]
    fn more_channels_shorten_the_between_channel_gap() {
        let g8 = SystemGeometry::paper_reliability();
        let g2 = g8.with_channels(2);
        // Same per-channel composition: the 8-channel system has 4x the
        // chips AND a higher different-channel probability.
        assert!(analytic_mtbf_hours(&g8, 44.0) < analytic_mtbf_hours(&g2, 44.0));
    }
}
