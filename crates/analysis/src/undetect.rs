//! §VI-D: undetectable-error-rate estimate for the RS-based
//! LOT-ECC5 + ECC Parity encoding.
//!
//! For banks *not yet recorded faulty*, error detection rests on one 16-bit
//! Reed–Solomon check symbol per word stored in the x8 chip. A single check
//! symbol cannot guarantee detection of a two-symbol error (the two data
//! symbols a faulty x16 device contributes per word), so a random
//! corruption escapes with probability `2^-16` per word check. A bank is
//! recorded faulty after a small number of detected errors (the counter
//! threshold), which bounds how many chances a fault gets.
//!
//! The paper's estimate, "pessimistically assuming that all faults are
//! address decoder faults which manifest as random bit flips": once per
//! ~300,000 years for an eight-channel system.

use mem_faults::{FitTable, SystemGeometry, HOURS_PER_YEAR};

/// Parameters of the §VI-D estimate.
#[derive(Debug, Clone, Copy)]
pub struct UndetectConfig {
    pub geometry: SystemGeometry,
    pub fit: FitTable,
    /// Erroneous reads a fault serves before its bank pair saturates the
    /// counter and flips to the guaranteed-detecting faulty-bank path.
    pub errors_before_marked: f64,
    /// Escape probability of one random word error past the single on-the-
    /// fly check symbol (16-bit symbol => 2^-16).
    pub miss_probability: f64,
}

impl UndetectConfig {
    pub fn paper() -> UndetectConfig {
        UndetectConfig {
            geometry: SystemGeometry::paper_reliability(),
            fit: FitTable::DDR3_AVERAGE,
            errors_before_marked: 4.0,
            miss_probability: (2.0f64).powi(-16),
        }
    }
}

/// Mean years between undetected errors across all not-yet-marked banks.
pub fn undetectable_years_estimate(cfg: &UndetectConfig) -> f64 {
    // All faults pessimistically produce detectable-only-by-inter-chip-code
    // (address-style) errors.
    let faults_per_hour = cfg.geometry.total_chips() as f64 * cfg.fit.total() * 1e-9;
    let escapes_per_fault = cfg.errors_before_marked * cfg.miss_probability;
    let undetected_per_hour = faults_per_hour * escapes_per_fault;
    1.0 / (undetected_per_hour * HOURS_PER_YEAR)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn estimate_matches_papers_order_of_magnitude() {
        let years = undetectable_years_estimate(&UndetectConfig::paper());
        // Paper: once per ~300,000 years. Same order (10^5).
        assert!(
            (50_000.0..1_000_000.0).contains(&years),
            "expected ~10^5 years, got {years:.0}"
        );
        // Far beyond the 1000-year/server target the paper cites [8].
        assert!(years > 1000.0);
    }

    #[test]
    fn stricter_threshold_helps() {
        let base = undetectable_years_estimate(&UndetectConfig::paper());
        let mut strict = UndetectConfig::paper();
        strict.errors_before_marked = 1.0;
        assert!(undetectable_years_estimate(&strict) > base);
    }
}
