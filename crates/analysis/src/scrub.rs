//! Fig 18 and §VI-C: scrub-interval sensitivity of the uncorrectable rate.
//!
//! ECC parities cannot correct faults that accumulate in two channels at
//! the same relative location before the scrubber reacts. The exposure is
//! bounded by the probability that two or more channels develop faults
//! within one *detection window* (the scrub interval) at least once during
//! the seven-year lifetime.
//!
//! Analytic form: per window of length `w`, each channel independently
//! faults with probability `p = 1 - exp(-λ_c w)` (λ_c = per-channel fault
//! rate); the chance of ≥2 channels in one window is
//! `q = 1 - (1-p)^C - C·p·(1-p)^(C-1)`, and over `n = T/w` windows the
//! lifetime probability is `1 - (1-q)^n`.

use mem_faults::{FitTable, LifetimeSim, SystemGeometry, HOURS_PER_YEAR, LIFETIME_YEARS};

/// Closed-form lifetime probability of a ≥2-channel coincidence within one
/// window (see module docs).
pub fn analytic_window_probability(
    geo: &SystemGeometry,
    fit_per_chip: f64,
    window_hours: f64,
) -> f64 {
    let lifetime = LIFETIME_YEARS * HOURS_PER_YEAR;
    let lambda_c = geo.chips_per_channel() as f64 * fit_per_chip * 1e-9;
    let p = 1.0 - (-lambda_c * window_hours).exp();
    let c = geo.channels as f64;
    let none = (1.0 - p).powf(c);
    let one = c * p * (1.0 - p).powf(c - 1.0);
    let q = (1.0 - none - one).max(0.0);
    let windows = lifetime / window_hours;
    1.0 - (1.0 - q).powf(windows)
}

/// The Fig 18 series: for each window length (hours) and each FIT rate,
/// the lifetime coincidence probability. Returns rows of
/// `(window_hours, fit, analytic, monte_carlo)`; MC is skipped (NaN) when
/// `mc_trials == 0`.
pub fn fig18_series(
    windows_hours: &[f64],
    fits: &[f64],
    mc_trials: usize,
    seed: u64,
) -> Vec<(f64, f64, f64, f64)> {
    let geo = SystemGeometry::paper_reliability();
    let mut out = vec![];
    for &w in windows_hours {
        for &fit in fits {
            let analytic = analytic_window_probability(&geo, fit, w);
            let mc = if mc_trials > 0 {
                let sim = LifetimeSim::new(geo, FitTable::DDR3_AVERAGE.scaled_to(fit));
                sim.multi_channel_window_probability(w, mc_trials, seed)
            } else {
                f64::NAN
            };
            out.push((w, fit, analytic, mc));
        }
    }
    out
}

/// Memory-bandwidth cost of scrubbing: one full read of `capacity_bytes`
/// per `interval_hours`, as a fraction of `peak_bytes_per_sec`. The paper's
/// premise that scrubbing "too frequently can lead to high memory power and
/// performance overheads" quantified: at the 8-hour operating point even a
/// 512GB system spends ~0.01% of its bandwidth scrubbing.
pub fn scrub_bandwidth_fraction(
    capacity_bytes: f64,
    interval_hours: f64,
    peak_bytes_per_sec: f64,
) -> f64 {
    let scrub_rate = capacity_bytes / (interval_hours * 3600.0);
    scrub_rate / peak_bytes_per_sec
}

/// §VI-C interpretation: with probability `p` of one extra uncorrectable
/// event per lifetime, the extra uncorrectable rate is one per
/// `LIFETIME_YEARS / p` years.
pub fn years_per_extra_uncorrectable(probability_per_lifetime: f64) -> f64 {
    LIFETIME_YEARS / probability_per_lifetime
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_anchor_point_eight_hours_100_fit() {
        // Fig 18 / §VI-C: 8-hour window at 100 FIT/chip → ~2e-4 over seven
        // years.
        let geo = SystemGeometry::paper_reliability();
        let p = analytic_window_probability(&geo, 100.0, 8.0);
        assert!(
            (1e-4..4e-4).contains(&p),
            "expected ~2e-4 as in the paper, got {p:.2e}"
        );
        // And the §VI-C translation: ≈ 35,000 years per extra uncorrectable.
        let years = years_per_extra_uncorrectable(p);
        assert!(
            (20_000.0..70_000.0).contains(&years),
            "expected ~35,000 years, got {years:.0}"
        );
    }

    #[test]
    fn probability_increases_with_window_and_fit() {
        let geo = SystemGeometry::paper_reliability();
        let p1 = analytic_window_probability(&geo, 44.0, 1.0);
        let p8 = analytic_window_probability(&geo, 44.0, 8.0);
        let p168 = analytic_window_probability(&geo, 44.0, 168.0);
        assert!(p1 < p8 && p8 < p168);
        let hi = analytic_window_probability(&geo, 200.0, 8.0);
        assert!(hi > p8);
    }

    #[test]
    fn monte_carlo_tracks_analytic_at_high_rate() {
        // Inflate rates so MC gets enough coincidences to resolve.
        let geo = SystemGeometry::paper_reliability();
        let fit = 20_000.0;
        let w = 24.0;
        let analytic = analytic_window_probability(&geo, fit, w);
        let sim = LifetimeSim::new(geo, FitTable::DDR3_AVERAGE.scaled_to(fit));
        let mc = sim.multi_channel_window_probability(w, 1500, 3);
        assert!(
            (mc - analytic).abs() < 0.1 * analytic.max(0.05),
            "MC {mc} vs analytic {analytic}"
        );
    }

    #[test]
    fn scrub_bandwidth_negligible_at_paper_operating_point() {
        // 512GB system, 8-hour scrub, 8 channels x 16GB/s peak.
        let f = scrub_bandwidth_fraction(512e9, 8.0, 8.0 * 16e9);
        assert!(f < 2e-4, "got {f}");
        // Scrubbing every minute starts to matter.
        let f = scrub_bandwidth_fraction(512e9, 1.0 / 60.0, 8.0 * 16e9);
        assert!(f > 0.05);
    }

    #[test]
    fn vanishing_window_vanishing_probability() {
        let geo = SystemGeometry::paper_reliability();
        let p = analytic_window_probability(&geo, 44.0, 0.01);
        assert!(p < 1e-6);
    }
}
