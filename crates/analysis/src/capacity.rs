//! Fig 1 and Table III: capacity overheads, static and end-of-life.

use crate::eol::fig8_point;
use ecc_codes::{CapacityBreakdown, OverheadModel};

/// One row of Table III.
#[derive(Debug, Clone, PartialEq)]
pub struct Table3Row {
    pub name: &'static str,
    pub static_overhead: f64,
    /// End-of-life average (ECC Parity rows only): static + migrated pairs
    /// at 2R + retired pages, from the Fig 8 Monte Carlo.
    pub eol_avg: Option<f64>,
    /// The paper's reported value, for EXPERIMENTS.md comparison.
    pub paper_value: f64,
}

/// Fig 1 rows (label, breakdown) — re-exported from `ecc-codes` with the
/// measured values of the real code implementations.
pub fn figure1_rows() -> Vec<(&'static str, CapacityBreakdown)> {
    OverheadModel::figure1()
}

/// Compute Table III. `mc_trials` drives the EOL Monte Carlo (0 = use the
/// static value as EOL).
pub fn table3_rows(mc_trials: usize, seed: u64) -> Vec<Table3Row> {
    let eol = |r: f64, channels: usize| -> f64 {
        let frac = if mc_trials > 0 {
            // Fig 8's geometry follows the channel count of the row.
            fig8_point(channels, mc_trials, seed).mean_fraction
        } else {
            0.0
        };
        OverheadModel::ecc_parity_eol(r, channels, frac).total()
    };
    vec![
        Table3Row {
            name: "36-device commercial chipkill correct",
            static_overhead: 0.125,
            eol_avg: None,
            paper_value: 0.125,
        },
        Table3Row {
            name: "18-device commercial chipkill correct",
            static_overhead: 0.125,
            eol_avg: None,
            paper_value: 0.125,
        },
        Table3Row {
            name: "LOT-ECC9",
            static_overhead: 0.265625,
            eol_avg: None,
            paper_value: 0.265,
        },
        Table3Row {
            name: "Multi-ECC",
            static_overhead: 0.129,
            eol_avg: None,
            paper_value: 0.129,
        },
        Table3Row {
            name: "LOT-ECC5",
            static_overhead: 0.40625,
            eol_avg: None,
            paper_value: 0.406,
        },
        Table3Row {
            name: "8 chan LOT-ECC5 + ECC Parity",
            static_overhead: OverheadModel::ecc_parity(0.25, 8).total(),
            eol_avg: Some(eol(0.25, 8)),
            paper_value: 0.165,
        },
        Table3Row {
            name: "4 chan LOT-ECC5 + ECC Parity",
            static_overhead: OverheadModel::ecc_parity(0.25, 4).total(),
            eol_avg: Some(eol(0.25, 4)),
            paper_value: 0.219,
        },
        Table3Row {
            name: "RAIM",
            static_overhead: 0.40625,
            eol_avg: None,
            paper_value: 0.406,
        },
        Table3Row {
            name: "10 chan RAIM + ECC Parity",
            static_overhead: OverheadModel::ecc_parity(0.5, 10).total(),
            eol_avg: Some(eol(0.5, 10)),
            paper_value: 0.188,
        },
        Table3Row {
            name: "5 chan RAIM + ECC Parity",
            static_overhead: OverheadModel::ecc_parity(0.5, 5).total(),
            eol_avg: Some(eol(0.5, 5)),
            paper_value: 0.266,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_values_match_paper_within_rounding() {
        for row in table3_rows(0, 0) {
            assert!(
                (row.static_overhead - row.paper_value).abs() < 0.002,
                "{}: {} vs paper {}",
                row.name,
                row.static_overhead,
                row.paper_value
            );
        }
    }

    #[test]
    fn eol_close_to_static_small_delta() {
        // Paper: EOL averages exceed static by ~0.2-0.3 percentage points.
        for row in table3_rows(1500, 5) {
            if let Some(eol) = row.eol_avg {
                let delta = eol - row.static_overhead;
                assert!(
                    delta > 0.0 && delta < 0.02,
                    "{}: EOL delta {delta}",
                    row.name
                );
            }
        }
    }

    #[test]
    fn fig1_rows_present() {
        assert_eq!(figure1_rows().len(), 4);
    }
}
