//! §VI-A: maximum memory capacity with mixed narrow/wide ranks.
//!
//! Energy-efficient organizations (x8/x16 devices) need more ranks per
//! channel for the same capacity, but channels support a limited rank
//! count. The paper's mitigation: mix ranks of narrow (x4) and wide
//! (x16) devices on one channel and place *hot* pages in the wide ranks —
//! most of the energy win at the narrow ranks' capacity. The cost: the
//! narrow ranks must carry the same strong (and capacity-hungry) ECC,
//! which is exactly what ECC Parity then compresses.

use dram_sim::{DeviceKind, DevicePower, RankConfig, TimingParams};
use ecc_codes::OverheadModel;

/// A mixed-channel design point.
#[derive(Debug, Clone)]
pub struct MixedRankDesign {
    /// Wide (energy-efficient) ranks per channel.
    pub wide_ranks: usize,
    /// Narrow (capacity) ranks per channel.
    pub narrow_ranks: usize,
    /// Fraction of accesses served by the wide ranks (hot-page placement).
    pub hot_access_fraction: f64,
}

/// Result of evaluating a design point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MixedRankOutcome {
    /// Dynamic energy per access relative to an all-narrow channel.
    pub energy_per_access_rel: f64,
    /// Channel capacity relative to an all-narrow channel of the same rank
    /// count (wide x16 ranks hold 1/4 the devices of 36-chip narrow ranks).
    pub capacity_rel: f64,
    /// ECC capacity overhead with ECC Parity across `channels` channels
    /// (both rank kinds must carry the strong ECC; R of the wide rank
    /// organization applies).
    pub ecc_overhead: f64,
}

/// Per-access dynamic energy (ACT + read burst) of a rank, pJ.
fn access_energy(rank: &RankConfig) -> f64 {
    let t = TimingParams::ddr3_1ghz(rank.widest());
    let mut e = 0.0;
    for &k in &rank.devices {
        let p = DevicePower::for_kind(k);
        let t_rc = t.t_rc as f64;
        let t_ras = t.t_ras as f64;
        e += p.vdd * (p.idd0 * t_rc - p.idd3n * t_ras - p.idd2n * (t_rc - t_ras));
        e += p.vdd * (p.idd4r - p.idd3n) * t.t_burst as f64;
    }
    e
}

/// Evaluate a mixed design against an all-narrow (36 x4) channel baseline.
pub fn evaluate(design: &MixedRankDesign, channels: usize) -> MixedRankOutcome {
    let narrow = RankConfig::uniform(DeviceKind::X4, 36);
    let wide = RankConfig::lotecc5();
    let e_narrow = access_energy(&narrow) / 2.0; // per 64B (128B lines)
    let e_wide = access_energy(&wide);
    let h = design.hot_access_fraction;
    let mixed = h * e_wide + (1.0 - h) * e_narrow;

    // Capacity: per rank-slot, narrow = 36 devices, wide = 4.5 device-
    // equivalents (4 x16 + half-capacity x8 = same per-device capacity).
    let total_slots = (design.wide_ranks + design.narrow_ranks) as f64;
    let cap = design.wide_ranks as f64 * 4.5 + design.narrow_ranks as f64 * 36.0;
    let cap_all_narrow = total_slots * 36.0;

    MixedRankOutcome {
        energy_per_access_rel: mixed / e_narrow,
        capacity_rel: cap / cap_all_narrow,
        ecc_overhead: OverheadModel::ecc_parity(0.25, channels).total(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hot_placement_captures_most_of_the_energy_win() {
        // With 80% of accesses in the wide ranks, energy approaches the
        // all-wide level while capacity stays near the narrow level.
        let d = MixedRankDesign {
            wide_ranks: 1,
            narrow_ranks: 3,
            hot_access_fraction: 0.8,
        };
        let out = evaluate(&d, 8);
        let all_wide = evaluate(
            &MixedRankDesign {
                wide_ranks: 4,
                narrow_ranks: 0,
                hot_access_fraction: 1.0,
            },
            8,
        );
        assert!(out.energy_per_access_rel < 0.5, "most energy win retained");
        assert!(out.energy_per_access_rel > all_wide.energy_per_access_rel);
        assert!(out.capacity_rel > 0.7, "most capacity retained");
    }

    #[test]
    fn all_narrow_is_the_energy_baseline() {
        let d = MixedRankDesign {
            wide_ranks: 0,
            narrow_ranks: 4,
            hot_access_fraction: 0.0,
        };
        let out = evaluate(&d, 8);
        assert!((out.energy_per_access_rel - 1.0).abs() < 1e-9);
        assert!((out.capacity_rel - 1.0).abs() < 1e-9);
    }

    #[test]
    fn ecc_parity_compresses_the_shared_strong_ecc() {
        // Both rank kinds carry LOT-ECC5-class ECC; ECC Parity keeps the
        // overhead at the Table III level instead of 40.6%.
        let d = MixedRankDesign {
            wide_ranks: 2,
            narrow_ranks: 2,
            hot_access_fraction: 0.7,
        };
        let out = evaluate(&d, 8);
        assert!(out.ecc_overhead < 0.17);
    }
}
