//! §VI-B: system-level stall estimate for an HPC machine using ECC Parity.
//!
//! When a large (column/bank/multi-bank/multi-rank) fault occurs in a node,
//! the threads of that node migrate to a spare and the faulty regions' ECC
//! correction bits are reconstructed; the whole machine stalls meanwhile.
//! The paper's example: 2 PB of memory, 128 GB/node, 1 GB/s NIC → stalled
//! ~0.35% of the time.

use mem_faults::FitTable;

/// Parameters of the estimate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HpcConfig {
    /// Total system memory, bytes.
    pub total_memory_bytes: f64,
    /// Memory per node, bytes.
    pub node_memory_bytes: f64,
    /// NIC bandwidth per node, bytes/s (migration speed).
    pub nic_bytes_per_sec: f64,
    /// Node-local memory bandwidth used for reconstructing ECC correction
    /// bits (reading the node's memory once), bytes/s.
    pub reconstruct_bytes_per_sec: f64,
    /// DRAM device capacity, bytes.
    pub chip_bytes: f64,
    pub fit: FitTable,
}

impl HpcConfig {
    /// The paper's example machine (2Gb devices).
    pub fn paper() -> HpcConfig {
        HpcConfig {
            total_memory_bytes: 2.0e15,
            node_memory_bytes: 128.0e9,
            nic_bytes_per_sec: 1.0e9,
            reconstruct_bytes_per_sec: 10.0e9,
            chip_bytes: 2.0e9 / 8.0 * 1.0, // 2 Gbit = 256 MB
            fit: FitTable::DDR3_AVERAGE,
        }
    }

    pub fn nodes(&self) -> f64 {
        self.total_memory_bytes / self.node_memory_bytes
    }

    pub fn chips_per_node(&self) -> f64 {
        self.node_memory_bytes / self.chip_bytes
    }

    /// Per-event stall: migrate the node's memory over the NIC plus one
    /// full read of it to reconstruct correction bits.
    pub fn stall_seconds_per_event(&self) -> f64 {
        self.node_memory_bytes / self.nic_bytes_per_sec
            + self.node_memory_bytes / self.reconstruct_bytes_per_sec
    }

    /// Large-fault events per second across the machine.
    pub fn large_events_per_sec(&self) -> f64 {
        let chips = self.nodes() * self.chips_per_node();
        chips * self.fit.large_total() * 1e-9 / 3600.0
    }
}

/// The stalled-time fraction of the whole machine (closed form; assumes
/// stalls never overlap — exact in the rare-event regime).
pub fn hpc_stall_fraction(cfg: &HpcConfig) -> f64 {
    cfg.large_events_per_sec() * cfg.stall_seconds_per_event()
}

/// Monte Carlo stall fraction over `trials` seven-year machine lifetimes:
/// samples large-fault arrivals as a Poisson process and merges overlapping
/// stall windows (the closed form double-counts those, so the MC result
/// saturates correctly as event rates climb).
pub fn simulate_stall_fraction(cfg: &HpcConfig, trials: usize, seed: u64) -> f64 {
    use rand::Rng;
    use rand::SeedableRng;
    use rayon::prelude::*;

    let lifetime_s = crate::scrub_years_to_seconds();
    let mean_events = cfg.large_events_per_sec() * lifetime_s;
    let stall = cfg.stall_seconds_per_event();
    let total: f64 = (0..trials)
        .into_par_iter()
        .map(|i| {
            let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(
                seed.wrapping_add(i as u64).wrapping_mul(0x9E3779B97F4A7C15),
            );
            let n = mem_faults::montecarlo::poisson(&mut rng, mean_events);
            let mut starts: Vec<f64> = (0..n).map(|_| rng.gen_range(0.0..lifetime_s)).collect();
            starts.sort_by(|a, b| a.total_cmp(b));
            // merge overlapping [t, t+stall) windows
            let mut stalled = 0.0;
            let mut covered_until = 0.0f64;
            for t in starts {
                let end = t + stall;
                if t >= covered_until {
                    stalled += stall;
                } else if end > covered_until {
                    stalled += end - covered_until;
                }
                covered_until = covered_until.max(end);
            }
            stalled / lifetime_s
        })
        .sum();
    total / trials as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_machine_shape() {
        let c = HpcConfig::paper();
        assert!((c.nodes() - 15625.0).abs() < 1.0);
        assert!((c.chips_per_node() - 512.0).abs() < 1.0);
        // 128 GB over 1 GB/s NIC + a 10 GB/s reconstruction pass
        assert!((c.stall_seconds_per_event() - 140.8).abs() < 0.1);
    }

    #[test]
    fn stall_fraction_matches_papers_order() {
        // Paper reports 0.35%; our FIT split gives the same order.
        let f = hpc_stall_fraction(&HpcConfig::paper());
        assert!(
            (0.001..0.01).contains(&f),
            "stall fraction {f} should be a fraction of a percent"
        );
    }

    #[test]
    fn monte_carlo_matches_closed_form_in_rare_regime() {
        let cfg = HpcConfig::paper();
        let analytic = hpc_stall_fraction(&cfg);
        let mc = simulate_stall_fraction(&cfg, 600, 17);
        assert!(
            (mc - analytic).abs() < 0.15 * analytic,
            "MC {mc} vs analytic {analytic}"
        );
    }

    #[test]
    fn monte_carlo_saturates_when_stalls_overlap() {
        // Make individual stalls enormous (a 1000x slower NIC) so windows
        // overlap: the closed form exceeds 1 (it double-counts), the MC
        // stays a proper fraction below 1.
        let mut cfg = HpcConfig::paper();
        cfg.nic_bytes_per_sec /= 1000.0;
        let analytic = hpc_stall_fraction(&cfg);
        assert!(analytic > 1.0, "closed form breaks: {analytic}");
        let mc = simulate_stall_fraction(&cfg, 300, 23);
        assert!(mc < 1.0 && mc > 0.5, "MC saturates properly: {mc}");
    }

    #[test]
    fn faster_nic_reduces_stall() {
        let mut c = HpcConfig::paper();
        let slow = hpc_stall_fraction(&c);
        c.nic_bytes_per_sec *= 10.0;
        let fast = hpc_stall_fraction(&c);
        assert!(fast < slow);
    }
}
