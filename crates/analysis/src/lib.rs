//! # resilience-analysis — reliability and capacity analysis
//!
//! The closed-form and Monte Carlo analyses behind the paper's analytic
//! figures and discussion sections:
//!
//! * [`capacity`] — Fig 1 (detection/correction overhead split) and
//!   Table III (static + end-of-life capacity overheads).
//! * [`channel_mtbf`] — Fig 2: mean time between faults in *different*
//!   channels vs per-chip FIT rate (analytic + Monte Carlo).
//! * [`eol`] — Fig 8: fraction of memory whose ECC correction bits end up
//!   stored in memory after seven years (average and 99.9th percentile),
//!   by channel count.
//! * [`scrub`] — Fig 18: probability of faults in more than one channel
//!   within any single scrub window over the system lifetime, and the
//!   §VI-C uncorrectable-rate interpretation.
//! * [`hpc`] — §VI-B: expected stall fraction of a large HPC system from
//!   migration + ECC-bit reconstruction on large faults.
//! * [`mixed_ranks`] — §VI-A: mixed narrow/wide-rank channels with hot-page
//!   placement (maximum-capacity mitigation).
//! * [`undetect`] — §VI-D: undetectable-error-rate estimate for the
//!   RS-based LOT-ECC5+Parity encoding under a pessimistic
//!   all-address-faults model.

pub mod capacity;
pub mod channel_mtbf;
pub mod eol;
pub mod hpc;
pub mod mixed_ranks;
pub mod scrub;
pub mod undetect;

pub use capacity::{table3_rows, Table3Row};
pub use channel_mtbf::{analytic_mtbf_hours, fig2_series};
pub use eol::{fig8_point, Fig8Point};
pub use hpc::{hpc_stall_fraction, HpcConfig};
pub use mixed_ranks::{evaluate as evaluate_mixed_ranks, MixedRankDesign, MixedRankOutcome};
pub use scrub::{
    analytic_window_probability, fig18_series, scrub_bandwidth_fraction,
    years_per_extra_uncorrectable,
};
pub use undetect::undetectable_years_estimate;

/// Seconds in the paper's seven-year lifetime (shared by the §VI analyses).
pub fn scrub_years_to_seconds() -> f64 {
    mem_faults::LIFETIME_YEARS * mem_faults::HOURS_PER_YEAR * 3600.0
}
