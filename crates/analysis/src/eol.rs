//! Fig 8: what fraction of memory ends up with its ECC correction bits
//! stored in memory (i.e., in migrated bank pairs) after seven years.
//!
//! Monte Carlo over system lifetimes: each sampled fault history is pushed
//! through the paper's health policy — large faults (column/bank/
//! multi-bank/multi-rank) saturate their bank-pair counters and mark pairs
//! faulty; small faults only retire pages. The statistic is the faulty-pair
//! capacity fraction at end of life: the solid bars report the mean, the
//! horizontal lines the 99.9th percentile.

use mem_faults::{FaultEvent, FitTable, LifetimeSim, SystemGeometry};
use std::collections::HashSet;

/// One bar of Fig 8.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fig8Point {
    pub channels: usize,
    /// Mean fraction of memory in migrated pairs after 7 years.
    pub mean_fraction: f64,
    /// 99.9th-percentile fraction.
    pub p999_fraction: f64,
    /// Mean count of retired pages (small-fault absorption).
    pub mean_retired_pages: f64,
}

/// Faulty-pair fraction for one fault history.
pub fn faulty_fraction_of_history(geo: &SystemGeometry, events: &[FaultEvent]) -> f64 {
    let mut marked: HashSet<(usize, usize, usize)> = HashSet::new(); // (chan, rank, pair)
    for e in events {
        let pairs = e.fault.mode.bank_pairs_marked(geo.banks_per_chip);
        if pairs == 0 {
            continue;
        }
        let ch = e.fault.chip.channel;
        let rank = e.fault.chip.rank;
        let anchor_pair = (e.fault.bank as usize) / 2;
        let pairs_per_rank = geo.banks_per_chip / 2;
        for k in 0..pairs {
            // Spread across the fault's rank first, then the next rank
            // (multi-rank faults span the ranks sharing the device's I/O).
            let rank_off = k / pairs_per_rank;
            let p = (anchor_pair + k) % pairs_per_rank;
            let r = (rank + rank_off) % geo.ranks_per_channel;
            marked.insert((ch, r, p));
        }
    }
    marked.len() as f64 / (geo.channels * geo.ranks_per_channel * geo.banks_per_chip / 2) as f64
}

/// Retired pages for one history (small faults retire `channels - 1` pages
/// each: the page plus its parity-sharing peers, §III-E).
pub fn retired_pages_of_history(geo: &SystemGeometry, events: &[FaultEvent]) -> u64 {
    events
        .iter()
        .filter(|e| !e.fault.mode.is_large())
        .map(|_| (geo.channels - 1) as u64)
        .sum()
}

/// Compute one Fig 8 bar.
pub fn fig8_point(channels: usize, trials: usize, seed: u64) -> Fig8Point {
    let geo = SystemGeometry::paper_reliability().with_channels(channels);
    let sim = LifetimeSim::new(geo, FitTable::DDR3_AVERAGE);
    let mut samples: Vec<(f64, u64)> = sim.run_trials(trials, seed, |events| {
        (
            faulty_fraction_of_history(&geo, events),
            retired_pages_of_history(&geo, events),
        )
    });
    let mean = samples.iter().map(|s| s.0).sum::<f64>() / trials as f64;
    let mean_retired = samples.iter().map(|s| s.1 as f64).sum::<f64>() / trials as f64;
    samples.sort_by(|a, b| a.0.total_cmp(&b.0));
    let idx = ((trials as f64) * 0.999).floor() as usize;
    let p999 = samples[idx.min(trials - 1)].0;
    Fig8Point {
        channels,
        mean_fraction: mean,
        p999_fraction: p999,
        mean_retired_pages: mean_retired,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_fraction_lands_near_papers_0_4_percent() {
        let p = fig8_point(8, 4000, 7);
        assert!(
            p.mean_fraction > 0.001 && p.mean_fraction < 0.01,
            "mean faulty fraction {} should be a few tenths of a percent",
            p.mean_fraction
        );
    }

    #[test]
    fn p999_exceeds_mean() {
        let p = fig8_point(8, 2000, 11);
        assert!(p.p999_fraction >= p.mean_fraction);
        assert!(p.p999_fraction < 0.5, "even the tail is a small fraction");
    }

    #[test]
    fn retired_pages_are_negligible_fraction() {
        // §III-E: retired pages are "a negligible fraction out of the
        // 100,000's of pages in a pair of memory banks".
        let p = fig8_point(8, 2000, 13);
        assert!(p.mean_retired_pages < 100.0);
    }

    #[test]
    fn fraction_roughly_scale_free_in_channels() {
        // More channels = more chips but also proportionally more pairs;
        // the per-system fraction stays the same order of magnitude.
        let p2 = fig8_point(2, 2000, 17);
        let p16 = fig8_point(16, 2000, 17);
        assert!(p2.mean_fraction > 0.0 && p16.mean_fraction > 0.0);
        let ratio = p2.mean_fraction / p16.mean_fraction;
        assert!(
            (0.2..5.0).contains(&ratio),
            "fractions should be same order: {ratio}"
        );
    }

    #[test]
    fn empty_history_marks_nothing() {
        let geo = SystemGeometry::paper_reliability();
        assert_eq!(faulty_fraction_of_history(&geo, &[]), 0.0);
        assert_eq!(retired_pages_of_history(&geo, &[]), 0);
    }
}
