//! Property-based tests of the DRAM scheduler's physical invariants.

use dram_sim::{DeviceKind, MemRequest, MemoryConfig, MemorySystem, RankConfig};
use proptest::prelude::*;

fn config(channels: usize, ranks: usize) -> MemoryConfig {
    MemoryConfig::new(channels, ranks, RankConfig::uniform(DeviceKind::X8, 9), 64)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn completions_respect_minimum_latency(
        reqs in prop::collection::vec((0u64..100_000, any::<bool>(), 0u64..64), 1..200),
    ) {
        let cfg = config(2, 2);
        let t = cfg.timing;
        let min_read = t.t_rcd + t.t_cl + t.t_burst;
        let mut sys = MemorySystem::new(cfg);
        let mut arrivals: Vec<(u64, bool, u64)> = reqs;
        arrivals.sort_by_key(|r| r.0);
        for (arrival, is_write, addr) in arrivals {
            let c = sys.submit(MemRequest {
                line_addr: addr,
                is_write,
                arrival,
            });
            prop_assert!(c.act >= arrival, "activate before arrival");
            prop_assert!(c.data_start >= c.act, "data before activate");
            prop_assert!(c.finish == c.data_start + t.t_burst);
            if !is_write {
                prop_assert!(
                    c.finish >= arrival + min_read,
                    "read faster than physics: {} < {}",
                    c.finish - arrival,
                    min_read
                );
            }
        }
    }

    #[test]
    fn energy_components_are_nonnegative_and_total_consistent(
        reqs in prop::collection::vec((0u64..50_000, any::<bool>(), 0u64..256), 0..150),
        end_extra in 0u64..100_000,
    ) {
        let mut sys = MemorySystem::new(config(2, 1));
        let mut arrivals = reqs;
        arrivals.sort_by_key(|r| r.0);
        let mut last = 0;
        for (arrival, is_write, addr) in arrivals {
            let c = sys.submit(MemRequest { line_addr: addr, is_write, arrival });
            last = last.max(c.finish);
        }
        sys.finalize(last + end_extra + 1);
        let e = sys.energy();
        for v in [
            e.activate_pj, e.read_pj, e.write_pj, e.refresh_pj,
            e.bg_active_pj, e.bg_standby_pj, e.bg_sleep_pj,
        ] {
            prop_assert!(v >= 0.0);
        }
        prop_assert!((e.total_pj() - (e.dynamic_pj() + e.background_pj())).abs() < 1e-6);
    }

    #[test]
    fn same_bank_requests_never_violate_trc(
        gaps in prop::collection::vec(0u64..40, 2..30),
    ) {
        // Back-to-back accesses to one bank must be spaced by at least the
        // activate-to-activate time regardless of arrival pattern.
        let cfg = config(1, 1);
        let t_rc_floor = cfg.timing.t_ras; // close-page pre_done >= act + tRAS
        let mut sys = MemorySystem::new(cfg);
        let mut arrival = 0;
        let mut last_act = None;
        for g in gaps {
            arrival += g;
            // line 0 always maps to the same (channel, bank, row) tuple
            let c = sys.submit(MemRequest { line_addr: 0, is_write: false, arrival });
            if let Some(prev) = last_act {
                prop_assert!(
                    c.act >= prev + t_rc_floor,
                    "same-bank activates {} and {} too close",
                    prev,
                    c.act
                );
            }
            last_act = Some(c.act);
        }
    }

    #[test]
    fn more_channels_never_hurt_aggregate_latency(
        seed in any::<u64>(),
    ) {
        // The same dense request stream over 1 vs 4 channels: total latency
        // with more channels must not be higher.
        let run = |channels: usize| {
            let mut sys = MemorySystem::new(config(channels, 1));
            let mut s = seed | 1;
            let mut total = 0u64;
            for i in 0..300u64 {
                s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
                let addr = (s >> 30) % 100_000;
                let c = sys.submit(MemRequest {
                    line_addr: addr,
                    is_write: i % 4 == 0,
                    arrival: i * 3,
                });
                total += c.finish - i * 3;
            }
            total
        };
        prop_assert!(run(4) <= run(1));
    }
}
