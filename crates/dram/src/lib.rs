//! # dram-sim — cycle-based DDR3 memory-system simulator
//!
//! A timestamp-algebra DDR3 channel/rank/bank model in the spirit of the
//! DRAMsim simulator the paper uses: close-page row-buffer policy with
//! auto-precharge (so idle ranks can drop into precharge power-down /
//! "sleep"), per-bank activate windows, rank-level tRRD/tFAW constraints,
//! a shared per-channel data bus, and the Micron power-calculator
//! methodology (TN-41-01) driven by datasheet IDD values for 2Gb x4/x8/x16
//! devices.
//!
//! One simulator instance models one *logical channel group*: `channels`
//! independent channels each with `ranks` ranks. Requests are submitted
//! with explicit arrival cycles; the scheduler computes start/finish times
//! and accumulates per-rank energy. The full-system simulator (`mem-sim`)
//! drives it with workload traces through the resilience-scheme glue.

#![warn(missing_docs)]

pub mod channel;
pub mod config;
pub mod mapping;
pub mod power;
pub mod system;

pub use config::{DeviceKind, DevicePower, MemoryConfig, RankConfig, RowPolicy, TimingParams};
pub use mapping::{AddressMapping, LineAddress, MapPolicy};
pub use power::{EnergyBreakdown, PowerModel};
pub use system::{Completion, MemRequest, MemorySystem, SystemStats};
