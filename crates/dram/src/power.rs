//! Micron power-calculator (TN-41-01) style DRAM energy accounting.
//!
//! Energy is accumulated per rank from event counts and state-residency
//! times supplied by the channel scheduler:
//!
//! * **Activate/precharge** — per ACT:
//!   `VDD * (IDD0*tRC - IDD3N*tRAS - IDD2N*(tRC - tRAS))` per device.
//! * **Read / write bursts** — per burst cycle:
//!   `VDD * (IDD4R - IDD3N)` (reads), `VDD * (IDD4W - IDD3N)` (writes).
//! * **Refresh** — per refresh: `VDD * (IDD5B - IDD2N) * tRFC`, issued every
//!   `tREFI` of wall-clock per rank (charged at finalize).
//! * **Background** — state residency: active standby (IDD3N), precharge
//!   standby (IDD2N), precharge power-down "sleep" (IDD2P).
//!
//! The paper's split (Figs 12/13): *dynamic* = activate + read + write;
//! *background* = everything else including refresh.
//!
//! Units: currents in mA, times in ns (= cycles at 1 GHz), energies in pJ
//! (1 mA * 1 V * 1 ns = 1 pJ).

use crate::config::{DevicePower, RankConfig, TimingParams};
use serde::{Deserialize, Serialize};

/// I/O + on-die-termination power per active data pin during a read burst
/// (mW). TN-41-01-class value for a one-rank-loaded DDR3 channel.
pub const TERM_MW_PER_PIN_READ: f64 = 20.0;
/// Same for writes (write termination is slightly costlier).
pub const TERM_MW_PER_PIN_WRITE: f64 = 26.0;

/// Energy totals in picojoules.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct EnergyBreakdown {
    /// Row activate + precharge energy.
    pub activate_pj: f64,
    /// Read burst energy.
    pub read_pj: f64,
    /// Write burst energy.
    pub write_pj: f64,
    /// Refresh energy.
    pub refresh_pj: f64,
    /// Background energy with a row open (active standby).
    pub bg_active_pj: f64,
    /// Background energy precharged but not powered down.
    pub bg_standby_pj: f64,
    /// Background energy in precharge power-down ("sleep").
    pub bg_sleep_pj: f64,
}

impl EnergyBreakdown {
    /// Dynamic energy per the paper: read + write + activate commands.
    pub fn dynamic_pj(&self) -> f64 {
        self.activate_pj + self.read_pj + self.write_pj
    }

    /// Background energy per the paper: all other consumption.
    pub fn background_pj(&self) -> f64 {
        self.refresh_pj + self.bg_active_pj + self.bg_standby_pj + self.bg_sleep_pj
    }

    /// Sum of every component, in picojoules.
    pub fn total_pj(&self) -> f64 {
        self.dynamic_pj() + self.background_pj()
    }

    /// Accumulate another breakdown into this one, per component.
    pub fn add(&mut self, other: &EnergyBreakdown) {
        self.activate_pj += other.activate_pj;
        self.read_pj += other.read_pj;
        self.write_pj += other.write_pj;
        self.refresh_pj += other.refresh_pj;
        self.bg_active_pj += other.bg_active_pj;
        self.bg_standby_pj += other.bg_standby_pj;
        self.bg_sleep_pj += other.bg_sleep_pj;
    }
}

/// Per-rank energy integrator.
#[derive(Debug, Clone)]
pub struct PowerModel {
    /// Summed per-device coefficients over the rank's devices: energy math
    /// is linear in device count, so presum IDD terms across the rank.
    e_act_per_cmd: f64,
    p_read_per_cycle: f64,
    p_write_per_cycle: f64,
    e_refresh_per_cmd: f64,
    p_active: f64,
    p_standby: f64,
    p_sleep: f64,
    t_refi: u64,
    energy: EnergyBreakdown,
}

impl PowerModel {
    /// A Micron TN-41-01 power model for one rank under `timing`.
    pub fn new(rank: &RankConfig, timing: &TimingParams) -> PowerModel {
        Self::with_speed(rank, timing, 1.0)
    }

    /// Power model for a `speed_factor`-faster bin (§V-D): IDD currents
    /// scale per [`crate::config::DevicePower::speed_scaled`].
    pub fn with_speed(rank: &RankConfig, timing: &TimingParams, speed_factor: f64) -> PowerModel {
        let mut e_act = 0.0;
        let mut p_rd = 0.0;
        let mut p_wr = 0.0;
        let mut e_ref = 0.0;
        let mut p_act = 0.0;
        let mut p_stby = 0.0;
        let mut p_slp = 0.0;
        for &kind in &rank.devices {
            let p = DevicePower::for_kind(kind).speed_scaled(speed_factor);
            let t_rc = timing.t_rc as f64;
            let t_ras = timing.t_ras as f64;
            e_act += p.vdd * (p.idd0 * t_rc - p.idd3n * t_ras - p.idd2n * (t_rc - t_ras));
            // Burst current above standby, plus I/O + termination per pin
            // (termination power tracks the interface rate).
            let pins = kind.width() as f64;
            p_rd +=
                p.vdd * (p.idd4r - p.idd3n) + pins * TERM_MW_PER_PIN_READ * speed_factor.powf(1.6);
            p_wr +=
                p.vdd * (p.idd4w - p.idd3n) + pins * TERM_MW_PER_PIN_WRITE * speed_factor.powf(1.6);
            e_ref += p.vdd * (p.idd5b - p.idd2n) * timing.t_rfc as f64;
            p_act += p.vdd * p.idd3n;
            p_stby += p.vdd * p.idd2n;
            p_slp += p.vdd * p.idd2p;
        }
        PowerModel {
            e_act_per_cmd: e_act,
            p_read_per_cycle: p_rd,
            p_write_per_cycle: p_wr,
            e_refresh_per_cmd: e_ref,
            p_active: p_act,
            p_standby: p_stby,
            p_sleep: p_slp,
            t_refi: timing.t_refi,
            energy: EnergyBreakdown::default(),
        }
    }

    /// Record one activate/precharge pair.
    pub fn record_activate(&mut self) {
        self.energy.activate_pj += self.e_act_per_cmd;
    }

    /// Record a read burst of `cycles` data-bus cycles.
    pub fn record_read_burst(&mut self, cycles: u64) {
        self.energy.read_pj += self.p_read_per_cycle * cycles as f64;
    }

    /// Record a write burst of `cycles` data-bus cycles.
    pub fn record_write_burst(&mut self, cycles: u64) {
        self.energy.write_pj += self.p_write_per_cycle * cycles as f64;
    }

    /// Charge background energy for `cycles` spent with at least one bank
    /// open.
    pub fn record_active_time(&mut self, cycles: u64) {
        self.energy.bg_active_pj += self.p_active * cycles as f64;
    }

    /// Charge background energy for `cycles` awake with all banks closed.
    pub fn record_standby_time(&mut self, cycles: u64) {
        self.energy.bg_standby_pj += self.p_standby * cycles as f64;
    }

    /// Charge background energy for `cycles` in precharge power-down.
    pub fn record_sleep_time(&mut self, cycles: u64) {
        self.energy.bg_sleep_pj += self.p_sleep * cycles as f64;
    }

    /// Charge refresh energy for a whole simulation of `total_cycles`
    /// (refresh is periodic and unaffected by traffic).
    pub fn finalize_refresh(&mut self, total_cycles: u64) {
        let refreshes = total_cycles as f64 / self.t_refi as f64;
        self.energy.refresh_pj += refreshes * self.e_refresh_per_cmd;
    }

    /// Energy accumulated so far.
    pub fn energy(&self) -> &EnergyBreakdown {
        &self.energy
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{DeviceKind, TimingParams};

    fn model(kind: DeviceKind, n: usize) -> PowerModel {
        let rank = RankConfig::uniform(kind, n);
        let t = TimingParams::ddr3_1ghz(rank.widest());
        PowerModel::new(&rank, &t)
    }

    #[test]
    fn activate_energy_scales_with_chip_count() {
        let mut m36 = model(DeviceKind::X4, 36);
        let mut m18 = model(DeviceKind::X4, 18);
        m36.record_activate();
        m18.record_activate();
        let e36 = m36.energy().activate_pj;
        let e18 = m18.energy().activate_pj;
        assert!((e36 / e18 - 2.0).abs() < 1e-9);
        assert!(e36 > 0.0);
    }

    #[test]
    fn lotecc5_rank_activates_cheaper_than_36dev() {
        // The paper's core energy claim: 5 wide chips activate much cheaper
        // than 36 narrow ones.
        let t = TimingParams::ddr3_1ghz(DeviceKind::X16);
        let mut lot5 = PowerModel::new(&RankConfig::lotecc5(), &t);
        let mut ck36 = model(DeviceKind::X4, 36);
        lot5.record_activate();
        ck36.record_activate();
        let ratio = ck36.energy().activate_pj / lot5.energy().activate_pj;
        assert!(
            ratio > 4.0,
            "36-dev ACT should cost >4x LOT-ECC5 ACT, got {ratio:.2}"
        );
    }

    #[test]
    fn sleep_is_cheapest_background_state() {
        let mut m = model(DeviceKind::X8, 9);
        m.record_active_time(1000);
        let active = m.energy().bg_active_pj;
        let mut m = model(DeviceKind::X8, 9);
        m.record_standby_time(1000);
        let standby = m.energy().bg_standby_pj;
        let mut m = model(DeviceKind::X8, 9);
        m.record_sleep_time(1000);
        let sleep = m.energy().bg_sleep_pj;
        assert!(active > standby && standby > sleep);
        assert!(
            sleep < active / 3.0,
            "power-down must be much cheaper than active standby"
        );
    }

    #[test]
    fn refresh_energy_proportional_to_time() {
        let mut m = model(DeviceKind::X4, 18);
        m.finalize_refresh(7800 * 10);
        let e10 = m.energy().refresh_pj;
        let mut m = model(DeviceKind::X4, 18);
        m.finalize_refresh(7800 * 20);
        let e20 = m.energy().refresh_pj;
        assert!((e20 / e10 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn breakdown_split_matches_paper_definition() {
        let mut m = model(DeviceKind::X4, 36);
        m.record_activate();
        m.record_read_burst(8);
        m.record_write_burst(8);
        m.record_active_time(100);
        m.record_standby_time(100);
        m.record_sleep_time(100);
        m.finalize_refresh(100_000);
        let e = m.energy();
        assert!(e.dynamic_pj() > 0.0);
        assert!(e.background_pj() > 0.0);
        assert!((e.total_pj() - (e.dynamic_pj() + e.background_pj())).abs() < 1e-9);
        // dynamic excludes refresh + residency terms
        assert!((e.dynamic_pj() - (e.activate_pj + e.read_pj + e.write_pj)).abs() < 1e-12);
    }

    #[test]
    fn add_accumulates_all_fields() {
        let mut a = EnergyBreakdown::default();
        let b = EnergyBreakdown {
            activate_pj: 1.0,
            read_pj: 2.0,
            write_pj: 3.0,
            refresh_pj: 4.0,
            bg_active_pj: 5.0,
            bg_standby_pj: 6.0,
            bg_sleep_pj: 7.0,
        };
        a.add(&b);
        a.add(&b);
        assert!((a.total_pj() - 2.0 * b.total_pj()).abs() < 1e-12);
    }
}
