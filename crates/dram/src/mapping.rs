//! Physical address mapping: line address → (channel, rank, bank, row).
//!
//! Following the paper's methodology: adjacent physical *pages* interleave
//! across logical channels (balancing bandwidth), while within a channel
//! the DRAMsim-style "high performance" map spreads consecutive lines
//! across banks first and ranks second — the right choice for a close-page
//! policy, where bank-level parallelism is everything.

use serde::{Deserialize, Serialize};

/// Intra-channel mapping policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MapPolicy {
    /// bank → rank → line-in-row → row (DRAMsim High_Performance_Map for
    /// close page): consecutive lines hit different banks.
    HighPerformance,
    /// line-in-row → bank → rank → row: consecutive lines share a bank row
    /// (a poor fit for close page; kept for ablation).
    RowLocality,
}

/// Fully decoded line coordinates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct LineAddress {
    /// Channel index.
    pub channel: usize,
    /// Rank within the channel.
    pub rank: usize,
    /// Bank within the rank.
    pub bank: usize,
    /// Row within the bank.
    pub row: u64,
    /// Line offset within the row.
    pub line_in_row: u64,
}

/// Address decomposition rules for one machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AddressMapping {
    /// Channels in the system.
    pub channels: usize,
    /// Ranks per channel.
    pub ranks: usize,
    /// Banks per rank.
    pub banks: usize,
    /// Lines per DRAM row (4KB row / line size).
    pub lines_per_row: u64,
    /// Rows per bank.
    pub rows: u64,
    /// Bit-interleaving policy for decoding flat line addresses.
    pub policy: MapPolicy,
}

/// Divide-and-remainder with a shift/mask fast path for power-of-two
/// divisors. Every paper geometry except the 5- and 10-channel RAIM
/// organizations is all-powers-of-two, so the decode below becomes pure
/// bit arithmetic on the hot path; RAIM falls back to real division for
/// its channel term only.
#[inline(always)]
fn divmod(v: u64, d: u64) -> (u64, u64) {
    if d.is_power_of_two() {
        (v >> d.trailing_zeros(), v & (d - 1))
    } else {
        (v / d, v % d)
    }
}

impl AddressMapping {
    /// A mapping over the given geometry with the default
    /// channel-interleaved policy.
    pub fn new(channels: usize, ranks: usize, banks: usize, line_bytes: usize) -> Self {
        AddressMapping {
            channels,
            ranks,
            banks,
            lines_per_row: (4096 / line_bytes) as u64,
            rows: 32 * 1024,
            policy: MapPolicy::HighPerformance,
        }
    }

    /// Total lines the mapping covers.
    pub fn total_lines(&self) -> u64 {
        self.channels as u64
            * self.ranks as u64
            * self.banks as u64
            * self.rows
            * self.lines_per_row
    }

    /// Decode a flat line address (bijective over `0..total_lines()`).
    pub fn map(&self, line_addr: u64) -> LineAddress {
        let lines_per_page = self.lines_per_row;
        let (page, line_in_page) = divmod(line_addr, lines_per_page);
        let (page_in_channel, channel) = divmod(page, self.channels as u64);
        let channel = channel as usize;
        // Flat index within the channel.
        let idx = page_in_channel * lines_per_page + line_in_page;
        match self.policy {
            MapPolicy::HighPerformance => {
                let (r1, bank) = divmod(idx, self.banks as u64);
                let (r2, rank) = divmod(r1, self.ranks as u64);
                let (r3, line_in_row) = divmod(r2, self.lines_per_row);
                let (_, row) = divmod(r3, self.rows);
                LineAddress {
                    channel,
                    rank: rank as usize,
                    bank: bank as usize,
                    row,
                    line_in_row,
                }
            }
            MapPolicy::RowLocality => {
                let (r1, line_in_row) = divmod(idx, self.lines_per_row);
                let (r2, bank) = divmod(r1, self.banks as u64);
                let (r3, rank) = divmod(r2, self.ranks as u64);
                let (_, row) = divmod(r3, self.rows);
                LineAddress {
                    channel,
                    rank: rank as usize,
                    bank: bank as usize,
                    row,
                    line_in_row,
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn consecutive_lines_spread_across_banks() {
        let m = AddressMapping::new(4, 2, 8, 64);
        let banks: Vec<usize> = (0..8u64).map(|a| m.map(a).bank).collect();
        // Lines 0..8 are one page (one channel); high-perf map cycles banks.
        let distinct: HashSet<_> = banks.iter().collect();
        assert!(distinct.len() >= 8.min(m.banks));
    }

    #[test]
    fn pages_interleave_across_channels() {
        let m = AddressMapping::new(4, 2, 8, 64);
        let lpp = m.lines_per_row;
        for p in 0..8u64 {
            let la = m.map(p * lpp);
            assert_eq!(la.channel, (p % 4) as usize);
        }
    }

    #[test]
    fn mapping_is_injective_on_a_window() {
        let m = AddressMapping::new(2, 2, 8, 64);
        let mut seen = HashSet::new();
        for a in 0..200_000u64 {
            let la = m.map(a);
            assert!(
                seen.insert((la.channel, la.rank, la.bank, la.row, la.line_in_row)),
                "collision at address {a}"
            );
        }
    }

    #[test]
    fn both_policies_cover_same_coordinate_space() {
        let mut m = AddressMapping::new(2, 2, 4, 64);
        m.rows = 16; // shrink so we can cover exhaustively
        let total = m.total_lines();
        for policy in [MapPolicy::HighPerformance, MapPolicy::RowLocality] {
            m.policy = policy;
            let mut seen = HashSet::new();
            for a in 0..total {
                assert!(seen.insert(m.map(a)), "policy {policy:?} not bijective");
            }
            assert_eq!(seen.len() as u64, total);
        }
    }

    #[test]
    fn non_pow2_channel_count_stays_bijective() {
        // RAIM's 5-channel geometry exercises the division fallback of the
        // pow2 fast-path decode.
        let mut m = AddressMapping::new(5, 2, 4, 64);
        m.rows = 16;
        let total = m.total_lines();
        let mut seen = HashSet::new();
        for a in 0..total {
            let la = m.map(a);
            assert!(la.channel < 5);
            assert!(seen.insert(la), "collision at address {a}");
        }
        assert_eq!(seen.len() as u64, total);
    }

    #[test]
    fn line128_halves_lines_per_row() {
        let m64 = AddressMapping::new(2, 1, 8, 64);
        let m128 = AddressMapping::new(2, 1, 8, 128);
        assert_eq!(m64.lines_per_row, 64);
        assert_eq!(m128.lines_per_row, 32);
    }
}
