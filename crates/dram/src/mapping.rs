//! Physical address mapping: line address → (channel, rank, bank, row).
//!
//! Following the paper's methodology: adjacent physical *pages* interleave
//! across logical channels (balancing bandwidth), while within a channel
//! the DRAMsim-style "high performance" map spreads consecutive lines
//! across banks first and ranks second — the right choice for a close-page
//! policy, where bank-level parallelism is everything.

use serde::{Deserialize, Serialize};

/// Intra-channel mapping policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MapPolicy {
    /// bank → rank → line-in-row → row (DRAMsim High_Performance_Map for
    /// close page): consecutive lines hit different banks.
    HighPerformance,
    /// line-in-row → bank → rank → row: consecutive lines share a bank row
    /// (a poor fit for close page; kept for ablation).
    RowLocality,
}

/// Fully decoded line coordinates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct LineAddress {
    pub channel: usize,
    pub rank: usize,
    pub bank: usize,
    pub row: u64,
    pub line_in_row: u64,
}

/// Address decomposition rules for one machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AddressMapping {
    pub channels: usize,
    pub ranks: usize,
    pub banks: usize,
    /// Lines per DRAM row (4KB row / line size).
    pub lines_per_row: u64,
    /// Rows per bank.
    pub rows: u64,
    pub policy: MapPolicy,
}

impl AddressMapping {
    pub fn new(channels: usize, ranks: usize, banks: usize, line_bytes: usize) -> Self {
        AddressMapping {
            channels,
            ranks,
            banks,
            lines_per_row: (4096 / line_bytes) as u64,
            rows: 32 * 1024,
            policy: MapPolicy::HighPerformance,
        }
    }

    /// Total lines the mapping covers.
    pub fn total_lines(&self) -> u64 {
        self.channels as u64 * self.ranks as u64 * self.banks as u64 * self.rows
            * self.lines_per_row
    }

    /// Decode a flat line address (bijective over `0..total_lines()`).
    pub fn map(&self, line_addr: u64) -> LineAddress {
        let lines_per_page = self.lines_per_row;
        let page = line_addr / lines_per_page;
        let line_in_page = line_addr % lines_per_page;
        let channel = (page % self.channels as u64) as usize;
        let page_in_channel = page / self.channels as u64;
        // Flat index within the channel.
        let idx = page_in_channel * lines_per_page + line_in_page;
        match self.policy {
            MapPolicy::HighPerformance => {
                let bank = (idx % self.banks as u64) as usize;
                let r1 = idx / self.banks as u64;
                let rank = (r1 % self.ranks as u64) as usize;
                let r2 = r1 / self.ranks as u64;
                let line_in_row = r2 % self.lines_per_row;
                let row = (r2 / self.lines_per_row) % self.rows;
                LineAddress {
                    channel,
                    rank,
                    bank,
                    row,
                    line_in_row,
                }
            }
            MapPolicy::RowLocality => {
                let line_in_row = idx % self.lines_per_row;
                let r1 = idx / self.lines_per_row;
                let bank = (r1 % self.banks as u64) as usize;
                let r2 = r1 / self.banks as u64;
                let rank = (r2 % self.ranks as u64) as usize;
                let row = (r2 / self.ranks as u64) % self.rows;
                LineAddress {
                    channel,
                    rank,
                    bank,
                    row,
                    line_in_row,
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn consecutive_lines_spread_across_banks() {
        let m = AddressMapping::new(4, 2, 8, 64);
        let banks: Vec<usize> = (0..8u64).map(|a| m.map(a).bank).collect();
        // Lines 0..8 are one page (one channel); high-perf map cycles banks.
        let distinct: HashSet<_> = banks.iter().collect();
        assert!(distinct.len() >= 8.min(m.banks));
    }

    #[test]
    fn pages_interleave_across_channels() {
        let m = AddressMapping::new(4, 2, 8, 64);
        let lpp = m.lines_per_row;
        for p in 0..8u64 {
            let la = m.map(p * lpp);
            assert_eq!(la.channel, (p % 4) as usize);
        }
    }

    #[test]
    fn mapping_is_injective_on_a_window() {
        let m = AddressMapping::new(2, 2, 8, 64);
        let mut seen = HashSet::new();
        for a in 0..200_000u64 {
            let la = m.map(a);
            assert!(
                seen.insert((la.channel, la.rank, la.bank, la.row, la.line_in_row)),
                "collision at address {a}"
            );
        }
    }

    #[test]
    fn both_policies_cover_same_coordinate_space() {
        let mut m = AddressMapping::new(2, 2, 4, 64);
        m.rows = 16; // shrink so we can cover exhaustively
        let total = m.total_lines();
        for policy in [MapPolicy::HighPerformance, MapPolicy::RowLocality] {
            m.policy = policy;
            let mut seen = HashSet::new();
            for a in 0..total {
                assert!(seen.insert(m.map(a)), "policy {policy:?} not bijective");
            }
            assert_eq!(seen.len() as u64, total);
        }
    }

    #[test]
    fn line128_halves_lines_per_row() {
        let m64 = AddressMapping::new(2, 1, 8, 64);
        let m128 = AddressMapping::new(2, 1, 8, 128);
        assert_eq!(m64.lines_per_row, 64);
        assert_eq!(m128.lines_per_row, 32);
    }
}
