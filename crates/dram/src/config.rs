//! Device, timing, and memory-system configuration.
//!
//! Timing values are in memory-controller cycles at 1 GHz (tCK = 1 ns),
//! matching the paper's "2Gb DDR3 DRAM chips with 1GHz I/O frequency"; IDD
//! currents come from the public Micron 2Gb DDR3 datasheet (die rev. D
//! family) and are documented per device width. Using one speed grade's
//! IDD values across all organizations is the paper's methodology too —
//! relative energy between schemes is what matters.

use crate::mapping::MapPolicy;
use serde::{Deserialize, Serialize};

/// Row-buffer management policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RowPolicy {
    /// Auto-precharge after every column access (the paper's choice): idle
    /// ranks can drop into precharge power-down ("sleep").
    ClosePage,
    /// Keep rows open for row-buffer hits; ranks stay in active standby
    /// while any row is open (no sleep) — kept for the ablation that
    /// justifies the paper's close-page choice.
    OpenPage,
}

/// DRAM device width.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DeviceKind {
    /// x4 device: 4 data bits per beat.
    X4,
    /// x8 device: 8 data bits per beat.
    X8,
    /// Half-capacity x8 used as the LOT-ECC5 checksum chip (same currents
    /// as X8; capacity differences are handled by the capacity model).
    X8Half,
    /// x16 device: 16 data bits per beat.
    X16,
}

impl DeviceKind {
    /// Data pins of the device.
    pub fn width(self) -> usize {
        match self {
            DeviceKind::X4 => 4,
            DeviceKind::X8 | DeviceKind::X8Half => 8,
            DeviceKind::X16 => 16,
        }
    }
}

/// Datasheet IDD currents (mA) and supply voltage for one device.
///
/// `speed_factor` scaling (see [`TimingParams::speed_scaled`]): burst
/// currents IDD4R/IDD4W scale ~linearly with the I/O rate; standby/active
/// currents scale ~30% of the way (clock-tree share); IDD0/IDD5B are core
/// operations and stay.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DevicePower {
    /// One-bank activate-precharge current.
    pub idd0: f64,
    /// Precharge power-down current (slow exit) — the "sleep" state.
    pub idd2p: f64,
    /// Precharge standby current (all banks closed, CKE high).
    pub idd2n: f64,
    /// Active standby current (some bank open).
    pub idd3n: f64,
    /// Burst read current.
    pub idd4r: f64,
    /// Burst write current.
    pub idd4w: f64,
    /// Burst refresh current.
    pub idd5b: f64,
    /// Supply voltage (V).
    pub vdd: f64,
}

impl DevicePower {
    /// Micron 2Gb DDR3 datasheet values by width (high speed bin).
    pub fn for_kind(kind: DeviceKind) -> DevicePower {
        match kind {
            DeviceKind::X4 => DevicePower {
                idd0: 95.0,
                idd2p: 12.0,
                idd2n: 23.0,
                idd3n: 40.0,
                idd4r: 135.0,
                idd4w: 145.0,
                idd5b: 215.0,
                vdd: 1.5,
            },
            DeviceKind::X8 | DeviceKind::X8Half => DevicePower {
                idd0: 95.0,
                idd2p: 12.0,
                idd2n: 23.0,
                idd3n: 40.0,
                idd4r: 140.0,
                idd4w: 150.0,
                idd5b: 215.0,
                vdd: 1.5,
            },
            DeviceKind::X16 => DevicePower {
                idd0: 105.0,
                idd2p: 15.0,
                idd2n: 28.0,
                idd3n: 47.0,
                idd4r: 195.0,
                idd4w: 205.0,
                idd5b: 235.0,
                vdd: 1.5,
            },
        }
    }
}

/// DDR3 timing parameters in 1 GHz controller cycles (1 cycle = 1 ns).
///
/// [`TimingParams::speed_scaled`] derives a faster speed bin: core timings
/// (tRCD/tRAS/...) are analog and stay fixed in nanoseconds, while the
/// burst shortens with the I/O rate; IDD currents rise roughly linearly
/// with interface frequency for the burst currents and sub-linearly for
/// background — the §V-D trade-off (a 16% faster bin costs ~5% EPI).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TimingParams {
    /// Activate to read/write delay.
    pub t_rcd: u64,
    /// Read (CAS) latency.
    pub t_cl: u64,
    /// Write (CAS write) latency.
    pub t_cwl: u64,
    /// Precharge time.
    pub t_rp: u64,
    /// Activate to precharge.
    pub t_ras: u64,
    /// Activate to activate, same bank (t_ras + t_rp).
    pub t_rc: u64,
    /// Activate to activate, different banks of one rank.
    pub t_rrd: u64,
    /// Four-activate window per rank.
    pub t_faw: u64,
    /// Write recovery (end of write data to precharge).
    pub t_wr: u64,
    /// Write-to-read turnaround, same rank.
    pub t_wtr: u64,
    /// Data-bus cycles for one burst-of-8 (DDR: 4 bus cycles at 1 GHz).
    pub t_burst: u64,
    /// Rank-to-rank data-bus switch penalty.
    pub t_rtrs: u64,
    /// Refresh command duration (2Gb).
    pub t_rfc: u64,
    /// Average refresh interval.
    pub t_refi: u64,
    /// Power-down exit latency.
    pub t_xp: u64,
}

impl TimingParams {
    /// DDR3-2000-class timings for a 2Gb device (narrow x4/x8 devices).
    pub fn ddr3_1ghz(kind: DeviceKind) -> TimingParams {
        let (t_rrd, t_faw) = match kind {
            DeviceKind::X16 => (8, 45),
            _ => (6, 30),
        };
        TimingParams {
            t_rcd: 14,
            t_cl: 14,
            t_cwl: 10,
            t_rp: 14,
            t_ras: 36,
            t_rc: 50,
            t_rrd,
            t_faw,
            t_wr: 15,
            t_wtr: 8,
            t_burst: 4,
            t_rtrs: 2,
            t_rfc: 160,
            t_refi: 7800,
            t_xp: 6,
        }
    }
}

impl TimingParams {
    /// Derive a faster speed bin: I/O (burst) time shrinks by `factor`
    /// (e.g. 1.16 = 16% faster transfers); analog core timings hold.
    pub fn speed_scaled(&self, factor: f64) -> TimingParams {
        assert!(factor >= 1.0);
        let mut t = *self;
        t.t_burst = ((self.t_burst as f64 / factor).round() as u64).max(2);
        t
    }
}

impl DevicePower {
    /// IDD scaling for a `factor`-faster speed bin (see type docs): burst
    /// currents rise *superlinearly* with the interface rate (higher drive
    /// strength and tighter timings cost energy per bit, not just per
    /// second), clocked background currents rise with the clock share, and
    /// core-operation currents barely move. Calibrated so a 16% faster bin
    /// costs ~5% memory EPI (the paper's §V-D estimate from \[18\]).
    pub fn speed_scaled(&self, factor: f64) -> DevicePower {
        let clocked = 1.0 + 0.9 * (factor - 1.0);
        let core = 1.0 + 0.35 * (factor - 1.0);
        DevicePower {
            idd0: self.idd0 * core,
            idd2p: self.idd2p * clocked,
            idd2n: self.idd2n * clocked,
            idd3n: self.idd3n * clocked,
            idd4r: self.idd4r * factor.powf(1.6),
            idd4w: self.idd4w * factor.powf(1.6),
            idd5b: self.idd5b * core,
            vdd: self.vdd,
        }
    }
}

/// The devices forming one rank (all accessed in lockstep).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RankConfig {
    /// Width of each device on the bus, in access order.
    pub devices: Vec<DeviceKind>,
}

impl RankConfig {
    /// `n` identical devices.
    pub fn uniform(kind: DeviceKind, n: usize) -> RankConfig {
        RankConfig {
            devices: vec![kind; n],
        }
    }

    /// The LOT-ECC5 rank: four x16 data devices plus one half-capacity x8.
    pub fn lotecc5() -> RankConfig {
        let mut devices = vec![DeviceKind::X16; 4];
        devices.push(DeviceKind::X8Half);
        RankConfig { devices }
    }

    /// Number of devices in the rank.
    pub fn chips(&self) -> usize {
        self.devices.len()
    }

    /// Total data-bus width of the rank in bits.
    pub fn width_bits(&self) -> usize {
        self.devices.iter().map(|d| d.width()).sum()
    }

    /// Widest device kind (sets the rank's tRRD/tFAW class).
    pub fn widest(&self) -> DeviceKind {
        if self.devices.contains(&DeviceKind::X16) {
            DeviceKind::X16
        } else if self
            .devices
            .iter()
            .any(|d| matches!(d, DeviceKind::X8 | DeviceKind::X8Half))
        {
            DeviceKind::X8
        } else {
            DeviceKind::X4
        }
    }
}

/// Full memory-system configuration for one simulated machine.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MemoryConfig {
    /// Logical channels.
    pub channels: usize,
    /// Ranks per channel.
    pub ranks_per_channel: usize,
    /// Banks per rank (8 for DDR3).
    pub banks_per_rank: usize,
    /// Rank composition.
    pub rank: RankConfig,
    /// Timing parameters.
    pub timing: TimingParams,
    /// Bytes of data per line access (64 or 128).
    pub line_bytes: usize,
    /// Cycles of rank idleness before dropping into precharge power-down.
    pub powerdown_threshold: u64,
    /// Intra-channel address-mapping policy.
    pub map_policy: MapPolicy,
    /// Row-buffer policy (paper: close page).
    pub row_policy: RowPolicy,
    /// Model refresh as timing blackouts (tRFC every tREFI per rank), not
    /// just energy. Off by default: ~2% uniform slowdown, kept out of the
    /// calibrated figures; the refresh *energy* is always charged.
    pub model_refresh_timing: bool,
    /// Degrade the scheduler to strict submission-order FIFO (no gap
    /// filling on the bus or the activate windows). Kept for the ablation
    /// quantifying what Most-Pending-class reordering buys.
    pub strict_fifo: bool,
    /// Speed-bin factor (1.0 = the baseline bin; 1.16 = 16% faster I/O,
    /// §V-D). Scales burst time down and IDD currents up.
    pub speed_factor: f64,
}

impl MemoryConfig {
    /// A memory system of `channels` x `ranks_per_channel` identical ranks
    /// with DDR3-1066-class timing for the rank's widest device.
    pub fn new(
        channels: usize,
        ranks_per_channel: usize,
        rank: RankConfig,
        line_bytes: usize,
    ) -> MemoryConfig {
        let timing = TimingParams::ddr3_1ghz(rank.widest());
        MemoryConfig {
            channels,
            ranks_per_channel,
            banks_per_rank: 8,
            rank,
            timing,
            line_bytes,
            powerdown_threshold: 16,
            map_policy: MapPolicy::HighPerformance,
            row_policy: RowPolicy::ClosePage,
            model_refresh_timing: false,
            strict_fifo: false,
            speed_factor: 1.0,
        }
    }

    /// Data-bus cycles one line transfer occupies: every organization in
    /// Table II moves its whole line in a single burst-of-8 — wider lines
    /// ride proportionally wider ranks (128B lines on 144-bit-data ranks),
    /// which is exactly why the paper holds total pin count equal instead.
    pub fn burst_cycles(&self) -> u64 {
        self.effective_timing().t_burst
    }

    /// Timing adjusted for the configured speed bin.
    pub fn effective_timing(&self) -> TimingParams {
        if self.speed_factor > 1.0 {
            self.timing.speed_scaled(self.speed_factor)
        } else {
            self.timing
        }
    }

    /// Total memory I/O pins (data bus width x channels) — the equivalence
    /// constraint of the paper's Table II.
    pub fn total_pins(&self) -> usize {
        self.rank.width_bits() * self.channels
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn device_widths() {
        assert_eq!(DeviceKind::X4.width(), 4);
        assert_eq!(DeviceKind::X8.width(), 8);
        assert_eq!(DeviceKind::X8Half.width(), 8);
        assert_eq!(DeviceKind::X16.width(), 16);
    }

    #[test]
    fn lotecc5_rank_is_72_bits() {
        let r = RankConfig::lotecc5();
        assert_eq!(r.chips(), 5);
        assert_eq!(r.width_bits(), 72);
        assert_eq!(r.widest(), DeviceKind::X16);
    }

    #[test]
    fn commercial_ranks_bus_widths() {
        assert_eq!(RankConfig::uniform(DeviceKind::X4, 36).width_bits(), 144);
        assert_eq!(RankConfig::uniform(DeviceKind::X4, 18).width_bits(), 72);
        assert_eq!(RankConfig::uniform(DeviceKind::X8, 9).width_bits(), 72);
        assert_eq!(RankConfig::uniform(DeviceKind::X4, 45).width_bits(), 180);
    }

    #[test]
    fn x16_timing_class_is_slower() {
        let narrow = TimingParams::ddr3_1ghz(DeviceKind::X4);
        let wide = TimingParams::ddr3_1ghz(DeviceKind::X16);
        assert!(wide.t_faw > narrow.t_faw);
        assert!(wide.t_rrd > narrow.t_rrd);
    }

    #[test]
    fn burst_is_one_burst_of_eight_for_every_organization() {
        let c64 = MemoryConfig::new(4, 2, RankConfig::uniform(DeviceKind::X8, 9), 64);
        let c128 = MemoryConfig::new(2, 1, RankConfig::uniform(DeviceKind::X4, 36), 128);
        assert_eq!(c64.burst_cycles(), 4);
        assert_eq!(c128.burst_cycles(), 4, "wider rank, same burst occupancy");
    }

    #[test]
    fn speed_bin_shortens_bursts_and_raises_currents() {
        let t = TimingParams::ddr3_1ghz(DeviceKind::X4);
        let fast = t.speed_scaled(1.16);
        assert!(fast.t_burst < t.t_burst);
        assert_eq!(fast.t_rcd, t.t_rcd, "analog core timings hold");
        let p = DevicePower::for_kind(DeviceKind::X4);
        let pf = p.speed_scaled(1.16);
        assert!(pf.idd4r > p.idd4r * 1.16, "burst current superlinear");
        assert!(pf.idd3n > p.idd3n && pf.idd3n < p.idd3n * 1.16);
        // background power strictly rises with the bin (the EPI cost the
        // paper cites comes mostly from here plus the superlinear bursts)
        assert!(pf.idd2p > p.idd2p && pf.idd2n > p.idd2n);
    }

    #[test]
    fn table2_pin_equivalence() {
        // Quad-channel-equivalent systems: all chipkill organizations have
        // 576 total pins (Table II).
        let ck36 = MemoryConfig::new(4, 1, RankConfig::uniform(DeviceKind::X4, 36), 128);
        let ck18 = MemoryConfig::new(8, 1, RankConfig::uniform(DeviceKind::X4, 18), 64);
        let lot5 = MemoryConfig::new(8, 4, RankConfig::lotecc5(), 64);
        let lot9 = MemoryConfig::new(8, 2, RankConfig::uniform(DeviceKind::X8, 9), 64);
        assert_eq!(ck36.total_pins(), 576);
        assert_eq!(ck18.total_pins(), 576);
        assert_eq!(lot5.total_pins(), 576);
        assert_eq!(lot9.total_pins(), 576);
        // RAIM rows: 720 pins at quad-equivalent.
        let raim = MemoryConfig::new(4, 1, RankConfig::uniform(DeviceKind::X4, 45), 128);
        let raim_p = MemoryConfig::new(10, 1, RankConfig::uniform(DeviceKind::X4, 18), 64);
        assert_eq!(raim.total_pins(), 720);
        assert_eq!(raim_p.total_pins(), 720);
    }
}
