//! The multi-channel memory system: channels + address mapping + aggregate
//! energy/latency statistics.

use crate::channel::{Channel, ChannelStats};
use crate::config::MemoryConfig;
use crate::mapping::AddressMapping;
use crate::power::EnergyBreakdown;
use serde::{Deserialize, Serialize};

pub use crate::channel::Completion;

/// One line-sized memory request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemRequest {
    /// Flat line address (decoded by the system's [`AddressMapping`]).
    pub line_addr: u64,
    /// Write (true) or read (false).
    pub is_write: bool,
    /// Arrival cycle at the memory controller.
    pub arrival: u64,
}

/// Aggregate statistics over all channels.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct SystemStats {
    /// Reads completed.
    pub reads: u64,
    /// Writes completed.
    pub writes: u64,
    /// Sum over requests of (finish - arrival).
    pub total_latency: u64,
    /// Sum over requests of scheduling delay.
    pub total_queue_delay: u64,
}

impl SystemStats {
    /// Total requests completed (reads + writes).
    pub fn accesses(&self) -> u64 {
        self.reads + self.writes
    }

    /// Mean request latency in memory cycles.
    pub fn avg_latency(&self) -> f64 {
        if self.accesses() == 0 {
            0.0
        } else {
            self.total_latency as f64 / self.accesses() as f64
        }
    }

    fn add(&mut self, c: &ChannelStats) {
        self.reads += c.reads;
        self.writes += c.writes;
        self.total_latency += c.total_latency;
        self.total_queue_delay += c.total_queue_delay;
    }
}

/// A complete multi-channel DRAM system.
///
/// ```
/// use dram_sim::{DeviceKind, MemRequest, MemoryConfig, MemorySystem, RankConfig};
///
/// let cfg = MemoryConfig::new(4, 2, RankConfig::uniform(DeviceKind::X8, 9), 64);
/// let mut mem = MemorySystem::new(cfg);
/// let done = mem.submit(MemRequest { line_addr: 42, is_write: false, arrival: 0 });
/// assert!(done.finish > done.act);
/// mem.finalize(10_000);
/// assert!(mem.energy().total_pj() > 0.0);
/// ```
pub struct MemorySystem {
    channels: Vec<Channel>,
    mapping: AddressMapping,
    config: MemoryConfig,
    finalized_at: Option<u64>,
}

impl MemorySystem {
    /// A system of `config.channels` independent channels.
    pub fn new(config: MemoryConfig) -> MemorySystem {
        let mut mapping = AddressMapping::new(
            config.channels,
            config.ranks_per_channel,
            config.banks_per_rank,
            config.line_bytes,
        );
        mapping.policy = config.map_policy;
        let channels = (0..config.channels)
            .map(|_| Channel::new(config.clone()))
            .collect();
        MemorySystem {
            channels,
            mapping,
            config,
            finalized_at: None,
        }
    }

    /// The configuration the system was built from.
    pub fn config(&self) -> &MemoryConfig {
        &self.config
    }

    /// The address decode this system applies to flat line addresses.
    pub fn mapping(&self) -> &AddressMapping {
        &self.mapping
    }

    /// Submit a request by flat line address.
    pub fn submit(&mut self, req: MemRequest) -> Completion {
        let la = self.mapping.map(req.line_addr);
        self.channels[la.channel].schedule_row(la.rank, la.bank, la.row, req.is_write, req.arrival)
    }

    /// Submit a request with explicit coordinates (the scheme glue uses this
    /// for ECC lines whose placement it controls).
    pub fn submit_mapped(
        &mut self,
        channel: usize,
        rank: usize,
        bank: usize,
        is_write: bool,
        arrival: u64,
    ) -> Completion {
        self.channels[channel].schedule(rank, bank, is_write, arrival)
    }

    /// Which channel a flat line address belongs to.
    pub fn channel_of(&self, line_addr: u64) -> usize {
        self.mapping.map(line_addr).channel
    }

    /// Close the books: bill trailing background and refresh energy.
    /// Idempotent per end cycle; must be called before [`Self::energy`].
    pub fn finalize(&mut self, end_cycle: u64) {
        assert!(
            self.finalized_at.is_none(),
            "memory system already finalized"
        );
        for ch in &mut self.channels {
            ch.finalize(end_cycle);
        }
        self.finalized_at = Some(end_cycle);
    }

    /// Total energy. Panics if [`Self::finalize`] has not run (background
    /// and refresh energy would be missing, silently skewing EPI numbers).
    pub fn energy(&self) -> EnergyBreakdown {
        assert!(
            self.finalized_at.is_some(),
            "call finalize(end_cycle) before reading energy"
        );
        let mut e = EnergyBreakdown::default();
        for ch in &self.channels {
            e.add(&ch.energy());
        }
        e
    }

    /// Aggregate statistics across all channels.
    pub fn stats(&self) -> SystemStats {
        let mut s = SystemStats::default();
        for ch in &self.channels {
            s.add(ch.stats());
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{DeviceKind, RankConfig};

    fn system() -> MemorySystem {
        MemorySystem::new(MemoryConfig::new(
            4,
            2,
            RankConfig::uniform(DeviceKind::X8, 9),
            64,
        ))
    }

    #[test]
    fn requests_route_to_mapped_channel() {
        let mut sys = system();
        let lpp = sys.mapping().lines_per_row;
        for p in 0..4u64 {
            sys.submit(MemRequest {
                line_addr: p * lpp,
                is_write: false,
                arrival: 0,
            });
        }
        // one access per channel
        let s = sys.stats();
        assert_eq!(s.reads, 4);
        sys.finalize(1000);
        assert!(sys.energy().total_pj() > 0.0);
    }

    #[test]
    fn parallel_channels_overlap_in_time() {
        let mut sys = system();
        let lpp = sys.mapping().lines_per_row;
        let c0 = sys.submit(MemRequest {
            line_addr: 0,
            is_write: false,
            arrival: 0,
        });
        let c1 = sys.submit(MemRequest {
            line_addr: lpp, // next page, next channel
            is_write: false,
            arrival: 0,
        });
        assert_eq!(c0.finish, c1.finish, "independent channels don't serialize");
    }

    #[test]
    #[should_panic(expected = "finalize")]
    fn energy_requires_finalize() {
        let sys = system();
        let _ = sys.energy();
    }

    #[test]
    #[should_panic(expected = "already finalized")]
    fn double_finalize_rejected() {
        let mut sys = system();
        sys.finalize(10);
        sys.finalize(20);
    }

    #[test]
    fn stats_aggregate_across_channels() {
        let mut sys = system();
        for a in 0..100u64 {
            sys.submit(MemRequest {
                line_addr: a * 7,
                is_write: a % 3 == 0,
                arrival: a * 2,
            });
        }
        let s = sys.stats();
        assert_eq!(s.accesses(), 100);
        assert!(s.avg_latency() > 0.0);
    }

    #[test]
    fn idle_system_energy_is_background_only() {
        let mut sys = system();
        sys.finalize(1_000_000);
        let e = sys.energy();
        assert_eq!(e.dynamic_pj(), 0.0);
        assert!(e.background_pj() > 0.0);
        // Mostly sleep: close-page + power-down on an idle system.
        assert!(e.bg_sleep_pj > e.bg_standby_pj);
    }
}
