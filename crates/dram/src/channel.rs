//! One memory channel: banks, ranks, the shared data bus, and the
//! close-page scheduler.
//!
//! The model is *timestamp algebra*: instead of stepping every cycle, each
//! resource (bank, rank activate window, data bus) carries the earliest
//! cycle it can next be used, and a request's activate/read/write/precharge
//! times are computed directly from those constraints. With the close-page
//! policy every access is an ACT + RD/WR-with-autoprecharge pair, so there
//! is no row-hit state to track and per-rank activate ordering is monotone
//! — which lets background-energy residency (active / standby / sleep) be
//! billed incrementally with simple watermarks.

use crate::config::{MemoryConfig, RowPolicy};
use crate::power::PowerModel;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Completion report for one scheduled request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Completion {
    /// Cycle the activate command issued.
    pub act: u64,
    /// Cycle the first data beat transfers.
    pub data_start: u64,
    /// Cycle the request finished (read data delivered / write data taken).
    pub finish: u64,
}

#[derive(Debug, Clone, Copy, Default)]
struct BankState {
    /// Earliest cycle the bank can accept the next activate.
    next_act: u64,
    /// Open-page state: the currently open row and the earliest cycle the
    /// next column command to it may issue.
    open_row: Option<u64>,
    cas_ready: u64,
}

struct RankState {
    banks: Vec<BankState>,
    /// Granted activate slots: gap-filled so a younger request to a free
    /// bank can activate before an older, bank-blocked one (reordering
    /// scheduler). Slot width `act_slot` enforces both tRRD (pairwise
    /// activate spacing) and tFAW (at most four activates per tFAW window,
    /// via width >= tFAW/4).
    act_slots: BusLedger,
    act_slot: u64,
    /// Watermark: latest cycle any bank of this rank is busy through.
    active_until: u64,
    /// Open-page mode: cycle the rank first became row-open (it then stays
    /// in active standby until finalize — open rows pin CKE high).
    open_since: Option<u64>,
    power: PowerModel,
}

impl RankState {
    fn new(config: &MemoryConfig) -> RankState {
        let t = &config.timing;
        RankState {
            banks: vec![BankState::default(); config.banks_per_rank],
            act_slots: if config.strict_fifo {
                BusLedger::strict()
            } else {
                BusLedger::new()
            },
            act_slot: t.t_rrd.max(t.t_faw.div_ceil(4)),
            active_until: 0,
            open_since: None,
            power: PowerModel::with_speed(&config.rank, &config.timing, config.speed_factor),
        }
    }

    /// Bill background residency for the idle gap `[from, to)` given the
    /// power-down threshold, and return any wake-up penalty that delays the
    /// next activate.
    fn bill_idle(&mut self, from: u64, to: u64, threshold: u64, t_xp: u64) -> u64 {
        if to <= from {
            return 0;
        }
        let gap = to - from;
        if gap > threshold + t_xp {
            // awake for `threshold`, asleep until woken `t_xp` before use
            self.power.record_standby_time(threshold + t_xp);
            self.power.record_sleep_time(gap - threshold - t_xp);
            t_xp
        } else {
            self.power.record_standby_time(gap);
            0
        }
    }
}

/// Gap-filling data-bus ledger: busy intervals kept sorted so a request
/// whose data is ready early can slot into a gap *before* a previously
/// scheduled (but later-in-time) transfer — the reordering a Most-Pending
/// scheduler actually performs. Without this, a single deferred write (e.g.
/// a parity read-modify-write) would act as a head-of-line bubble for every
/// subsequently submitted read.
#[derive(Debug, Default)]
struct BusLedger {
    /// Sorted, disjoint (start, end) busy intervals.
    busy: VecDeque<(u64, u64)>,
    /// Strict-FIFO mode: no gap filling — behave as a monotone watermark.
    strict: bool,
    watermark: u64,
}

impl BusLedger {
    /// Typical live-interval count stays in the low tens (pruning drops
    /// everything older than a few tRC); reserving up front keeps the hot
    /// reserve/prune path free of reallocation.
    const PREALLOC: usize = 64;

    fn new() -> Self {
        BusLedger {
            busy: VecDeque::with_capacity(Self::PREALLOC),
            strict: false,
            watermark: 0,
        }
    }

    fn strict() -> Self {
        BusLedger {
            strict: true,
            ..Self::new()
        }
    }

    /// Reserve `len` cycles starting no earlier than `earliest`; returns the
    /// start of the granted slot.
    fn reserve(&mut self, earliest: u64, len: u64) -> u64 {
        if self.strict {
            let t = earliest.max(self.watermark);
            self.watermark = t + len;
            return t;
        }
        let mut t = earliest;
        let mut pos = self.busy.len();
        for (i, &(s, e)) in self.busy.iter().enumerate() {
            if e <= t {
                continue;
            }
            if s >= t + len {
                pos = i;
                break;
            }
            // overlaps the candidate slot: push past this interval
            t = e;
        }
        if pos != self.busy.len() {
            // The request slotted into a gap ahead of an already-booked
            // later transfer — the reordering "scheduler pick" this ledger
            // models (vs. appending in submission order).
            obs::counter!("dram.sched.gap_fills").inc();
        }
        if pos == self.busy.len() {
            // find insertion point at the tail (t is past every conflict)
            pos = self.busy.partition_point(|&(s, _)| s < t);
        }
        self.busy.insert(pos, (t, t + len));
        t
    }

    /// Drop intervals that end before `horizon` (arrivals are near-monotone,
    /// so old intervals can never matter again).
    fn prune(&mut self, horizon: u64) {
        while let Some(&(_, e)) = self.busy.front() {
            if e < horizon {
                self.busy.pop_front();
            } else {
                break;
            }
        }
    }
}

/// Per-channel statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct ChannelStats {
    /// Read requests scheduled.
    pub reads: u64,
    /// Write requests scheduled.
    pub writes: u64,
    /// Sum over requests of (finish - arrival).
    pub total_latency: u64,
    /// Sum over requests of scheduling delay (act - arrival).
    pub total_queue_delay: u64,
}

/// One memory channel with its ranks and data bus.
pub struct Channel {
    config: MemoryConfig,
    ranks: Vec<RankState>,
    bus: BusLedger,
    stats: ChannelStats,
}

impl Channel {
    /// A channel with every bank idle and precharged at cycle 0.
    pub fn new(config: MemoryConfig) -> Channel {
        let ranks = (0..config.ranks_per_channel)
            .map(|_| RankState::new(&config))
            .collect();
        let bus = if config.strict_fifo {
            BusLedger::strict()
        } else {
            BusLedger::new()
        };
        Channel {
            config,
            ranks,
            bus,
            stats: ChannelStats::default(),
        }
    }

    /// Schedule one line access (close-page path; see
    /// [`Channel::schedule_row`] for the policy-dispatching entry point).
    pub fn schedule(
        &mut self,
        rank: usize,
        bank: usize,
        is_write: bool,
        arrival: u64,
    ) -> Completion {
        self.schedule_row(rank, bank, 0, is_write, arrival)
    }

    /// Schedule one line access to a specific row. Requests must be
    /// submitted in non-decreasing arrival order (the harness's event
    /// order). Under close page the row only matters for refresh-window
    /// avoidance; under open page it drives row hit/miss behaviour.
    pub fn schedule_row(
        &mut self,
        rank: usize,
        bank: usize,
        row: u64,
        is_write: bool,
        arrival: u64,
    ) -> Completion {
        if self.config.row_policy == RowPolicy::OpenPage {
            return self.schedule_open_page(rank, bank, row, is_write, arrival);
        }
        let t = self.config.effective_timing();
        let burst = self.config.burst_cycles();
        let threshold = self.config.powerdown_threshold;
        let r = &mut self.ranks[rank];

        // Earliest activate under bank / tRRD / tFAW constraints; the rank's
        // activate ledger gap-fills so younger requests aren't blocked by an
        // older request's bank conflict.
        let mut earliest = arrival.max(r.banks[bank].next_act);
        if self.config.model_refresh_timing {
            earliest = avoid_refresh_window(earliest, t.t_refi, t.t_rfc);
        }
        r.act_slots.prune(arrival.saturating_sub(4 * t.t_rc));
        let act = r.act_slots.reserve(earliest, r.act_slot);

        // Power-down wake-up, with idle-residency billing up to `act`.
        let wake = r.bill_idle(r.active_until, act, threshold, t.t_xp);
        let act = act + wake;

        // Column command and data-bus placement. The gap-filling ledger
        // models a reordering (Most-Pending-class) scheduler: an early-ready
        // transfer may use a bus gap before an already-booked later one.
        // (The rank-to-rank switch bubble tRTRS is folded into the ledger's
        // occupancy granularity.)
        let cas_latency = if is_write { t.t_cwl } else { t.t_cl };
        let mut rw_time = act + t.t_rcd;
        self.bus.prune(arrival.saturating_sub(4 * t.t_rc));
        // Writes book extra bus cycles for the write-to-read turnaround a
        // buffering controller amortizes (half of tWTR on average); reads
        // book the bare burst.
        let occupancy = if is_write { burst + t.t_wtr / 2 } else { burst };
        let data_start = self.bus.reserve(rw_time + cas_latency, occupancy);
        rw_time = data_start - cas_latency;
        let data_end = data_start + burst;

        // Close page: auto-precharge after the column access.
        let pre_done = if is_write {
            rw_time + t.t_cwl + burst + t.t_wr + t.t_rp
        } else {
            (act + t.t_ras).max(rw_time + burst.max(4) /* tRTP floor */) + t.t_rp
        };

        // Commit resource state.
        r.banks[bank].next_act = pre_done;
        // Energy: ACT + burst + active residency (union of busy windows).
        r.power.record_activate();
        if is_write {
            r.power.record_write_burst(burst);
        } else {
            r.power.record_read_burst(burst);
        }
        let active_from = act.max(r.active_until);
        if pre_done > active_from {
            r.power.record_active_time(pre_done - active_from);
        }
        r.active_until = r.active_until.max(pre_done);

        let finish = data_end;
        if is_write {
            self.stats.writes += 1;
        } else {
            self.stats.reads += 1;
        }
        self.stats.total_latency += finish - arrival;
        self.stats.total_queue_delay += act - arrival;

        if obs::metrics::enabled() {
            obs::counter!("dram.activates").inc();
            if is_write {
                obs::counter!("dram.writes").inc();
            } else {
                obs::counter!("dram.reads").inc();
            }
            obs::histogram!("dram.queue_delay").observe(act - arrival);
            obs::histogram!("dram.bus_occupancy").observe(self.bus.busy.len() as u64);
            obs::gauge!("dram.bus_occupancy_peak").set_max(self.bus.busy.len() as u64);
        }

        Completion {
            act,
            data_start,
            finish,
        }
    }

    /// Open-page scheduling: row hits skip the activate; row conflicts pay
    /// precharge + activate; open rows pin the rank in active standby.
    fn schedule_open_page(
        &mut self,
        rank: usize,
        bank: usize,
        row: u64,
        is_write: bool,
        arrival: u64,
    ) -> Completion {
        let t = self.config.effective_timing();
        let burst = self.config.burst_cycles();
        let r = &mut self.ranks[rank];
        let b = r.banks[bank];

        let (act, cas_earliest) = match b.open_row {
            Some(open) if open == row => {
                // Row hit: column command as soon as the bank allows.
                obs::counter!("dram.row_hits").inc();
                (None, arrival.max(b.cas_ready))
            }
            Some(_) => {
                // Conflict: precharge the open row, then activate the new one.
                obs::counter!("dram.row_conflicts").inc();
                let pre_start = arrival.max(b.cas_ready);
                let act_earliest = pre_start + t.t_rp;
                r.act_slots.prune(arrival.saturating_sub(4 * t.t_rc));
                let act = r.act_slots.reserve(act_earliest, r.act_slot);
                (Some(act), act + t.t_rcd)
            }
            None => {
                // Empty bank: plain activate.
                obs::counter!("dram.row_misses").inc();
                r.act_slots.prune(arrival.saturating_sub(4 * t.t_rc));
                let act = r.act_slots.reserve(arrival.max(b.next_act), r.act_slot);
                (Some(act), act + t.t_rcd)
            }
        };
        let mut cas_earliest = cas_earliest;
        if self.config.model_refresh_timing {
            cas_earliest = avoid_refresh_window(cas_earliest, t.t_refi, t.t_rfc);
        }

        let cas_latency = if is_write { t.t_cwl } else { t.t_cl };
        self.bus.prune(arrival.saturating_sub(4 * t.t_rc));
        let occupancy = if is_write { burst + t.t_wtr / 2 } else { burst };
        let data_start = self.bus.reserve(cas_earliest + cas_latency, occupancy);
        let rw_time = data_start - cas_latency;
        let data_end = data_start + burst;

        // Commit: the row stays open; tCCD-class spacing via cas_ready.
        let nb = &mut r.banks[bank];
        nb.open_row = Some(row);
        nb.cas_ready = rw_time
            + if is_write {
                t.t_cwl + burst + t.t_wr
            } else {
                burst
            };
        nb.next_act = nb.cas_ready + t.t_rp;

        // Energy: ACT only on misses; the rank stays in active standby from
        // its first open row until finalize (billed there).
        if act.is_some() {
            r.power.record_activate();
        }
        if is_write {
            r.power.record_write_burst(burst);
        } else {
            r.power.record_read_burst(burst);
        }
        let first_act = act.unwrap_or(rw_time);
        if r.open_since.is_none() {
            r.open_since = Some(first_act);
        }
        r.active_until = r.active_until.max(nb.cas_ready);

        let finish = data_end;
        if is_write {
            self.stats.writes += 1;
        } else {
            self.stats.reads += 1;
        }
        self.stats.total_latency += finish - arrival;
        self.stats.total_queue_delay += first_act.saturating_sub(arrival);

        if obs::metrics::enabled() {
            if act.is_some() {
                obs::counter!("dram.activates").inc();
            }
            if is_write {
                obs::counter!("dram.writes").inc();
            } else {
                obs::counter!("dram.reads").inc();
            }
            obs::histogram!("dram.queue_delay").observe(first_act.saturating_sub(arrival));
            obs::histogram!("dram.bus_occupancy").observe(self.bus.busy.len() as u64);
            obs::gauge!("dram.bus_occupancy_peak").set_max(self.bus.busy.len() as u64);
        }

        Completion {
            act: first_act,
            data_start,
            finish,
        }
    }

    /// Close the books at `end_cycle`: bill trailing idle residency and
    /// refresh energy for every rank.
    pub fn finalize(&mut self, end_cycle: u64) {
        let threshold = self.config.powerdown_threshold;
        for r in &mut self.ranks {
            if let Some(since) = r.open_since {
                // Open page: active standby from first activate to the end —
                // open rows keep CKE high (the energy cost the paper's
                // close-page choice avoids). Burst/activate windows already
                // billed nothing extra, so bill the whole span as active.
                if end_cycle > since {
                    r.power.record_active_time(end_cycle - since);
                }
                r.power.record_standby_time(since.min(end_cycle));
                r.power.finalize_refresh(end_cycle);
                continue;
            }
            let from = r.active_until;
            if end_cycle > from {
                let gap = end_cycle - from;
                if gap > threshold {
                    r.power.record_standby_time(threshold);
                    r.power.record_sleep_time(gap - threshold);
                } else {
                    r.power.record_standby_time(gap);
                }
            }
            r.power.finalize_refresh(end_cycle);
        }
    }

    /// Aggregate energy over all ranks of this channel.
    pub fn energy(&self) -> crate::power::EnergyBreakdown {
        let mut total = crate::power::EnergyBreakdown::default();
        for r in &self.ranks {
            total.add(r.power.energy());
        }
        total
    }

    /// Aggregate statistics since construction.
    pub fn stats(&self) -> &ChannelStats {
        &self.stats
    }

    /// The configuration this channel was built from.
    pub fn config(&self) -> &MemoryConfig {
        &self.config
    }
}

/// Push `t` past a per-rank refresh blackout window, if it lands in one.
/// Refresh is modeled as the first `t_rfc` cycles of every `t_refi` period.
fn avoid_refresh_window(t: u64, t_refi: u64, t_rfc: u64) -> u64 {
    let phase = t % t_refi;
    if phase < t_rfc {
        t - phase + t_rfc
    } else {
        t
    }
}

#[cfg(test)]
mod ledger_tests {
    use super::BusLedger;

    #[test]
    fn sequential_reservations_pack_tightly() {
        let mut l = BusLedger::default();
        assert_eq!(l.reserve(0, 4), 0);
        assert_eq!(l.reserve(0, 4), 4);
        assert_eq!(l.reserve(0, 4), 8);
    }

    #[test]
    fn early_request_fills_gap_before_later_booking() {
        let mut l = BusLedger::default();
        // a far-future booking...
        assert_eq!(l.reserve(100, 4), 100);
        // ...must not block an early one
        assert_eq!(l.reserve(0, 4), 0);
        // and a request that fits exactly between bookings takes the gap
        assert_eq!(l.reserve(2, 4), 4);
    }

    #[test]
    fn gap_too_small_pushes_past_interval() {
        let mut l = BusLedger::default();
        l.reserve(0, 4); // [0,4)
        l.reserve(6, 4); // [6,10)
                         // a 4-wide slot at >=1 doesn't fit in [4,6): lands at 10
        assert_eq!(l.reserve(1, 4), 10);
        // a 2-wide slot does fit the [4,6) gap
        assert_eq!(l.reserve(1, 2), 4);
    }

    #[test]
    fn reservations_never_overlap() {
        let mut l = BusLedger::default();
        let mut slots = vec![];
        let mut seed = 12345u64;
        for _ in 0..500 {
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
            let earliest = (seed >> 33) % 2000;
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
            let len = 1 + (seed >> 40) % 8;
            let start = l.reserve(earliest, len);
            assert!(start >= earliest);
            slots.push((start, start + len));
        }
        slots.sort();
        for w in slots.windows(2) {
            assert!(w[0].1 <= w[1].0, "overlap: {:?} vs {:?}", w[0], w[1]);
        }
    }

    #[test]
    fn prune_drops_only_dead_intervals() {
        let mut l = BusLedger::default();
        l.reserve(0, 4);
        l.reserve(10, 4);
        l.reserve(100, 4);
        l.prune(50);
        // intervals ending before 50 are gone; a request at 0 can reuse them
        assert_eq!(l.reserve(0, 4), 0);
        // the [100,104) booking survives
        assert_eq!(l.reserve(99, 8), 104);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{DeviceKind, RankConfig};

    fn channel(ranks: usize) -> Channel {
        let cfg = MemoryConfig::new(1, ranks, RankConfig::uniform(DeviceKind::X8, 9), 64);
        Channel::new(cfg)
    }

    #[test]
    fn unloaded_read_latency_is_act_rcd_cl_burst() {
        let mut ch = channel(1);
        let c = ch.schedule(0, 0, false, 0);
        let t = ch.config().timing;
        assert_eq!(c.act, 0);
        assert_eq!(c.data_start, t.t_rcd + t.t_cl);
        assert_eq!(c.finish, t.t_rcd + t.t_cl + 4);
    }

    #[test]
    fn same_bank_back_to_back_pays_trc_class_delay() {
        let mut ch = channel(1);
        let a = ch.schedule(0, 0, false, 0);
        let b = ch.schedule(0, 0, false, 0);
        assert!(
            b.act >= a.act + ch.config().timing.t_ras,
            "second ACT to same bank must wait for precharge: {} vs {}",
            b.act,
            a.act
        );
    }

    #[test]
    fn different_banks_pipeline_on_act_slots() {
        let mut ch = channel(1);
        let a = ch.schedule(0, 0, false, 0);
        let b = ch.schedule(0, 1, false, 0);
        let t = ch.config().timing;
        let slot = t.t_rrd.max(t.t_faw.div_ceil(4));
        assert_eq!(b.act, a.act + slot, "activates pipeline at the slot pitch");
        // bus serializes the bursts
        assert!(b.data_start >= a.data_start + 4);
    }

    #[test]
    fn tfaw_limits_activate_bursts() {
        let mut ch = channel(1);
        let mut acts = vec![];
        for bank in 0..5 {
            acts.push(ch.schedule(0, bank, false, 0).act);
        }
        let t = ch.config().timing;
        assert!(
            acts[4] >= acts[0] + t.t_faw,
            "fifth ACT within one rank must respect tFAW"
        );
    }

    #[test]
    fn rank_parallelism_beats_single_rank() {
        // Eight accesses over 4 ranks finish sooner than over 1 rank.
        let mut one = channel(1);
        let mut four = channel(4);
        let mut end_one = 0;
        let mut end_four = 0;
        for i in 0..8 {
            end_one = end_one.max(one.schedule(0, i % 8, false, 0).finish);
            end_four = end_four.max(four.schedule(i % 4, i % 8, false, 0).finish);
        }
        assert!(
            end_four <= end_one,
            "4 ranks ({end_four}) should not be slower than 1 ({end_one})"
        );
    }

    #[test]
    fn write_books_turnaround_padding_on_the_bus() {
        // The write occupies burst + tWTR/2 of bus; a read queued behind it
        // starts no earlier than that padded slot's end.
        let mut ch = channel(1);
        let w = ch.schedule(0, 0, true, 0);
        let r = ch.schedule(0, 1, false, 0);
        let t = ch.config().timing;
        assert!(
            r.data_start >= w.finish + t.t_wtr / 2,
            "read data {} vs write end {} + pad",
            r.data_start,
            w.finish
        );
    }

    #[test]
    fn idle_rank_sleeps_and_wakes_with_txp() {
        let mut ch = channel(1);
        let a = ch.schedule(0, 0, false, 0);
        // long idle gap, well past the power-down threshold
        let arrival = a.finish + 10_000;
        let b = ch.schedule(0, 1, false, arrival);
        assert!(
            b.act >= arrival + ch.config().timing.t_xp,
            "activate after sleep must pay wake-up"
        );
        ch.finalize(arrival + 1000);
        let e = ch.energy();
        assert!(e.bg_sleep_pj > 0.0, "sleep residency must be billed");
        assert!(e.bg_active_pj > 0.0);
        assert!(e.bg_standby_pj > 0.0);
    }

    #[test]
    fn energy_monotone_in_traffic() {
        let mut quiet = channel(2);
        let mut busy = channel(2);
        for i in 0..4u64 {
            quiet.schedule((i % 2) as usize, (i % 8) as usize, false, i * 100);
        }
        for i in 0..64u64 {
            busy.schedule((i % 2) as usize, (i % 8) as usize, i % 3 == 0, i * 10);
        }
        quiet.finalize(20_000);
        busy.finalize(20_000);
        assert!(busy.energy().dynamic_pj() > quiet.energy().dynamic_pj());
        assert!(busy.energy().total_pj() > quiet.energy().total_pj());
    }

    #[test]
    fn open_page_row_hits_skip_the_activate() {
        let mut cfg = MemoryConfig::new(1, 1, RankConfig::uniform(DeviceKind::X8, 9), 64);
        cfg.row_policy = crate::config::RowPolicy::OpenPage;
        let mut ch = Channel::new(cfg);
        let t = ch.config().timing;
        let a = ch.schedule_row(0, 0, 7, false, 0);
        // same row: hit — data comes back a full tRCD sooner than a fresh
        // activate would allow
        let b = ch.schedule_row(0, 0, 7, false, a.finish + 10);
        assert!(
            b.data_start - (a.finish + 10) < t.t_rcd + t.t_cl + 2,
            "row hit must skip tRCD: latency {}",
            b.data_start - (a.finish + 10)
        );
        // different row: conflict — precharge + activate first
        let c = ch.schedule_row(0, 0, 9, false, b.finish + 10);
        assert!(
            c.data_start - (b.finish + 10) >= t.t_rp + t.t_rcd + t.t_cl,
            "row conflict must pay tRP + tRCD"
        );
    }

    #[test]
    fn open_page_forfeits_sleep_residency() {
        // The paper's justification for close page: it lets idle ranks
        // sleep. Same sparse traffic, both policies; only close page may
        // accumulate sleep energy.
        let mk = |policy| {
            let mut cfg = MemoryConfig::new(1, 1, RankConfig::uniform(DeviceKind::X8, 9), 64);
            cfg.row_policy = policy;
            let mut ch = Channel::new(cfg);
            for i in 0..20u64 {
                ch.schedule_row(0, (i % 8) as usize, 3, false, i * 2_000);
            }
            ch.finalize(60_000);
            ch.energy()
        };
        let close = mk(crate::config::RowPolicy::ClosePage);
        let open = mk(crate::config::RowPolicy::OpenPage);
        assert!(
            close.bg_sleep_pj > 0.0,
            "close page sleeps between accesses"
        );
        assert_eq!(open.bg_sleep_pj, 0.0, "open rows pin CKE high");
        assert!(
            open.background_pj() > 1.5 * close.background_pj(),
            "open page background {} must dwarf close page {}",
            open.background_pj(),
            close.background_pj()
        );
        // but open page saves activates on row hits
        assert!(open.activate_pj <= close.activate_pj);
    }

    #[test]
    fn refresh_windows_push_activates_when_modeled() {
        let mut cfg = MemoryConfig::new(1, 1, RankConfig::uniform(DeviceKind::X8, 9), 64);
        cfg.model_refresh_timing = true;
        let mut ch = Channel::new(cfg);
        let t = ch.config().timing;
        // arrival inside the refresh blackout at the start of a tREFI period
        let arrival = 2 * t.t_refi + 5;
        let c = ch.schedule(0, 0, false, arrival);
        assert!(
            c.act >= 2 * t.t_refi + t.t_rfc,
            "activate must wait out the refresh: act {} vs window end {}",
            c.act,
            2 * t.t_refi + t.t_rfc
        );
    }

    #[test]
    fn stats_count_reads_and_writes() {
        let mut ch = channel(1);
        ch.schedule(0, 0, false, 0);
        ch.schedule(0, 1, true, 0);
        ch.schedule(0, 2, true, 0);
        assert_eq!(ch.stats().reads, 1);
        assert_eq!(ch.stats().writes, 2);
        assert!(ch.stats().total_latency > 0);
    }

    #[test]
    fn any_line_size_is_one_burst_of_eight() {
        // A 128B line rides a rank with twice the data pins: same burst
        // occupancy, half the channels (the paper's pin-equivalence).
        let cfg64 = MemoryConfig::new(1, 1, RankConfig::uniform(DeviceKind::X4, 18), 64);
        let cfg128 = MemoryConfig::new(1, 1, RankConfig::uniform(DeviceKind::X4, 36), 128);
        let mut ch64 = Channel::new(cfg64);
        let mut ch128 = Channel::new(cfg128);
        let a64 = ch64.schedule(0, 0, false, 0);
        let a128 = ch128.schedule(0, 0, false, 0);
        assert_eq!(a128.finish - a128.data_start, a64.finish - a64.data_start);
    }
}
