//! # eccparity-bench — the paper-reproduction harness
//!
//! One binary per table/figure of the paper (see DESIGN.md's experiment
//! index); this library holds the shared machinery: running the full
//! scheme x workload simulation matrix in parallel, aggregating per-bin
//! statistics, and rendering aligned text tables with the paper's reported
//! values alongside ours.

#![warn(missing_docs)]

pub mod cache;
pub mod chaos;
pub mod distrib;
pub mod faultcampaign;
pub mod harness;
pub mod hash;
pub mod lease;
pub mod provenance;
pub mod supervisor;

pub use cache::{cached_run, print_cache_summary, RunCache, MODEL_VERSION};
pub use distrib::{run_worker, supervise_distributed, WorkerOptions};
pub use harness::*;
pub use provenance::RunMeter;
pub use supervisor::{supervise, OutcomeClass, Shard, SupervisedRun, SupervisorConfig};
