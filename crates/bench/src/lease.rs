//! Crash-safe shard leases for multi-process campaign workers.
//!
//! A distributed campaign (see [`crate::distrib`]) runs several
//! `eccparity-worker` processes against one checkpoint journal. Before a
//! worker executes a shard it must *claim* it here: a lease file in
//! `<ckpt-dir>/<campaign>.leases/` names the owner (pid + per-claim
//! nonce), proves liveness (heartbeat mtime), and carries a **monotonic
//! fencing token** that makes zombie writers harmless.
//!
//! The protocol:
//!
//! * **Acquire** ([`try_claim`]): write the lease body to a unique temp
//!   file, fsync, then `hard_link` it to the lease path. `link(2)` fails
//!   with `EEXIST` if anyone else got there first, so acquisition is a
//!   true atomic test-and-set on every POSIX filesystem — no
//!   read-modify-write window. A fresh claim starts at fencing token 1.
//! * **Heartbeat** ([`Lease::heartbeat`]): bump the lease file's mtime
//!   (after re-verifying the nonce, so a stolen lease is detected rather
//!   than resurrected). A lease whose mtime is older than
//!   `ECC_PARITY_LEASE_TTL_MS` is *expired*.
//! * **Steal**: a claimant finding an existing lease checks staleness —
//!   owner pid dead (`/proc/<pid>` gone) or heartbeat expired. Stale
//!   leases are overwritten via tmp+fsync+rename with `token + 1`, then
//!   read back: only the claimant whose nonce survived the rename race
//!   holds the lease. The token bump is what fences the previous owner: a
//!   zombie that wakes up and publishes its result does so under the old
//!   token, and journal distillation keeps the highest-token record
//!   (`supervisor.journal.superseded`).
//! * **Release** ([`Lease::release`]): verify nonce, remove the file.
//!
//! Two stealers can race the rename and transiently both believe they
//! won with the same token; the next heartbeat or the pre-publish
//! [`Lease::still_owned`] check demotes the loser
//! (`supervisor.lease.lost`), and because shard work is deterministic an
//! equal-token double publish is byte-identical anyway — journal replay
//! resolves it last-valid-wins.
//!
//! Every transition is attributed through `obs`: `supervisor.lease.
//! {claimed, stolen_dead_pid, stolen_expired, claim_conflicts,
//! heartbeats, lost, released, requeued}`.

use crate::hash::fnv1a64;
use serde::{Deserialize, Serialize};
use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, SystemTime};

/// Schema stamped into every lease file.
pub const LEASE_SCHEMA: &str = "eccparity-lease-v1";

/// Timing knobs for the lease protocol, read from the environment once
/// per call site via [`LeaseConfig::from_env`].
#[derive(Debug, Clone, Copy)]
pub struct LeaseConfig {
    /// A lease whose mtime is older than this is stealable even if the
    /// owner pid is alive (wedged worker). `ECC_PARITY_LEASE_TTL_MS`,
    /// default 2000.
    pub ttl: Duration,
    /// How often owners refresh the lease mtime. Must be well under
    /// `ttl` or healthy workers get robbed. `ECC_PARITY_HEARTBEAT_MS`,
    /// default 300.
    pub heartbeat: Duration,
}

impl Default for LeaseConfig {
    fn default() -> Self {
        LeaseConfig {
            ttl: Duration::from_millis(2000),
            heartbeat: Duration::from_millis(300),
        }
    }
}

impl LeaseConfig {
    /// Build from `ECC_PARITY_LEASE_TTL_MS` / `ECC_PARITY_HEARTBEAT_MS`,
    /// falling back to the defaults on unset or unparsable values.
    pub fn from_env() -> LeaseConfig {
        fn ms(var: &str, default: u64) -> Duration {
            let v = std::env::var(var)
                .ok()
                .and_then(|v| v.trim().parse::<u64>().ok())
                .unwrap_or(default);
            Duration::from_millis(v.max(1))
        }
        LeaseConfig {
            ttl: ms("ECC_PARITY_LEASE_TTL_MS", 2000),
            heartbeat: ms("ECC_PARITY_HEARTBEAT_MS", 300),
        }
    }
}

/// On-disk lease body (`eccparity-lease-v1`), one JSON object per file.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LeaseFile {
    /// Always [`LEASE_SCHEMA`].
    pub schema: String,
    /// Shard name the lease covers (journal shard key, unsanitized).
    pub shard: String,
    /// Owner process id, used for dead-owner detection via `/proc`.
    pub pid: u32,
    /// Per-claim unique value; distinguishes two claims by the same pid
    /// (worker threads in tests) and arbitrates rename races on steal.
    pub nonce: u64,
    /// Monotonic fencing token: 1 on first claim, +1 per steal. Journal
    /// records published under a lower token than a later record for the
    /// same shard are superseded at replay.
    pub token: u64,
}

/// A successfully claimed lease, held by this process.
#[derive(Debug, Clone)]
pub struct Lease {
    /// Path of the lease file in the campaign's lease directory.
    pub path: PathBuf,
    /// Shard name the lease covers.
    pub shard: String,
    /// Fencing token this claim holds; stamp it into the journal record.
    pub token: u64,
    nonce: u64,
}

/// Outcome of a [`try_claim`] attempt.
#[derive(Debug)]
pub enum ClaimOutcome {
    /// We hold the lease; execute the shard and publish under its token.
    Claimed(Lease),
    /// Someone else holds a live lease; pick another shard.
    Busy,
    /// The lease looked stale but another claimant won the steal race;
    /// back off before rescanning.
    Conflict,
}

/// Directory holding one lease file per in-flight shard of `campaign`.
pub fn lease_dir(ckpt_dir: &Path, campaign: &str) -> PathBuf {
    ckpt_dir.join(format!("{campaign}.leases"))
}

/// Lease-file path for `shard`. Shard names carry `:`/`[`/`+` freely, so
/// the filename is a sanitized prefix plus a hash for uniqueness.
pub fn lease_path(dir: &Path, shard: &str) -> PathBuf {
    let safe: String = shard
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .take(48)
        .collect();
    dir.join(format!("{safe}-{:016x}.lease", fnv1a64(shard.as_bytes())))
}

/// Is `pid` an existing process? Linux answers via `/proc`; elsewhere we
/// conservatively say yes, so only heartbeat expiry steals leases.
pub fn pid_alive(pid: u32) -> bool {
    if cfg!(target_os = "linux") {
        Path::new(&format!("/proc/{pid}")).exists()
    } else {
        true
    }
}

/// Process-global claim sequence; combined with the pid it makes every
/// claim's nonce unique across the fleet.
fn next_nonce() -> u64 {
    static SEQ: AtomicU64 = AtomicU64::new(1);
    let seq = SEQ.fetch_add(1, Ordering::Relaxed);
    ((std::process::id() as u64) << 32) ^ seq
}

fn counter_inc(name: &str) {
    match name {
        "claimed" => obs::counter!("supervisor.lease.claimed").inc(),
        "stolen_dead_pid" => obs::counter!("supervisor.lease.stolen_dead_pid").inc(),
        "stolen_expired" => obs::counter!("supervisor.lease.stolen_expired").inc(),
        "claim_conflicts" => obs::counter!("supervisor.lease.claim_conflicts").inc(),
        "heartbeats" => obs::counter!("supervisor.lease.heartbeats").inc(),
        "lost" => obs::counter!("supervisor.lease.lost").inc(),
        "released" => obs::counter!("supervisor.lease.released").inc(),
        "requeued" => obs::counter!("supervisor.lease.requeued").inc(),
        _ => unreachable!("unknown lease counter {name}"),
    }
}

/// Write `body` to a unique temp file in `dir`, fsync, return its path.
fn write_tmp(dir: &Path, body: &LeaseFile) -> std::io::Result<PathBuf> {
    let tmp = dir.join(format!(".tmp-{}-{:x}", std::process::id(), body.nonce));
    let json = serde_json::to_string(body).map_err(std::io::Error::other)?;
    let mut f = fs::File::create(&tmp)?;
    f.write_all(json.as_bytes())?;
    f.sync_all()?;
    Ok(tmp)
}

fn read_lease(path: &Path) -> Option<LeaseFile> {
    let raw = fs::read_to_string(path).ok()?;
    let lease: LeaseFile = serde_json::from_str(&raw).ok()?;
    (lease.schema == LEASE_SCHEMA).then_some(lease)
}

fn mtime_age(path: &Path) -> Option<Duration> {
    let meta = fs::metadata(path).ok()?;
    let mtime = meta.modified().ok()?;
    SystemTime::now().duration_since(mtime).ok()
}

/// Attempt to claim `shard` in `dir`, creating the directory if needed.
///
/// Returns [`ClaimOutcome::Claimed`] when this process now holds the
/// lease (fresh claim at token 1, or a steal at the previous token + 1),
/// [`ClaimOutcome::Busy`] when a live owner holds it, and
/// [`ClaimOutcome::Conflict`] when a steal race was lost.
pub fn try_claim(dir: &Path, shard: &str, cfg: &LeaseConfig) -> std::io::Result<ClaimOutcome> {
    fs::create_dir_all(dir)?;
    let path = lease_path(dir, shard);
    let nonce = next_nonce();
    let fresh = LeaseFile {
        schema: LEASE_SCHEMA.to_string(),
        shard: shard.to_string(),
        pid: std::process::id(),
        nonce,
        token: 1,
    };

    if !path.exists() {
        let tmp = write_tmp(dir, &fresh)?;
        match fs::hard_link(&tmp, &path) {
            Ok(()) => {
                let _ = fs::remove_file(&tmp);
                counter_inc("claimed");
                return Ok(ClaimOutcome::Claimed(Lease {
                    path,
                    shard: shard.to_string(),
                    token: 1,
                    nonce,
                }));
            }
            Err(e) if e.kind() == std::io::ErrorKind::AlreadyExists => {
                // Lost the create race; fall through to the staleness
                // check against whoever won.
                let _ = fs::remove_file(&tmp);
            }
            Err(e) => {
                let _ = fs::remove_file(&tmp);
                return Err(e);
            }
        }
    }

    // An unreadable lease can only come from outside interference (the
    // write path is tmp+fsync+rename/link); treat it as token-1 stale so
    // the steal below fences whatever wrote it.
    let current = read_lease(&path);
    let (cur_token, stale_reason) = match &current {
        Some(l) => {
            if !pid_alive(l.pid) {
                (l.token, Some("stolen_dead_pid"))
            } else if mtime_age(&path).is_some_and(|age| age > cfg.ttl) {
                (l.token, Some("stolen_expired"))
            } else {
                (l.token, None)
            }
        }
        None => {
            if !path.exists() {
                // Released between our exists() check and the read;
                // retry from the top on the caller's next scan.
                return Ok(ClaimOutcome::Conflict);
            }
            (1, Some("stolen_expired"))
        }
    };
    let Some(reason) = stale_reason else {
        return Ok(ClaimOutcome::Busy);
    };

    let stolen = LeaseFile {
        token: cur_token + 1,
        ..fresh
    };
    let tmp = write_tmp(dir, &stolen)?;
    fs::rename(&tmp, &path)?;
    // Read back: if another stealer renamed after us, its body is what
    // the file now holds and it owns the lease.
    match read_lease(&path) {
        Some(l) if l.nonce == nonce => {
            counter_inc(reason);
            Ok(ClaimOutcome::Claimed(Lease {
                path,
                shard: shard.to_string(),
                token: stolen.token,
                nonce,
            }))
        }
        _ => {
            counter_inc("claim_conflicts");
            Ok(ClaimOutcome::Conflict)
        }
    }
}

impl Lease {
    /// Refresh the lease mtime, proving liveness. Returns `false` (and
    /// counts `supervisor.lease.lost`) if the lease was stolen — the
    /// caller must stop work on the shard and not publish.
    pub fn heartbeat(&self) -> bool {
        if !self.still_owned() {
            return false;
        }
        let now = SystemTime::now();
        let ok = fs::File::options()
            .append(true)
            .open(&self.path)
            .and_then(|f| f.set_modified(now))
            .is_ok();
        if ok {
            counter_inc("heartbeats");
        }
        ok
    }

    /// Does the lease file still carry our nonce? Checked before every
    /// heartbeat and before publishing the shard result.
    pub fn still_owned(&self) -> bool {
        match read_lease(&self.path) {
            Some(l) if l.nonce == self.nonce => true,
            _ => {
                counter_inc("lost");
                false
            }
        }
    }

    /// Drop the claim after publishing: verify ownership, remove the
    /// file. Releasing a stolen lease is a no-op.
    pub fn release(self) {
        if let Some(l) = read_lease(&self.path) {
            if l.nonce == self.nonce {
                let _ = fs::remove_file(&self.path);
                counter_inc("released");
            }
        }
    }
}

/// Coordinator-side attribution of a dead worker's in-flight shards.
/// Returns the shard names whose lease `pid` still holds and counts them
/// as re-queued — but deliberately does NOT remove the lease files:
/// deleting one would reset its fencing token to 1 on the next claim,
/// erasing the history that fences zombie publishes (and re-arming
/// token-gated chaos faults into a kill loop). The dead pid alone makes
/// each lease instantly stealable, so the next scanning worker picks the
/// shard up with a token bump and no TTL wait.
pub fn requeue_leases_of(dir: &Path, pid: u32) -> Vec<String> {
    let mut requeued = Vec::new();
    let Ok(entries) = fs::read_dir(dir) else {
        return requeued;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.extension().and_then(|e| e.to_str()) != Some("lease") {
            continue;
        }
        if let Some(l) = read_lease(&path) {
            if l.pid == pid {
                counter_inc("requeued");
                requeued.push(l.shard);
            }
        }
    }
    requeued
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!(
            "eccparity-lease-{tag}-{}-{:x}",
            std::process::id(),
            next_nonce()
        ));
        fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn fresh_claim_then_busy_then_release() {
        let d = tmpdir("fresh");
        let cfg = LeaseConfig::default();
        let lease = match try_claim(&d, "campaign:shardA", &cfg).unwrap() {
            ClaimOutcome::Claimed(l) => l,
            other => panic!("expected claim, got {other:?}"),
        };
        assert_eq!(lease.token, 1);
        assert!(matches!(
            try_claim(&d, "campaign:shardA", &cfg).unwrap(),
            ClaimOutcome::Busy
        ));
        assert!(lease.heartbeat());
        let path = lease.path.clone();
        lease.release();
        assert!(!path.exists());
        // Released shard is claimable again, fresh token.
        match try_claim(&d, "campaign:shardA", &cfg).unwrap() {
            ClaimOutcome::Claimed(l) => assert_eq!(l.token, 1),
            other => panic!("expected re-claim, got {other:?}"),
        }
        let _ = fs::remove_dir_all(&d);
    }

    #[test]
    fn distinct_shards_do_not_collide() {
        let d = tmpdir("distinct");
        let cfg = LeaseConfig::default();
        let a = try_claim(&d, "campaign:Mode[+x2ch]:chunk0", &cfg).unwrap();
        let b = try_claim(&d, "campaign:Mode[+x2ch]:chunk1", &cfg).unwrap();
        assert!(matches!(a, ClaimOutcome::Claimed(_)));
        assert!(matches!(b, ClaimOutcome::Claimed(_)));
        let _ = fs::remove_dir_all(&d);
    }
}
