//! Crash-safe campaign supervision: checkpointed shards, watchdog
//! deadlines, bounded retry, and a structured failure ledger.
//!
//! Long-running bench work — the fault-injection campaign's trial blocks,
//! the soak harness's per-scheme runs, a comparison figure's 128
//! workload×scheme cells — restarts from zero on a crash without this
//! module. The supervisor shards such work into independently
//! checkpointable units:
//!
//! 1. Every shard's result is journaled to
//!    `results/checkpoints/<campaign>.journal.jsonl` the moment it
//!    completes. Each journal publish rewrites the record list to a temp
//!    file, fsyncs, and renames over the journal, so readers (including a
//!    post-crash resume) never observe a torn file; replay additionally
//!    tolerates a torn tail (records after the first damaged line are
//!    dropped) in case the file was truncated by outside forces.
//! 2. `ECC_PARITY_RESUME=1` replays the journal: shards with a valid,
//!    checksummed result are *not* re-executed — their recorded payloads
//!    deserialize to bit-identical results (the same serde round-trip the
//!    run cache already relies on), so final stdout is byte-identical to
//!    an uninterrupted run. Only shards that were in flight at the kill
//!    re-execute.
//! 3. Each shard attempt runs on its own thread under
//!    [`std::panic::catch_unwind`] with a watchdog deadline
//!    (`ECC_PARITY_SHARD_TIMEOUT_MS`); failures retry with exponential
//!    backoff up to `ECC_PARITY_SHARD_RETRIES` times. Outcomes classify as
//!    [`OutcomeClass::Completed`] / [`Retried`](OutcomeClass::Retried) /
//!    [`TimedOut`](OutcomeClass::TimedOut) /
//!    [`Panicked`](OutcomeClass::Panicked) /
//!    [`Poisoned`](OutcomeClass::Poisoned), with per-class `supervisor.*`
//!    counters and a JSONL failure ledger (schema
//!    [`FAILURES_SCHEMA`]) under `ECC_PARITY_JSON_DIR`.
//! 4. A shard that repeatedly kills the whole process (journal shows
//!    `poison_threshold` starts with no completion) is classified
//!    `Poisoned` and skipped instead of crash-looping the campaign.
//!
//! The chaos layer ([`crate::chaos`], `ECC_PARITY_CHAOS=<seed>`)
//! deterministically injects infrastructure faults — corrupt cache
//! entries, failed journal persists, first-attempt shard panics and
//! stalls — and `tests/supervisor_tests.rs::chaos_soak` proves a chaos run
//! converges to the fault-free results with zero lost shards.

use crate::chaos::Chaos;
use crate::hash::fnv1a64;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::mpsc;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Schema stamped into the checkpoint journal's header record.
pub const JOURNAL_SCHEMA: &str = "eccparity-journal-v1";

/// Schema stamped into every failure-ledger line.
pub const FAILURES_SCHEMA: &str = "eccparity-failures-v1";

// ---- journal ---------------------------------------------------------------

/// One record of the checkpoint journal (externally tagged JSON, one per
/// line).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum JournalRecord {
    /// First line: identifies the campaign and the exact work list. A
    /// resume against a journal whose header does not match starts fresh.
    Header {
        /// Always [`JOURNAL_SCHEMA`].
        schema: String,
        /// Campaign name (journal file stem).
        campaign: String,
        /// Caller-supplied identity of the work (config digest, knobs).
        config_key: String,
        /// Number of shards the campaign submits.
        total_shards: u64,
    },
    /// A shard began executing (written once per process-run of the
    /// shard, before its first attempt). A `ShardStart` with no matching
    /// `ShardDone` marks the shard as in-flight at a crash.
    ShardStart {
        /// Shard name.
        shard: String,
    },
    /// A shard reached a terminal class. Success classes carry the
    /// serialized result; `checksum` is FNV-1a over `payload`'s bytes.
    ShardDone {
        /// Shard name.
        shard: String,
        /// Terminal [`OutcomeClass`], as its string form.
        class: String,
        /// Attempts consumed (1 = clean first try).
        attempts: u32,
        /// Wall time of the successful (or final) attempt, milliseconds.
        wall_ms: u64,
        /// FNV-1a over `payload`.
        checksum: u64,
        /// Serialized shard result (empty for failure classes).
        payload: String,
        /// Fencing token of the lease under which the record was
        /// published (0 = single-process supervision, no lease). When two
        /// workers publish records for the same shard — a zombie whose
        /// lease was stolen plus the thief — the higher token wins and the
        /// lower is discarded as superseded (see [`distill_records`]).
        token: u64,
    },
    /// Every shard reached a terminal class; the campaign finished.
    RunComplete {
        /// Shards that completed or resumed successfully.
        succeeded: u64,
    },
}

/// Parse a journal file, tolerating damage anywhere: unparsable lines are
/// skipped and replay continues with the next line. A lone writer only
/// ever tears the tail (the whole file is republished atomically), but a
/// distributed campaign has many workers appending concurrently, so a torn
/// or interleaved line mid-file must not cost the records after it.
/// Returns the parsed records and whether any damaged line was skipped.
pub fn replay_journal(path: &Path) -> (Vec<JournalRecord>, bool) {
    let Ok(text) = std::fs::read_to_string(path) else {
        return (Vec::new(), false);
    };
    let mut records = Vec::new();
    let mut damaged = false;
    for line in text.lines() {
        if line.trim().is_empty() {
            continue;
        }
        match serde_json::from_str::<JournalRecord>(line) {
            Ok(rec) => records.push(rec),
            Err(_) => {
                damaged = true;
                obs::counter!("supervisor.journal.damaged_lines").inc();
            }
        }
    }
    (records, damaged)
}

/// Append one record to a journal as a single `O_APPEND` line write plus
/// fsync. This is the multi-writer publish path: every worker process of a
/// distributed campaign appends to the shared journal, and a one-line
/// append (unlike the whole-file republish of single-process supervision)
/// cannot clobber a concurrent writer's records. [`replay_journal`]'s
/// skip-damaged-lines tolerance covers the residual risk of two appends
/// interleaving bytes.
pub fn append_record(path: &Path, rec: &JournalRecord) -> std::io::Result<()> {
    use std::io::Write;
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir)?;
    }
    let mut line = serde_json::to_string(rec)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
    line.push('\n');
    let mut f = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)?;
    f.write_all(line.as_bytes())?;
    f.sync_all()
}

/// The append-only checkpoint journal with atomic whole-file publishes.
pub(crate) struct Journal {
    pub(crate) path: Option<PathBuf>,
    pub(crate) records: Vec<JournalRecord>,
    pub(crate) chaos: Chaos,
    pub(crate) persists: u64,
    pub(crate) write_failures: u64,
}

impl Journal {
    fn append(&mut self, rec: JournalRecord) {
        self.records.push(rec);
        self.persist();
    }

    /// Publish the full record list atomically: serialize every record as
    /// one JSON line, write to a pid-suffixed temp file, fsync, rename.
    /// Failures (real, or chaos-simulated ENOSPC) are counted and the run
    /// continues — the journal is a durability optimization, never a
    /// correctness dependency; the records stay in memory, so the next
    /// successful persist publishes everything.
    pub(crate) fn persist(&mut self) {
        let Some(path) = self.path.clone() else {
            return;
        };
        self.persists += 1;
        if self.chaos.fail_journal_write(self.persists) {
            self.note_write_failure(&path, "chaos: simulated ENOSPC");
            return;
        }
        let mut text = String::new();
        for rec in &self.records {
            match serde_json::to_string(rec) {
                Ok(line) => {
                    text.push_str(&line);
                    text.push('\n');
                }
                Err(e) => {
                    self.note_write_failure(&path, &format!("serialize: {e}"));
                    return;
                }
            }
        }
        let published = (|| -> std::io::Result<()> {
            use std::io::Write;
            if let Some(dir) = path.parent() {
                std::fs::create_dir_all(dir)?;
            }
            let tmp = path.with_extension(format!("tmp.{}", std::process::id()));
            let mut f = std::fs::File::create(&tmp)?;
            f.write_all(text.as_bytes())?;
            f.sync_all()?;
            drop(f);
            std::fs::rename(&tmp, &path)
        })();
        if let Err(e) = published {
            self.note_write_failure(&path, &e.to_string());
        }
    }

    fn note_write_failure(&mut self, path: &Path, why: &str) {
        self.write_failures += 1;
        obs::counter!("supervisor.journal_write_failures").inc();
        eprintln!(
            "supervisor: journal persist to {} failed ({why}); continuing without this checkpoint",
            path.display()
        );
    }
}

// ---- configuration ---------------------------------------------------------

/// Default per-attempt watchdog deadline (10 minutes — far above any
/// healthy shard, so it only fires on genuine hangs).
pub const DEFAULT_TIMEOUT_MS: u64 = 600_000;

/// Default extra attempts after the first.
pub const DEFAULT_RETRIES: u32 = 2;

/// Default base backoff between attempts (doubles per retry).
pub const DEFAULT_BACKOFF_MS: u64 = 50;

/// Default crash-loop guard: a shard seen in flight at this many process
/// deaths is poisoned instead of re-executed.
pub const DEFAULT_POISON_THRESHOLD: u32 = 3;

/// Knobs of one supervised campaign.
#[derive(Debug, Clone)]
pub struct SupervisorConfig {
    /// Campaign name: journal file stem, ledger stamp, summary label.
    pub campaign: String,
    /// Identity of the work list (model version, scale, trial counts…).
    /// A journal with a different key is discarded on resume.
    pub config_key: String,
    /// Checkpoint directory; `None` disables journaling entirely.
    pub dir: Option<PathBuf>,
    /// Resume from an existing journal instead of starting fresh.
    pub resume: bool,
    /// Watchdog deadline per attempt.
    pub timeout: Duration,
    /// Extra attempts after the first.
    pub retries: u32,
    /// Base backoff before a retry; doubles each further retry.
    pub backoff: Duration,
    /// Crash-loop guard (see [`DEFAULT_POISON_THRESHOLD`]).
    pub poison_threshold: u32,
    /// Shards allowed in flight at once.
    pub max_inflight: usize,
    /// Infrastructure-fault injector.
    pub chaos: Chaos,
    /// Failure-ledger path (`None` = no ledger file).
    pub failures_path: Option<PathBuf>,
}

/// Checkpoint directory: `ECC_PARITY_CHECKPOINT_DIR`, default
/// `results/checkpoints`.
pub fn checkpoint_dir() -> PathBuf {
    std::env::var("ECC_PARITY_CHECKPOINT_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|_| PathBuf::from("results/checkpoints"))
}

fn env_u64(name: &str, default: u64) -> u64 {
    match std::env::var(name) {
        Ok(v) => v.trim().parse().unwrap_or_else(|_| {
            eprintln!("supervisor: {name}={v:?} is not an integer; using {default}");
            default
        }),
        Err(_) => default,
    }
}

impl SupervisorConfig {
    /// The environment-configured setup every bench binary uses:
    /// checkpoints under [`checkpoint_dir`], resume via
    /// `ECC_PARITY_RESUME=1`, watchdog/retry knobs via
    /// `ECC_PARITY_SHARD_TIMEOUT_MS` / `ECC_PARITY_SHARD_RETRIES` /
    /// `ECC_PARITY_RETRY_BACKOFF_MS`, chaos via `ECC_PARITY_CHAOS`, and
    /// the failure ledger under `ECC_PARITY_JSON_DIR`.
    pub fn from_env(campaign: &str, config_key: String) -> SupervisorConfig {
        SupervisorConfig {
            campaign: campaign.to_string(),
            config_key,
            dir: Some(checkpoint_dir()),
            resume: std::env::var("ECC_PARITY_RESUME")
                .map(|v| v == "1")
                .unwrap_or(false),
            timeout: Duration::from_millis(env_u64(
                "ECC_PARITY_SHARD_TIMEOUT_MS",
                DEFAULT_TIMEOUT_MS,
            )),
            retries: env_u64("ECC_PARITY_SHARD_RETRIES", u64::from(DEFAULT_RETRIES)) as u32,
            backoff: Duration::from_millis(env_u64(
                "ECC_PARITY_RETRY_BACKOFF_MS",
                DEFAULT_BACKOFF_MS,
            )),
            poison_threshold: DEFAULT_POISON_THRESHOLD,
            max_inflight: std::thread::available_parallelism().map_or(4, |n| n.get()),
            chaos: crate::chaos::global(),
            failures_path: crate::harness::json_dir()
                .map(|d| d.join(format!("{campaign}.failures.jsonl"))),
        }
    }

    /// Filesystem-safe stem derived from the campaign name; every
    /// checkpoint-directory artifact (journal, lease dir, progress stamp)
    /// shares it so coordinator and workers agree on paths.
    fn stem(&self) -> String {
        self.campaign
            .chars()
            .map(|c| {
                if c.is_ascii_alphanumeric() || c == '-' || c == '_' {
                    c
                } else {
                    '_'
                }
            })
            .collect()
    }

    /// The journal file this configuration reads and writes, if
    /// journaling is enabled. Worker processes of a distributed campaign
    /// attach to the same path the coordinator publishes.
    pub fn journal_path(&self) -> Option<PathBuf> {
        let dir = self.dir.as_ref()?;
        Some(dir.join(format!("{}.journal.jsonl", self.stem())))
    }

    /// Directory of per-shard lease files for distributed workers.
    pub fn lease_dir(&self) -> Option<PathBuf> {
        let dir = self.dir.as_ref()?;
        Some(dir.join(format!("{}.leases", self.stem())))
    }

    /// Live progress stamp (`eccparity-progress-v1`) the coordinator
    /// republishes while a distributed campaign runs.
    pub fn progress_path(&self) -> Option<PathBuf> {
        let dir = self.dir.as_ref()?;
        Some(dir.join(format!("{}.progress.json", self.stem())))
    }
}

// ---- shards and outcomes ---------------------------------------------------

/// One independently checkpointable unit of work.
pub struct Shard<T> {
    /// Stable name: the journal key, so it must not change between a run
    /// and its resume.
    pub name: String,
    work: Arc<dyn Fn() -> T + Send + Sync + 'static>,
}

impl<T> Shard<T> {
    /// A shard running `work`. `work` may be invoked multiple times
    /// (retries) and must be deterministic for resume to be
    /// output-transparent.
    pub fn new(name: impl Into<String>, work: impl Fn() -> T + Send + Sync + 'static) -> Shard<T> {
        Shard {
            name: name.into(),
            work: Arc::new(work),
        }
    }

    /// Run the shard's work once, in the calling thread. Worker processes
    /// use this (under their own catch_unwind + watchdog machinery); the
    /// in-process scheduler below goes through the crate-private
    /// `work_arc` accessor instead so the closure can outlive an
    /// abandoned attempt thread.
    pub fn run(&self) -> T {
        (self.work)()
    }

    pub(crate) fn work_arc(&self) -> Arc<dyn Fn() -> T + Send + Sync + 'static> {
        Arc::clone(&self.work)
    }
}

impl<T> Clone for Shard<T> {
    fn clone(&self) -> Shard<T> {
        Shard {
            name: self.name.clone(),
            work: Arc::clone(&self.work),
        }
    }
}

/// Terminal classification of one shard.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OutcomeClass {
    /// Succeeded on the first attempt.
    Completed,
    /// Succeeded after at least one failed attempt.
    Retried,
    /// Every attempt exceeded the watchdog deadline.
    TimedOut,
    /// Every attempt panicked.
    Panicked,
    /// Skipped: the journal shows the shard was in flight at
    /// `poison_threshold` process deaths (crash-loop guard).
    Poisoned,
}

impl OutcomeClass {
    /// Stable string form (journal records, ledger lines, counters).
    pub fn as_str(self) -> &'static str {
        match self {
            OutcomeClass::Completed => "completed",
            OutcomeClass::Retried => "retried",
            OutcomeClass::TimedOut => "timed_out",
            OutcomeClass::Panicked => "panicked",
            OutcomeClass::Poisoned => "poisoned",
        }
    }

    /// Did the shard produce a result?
    pub fn is_success(self) -> bool {
        matches!(self, OutcomeClass::Completed | OutcomeClass::Retried)
    }

    fn from_str(s: &str) -> Option<OutcomeClass> {
        Some(match s {
            "completed" => OutcomeClass::Completed,
            "retried" => OutcomeClass::Retried,
            "timed_out" => OutcomeClass::TimedOut,
            "panicked" => OutcomeClass::Panicked,
            "poisoned" => OutcomeClass::Poisoned,
            _ => return None,
        })
    }
}

/// Final state of one shard after supervision.
pub struct ShardOutcome<T> {
    /// Shard name.
    pub name: String,
    /// Terminal classification.
    pub class: OutcomeClass,
    /// Attempts consumed this process-run (0 if resumed or poisoned).
    pub attempts: u32,
    /// True when the result came from the journal, not execution.
    pub resumed: bool,
    /// Wall time of the deciding attempt, in milliseconds.
    pub wall_ms: u64,
    /// The shard's result; `None` for failure classes.
    pub result: Option<T>,
}

/// Everything a supervised campaign produced, in submission order.
pub struct SupervisedRun<T> {
    /// Campaign name.
    pub campaign: String,
    /// One outcome per submitted shard, in submission order.
    pub outcomes: Vec<ShardOutcome<T>>,
}

impl<T> SupervisedRun<T> {
    /// Did every shard produce a result?
    pub fn all_succeeded(&self) -> bool {
        self.outcomes.iter().all(|o| o.class.is_success())
    }

    /// Names of shards that failed terminally.
    pub fn failed_shards(&self) -> Vec<&str> {
        self.outcomes
            .iter()
            .filter(|o| !o.class.is_success())
            .map(|o| o.name.as_str())
            .collect()
    }

    /// Successful results in submission order, consuming the run.
    ///
    /// A shard without a result is an infrastructure failure, not a bug in
    /// the caller, so this never panics: it reports every failed shard to
    /// stderr, flushes observability artifacts, and exits with status 3 —
    /// the same exit-code discipline as [`Self::exit_if_incomplete`]
    /// (1 validation failure / 2 usage error / 3 shard failure).
    pub fn into_results(self) -> Vec<T> {
        self.exit_if_incomplete();
        self.outcomes
            .into_iter()
            .map(|o| match o.result {
                Some(v) => v,
                None => {
                    // Unreachable after exit_if_incomplete, but keep the
                    // structured path rather than a panic if an outcome
                    // class and its result ever disagree.
                    eprintln!(
                        "supervisor: shard {} classified {} but carries no result",
                        o.name,
                        o.class.as_str()
                    );
                    obs::trace::flush();
                    std::process::exit(3);
                }
            })
            .collect()
    }

    /// Binary-facing guard: if any shard failed, print the failures to
    /// stderr and exit with status 3 — the "infrastructure failure" code,
    /// distinct from validation failure (1) and usage error (2).
    pub fn exit_if_incomplete(&self) {
        if self.all_succeeded() {
            return;
        }
        let failed = self.failed_shards().join(", ");
        eprintln!(
            "supervisor: {}: unrecoverable shard failures: {failed}",
            self.campaign
        );
        obs::metrics::write_snapshot_if_configured(&self.campaign);
        obs::trace::flush();
        std::process::exit(3);
    }
}

// ---- journal distillation --------------------------------------------------

/// One shard's settled state, distilled from its (possibly many) journal
/// records.
#[derive(Debug, Clone)]
pub struct DoneRecord {
    /// Terminal classification the publishing worker recorded.
    pub class: OutcomeClass,
    /// Attempts the publishing worker consumed.
    pub attempts: u32,
    /// Wall time of the deciding attempt, milliseconds.
    pub wall_ms: u64,
    /// Serialized result (empty for failure classes).
    pub payload: String,
    /// Fencing token the record was published under.
    pub token: u64,
}

/// A journal's records distilled into per-shard terminal state, tolerating
/// everything a fleet of crash-prone workers can leave behind: duplicate
/// done-records for one shard, zombie publishes from a superseded fencing
/// token, and payloads that fail their checksum.
#[derive(Debug, Default)]
pub struct JournalView {
    /// Shard name -> winning terminal record (any class). The winner among
    /// duplicates is the record with the highest fencing token;
    /// ties go to the latest record in file order (last-valid-wins).
    pub done: HashMap<String, DoneRecord>,
    /// Shard name -> `ShardStart`s with no matching `ShardDone` (times the
    /// shard was in flight at a process death).
    pub crash_counts: HashMap<String, u32>,
    /// Valid-but-losing duplicates discarded (stale fencing token or
    /// superseded by a later equal-token record).
    pub superseded: u64,
    /// Records whose payload failed its checksum, quarantined rather than
    /// trusted.
    pub quarantined: u64,
}

/// Distill journal records into per-shard terminal state. Duplicate
/// done-records resolve by fencing token (highest wins; equal tokens:
/// last-valid-wins), counted in `supervisor.journal.superseded`. A record
/// whose payload fails its FNV-1a checksum is never trusted: it is counted
/// in `supervisor.journal.quarantined` and, when `quarantine` names a
/// path, appended there as one JSON line for post-mortems.
pub fn distill_records(records: &[JournalRecord], quarantine: Option<&Path>) -> JournalView {
    let mut view = JournalView::default();
    for rec in records {
        match rec {
            JournalRecord::ShardStart { shard } => {
                *view.crash_counts.entry(shard.clone()).or_insert(0) += 1;
            }
            JournalRecord::ShardDone {
                shard,
                class,
                attempts,
                wall_ms,
                checksum,
                payload,
                token,
            } => {
                view.crash_counts
                    .entry(shard.clone())
                    .and_modify(|n| *n = n.saturating_sub(1));
                let Some(class) = OutcomeClass::from_str(class) else {
                    continue;
                };
                if *checksum != fnv1a64(payload.as_bytes()) {
                    view.quarantined += 1;
                    obs::counter!("supervisor.journal.quarantined").inc();
                    if let Some(qpath) = quarantine {
                        if let Ok(line) = serde_json::to_string(rec) {
                            let _ = append_line(qpath, &line);
                        }
                    }
                    continue;
                }
                let incoming = DoneRecord {
                    class,
                    attempts: *attempts,
                    wall_ms: *wall_ms,
                    payload: payload.clone(),
                    token: *token,
                };
                match view.done.get_mut(shard) {
                    Some(existing) if existing.token > incoming.token => {
                        // Zombie publish from a stolen lease: the thief's
                        // higher-token record already landed.
                        view.superseded += 1;
                        obs::counter!("supervisor.journal.superseded").inc();
                    }
                    Some(existing) => {
                        *existing = incoming;
                        view.superseded += 1;
                        obs::counter!("supervisor.journal.superseded").inc();
                    }
                    None => {
                        view.done.insert(shard.clone(), incoming);
                    }
                }
            }
            JournalRecord::Header { .. } | JournalRecord::RunComplete { .. } => {}
        }
    }
    view.crash_counts.retain(|_, n| *n > 0);
    view
}

fn append_line(path: &Path, line: &str) -> std::io::Result<()> {
    use std::io::Write;
    let mut f = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)?;
    f.write_all(line.as_bytes())?;
    f.write_all(b"\n")
}

/// The sidecar path where [`distill_records`] quarantines
/// checksum-mismatched journal records.
pub fn quarantine_path(journal: &Path) -> PathBuf {
    let mut name = journal
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_else(|| "journal".to_string());
    name.push_str(".quarantine");
    journal.with_file_name(name)
}

/// Does the journal's first record identify exactly this campaign?
pub fn header_matches(
    records: &[JournalRecord],
    cfg: &SupervisorConfig,
    total_shards: u64,
) -> bool {
    matches!(
        records.first(),
        Some(JournalRecord::Header { schema, campaign, config_key, total_shards: t })
            if schema == JOURNAL_SCHEMA
                && *campaign == cfg.campaign
                && *config_key == cfg.config_key
                && *t == total_shards
    )
}

// ---- execution -------------------------------------------------------------

/// Journal replay distilled into resume state.
struct ResumeState {
    /// Shard name -> successfully journaled result.
    done: HashMap<String, DoneRecord>,
    /// Shard name -> times it was in flight at a process death.
    crash_counts: HashMap<String, u32>,
    /// Records carried into the continued journal.
    records: Vec<JournalRecord>,
}

fn load_resume_state(
    cfg: &SupervisorConfig,
    path: &Path,
    total_shards: u64,
) -> Option<ResumeState> {
    let (records, damaged) = replay_journal(path);
    if damaged {
        obs::counter!("supervisor.journal_torn_tail").inc();
        eprintln!(
            "supervisor: {}: journal had torn/damaged lines; replaying the intact records",
            cfg.campaign
        );
    }
    if !header_matches(&records, cfg, total_shards) {
        obs::counter!("supervisor.journal_discarded").inc();
        eprintln!(
            "supervisor: {}: existing journal does not match this campaign's configuration; starting fresh",
            cfg.campaign
        );
        return None;
    }
    let mut view = distill_records(&records, Some(&quarantine_path(path)));
    // Terminal failures are re-executed on resume (fresh retry budget);
    // only checksummed successes short-circuit.
    view.done.retain(|_, rec| rec.class.is_success());
    if view.quarantined > 0 {
        obs::counter!("supervisor.journal_corrupt_payloads").add(view.quarantined);
    }
    Some(ResumeState {
        done: view.done,
        crash_counts: view.crash_counts,
        records,
    })
}

/// The per-class tallies of one supervised run (summary line + counters).
#[derive(Default)]
struct ClassTally {
    completed: u64,
    retried: u64,
    timed_out: u64,
    panicked: u64,
    poisoned: u64,
    resumed: u64,
}

impl ClassTally {
    fn record(&mut self, class: OutcomeClass, resumed: bool) {
        if resumed {
            self.resumed += 1;
        }
        match class {
            OutcomeClass::Completed => self.completed += 1,
            OutcomeClass::Retried => self.retried += 1,
            OutcomeClass::TimedOut => self.timed_out += 1,
            OutcomeClass::Panicked => self.panicked += 1,
            OutcomeClass::Poisoned => self.poisoned += 1,
        }
    }
}

/// One in-flight shard attempt.
struct Running<T> {
    idx: usize,
    attempt: u32,
    started: Instant,
    deadline: Instant,
    rx: mpsc::Receiver<Result<T, String>>,
}

/// A shard waiting to run (or to retry after backoff).
struct Pending {
    idx: usize,
    attempts_done: u32,
    ready_at: Instant,
    started_journaled: bool,
}

struct Ledger {
    sink: Option<obs::jsonl::JsonlSink>,
}

impl Ledger {
    fn open(cfg: &SupervisorConfig) -> Ledger {
        let sink = cfg.failures_path.as_ref().and_then(|p| {
            obs::jsonl::JsonlSink::create(p, FAILURES_SCHEMA)
                .map_err(|e| {
                    crate::harness::warn_io("failure ledger create", &e);
                })
                .ok()
        });
        Ledger { sink }
    }

    fn attempt_failed(
        &mut self,
        campaign: &str,
        shard: &str,
        attempt: u32,
        kind: &str,
        detail: &str,
        wall_ms: u64,
    ) {
        obs::counter!("supervisor.attempt_failures").inc();
        if obs::trace::enabled() {
            obs::trace::event(
                "supervisor.attempt_failed",
                &[
                    ("shard", obs::trace::Value::Str(shard)),
                    ("attempt", obs::trace::Value::U64(u64::from(attempt))),
                    ("kind", obs::trace::Value::Str(kind)),
                ],
            );
        }
        if let Some(sink) = &mut self.sink {
            let _ = sink.append(
                "shard.attempt_failed",
                &[
                    ("campaign", obs::trace::Value::Str(campaign)),
                    ("shard", obs::trace::Value::Str(shard)),
                    ("attempt", obs::trace::Value::U64(u64::from(attempt))),
                    ("failure", obs::trace::Value::Str(kind)),
                    ("detail", obs::trace::Value::Str(detail)),
                    ("wall_ms", obs::trace::Value::U64(wall_ms)),
                ],
            );
        }
    }

    fn outcome(
        &mut self,
        campaign: &str,
        o_name: &str,
        class: OutcomeClass,
        attempts: u32,
        resumed: bool,
        wall_ms: u64,
    ) {
        if let Some(sink) = &mut self.sink {
            let _ = sink.append(
                "shard.outcome",
                &[
                    ("campaign", obs::trace::Value::Str(campaign)),
                    ("shard", obs::trace::Value::Str(o_name)),
                    ("class", obs::trace::Value::Str(class.as_str())),
                    ("attempts", obs::trace::Value::U64(u64::from(attempts))),
                    ("resumed", obs::trace::Value::Bool(resumed)),
                    ("wall_ms", obs::trace::Value::U64(wall_ms)),
                ],
            );
        }
    }
}

/// Run `shards` under the supervisor. Returns one outcome per shard in
/// submission order. See the module docs for the full contract.
///
/// Panics if two shards share a name (the journal keys by name).
pub fn supervise<T>(cfg: &SupervisorConfig, shards: Vec<Shard<T>>) -> SupervisedRun<T>
where
    T: Serialize + Deserialize + Send + 'static,
{
    {
        let mut seen = std::collections::HashSet::new();
        for s in &shards {
            assert!(
                seen.insert(s.name.as_str()),
                "duplicate shard name {:?}",
                s.name
            );
        }
    }
    let total = shards.len() as u64;
    let journal_path = cfg.journal_path();

    // Resume (or not): distill any matching journal into prior state.
    let resume_state = match (&journal_path, cfg.resume) {
        (Some(path), true) if path.exists() => load_resume_state(cfg, path, total),
        _ => None,
    };
    let resumed_any = resume_state.is_some();
    let (done, crash_counts, records) = match resume_state {
        Some(s) => (s.done, s.crash_counts, s.records),
        None => (
            HashMap::new(),
            HashMap::new(),
            vec![JournalRecord::Header {
                schema: JOURNAL_SCHEMA.to_string(),
                campaign: cfg.campaign.clone(),
                config_key: cfg.config_key.clone(),
                total_shards: total,
            }],
        ),
    };
    let mut journal = Journal {
        path: journal_path,
        records,
        chaos: cfg.chaos,
        persists: 0,
        write_failures: 0,
    };
    if !resumed_any {
        // Publish the fresh header before any work runs.
        journal.persist();
    }

    let mut ledger = Ledger::open(cfg);
    let mut tally = ClassTally::default();
    let mut outcomes: Vec<Option<ShardOutcome<T>>> = shards.iter().map(|_| None).collect();
    let mut pending: Vec<Pending> = Vec::new();

    // Settle resumed and poisoned shards; queue the rest.
    for (idx, shard) in shards.iter().enumerate() {
        if let Some(rec) = done.get(&shard.name) {
            match serde_json::from_str::<T>(&rec.payload) {
                Ok(v) => {
                    tally.record(rec.class, true);
                    ledger.outcome(
                        &cfg.campaign,
                        &shard.name,
                        rec.class,
                        rec.attempts,
                        true,
                        rec.wall_ms,
                    );
                    outcomes[idx] = Some(ShardOutcome {
                        name: shard.name.clone(),
                        class: rec.class,
                        attempts: 0,
                        resumed: true,
                        wall_ms: rec.wall_ms,
                        result: Some(v),
                    });
                    continue;
                }
                Err(_) => {
                    obs::counter!("supervisor.journal_corrupt_payloads").inc();
                    // Fall through: re-execute.
                }
            }
        }
        if crash_counts.get(&shard.name).copied().unwrap_or(0) >= cfg.poison_threshold {
            obs::counter!("supervisor.shards_poisoned").inc();
            if obs::trace::enabled() {
                obs::trace::event(
                    "supervisor.shard_poisoned",
                    &[("shard", obs::trace::Value::Str(&shard.name))],
                );
            }
            eprintln!(
                "supervisor: {}: shard {} was in flight at {}+ process deaths; poisoned (crash-loop guard)",
                cfg.campaign, shard.name, cfg.poison_threshold
            );
            tally.record(OutcomeClass::Poisoned, false);
            ledger.outcome(
                &cfg.campaign,
                &shard.name,
                OutcomeClass::Poisoned,
                0,
                false,
                0,
            );
            journal.append(JournalRecord::ShardDone {
                shard: shard.name.clone(),
                class: OutcomeClass::Poisoned.as_str().to_string(),
                attempts: 0,
                wall_ms: 0,
                checksum: fnv1a64(b""),
                payload: String::new(),
                token: 0,
            });
            outcomes[idx] = Some(ShardOutcome {
                name: shard.name.clone(),
                class: OutcomeClass::Poisoned,
                attempts: 0,
                resumed: false,
                wall_ms: 0,
                result: None,
            });
            continue;
        }
        pending.push(Pending {
            idx,
            attempts_done: 0,
            ready_at: Instant::now(),
            started_journaled: false,
        });
    }

    // The scheduler loop: keep up to `max_inflight` attempts running under
    // their watchdogs, retrying with backoff, until every shard settles.
    let max_inflight = cfg.max_inflight.max(1);
    let mut running: Vec<Running<T>> = Vec::new();
    while !pending.is_empty() || !running.is_empty() {
        // Launch ready shards into free slots.
        while running.len() < max_inflight {
            let now = Instant::now();
            let Some(pos) = pending.iter().position(|p| p.ready_at <= now) else {
                break;
            };
            let mut p = pending.remove(pos);
            if !p.started_journaled {
                journal.append(JournalRecord::ShardStart {
                    shard: shards[p.idx].name.clone(),
                });
                p.started_journaled = true;
            }
            let attempt = p.attempts_done + 1;
            let (tx, rx) = mpsc::channel();
            let work = Arc::clone(&shards[p.idx].work);
            let name = shards[p.idx].name.clone();
            let chaos = cfg.chaos;
            std::thread::spawn(move || {
                let result = catch_unwind(AssertUnwindSafe(|| {
                    if let Some(ms) = chaos.shard_delay_ms(&name, attempt) {
                        std::thread::sleep(Duration::from_millis(ms));
                    }
                    if chaos.shard_panic(&name, attempt) {
                        panic!("chaos: injected shard panic");
                    }
                    work()
                }));
                let _ = tx.send(result.map_err(|e| panic_message(e.as_ref())));
            });
            let started = Instant::now();
            running.push(Running {
                idx: p.idx,
                attempt,
                started,
                deadline: started + cfg.timeout,
                rx,
            });
        }

        // Poll in-flight attempts.
        let mut settled_any = false;
        let mut i = 0;
        while i < running.len() {
            let now = Instant::now();
            let verdict = match running[i].rx.try_recv() {
                Ok(res) => Some(res),
                Err(mpsc::TryRecvError::Empty) if now >= running[i].deadline => None,
                Err(mpsc::TryRecvError::Empty) => {
                    i += 1;
                    continue;
                }
                Err(mpsc::TryRecvError::Disconnected) => {
                    // Worker died without sending (should be impossible:
                    // catch_unwind feeds the channel) — treat as a panic.
                    Some(Err("worker thread died without reporting".to_string()))
                }
            };
            let run = running.remove(i);
            settled_any = true;
            let wall_ms = run.started.elapsed().as_millis() as u64;
            let name = &shards[run.idx].name;
            match verdict {
                Some(Ok(v)) => {
                    let class = if run.attempt > 1 {
                        OutcomeClass::Retried
                    } else {
                        OutcomeClass::Completed
                    };
                    let payload = match serde_json::to_string(&v) {
                        Ok(p) => p,
                        Err(e) => {
                            // Unserializable result: the run still succeeds,
                            // but the checkpoint cannot cover this shard.
                            crate::harness::warn_io("shard payload serialize", &e);
                            String::new()
                        }
                    };
                    journal.append(JournalRecord::ShardDone {
                        shard: name.clone(),
                        class: class.as_str().to_string(),
                        attempts: run.attempt,
                        wall_ms,
                        checksum: fnv1a64(payload.as_bytes()),
                        payload,
                        token: 0,
                    });
                    tally.record(class, false);
                    ledger.outcome(&cfg.campaign, name, class, run.attempt, false, wall_ms);
                    outcomes[run.idx] = Some(ShardOutcome {
                        name: name.clone(),
                        class,
                        attempts: run.attempt,
                        resumed: false,
                        wall_ms,
                        result: Some(v),
                    });
                }
                failure => {
                    let (kind, class, detail) = match &failure {
                        None => (
                            "timed_out",
                            OutcomeClass::TimedOut,
                            format!("watchdog deadline {:?} exceeded", cfg.timeout),
                        ),
                        Some(Err(msg)) => ("panicked", OutcomeClass::Panicked, msg.clone()),
                        Some(Ok(_)) => unreachable!("success handled above"),
                    };
                    ledger.attempt_failed(&cfg.campaign, name, run.attempt, kind, &detail, wall_ms);
                    eprintln!(
                        "supervisor: {}: shard {} attempt {} {kind} ({detail})",
                        cfg.campaign, name, run.attempt
                    );
                    if run.attempt > cfg.retries {
                        journal.append(JournalRecord::ShardDone {
                            shard: name.clone(),
                            class: class.as_str().to_string(),
                            attempts: run.attempt,
                            wall_ms,
                            checksum: fnv1a64(b""),
                            payload: String::new(),
                            token: 0,
                        });
                        tally.record(class, false);
                        ledger.outcome(&cfg.campaign, name, class, run.attempt, false, wall_ms);
                        outcomes[run.idx] = Some(ShardOutcome {
                            name: name.clone(),
                            class,
                            attempts: run.attempt,
                            resumed: false,
                            wall_ms,
                            result: None,
                        });
                    } else {
                        // Exponential backoff: base << (attempts already used - 1).
                        let factor = 1u32 << (run.attempt - 1).min(16);
                        pending.push(Pending {
                            idx: run.idx,
                            attempts_done: run.attempt,
                            ready_at: Instant::now() + cfg.backoff * factor,
                            started_journaled: true,
                        });
                    }
                }
            }
        }
        if !settled_any && !running.is_empty() {
            std::thread::sleep(Duration::from_millis(2));
        } else if running.is_empty() && !pending.is_empty() {
            // Everything alive is backing off; sleep until the nearest
            // retry is ready instead of spinning.
            if let Some(ready) = pending.iter().map(|p| p.ready_at).min() {
                let now = Instant::now();
                if ready > now {
                    std::thread::sleep((ready - now).min(Duration::from_millis(50)));
                }
            }
        }
    }

    journal.append(JournalRecord::RunComplete {
        succeeded: tally.completed + tally.retried + tally.resumed,
    });

    // Per-class counters (obs-gated like every other hook).
    obs::counter!("supervisor.shards_completed").add(tally.completed);
    obs::counter!("supervisor.shards_retried").add(tally.retried);
    obs::counter!("supervisor.shards_timed_out").add(tally.timed_out);
    obs::counter!("supervisor.shards_panicked").add(tally.panicked);
    obs::counter!("supervisor.shards_resumed").add(tally.resumed);

    eprintln!(
        "supervisor: {}: {} shards | {} resumed, {} executed | completed {}, retried {}, timed_out {}, panicked {}, poisoned {} | journal write failures {}",
        cfg.campaign,
        total,
        tally.resumed,
        total - tally.resumed,
        tally.completed,
        tally.retried,
        tally.timed_out,
        tally.panicked,
        tally.poisoned,
        journal.write_failures,
    );

    SupervisedRun {
        campaign: cfg.campaign.clone(),
        outcomes: outcomes
            .into_iter()
            .map(|o| o.expect("every shard settles before the loop exits"))
            .collect(),
    }
}

/// Best-effort extraction of a panic payload's message.
pub(crate) fn panic_message(e: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = e.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = e.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}
