//! Content-addressed cache of simulation results.
//!
//! Every (scheme, workload, scale, knobs) cell a figure binary needs is
//! fully determined by its [`RunConfig`] — the simulator is deterministic
//! by contract (DESIGN.md §6) — so a cell only ever needs to be simulated
//! once per model version. The cache keys each cell by an FNV-1a hash of
//! the config's `Debug` rendering prefixed with a model-version stamp,
//! memoizes results in-process (figure binaries sharing a scale reuse one
//! matrix), and persists them under `results/cache/` so back-to-back
//! invocations of the fig09–fig17 and ablation binaries skip identical
//! simulations entirely.
//!
//! Safety properties:
//! - The full key string (stamp + config `Debug`) is stored inside every
//!   cache file and compared on load, so a 64-bit hash collision degrades
//!   to a miss, never to a wrong result.
//! - Every entry carries an FNV-1a checksum of its result payload,
//!   verified on load. Torn, truncated, bit-flipped, or hand-edited files
//!   are counted (`cache.corrupt_entries`) and treated as misses; the
//!   rewrite after the fresh simulation repairs the damaged file.
//! - Stores publish atomically: write to a pid-suffixed temp file, fsync,
//!   then rename. Readers never observe a partially written entry, even
//!   across a crash mid-store.
//! - [`MODEL_VERSION`] must be bumped whenever a change alters simulated
//!   numbers; stale disk entries then stop matching.
//! - Trace-replay runs (`cfg.trace.is_some()`) bypass the cache: traces
//!   are external inputs not captured by the config's identity.
//! - `ECC_PARITY_NO_CACHE=1` disables the global cache entirely.
//!
//! The per-process `cache:` summary line goes to **stderr**: stdout of
//! every figure binary stays byte-identical between cold and warm runs,
//! preserving the determinism contract.

use crate::chaos::{CacheCorruption, Chaos};
use crate::hash::fnv1a64;
use mem_sim::{RunConfig, RunResult, SimRunner};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

/// Bump on any change that alters simulated numbers (timing model, energy
/// model, scheme traffic rules, RNG streams). Old `results/cache/` entries
/// then miss instead of resurrecting stale results.
pub const MODEL_VERSION: &str = "eccparity-model-v1";

/// On-disk representation of one cached cell.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct CacheEntry {
    /// Full key string (stamp + config `Debug`), for collision rejection.
    key: String,
    /// FNV-1a over `payload`'s exact bytes, verified on load.
    checksum: u64,
    /// The `RunResult` as its own JSON document. Kept as a string so the
    /// checksum covers the exact stored bytes — float re-serialization
    /// need not be byte-stable, so checksumming a re-encoding would not
    /// detect anything.
    payload: String,
}

/// A run cache: in-process memoization plus optional disk persistence.
///
/// Figure binaries use the env-configured [`global()`] instance; tests
/// construct explicit instances against temp dirs so they are immune to
/// environment races.
pub struct RunCache {
    /// Persistence directory; `None` = memoize in-process only.
    dir: Option<PathBuf>,
    /// When false, every call simulates fresh (the escape hatch).
    enabled: bool,
    /// Version stamp mixed into every key.
    stamp: String,
    memo: Mutex<HashMap<u64, RunResult>>,
    /// Infrastructure-fault injector; [`Chaos::off`] except under
    /// `ECC_PARITY_CHAOS` (or in tests exercising the quarantine path).
    chaos: Chaos,
    simulated: AtomicU64,
    reused: AtomicU64,
    /// Order-independent fold (wrapping sum) of every requested cell's key
    /// hash — the run's *config digest*, stamped into provenance manifests.
    digest: AtomicU64,
}

impl RunCache {
    /// A cache persisting to `dir` under the default model version.
    pub fn new(dir: Option<PathBuf>) -> RunCache {
        Self::with_stamp(dir, MODEL_VERSION)
    }

    /// A cache with an explicit version stamp (tests exercise stamp
    /// invalidation through this).
    pub fn with_stamp(dir: Option<PathBuf>, stamp: &str) -> RunCache {
        RunCache {
            dir,
            enabled: true,
            stamp: stamp.to_string(),
            memo: Mutex::new(HashMap::new()),
            chaos: Chaos::off(),
            simulated: AtomicU64::new(0),
            reused: AtomicU64::new(0),
            digest: AtomicU64::new(0),
        }
    }

    /// Attach a chaos source (stores get deterministically damaged so the
    /// quarantine/repair path stays exercised).
    pub fn with_chaos(mut self, chaos: Chaos) -> RunCache {
        self.chaos = chaos;
        self
    }

    /// A disabled cache: every run simulates fresh, counters still tick.
    pub fn disabled() -> RunCache {
        RunCache {
            enabled: false,
            ..Self::new(None)
        }
    }

    /// The full (pre-hash) cache key of a config under this cache's stamp.
    pub fn key_string(&self, cfg: &RunConfig) -> String {
        format!("{}|{:?}", self.stamp, cfg)
    }

    fn entry_path(&self, hash: u64) -> Option<PathBuf> {
        self.dir
            .as_ref()
            .map(|d| d.join(format!("{hash:016x}.json")))
    }

    fn load_disk(&self, hash: u64, key: &str) -> Option<RunResult> {
        let path = self.entry_path(hash)?;
        let text = std::fs::read_to_string(&path).ok()?;
        // A file that exists but does not parse is damage (truncation, torn
        // write, disk corruption) or a pre-checksum-era entry: either way,
        // quarantine it and fall through to a fresh simulation, whose store
        // will repair the entry.
        let Ok(entry) = serde_json::from_str::<CacheEntry>(&text) else {
            self.quarantine(hash, &path, "unparsable entry");
            return None;
        };
        if entry.checksum != fnv1a64(entry.payload.as_bytes()) {
            self.quarantine(hash, &path, "payload checksum mismatch");
            return None;
        }
        // Reject hash collisions and stamp/config drift. Not corruption:
        // the entry is intact, it just answers a different question, so it
        // stays where it is (a model-version bump must not quarantine the
        // previous version's whole cache).
        if entry.key != key {
            obs::counter!("cache.stamp_misses").inc();
            return None;
        }
        let Ok(result) = serde_json::from_str::<RunResult>(&entry.payload) else {
            self.quarantine(hash, &path, "payload does not deserialize");
            return None;
        };
        Some(result)
    }

    /// Move a damaged entry aside as `<hash>.corrupt` so it stops being
    /// re-parsed on every lookup and stays on disk for post-mortems. The
    /// fresh store after re-simulation writes a clean `<hash>.json`.
    fn quarantine(&self, hash: u64, path: &Path, why: &str) {
        obs::counter!("cache.corrupt_entries").inc();
        let target = path.with_extension("corrupt");
        match std::fs::rename(path, &target) {
            Ok(()) => {
                obs::counter!("cache.quarantined").inc();
                if obs::trace::enabled() {
                    obs::trace::event(
                        "cache.quarantine",
                        &[
                            ("cell", obs::trace::Value::Str(&format!("{hash:016x}"))),
                            ("reason", obs::trace::Value::Str(why)),
                        ],
                    );
                }
                eprintln!(
                    "cache: quarantined corrupt entry {:016x} ({why}) -> {}",
                    hash,
                    target.display()
                );
            }
            Err(e) => {
                // Quarantine is best-effort: the store after re-simulation
                // overwrites the damaged file either way.
                crate::harness::warn_io("cache quarantine rename", &e);
            }
        }
    }

    fn store_disk(&self, hash: u64, key: &str, result: &RunResult) {
        let Some(path) = self.entry_path(hash) else {
            return;
        };
        let Some(dir) = path.parent() else { return };
        if std::fs::create_dir_all(dir).is_err() {
            return;
        }
        let Ok(payload) = serde_json::to_string(result) else {
            return;
        };
        let entry = CacheEntry {
            key: key.to_string(),
            checksum: fnv1a64(payload.as_bytes()),
            payload,
        };
        let Ok(text) = serde_json::to_string_pretty(&entry) else {
            return;
        };
        // Atomic publish: write + fsync a pid-suffixed temp file, then
        // rename over the final path. Concurrent writers of the same cell
        // race benignly (same bytes), readers never observe a torn file,
        // and the fsync keeps a crash from publishing an empty entry.
        let tmp = path.with_extension(format!("tmp.{}", std::process::id()));
        let published = (|| -> std::io::Result<()> {
            use std::io::Write;
            let mut f = std::fs::File::create(&tmp)?;
            f.write_all(text.as_bytes())?;
            f.sync_all()?;
            drop(f);
            std::fs::rename(&tmp, &path)
        })();
        if published.is_err() {
            let _ = std::fs::remove_file(&tmp);
        } else if let Some(kind) = self.chaos.corrupt_cache_entry(hash) {
            self.chaos_damage(&path, kind);
        }
    }

    /// Chaos hook: damage a just-published entry in place (deliberately
    /// non-atomic — it simulates bit rot / a torn writer). The in-process
    /// memo still holds the good result, so this run is unaffected; the
    /// *next* process must detect, quarantine, and re-simulate.
    fn chaos_damage(&self, path: &Path, kind: CacheCorruption) {
        let Ok(mut bytes) = std::fs::read(path) else {
            return;
        };
        match kind {
            CacheCorruption::Truncate => bytes.truncate(bytes.len() / 2),
            CacheCorruption::FlipByte => {
                let mid = bytes.len() / 2;
                if let Some(b) = bytes.get_mut(mid) {
                    *b ^= 0x20;
                }
            }
        }
        if std::fs::write(path, &bytes).is_ok() {
            obs::counter!("chaos.cache_corruptions").inc();
        }
    }

    /// Run `cfg`, reusing a memoized or persisted result when its identity
    /// matches. Cache-transparent by construction: a hit returns bytes that
    /// a fresh simulation would also have produced.
    pub fn run(&self, cfg: &RunConfig) -> RunResult {
        let key = self.key_string(cfg);
        let hash = fnv1a64(key.as_bytes());
        // fetch_add wraps on overflow; order-independent under rayon.
        self.digest.fetch_add(hash, Ordering::Relaxed);
        if !self.enabled || cfg.trace.is_some() {
            self.simulated.fetch_add(1, Ordering::Relaxed);
            obs::counter!("cache.bypass").inc();
            return SimRunner::new(cfg.clone()).run();
        }
        if let Some(r) = self.memo.lock().unwrap().get(&hash) {
            self.reused.fetch_add(1, Ordering::Relaxed);
            obs::counter!("cache.memo_hits").inc();
            self.trace_lookup("cache.hit", hash, "memo");
            return r.clone();
        }
        if let Some(r) = self.load_disk(hash, &key) {
            self.reused.fetch_add(1, Ordering::Relaxed);
            obs::counter!("cache.disk_hits").inc();
            self.trace_lookup("cache.hit", hash, "disk");
            self.memo.lock().unwrap().insert(hash, r.clone());
            return r;
        }
        obs::counter!("cache.misses").inc();
        self.trace_lookup("cache.miss", hash, "simulated");
        let r = SimRunner::new(cfg.clone()).run();
        self.simulated.fetch_add(1, Ordering::Relaxed);
        self.store_disk(hash, &key, &r);
        self.memo.lock().unwrap().insert(hash, r.clone());
        r
    }

    fn trace_lookup(&self, kind: &str, hash: u64, source: &str) {
        if obs::trace::enabled() {
            obs::trace::event(
                kind,
                &[
                    ("cell", obs::trace::Value::Str(&format!("{hash:016x}"))),
                    ("source", obs::trace::Value::Str(source)),
                ],
            );
        }
    }

    /// Order-independent digest of every cell key requested through this
    /// cache so far (provenance manifests record it as the config hash).
    pub fn config_digest(&self) -> u64 {
        self.digest.load(Ordering::Relaxed)
    }

    /// This cache's model-version stamp.
    pub fn stamp(&self) -> &str {
        &self.stamp
    }

    /// (cells simulated, cells reused) so far.
    pub fn counters(&self) -> (u64, u64) {
        (
            self.simulated.load(Ordering::Relaxed),
            self.reused.load(Ordering::Relaxed),
        )
    }

    /// Print the per-run counter line to stderr (stdout stays
    /// byte-identical between cold and warm runs).
    pub fn print_summary(&self) {
        let (sim, reused) = self.counters();
        let suffix = if self.enabled {
            ""
        } else {
            " [cache disabled]"
        };
        eprintln!("cache: {sim} cells simulated, {reused} reused{suffix}");
    }
}

static GLOBAL: OnceLock<RunCache> = OnceLock::new();

/// Default persistence directory of the global cache.
pub fn cache_dir() -> &'static Path {
    Path::new("results/cache")
}

/// The process-wide cache used by every figure/ablation binary. Persists
/// to `results/cache/`; `ECC_PARITY_NO_CACHE=1` turns it off.
pub fn global() -> &'static RunCache {
    GLOBAL.get_or_init(|| {
        let off = std::env::var("ECC_PARITY_NO_CACHE")
            .map(|v| v == "1")
            .unwrap_or(false);
        if off {
            RunCache::disabled()
        } else {
            RunCache::new(Some(cache_dir().to_path_buf())).with_chaos(crate::chaos::global())
        }
    })
}

/// Run one cell through the global cache.
pub fn cached_run(cfg: &RunConfig) -> RunResult {
    global().run(cfg)
}

/// Print the global cache's counter line (call once per binary, at exit).
pub fn print_cache_summary() {
    global().print_summary();
}
