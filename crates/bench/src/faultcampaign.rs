//! The fault-injection campaign's work plan, shared by the `campaign`
//! binary (coordinator / single-process run) and the `eccparity-worker`
//! binary (distributed execution).
//!
//! A worker process cannot receive closures from the coordinator, so both
//! sides rebuild the identical shard list from the same environment
//! (`ECC_PARITY_FAST` trial geometry) via [`plan`]. Shard names, seeds,
//! and the config key are all pure functions of that geometry, which is
//! what makes the distributed run's journal interchangeable with a
//! single-process one: any worker, or the coordinator itself, can execute
//! any shard and publish a byte-identical payload.

use crate::harness::fast_mode;
use crate::supervisor::Shard;
use ecc_codes::lotecc::LotEcc;
use ecc_parity::layout::LineLoc;
use ecc_parity::memory::{MemError, ParityConfig, ParityMemory};
use mem_faults::{ChipLocation, FaultInstance, FaultMode};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// Campaign name: journal stem, summary label, worker `--campaign` value.
pub const CAMPAIGN_NAME: &str = "campaign";

/// Per-group outcome counts of the fault-injection campaign.
#[derive(Default, Clone, Copy, Serialize, Deserialize)]
pub struct Tally {
    /// Trials executed.
    pub trials: u64,
    /// Reads that returned correct data with no correction involved.
    pub clean_reads: u64,
    /// Reads corrected on the fly (parity reconstruction / stored ECC).
    pub corrected_reads: u64,
    /// Pages retired by the health policy across the group.
    pub retired_pages: u64,
    /// Line-pair migrations performed by scrubs.
    pub migrations: u64,
    /// Detected-uncorrectable events (allowed for multi-channel faults).
    pub uncorrectable: u64,
    /// Silent corruptions — wrong data returned as if clean. Must be 0.
    pub silent: u64,
}

/// Sum two tallies field-wise.
pub fn merge(a: Tally, b: Tally) -> Tally {
    Tally {
        trials: a.trials + b.trials,
        clean_reads: a.clean_reads + b.clean_reads,
        corrected_reads: a.corrected_reads + b.corrected_reads,
        retired_pages: a.retired_pages + b.retired_pages,
        migrations: a.migrations + b.migrations,
        uncorrectable: a.uncorrectable + b.uncorrectable,
        silent: a.silent + b.silent,
    }
}

fn random_fault(
    rng: &mut StdRng,
    cfg: &ParityConfig,
    mode: FaultMode,
    channel: usize,
) -> FaultInstance {
    FaultInstance {
        chip: ChipLocation {
            channel,
            rank: 0,
            chip: rng.gen_range(0..5),
        },
        mode,
        bank: rng.gen_range(0..cfg.banks_per_channel as u32),
        row: rng.gen_range(0..cfg.data_rows),
        line: rng.gen_range(0..cfg.lines_per_row),
        pattern_seed: rng.gen(),
    }
}

/// One randomized trial: fill a 4-channel LOT-ECC5 + ECC Parity memory,
/// inject one (or two cross-channel) faults, scrub twice, audit every
/// line against the shadow copy.
pub fn run_trial(seed: u64, mode: FaultMode, double: bool) -> Tally {
    let cfg = ParityConfig::small(4);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut mem = ParityMemory::new(LotEcc::five(), cfg);
    // Draw every line's contents in the original per-line order (writes
    // consume no randomness), then push the whole fill through the batched
    // write path so codec setup is amortized across the channel.
    let mut shadow = vec![];
    for c in 0..cfg.channels {
        for bank in 0..cfg.banks_per_channel {
            for row in 0..cfg.data_rows {
                for line in 0..cfg.lines_per_row {
                    let d: Vec<u8> = (0..64).map(|_| rng.gen()).collect();
                    let loc = LineLoc { bank, row, line };
                    shadow.push((c, loc, d));
                }
            }
        }
    }
    let batch: Vec<(usize, LineLoc, &[u8])> = shadow
        .iter()
        .map(|(c, loc, d)| (*c, *loc, d.as_slice()))
        .collect();
    for res in mem.write_lines(&batch) {
        res.unwrap();
    }
    let c1 = rng.gen_range(0..cfg.channels);
    mem.inject_fault(random_fault(&mut rng, &cfg, mode, c1));
    if double {
        let mut c2 = rng.gen_range(0..cfg.channels);
        while c2 == c1 {
            c2 = rng.gen_range(0..cfg.channels);
        }
        mem.inject_fault(random_fault(&mut rng, &cfg, mode, c2));
    }
    // Scrub twice (detection + post-migration steady state), then audit.
    let rep1 = mem.scrub();
    let rep2 = mem.scrub();
    let mut t = Tally {
        trials: 1,
        migrations: rep1.pairs_migrated + rep2.pairs_migrated,
        uncorrectable: rep1.uncorrectable + rep2.uncorrectable,
        ..Default::default()
    };
    t.retired_pages = mem.health().retired_count() as u64;
    let before_errors = mem.stats().detected_errors;
    for (c, loc, d) in &shadow {
        if mem.health().is_retired(*c, loc.bank, loc.row) {
            continue;
        }
        match mem.read(*c, *loc) {
            Ok(got) => {
                if &got == d {
                    t.clean_reads += 1;
                } else {
                    t.silent += 1; // must never happen
                }
            }
            Err(MemError::Uncorrectable) => t.uncorrectable += 1,
            Err(MemError::RetiredPage) => {}
            // Locations come from the shadow copy of successful writes, so
            // addressing errors are impossible here; surface loudly if not.
            Err(e) => panic!("unexpected memory error during campaign read: {e}"),
        }
    }
    t.corrected_reads = mem.stats().detected_errors - before_errors;
    t
}

/// The campaign's full work plan: groups, shards, and identity.
pub struct CampaignPlan {
    /// Trials per (mode, single/double) group.
    pub trials: u64,
    /// Trials per shard.
    pub chunk: u64,
    /// The (double-fault?, mode) groups in reporting order.
    pub groups: Vec<(bool, FaultMode)>,
    /// Supervised shards in submission order.
    pub shards: Vec<Shard<Tally>>,
    /// Shard index -> group index, for summing chunk tallies per group.
    pub shard_group: Vec<usize>,
}

impl CampaignPlan {
    /// Work-list identity for the journal header: a resume (or a worker)
    /// against a journal with a different key refuses it.
    pub fn config_key(&self) -> String {
        format!(
            "campaign-v1|trials={}|chunk={}|groups={}",
            self.trials,
            self.chunk,
            self.groups.len()
        )
    }
}

/// Build the campaign's shard list from the environment. Each (fault
/// mode, single/double) group is cut into trial chunks small enough that
/// a SIGKILL loses at most one chunk's work; seeds depend only on the
/// trial index, so the chunked tallies sum to exactly what a monolithic
/// loop would produce, no matter which process runs which chunk.
pub fn plan() -> CampaignPlan {
    let trials: u64 = if fast_mode() { 40 } else { 150 };
    let chunk: u64 = if fast_mode() { 10 } else { 25 };
    let groups: Vec<(bool, FaultMode)> = [false, true]
        .iter()
        .flat_map(|&double| FaultMode::ALL.iter().map(move |&mode| (double, mode)))
        .collect();
    let mut shards: Vec<Shard<Tally>> = vec![];
    let mut shard_group: Vec<usize> = vec![];
    for (gi, &(double, mode)) in groups.iter().enumerate() {
        for k in 0..trials.div_ceil(chunk) {
            let lo = k * chunk;
            let hi = (lo + chunk).min(trials);
            shards.push(Shard::new(
                format!(
                    "campaign:{mode:?}{}:chunk{k}",
                    if double { "+x2ch" } else { "" }
                ),
                move || {
                    (lo..hi)
                        .into_par_iter()
                        .map(|i| run_trial(i * 31 + mode as u64 * 7 + double as u64, mode, double))
                        .reduce(Tally::default, merge)
                },
            ));
            shard_group.push(gi);
        }
    }
    CampaignPlan {
        trials,
        chunk,
        groups,
        shards,
        shard_group,
    }
}
