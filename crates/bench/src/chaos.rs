//! Deterministic infrastructure-fault injection for the bench harness.
//!
//! The resilience soak (PR 3) attacks the *memory model*; this module
//! attacks the *evaluation infrastructure* — the run cache, the checkpoint
//! journal, and the shards the supervisor executes — so the crash-safety
//! machinery is itself testable. `ECC_PARITY_CHAOS=<seed>` arms it
//! process-wide; every decision is a pure function of `(seed, site,
//! coordinates)`, so two runs with the same seed inject the same faults at
//! the same places regardless of thread schedule or wall-clock timing.
//!
//! Injection sites:
//!
//! * **Cache corruption** ([`Chaos::corrupt_cache_entry`]): after a
//!   successful atomic store, the published entry is truncated mid-record
//!   or a payload byte is flipped. The quarantine path in
//!   [`crate::cache::RunCache`] must catch it on the next load.
//! * **Journal write failure** ([`Chaos::fail_journal_write`]): a
//!   checkpoint persist is skipped, simulating `ENOSPC`. The supervisor
//!   must degrade (less resume coverage) without losing results.
//! * **Shard panics / slow shards** ([`Chaos::shard_panic`],
//!   [`Chaos::shard_delay_ms`]): a shard's *first* attempt panics or
//!   stalls; retries are never re-injected, so a chaos run always
//!   converges to the fault-free results.
//!
//! Chaos never alters computed values — only the infrastructure around
//! them — which is what makes "chaos run == fault-free run" a meaningful
//! acceptance gate (`chaos_soak` in `tests/supervisor_tests.rs`).

use crate::hash::fnv1a64;
use std::sync::OnceLock;

/// What to do to a freshly stored cache entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheCorruption {
    /// Truncate the file mid-record (torn write / crashed writer).
    Truncate,
    /// Flip one byte of the content (bit rot / bad sector).
    FlipByte,
}

/// A deterministic chaos source. `Copy`, so every subsystem can hold its
/// own handle; all handles with the same seed make identical decisions.
#[derive(Debug, Clone, Copy, Default)]
pub struct Chaos {
    seed: Option<u64>,
}

impl Chaos {
    /// Chaos disarmed: every query says "no fault".
    pub fn off() -> Chaos {
        Chaos { seed: None }
    }

    /// Chaos armed with an explicit seed (tests use this; binaries use
    /// [`global`]).
    pub fn from_seed(seed: u64) -> Chaos {
        Chaos { seed: Some(seed) }
    }

    /// Is injection armed?
    pub fn enabled(&self) -> bool {
        self.seed.is_some()
    }

    /// Deterministic roll: a hash of (seed, site, a, b) reduced mod
    /// `denom`; returns true on residue 0, i.e. with probability ~1/denom.
    fn roll(&self, site: &str, a: u64, b: u64, denom: u64) -> bool {
        let Some(seed) = self.seed else { return false };
        let mut key = Vec::with_capacity(site.len() + 24);
        key.extend_from_slice(&seed.to_le_bytes());
        key.extend_from_slice(site.as_bytes());
        key.extend_from_slice(&a.to_le_bytes());
        key.extend_from_slice(&b.to_le_bytes());
        fnv1a64(&key).is_multiple_of(denom)
    }

    /// Should the cache entry for cell `hash` be damaged after store, and
    /// how? Fires for ~1 in 3 stored cells when armed.
    pub fn corrupt_cache_entry(&self, hash: u64) -> Option<CacheCorruption> {
        if self.roll("cache.truncate", hash, 0, 6) {
            Some(CacheCorruption::Truncate)
        } else if self.roll("cache.flip", hash, 0, 6) {
            Some(CacheCorruption::FlipByte)
        } else {
            None
        }
    }

    /// Should the `n`-th journal persist fail (simulated `ENOSPC`)?
    /// Fires for ~1 in 4 persists when armed.
    pub fn fail_journal_write(&self, n: u64) -> bool {
        self.roll("journal.enospc", n, 0, 4)
    }

    /// Should this shard attempt panic? Only ever fires on the first
    /// attempt (~1 in 4 shards when armed), so retried shards always
    /// converge.
    pub fn shard_panic(&self, shard: &str, attempt: u32) -> bool {
        attempt == 1 && self.roll("shard.panic", fnv1a64(shard.as_bytes()), 0, 4)
    }

    /// Stall to inject before this shard attempt runs, if any. Only ever
    /// fires on the first attempt (~1 in 4 shards when armed), so a
    /// watchdog kill is always followed by a prompt retry.
    pub fn shard_delay_ms(&self, shard: &str, attempt: u32) -> Option<u64> {
        if attempt == 1 && self.roll("shard.slow", fnv1a64(shard.as_bytes()), 0, 4) {
            // 40..=150 ms, deterministic per shard.
            Some(40 + fnv1a64(shard.as_bytes()) % 111)
        } else {
            None
        }
    }

    /// Should the worker die (`kill -9` style, no cleanup) right after
    /// claiming this shard's lease? Fires for ~1 in 8 shards when armed,
    /// and only under the *first* lease generation (`token == 1`): the
    /// stealer who bumps the fencing token is never re-killed, so a chaos
    /// campaign always drains.
    pub fn worker_kill_after_claim(&self, shard: &str, token: u64) -> bool {
        token == 1 && self.roll("worker.kill", fnv1a64(shard.as_bytes()), 0, 8)
    }

    /// Should the worker holding this shard stop heartbeating (process
    /// alive but wedged)? The lease then expires by TTL and is stolen.
    /// First lease generation only, for the same convergence reason as
    /// [`worker_kill_after_claim`](Self::worker_kill_after_claim). ~1 in 8
    /// shards when armed.
    pub fn worker_heartbeat_stall(&self, shard: &str, token: u64) -> bool {
        token == 1 && self.roll("worker.stall", fnv1a64(shard.as_bytes()), 0, 8)
    }

    /// Should the worker attempt a deliberate second claim of a shard it
    /// already owns (double-claim race probe)? The lease layer must refuse
    /// it. ~1 in 8 shards when armed; fires at any token.
    pub fn worker_double_claim(&self, shard: &str) -> bool {
        self.roll("worker.doubleclaim", fnv1a64(shard.as_bytes()), 0, 8)
    }

    /// Should the worker forge a late publish under a *stale* fencing
    /// token before its real one (zombie-writer probe)? Replay must pick
    /// the higher-token record. Fires only once the token has been bumped
    /// past the forged generation (`token > 1`), ~1 in 8 shards when
    /// armed.
    pub fn worker_stale_publish(&self, shard: &str, token: u64) -> bool {
        token > 1 && self.roll("worker.stalepub", fnv1a64(shard.as_bytes()), 0, 8)
    }
}

/// The process-wide chaos handle, armed by `ECC_PARITY_CHAOS=<seed>`.
/// An unparsable value disarms with a note on stderr rather than panicking.
pub fn global() -> Chaos {
    static GLOBAL: OnceLock<Chaos> = OnceLock::new();
    *GLOBAL.get_or_init(|| match std::env::var("ECC_PARITY_CHAOS") {
        Ok(v) => match v.trim().parse::<u64>() {
            Ok(seed) => {
                eprintln!("chaos: armed with seed {seed}");
                Chaos::from_seed(seed)
            }
            Err(_) => {
                eprintln!("chaos: ECC_PARITY_CHAOS={v:?} is not a u64 seed; chaos disarmed");
                Chaos::off()
            }
        },
        Err(_) => Chaos::off(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disarmed_chaos_never_fires() {
        let c = Chaos::off();
        for i in 0..1000u64 {
            assert!(c.corrupt_cache_entry(i).is_none());
            assert!(!c.fail_journal_write(i));
            assert!(!c.shard_panic(&format!("s{i}"), 1));
            assert!(c.shard_delay_ms(&format!("s{i}"), 1).is_none());
            assert!(!c.worker_kill_after_claim(&format!("s{i}"), 1));
            assert!(!c.worker_heartbeat_stall(&format!("s{i}"), 1));
            assert!(!c.worker_double_claim(&format!("s{i}")));
            assert!(!c.worker_stale_publish(&format!("s{i}"), 2));
        }
    }

    #[test]
    fn worker_faults_respect_token_gates() {
        let c = Chaos::from_seed(7);
        let mut kills = 0;
        let mut stalls = 0;
        let mut stale = 0;
        for i in 0..400u64 {
            let shard = format!("campaign:shard{i}");
            if c.worker_kill_after_claim(&shard, 1) {
                kills += 1;
            }
            if c.worker_heartbeat_stall(&shard, 1) {
                stalls += 1;
            }
            if c.worker_stale_publish(&shard, 2) {
                stale += 1;
            }
            // Steal generations are never re-killed or re-stalled, and a
            // stale publish can only be forged once a steal happened.
            assert!(!c.worker_kill_after_claim(&shard, 2));
            assert!(!c.worker_heartbeat_stall(&shard, 3));
            assert!(!c.worker_stale_publish(&shard, 1));
        }
        assert!(kills > 5, "kill-after-claim must fire somewhere ({kills})");
        assert!(stalls > 5, "heartbeat stall must fire somewhere ({stalls})");
        assert!(stale > 5, "stale publish must fire somewhere ({stale})");
    }

    #[test]
    fn armed_chaos_is_deterministic_and_fires_somewhere() {
        let a = Chaos::from_seed(42);
        let b = Chaos::from_seed(42);
        let other = Chaos::from_seed(43);
        let mut fired = 0;
        let mut diverged = false;
        for i in 0..200u64 {
            let shard = format!("shard{i}");
            assert_eq!(a.corrupt_cache_entry(i), b.corrupt_cache_entry(i));
            assert_eq!(a.fail_journal_write(i), b.fail_journal_write(i));
            assert_eq!(a.shard_panic(&shard, 1), b.shard_panic(&shard, 1));
            assert_eq!(a.shard_delay_ms(&shard, 1), b.shard_delay_ms(&shard, 1));
            if a.shard_panic(&shard, 1) || a.corrupt_cache_entry(i).is_some() {
                fired += 1;
            }
            if a.shard_panic(&shard, 1) != other.shard_panic(&shard, 1) {
                diverged = true;
            }
            // Retries are never injected.
            assert!(!a.shard_panic(&shard, 2));
            assert!(a.shard_delay_ms(&shard, 2).is_none());
        }
        assert!(fired > 10, "armed chaos must actually inject ({fired})");
        assert!(diverged, "different seeds must make different decisions");
    }
}
