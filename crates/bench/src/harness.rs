//! Shared harness: matrix runner, aggregation, and table rendering.

use crate::cache::cached_run;
use crate::supervisor::{supervise, Shard, SupervisorConfig};
use mem_sim::{RunConfig, RunResult, SchemeConfig, SchemeId, SystemScale, WorkloadSpec};
use rayon::prelude::*;
use std::collections::HashMap;
use std::path::PathBuf;

/// Report a failed best-effort write (side outputs: JSON dumps, provenance
/// manifests, ledgers). The run's correctness never depends on these, so
/// the policy is warn-and-continue — but *visibly*: a counter
/// (`bench.io_write_failures`) and a stderr line, never a silent `let _`.
pub fn warn_io(what: &str, err: &dyn std::fmt::Display) {
    obs::counter!("bench.io_write_failures").inc();
    eprintln!("bench: {what} failed: {err}; continuing without it");
}

/// Simulation effort knob: `ECC_PARITY_FAST=1` shrinks runs ~8x for smoke
/// testing; figures default to paper-shaped runs.
pub fn fast_mode() -> bool {
    std::env::var("ECC_PARITY_FAST")
        .map(|v| v == "1")
        .unwrap_or(false)
}

/// Build the run configuration for one (scheme, workload) cell.
pub fn cell_config(scheme: SchemeConfig, workload: WorkloadSpec) -> RunConfig {
    let mut cfg = RunConfig::paper(scheme, workload);
    if fast_mode() {
        cfg.warmup_per_core = 6_000;
        cfg.accesses_per_core = 12_000;
    }
    cfg
}

/// Key for matrix lookups.
pub type Cell = (SchemeId, &'static str);

/// If `ECC_PARITY_JSON_DIR` is set, dump every matrix's raw per-cell
/// results there as JSON (one file per invocation title) for external
/// plotting tools.
pub fn json_dir() -> Option<PathBuf> {
    std::env::var("ECC_PARITY_JSON_DIR").ok().map(PathBuf::from)
}

/// Write the raw results of a matrix as pretty JSON.
pub fn dump_matrix_json(name: &str, matrix: &HashMap<Cell, RunResult>) {
    let Some(dir) = json_dir() else { return };
    if let Err(e) = std::fs::create_dir_all(&dir) {
        warn_io("matrix JSON dir create", &e);
        return;
    }
    let mut entries: Vec<_> = matrix
        .iter()
        .map(|((scheme, workload), r)| {
            serde_json::json!({
                "scheme": format!("{scheme:?}"),
                "workload": workload,
                "epi_pj": r.epi_pj(),
                "dynamic_epi_pj": r.dynamic_epi_pj(),
                "background_epi_pj": r.background_epi_pj(),
                "units_per_instruction": r.units_per_instruction(),
                "cycles": r.cycles,
                "instructions": r.instructions,
                "bandwidth_gbs": r.bandwidth_gbs(),
                "avg_mem_latency": r.avg_mem_latency,
            })
        })
        .collect();
    entries.sort_by_key(|v| {
        (
            v["scheme"].as_str().unwrap_or("").to_string(),
            v["workload"].as_str().unwrap_or("").to_string(),
        )
    });
    let path = dir.join(format!("{}.json", name.replace([' ', '/'], "_")));
    let text = match serde_json::to_string_pretty(&serde_json::Value::Array(entries)) {
        Ok(t) => t,
        Err(e) => {
            warn_io("matrix JSON serialize", &e);
            return;
        }
    };
    if let Err(e) = std::fs::write(&path, text) {
        warn_io("matrix JSON write", &e);
    }
}

/// Run the full matrix of `schemes x workloads` in parallel; deterministic
/// regardless of thread schedule.
pub fn run_matrix(
    scale: SystemScale,
    schemes: &[SchemeId],
    workloads: &[WorkloadSpec],
) -> HashMap<Cell, RunResult> {
    let jobs: Vec<(SchemeId, WorkloadSpec)> = schemes
        .iter()
        .flat_map(|&s| workloads.iter().map(move |&w| (s, w)))
        .collect();
    jobs.into_par_iter()
        .map(|(s, w)| {
            let cfg = cell_config(SchemeConfig::build(s, scale), w);
            let r = cached_run(&cfg);
            ((s, w.name), r)
        })
        .collect()
}

/// The checkpoint identity of a matrix: model stamp, scale, effort knob,
/// and an order-independent fold of every cell's full cache key. Any
/// change that would alter a cell's simulated numbers changes this string,
/// so a stale journal is discarded instead of resumed.
pub fn matrix_config_key(scale: SystemScale, jobs: &[(SchemeId, WorkloadSpec)]) -> String {
    let mut digest: u64 = 0;
    for &(s, w) in jobs {
        let cfg = cell_config(SchemeConfig::build(s, scale), w);
        digest = digest.wrapping_add(crate::hash::fnv1a64(
            crate::cache::global().key_string(&cfg).as_bytes(),
        ));
    }
    format!(
        "{}|{:?}|fast={}|cells={}|digest={:016x}",
        crate::cache::global().stamp(),
        scale,
        fast_mode(),
        jobs.len(),
        digest
    )
}

/// [`run_matrix`] under campaign supervision: one shard per
/// (scheme, workload) cell, each routed through the run cache exactly as
/// before, but checkpointed so `ECC_PARITY_RESUME=1` after a crash
/// re-executes only the cells that were in flight. Exits with status 3 if
/// any cell fails terminally — a figure with holes is worse than no
/// figure.
pub fn supervised_matrix(
    campaign: &str,
    scale: SystemScale,
    schemes: &[SchemeId],
    workloads: &[WorkloadSpec],
) -> HashMap<Cell, RunResult> {
    let jobs: Vec<(SchemeId, WorkloadSpec)> = schemes
        .iter()
        .flat_map(|&s| workloads.iter().map(move |&w| (s, w)))
        .collect();
    let sup_cfg = SupervisorConfig::from_env(campaign, matrix_config_key(scale, &jobs));
    let shards = jobs
        .iter()
        .map(|&(s, w)| {
            Shard::new(format!("cell:{s:?}:{}", w.name), move || {
                cached_run(&cell_config(SchemeConfig::build(s, scale), w))
            })
        })
        .collect();
    let run = supervise(&sup_cfg, shards);
    run.exit_if_incomplete();
    jobs.iter()
        .zip(run.into_results())
        .map(|(&(s, w), r)| ((s, w.name), r))
        .collect()
}

/// All sixteen paper workloads (one shared static table).
pub fn workloads() -> &'static [WorkloadSpec] {
    WorkloadSpec::all_static()
}

/// Mean of `f` over the workloads of one bin.
pub fn bin_mean(
    matrix: &HashMap<Cell, RunResult>,
    scheme: SchemeId,
    bin: u8,
    f: impl Fn(&RunResult) -> f64,
) -> f64 {
    let mut sum = 0.0;
    let mut n = 0usize;
    for w in workloads().iter().filter(|w| w.bin == bin) {
        sum += f(&matrix[&(scheme, w.name)]);
        n += 1;
    }
    assert!(
        n > 0,
        "bin_mean: no workload belongs to bin {bin} (scheme {scheme:?}); \
         a mean over zero workloads is undefined — check WorkloadSpec bin labels"
    );
    sum / n as f64
}

/// Percentage-reduction helper: how much smaller `ours` is than `base`.
pub fn reduction_pct(base: f64, ours: f64) -> f64 {
    (1.0 - ours / base) * 100.0
}

/// Render an aligned table.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let fmt_row = |cells: &[String]| {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>width$}", c, width = widths.get(i).copied().unwrap_or(8)))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let head: Vec<String> = headers.iter().map(|s| s.to_string()).collect();
    println!("{}", fmt_row(&head));
    println!(
        "{}",
        "-".repeat(widths.iter().sum::<usize>() + 2 * widths.len())
    );
    for row in rows {
        println!("{}", fmt_row(row));
    }
}

/// Format a percentage.
pub fn pct(v: f64) -> String {
    format!("{v:+.1}%")
}

/// Format a ratio.
pub fn ratio(v: f64) -> String {
    format!("{v:.3}")
}

/// The paper's reported averages used in comparisons (EXPERIMENTS.md).
pub mod paper {
    /// Fig 10 (quad-equivalent) EPI reductions of LOT-ECC5+Parity, (bin1, bin2).
    pub const FIG10_VS_CK36: (f64, f64) = (46.0, 59.5);
    /// Fig 10 reduction vs ChipKill x18 (bin1, bin2).
    pub const FIG10_VS_CK18: (f64, f64) = (34.6, 48.9);
    /// Fig 10 reduction vs LOT-ECC x9 (bin1, bin2).
    pub const FIG10_VS_LOT9: (f64, f64) = (12.8, 23.1);
    /// Fig 10 reduction vs Multi-ECC (bin1, bin2).
    pub const FIG10_VS_MULTI: (f64, f64) = (11.3, 20.5);
    /// RAIM+Parity vs RAIM (bin1, bin2), quad-equivalent.
    pub const FIG10_RAIM: (f64, f64) = (18.5, 22.6);
    /// Fig 16: LOT5+Parity accesses/instr vs 18-dev (+13.3%) and vs 36-dev (-20%).
    pub const FIG16_VS_CK18_PCT: f64 = 13.3;
    /// Fig 16: LOT5+Parity accesses/instr vs 36-dev (-20%).
    pub const FIG16_VS_CK36_PCT: f64 = -20.0;
}

/// Which quantity a comparison figure reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Metric {
    /// Fig 10/11: memory EPI reduction (%) over the baseline.
    TotalEpi,
    /// Fig 12: dynamic EPI reduction (%).
    DynamicEpi,
    /// Fig 13: background EPI reduction (%).
    BackgroundEpi,
    /// Fig 14/15: performance normalized to the baseline (>1 = faster).
    Perf,
    /// Fig 16/17: 64B accesses per instruction normalized to the baseline.
    Units,
}

impl Metric {
    fn value(self, base: &RunResult, ours: &RunResult) -> f64 {
        match self {
            Metric::TotalEpi => reduction_pct(base.epi_pj(), ours.epi_pj()),
            Metric::DynamicEpi => reduction_pct(base.dynamic_epi_pj(), ours.dynamic_epi_pj()),
            Metric::BackgroundEpi => {
                reduction_pct(base.background_epi_pj(), ours.background_epi_pj())
            }
            Metric::Perf => base.cycles as f64 / ours.cycles as f64,
            Metric::Units => ours.units_per_instruction() / base.units_per_instruction(),
        }
    }

    fn fmt(self, v: f64) -> String {
        match self {
            Metric::TotalEpi | Metric::DynamicEpi | Metric::BackgroundEpi => format!("{v:+.1}%"),
            Metric::Perf | Metric::Units => format!("{v:.3}"),
        }
    }
}

/// The comparison pairs of Figs 10-17: LOT-ECC5+Parity against each chipkill
/// baseline, and RAIM+Parity against RAIM.
pub const COMPARISONS: [(&str, SchemeId, SchemeId); 6] = [
    ("LOT5+P vs 36-dev", SchemeId::Lot5Parity, SchemeId::Ck36),
    ("LOT5+P vs 18-dev", SchemeId::Lot5Parity, SchemeId::Ck18),
    ("LOT5+P vs LOT-ECC9", SchemeId::Lot5Parity, SchemeId::Lot9),
    (
        "LOT5+P vs Multi-ECC",
        SchemeId::Lot5Parity,
        SchemeId::MultiEcc,
    ),
    ("LOT5+P vs LOT-ECC5", SchemeId::Lot5Parity, SchemeId::Lot5),
    ("RAIM+P vs RAIM", SchemeId::RaimParity, SchemeId::Raim),
];

/// Run the full matrix and print one comparison figure. Returns
/// (bin1 averages, bin2 averages) per comparison for EXPERIMENTS.md checks.
pub fn comparison_figure(title: &str, scale: SystemScale, metric: Metric) -> Vec<(f64, f64)> {
    let matrix = supervised_matrix(title, scale, &SchemeId::ALL, workloads());
    dump_matrix_json(title, &matrix);
    let mut rows: Vec<Vec<String>> = vec![];
    for w in workloads() {
        let mut row = vec![w.name.to_string(), format!("Bin{}", w.bin)];
        for (_, ours_id, base_id) in COMPARISONS {
            let ours = &matrix[&(ours_id, w.name)];
            let base = &matrix[&(base_id, w.name)];
            row.push(metric.fmt(metric.value(base, ours)));
        }
        rows.push(row);
    }
    let mut summaries = vec![];
    for bin in [1u8, 2] {
        let mut row = vec![format!("Bin{bin} avg"), String::new()];
        for (_, ours_id, base_id) in COMPARISONS {
            let vals: Vec<f64> = workloads()
                .iter()
                .filter(|w| w.bin == bin)
                .map(|w| metric.value(&matrix[&(base_id, w.name)], &matrix[&(ours_id, w.name)]))
                .collect();
            let mean = vals.iter().sum::<f64>() / vals.len() as f64;
            row.push(metric.fmt(mean));
            summaries.push(mean);
        }
        rows.push(row);
    }
    let mut headers = vec!["workload", "bin"];
    headers.extend(COMPARISONS.iter().map(|c| c.0));
    print_table(title, &headers, &rows);
    crate::cache::print_cache_summary();
    // reshape: per comparison (bin1, bin2)
    (0..COMPARISONS.len())
        .map(|i| (summaries[i], summaries[COMPARISONS.len() + i]))
        .collect()
}
