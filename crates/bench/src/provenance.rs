//! Run provenance: one manifest per figure-binary invocation.
//!
//! Reproduction results are only as trustworthy as the record of *how* they
//! were produced. [`RunMeter`] is an RAII guard every bench binary creates
//! as the first line of `main`; when it drops at process exit it
//!
//! 1. records the run's wall time as the `run.wall_ms` gauge,
//! 2. writes the metrics snapshot if `ECC_PARITY_METRICS=<path>` is set,
//! 3. flushes the event-trace sink (`ECC_PARITY_TRACE`),
//! 4. writes `<bin>.provenance.json` into `ECC_PARITY_JSON_DIR` (when set)
//!    recording the config digest of every simulated/reused cell, the
//!    model-version stamp, cache hit ratio, wall time, and git revision.
//!
//! The manifest makes a results directory self-describing: given only the
//! JSON dumps, one can tell which model version produced them, whether the
//! run was `ECC_PARITY_FAST`, and whether it came from cache or fresh
//! simulation.

use crate::cache;
use std::time::Instant;

/// Schema identifier stamped into every provenance manifest.
pub const PROVENANCE_SCHEMA: &str = "eccparity-provenance-v1";

/// RAII run guard: construct first thing in `main`, keep alive until exit.
///
/// ```no_run
/// let _run = eccparity_bench::provenance::RunMeter::start("fig99");
/// // ... produce the figure ...
/// // scope end drops the guard: snapshot + trace flush + provenance manifest
/// ```
pub struct RunMeter {
    bin: &'static str,
    start: Instant,
}

impl RunMeter {
    /// Start metering the run of binary `bin` (the manifest's file stem).
    pub fn start(bin: &'static str) -> RunMeter {
        if obs::trace::enabled() {
            obs::trace::event("run.start", &[("bin", obs::trace::Value::Str(bin))]);
        }
        RunMeter {
            bin,
            start: Instant::now(),
        }
    }
}

/// `git describe --always --dirty`, or `"unknown"` outside a git checkout.
fn git_revision() -> String {
    std::process::Command::new("git")
        .args(["describe", "--always", "--dirty"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .map(|o| String::from_utf8_lossy(&o.stdout).trim().to_string())
        .unwrap_or_else(|| "unknown".to_string())
}

impl Drop for RunMeter {
    fn drop(&mut self) {
        let wall = self.start.elapsed();
        let (simulated, reused) = cache::global().counters();
        let requested = simulated + reused;
        let hit_ratio = if requested == 0 {
            0.0
        } else {
            reused as f64 / requested as f64
        };
        if obs::metrics::enabled() {
            obs::gauge!("run.wall_ms").set(wall.as_millis() as u64);
            obs::counter!("run.cells_simulated").add(simulated);
            obs::counter!("run.cells_reused").add(reused);
        }
        if obs::trace::enabled() {
            obs::trace::event(
                "run.end",
                &[
                    ("bin", obs::trace::Value::Str(self.bin)),
                    ("wall_ms", obs::trace::Value::U64(wall.as_millis() as u64)),
                    ("cells_simulated", obs::trace::Value::U64(simulated)),
                    ("cells_reused", obs::trace::Value::U64(reused)),
                ],
            );
        }
        obs::metrics::write_snapshot_if_configured(self.bin);
        obs::trace::flush();

        let Some(dir) = crate::harness::json_dir() else {
            return;
        };
        if let Err(e) = std::fs::create_dir_all(&dir) {
            crate::harness::warn_io("provenance dir create", &e);
            return;
        }
        let manifest = serde_json::json!({
            "schema": PROVENANCE_SCHEMA,
            "bin": self.bin,
            "model_version": cache::global().stamp(),
            "config_digest": format!("{:016x}", cache::global().config_digest()),
            "cells_simulated": simulated,
            "cells_reused": reused,
            "cache_hit_ratio": hit_ratio,
            "wall_time_s": wall.as_secs_f64(),
            "git_revision": git_revision(),
            "fast_mode": crate::harness::fast_mode(),
        });
        let path = dir.join(format!("{}.provenance.json", self.bin));
        // In Drop there is no caller to propagate to; the contract is
        // "never silent": count it, say it, finish the drop.
        match serde_json::to_string_pretty(&manifest) {
            Ok(text) => {
                if let Err(e) = std::fs::write(&path, text) {
                    crate::harness::warn_io("provenance manifest write", &e);
                }
            }
            Err(e) => crate::harness::warn_io("provenance manifest serialize", &e),
        }
    }
}
