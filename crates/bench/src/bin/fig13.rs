//! Fig 13: reduction in memory *background* energy per instruction over the
//! baselines, quad-channel-equivalent.

use eccparity_bench::{comparison_figure, Metric};
use mem_sim::SystemScale;

fn main() {
    let _run = eccparity_bench::RunMeter::start("fig13");
    comparison_figure(
        "Fig 13 — background EPI reduction, quad-channel-equivalent systems",
        SystemScale::QuadEquivalent,
        Metric::BackgroundEpi,
    );
    println!(
        "\nmechanism (paper §V-A): fewer chips switch to active mode per \
         request, so chips put into sleep mode stay asleep longer."
    );
}
