//! Fig 12: reduction in memory *dynamic* energy per instruction (activate +
//! read + write commands) over the baselines, quad-channel-equivalent.

use eccparity_bench::{comparison_figure, Metric};
use mem_sim::SystemScale;

fn main() {
    let _run = eccparity_bench::RunMeter::start("fig12");
    comparison_figure(
        "Fig 12 — dynamic EPI reduction, quad-channel-equivalent systems",
        SystemScale::QuadEquivalent,
        Metric::DynamicEpi,
    );
    println!(
        "\nmechanism (paper §V-A): fewer chips read/written per memory \
         request due to the smaller rank size."
    );
}
