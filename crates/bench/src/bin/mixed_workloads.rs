//! Extension beyond the paper: heterogeneous multiprogrammed mixes. The
//! paper runs eight instances of one benchmark per workload; real
//! consolidated servers mix intensities. This binary checks that the
//! headline EPI reduction survives when Bin1 and Bin2 applications share
//! the memory system.

use eccparity_bench::{cached_run, cell_config, print_cache_summary, print_table};
use mem_sim::{SchemeConfig, SchemeId, SystemScale, WorkloadSpec};
use rayon::prelude::*;

fn mix(names: [&str; 8]) -> Vec<WorkloadSpec> {
    names
        .iter()
        .map(|n| WorkloadSpec::lookup(n).unwrap_or_else(|e| panic!("{e}")))
        .collect()
}

fn main() {
    let _run = eccparity_bench::RunMeter::start("mixed_workloads");
    let mixes: Vec<(&str, [&str; 8])> = vec![
        (
            "half&half",
            [
                "milc", "lbm", "canneal", "mcf", "sjeng", "omnetpp", "gcc", "astar",
            ],
        ),
        (
            "one-hog",
            [
                "lbm", "sjeng", "gcc", "astar", "ferret", "facesim", "omnetpp", "soplex",
            ],
        ),
        (
            "all-bin2",
            [
                "milc",
                "lbm",
                "canneal",
                "mcf",
                "GemsFDTD",
                "leslie3d",
                "libquantum",
                "streamcluster",
            ],
        ),
    ];
    let rows: Vec<Vec<String>> = mixes
        .par_iter()
        .map(|(label, names)| {
            let run = |id| {
                let mut cfg = cell_config(
                    SchemeConfig::build(id, SystemScale::QuadEquivalent),
                    WorkloadSpec::lookup(names[0]).unwrap_or_else(|e| panic!("{e}")),
                );
                cfg.per_core_workloads = Some(mix(*names));
                cached_run(&cfg)
            };
            let ck36 = run(SchemeId::Ck36);
            let ck18 = run(SchemeId::Ck18);
            let lot5p = run(SchemeId::Lot5Parity);
            vec![
                label.to_string(),
                format!("{:.0}", lot5p.epi_pj()),
                format!("{:+.1}%", (1.0 - lot5p.epi_pj() / ck36.epi_pj()) * 100.0),
                format!("{:+.1}%", (1.0 - lot5p.epi_pj() / ck18.epi_pj()) * 100.0),
                format!("{:.3}", ck36.cycles as f64 / lot5p.cycles as f64),
            ]
        })
        .collect();
    print_table(
        "Extension — heterogeneous mixes (LOT-ECC5+Parity, quad-equivalent)",
        &[
            "mix",
            "EPI pJ",
            "EPI red. vs 36-dev",
            "vs 18-dev",
            "perf vs 36-dev",
        ],
        &rows,
    );
    println!(
        "\nthe paper's homogeneous-mix EPI reductions survive consolidation: \
         heterogeneous mixes land between the Bin1 and Bin2 averages."
    );
    print_cache_summary();
}
