//! Fault-injection coverage campaign: the reproduction's validation
//! experiment. Thousands of randomized single- and double-fault trials
//! against the functional ECC Parity memory, classifying every outcome.
//!
//! The contract being validated:
//! * any single-channel fault is survivable (corrected via parity
//!   reconstruction, page retirement, or migration + stored ECC lines);
//! * multi-channel faults either correct (different relative locations, or
//!   one already migrated) or are **detected** uncorrectable;
//! * silent corruption — a read returning wrong data as if clean — never
//!   happens.
//!
//! The work plan itself lives in `eccparity_bench::faultcampaign` so the
//! `eccparity-worker` binary can rebuild the identical shard list. With
//! `ECC_PARITY_WORKERS` >= 2 this binary acts as the coordinator of a
//! multi-process fleet (see `eccparity_bench::distrib`); otherwise it runs
//! the shards in-process exactly as before. Either way stdout is
//! byte-identical.

use eccparity_bench::distrib::supervise_distributed;
use eccparity_bench::faultcampaign::{self, merge, Tally};
use eccparity_bench::print_table;
use eccparity_bench::supervisor::SupervisorConfig;

fn main() {
    let run_meter = eccparity_bench::RunMeter::start(faultcampaign::CAMPAIGN_NAME);
    let plan = faultcampaign::plan();
    let sup_cfg = SupervisorConfig::from_env(faultcampaign::CAMPAIGN_NAME, plan.config_key());
    let supervised = supervise_distributed(&sup_cfg, plan.shards);
    supervised.exit_if_incomplete();

    let mut tallies = vec![Tally::default(); plan.groups.len()];
    for (t, &gi) in supervised.into_results().iter().zip(&plan.shard_group) {
        tallies[gi] = merge(tallies[gi], *t);
    }
    let mut rows = vec![];
    let mut total_silent = 0u64;
    for (&(double, mode), tally) in plan.groups.iter().zip(&tallies) {
        total_silent += tally.silent;
        rows.push(vec![
            format!("{mode:?}{}", if double { " x2ch" } else { "" }),
            tally.trials.to_string(),
            tally.clean_reads.to_string(),
            tally.corrected_reads.to_string(),
            tally.retired_pages.to_string(),
            tally.migrations.to_string(),
            tally.uncorrectable.to_string(),
            tally.silent.to_string(),
        ]);
    }
    print_table(
        "Fault-injection campaign (4-channel LOT-ECC5 + ECC Parity)",
        &[
            "fault",
            "trials",
            "clean",
            "corrected",
            "retired",
            "migrations",
            "uncorrectable",
            "SILENT",
        ],
        &rows,
    );
    println!(
        "\nsingle-channel rows must show zero uncorrectable; double-channel \
         rows may show detected-uncorrectable (the paper's accumulation \
         window) but the SILENT column must be zero everywhere."
    );
    if total_silent != 0 {
        eprintln!(
            "campaign FAILED: {total_silent} silent-corruption event(s) — \
             a read returned wrong data as if clean"
        );
        // Flush provenance/metrics before the non-zero exit (same
        // convention as the soak driver): a failing campaign is exactly
        // when the observability artifacts matter.
        drop(run_meter);
        std::process::exit(1);
    }
    println!("campaign PASSED: no silent corruption in any trial.");
}
