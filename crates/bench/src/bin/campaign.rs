//! Fault-injection coverage campaign: the reproduction's validation
//! experiment. Thousands of randomized single- and double-fault trials
//! against the functional ECC Parity memory, classifying every outcome.
//!
//! The contract being validated:
//! * any single-channel fault is survivable (corrected via parity
//!   reconstruction, page retirement, or migration + stored ECC lines);
//! * multi-channel faults either correct (different relative locations, or
//!   one already migrated) or are **detected** uncorrectable;
//! * silent corruption — a read returning wrong data as if clean — never
//!   happens.

use ecc_codes::lotecc::LotEcc;
use ecc_parity::layout::LineLoc;
use ecc_parity::memory::{MemError, ParityConfig, ParityMemory};
use eccparity_bench::supervisor::{supervise, Shard, SupervisorConfig};
use eccparity_bench::{fast_mode, print_table};
use mem_faults::{ChipLocation, FaultInstance, FaultMode};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

#[derive(Default, Clone, Copy, Serialize, Deserialize)]
struct Tally {
    trials: u64,
    clean_reads: u64,
    corrected_reads: u64,
    retired_pages: u64,
    migrations: u64,
    uncorrectable: u64,
    silent: u64,
}

fn merge(a: Tally, b: Tally) -> Tally {
    Tally {
        trials: a.trials + b.trials,
        clean_reads: a.clean_reads + b.clean_reads,
        corrected_reads: a.corrected_reads + b.corrected_reads,
        retired_pages: a.retired_pages + b.retired_pages,
        migrations: a.migrations + b.migrations,
        uncorrectable: a.uncorrectable + b.uncorrectable,
        silent: a.silent + b.silent,
    }
}

fn random_fault(
    rng: &mut StdRng,
    cfg: &ParityConfig,
    mode: FaultMode,
    channel: usize,
) -> FaultInstance {
    FaultInstance {
        chip: ChipLocation {
            channel,
            rank: 0,
            chip: rng.gen_range(0..5),
        },
        mode,
        bank: rng.gen_range(0..cfg.banks_per_channel as u32),
        row: rng.gen_range(0..cfg.data_rows),
        line: rng.gen_range(0..cfg.lines_per_row),
        pattern_seed: rng.gen(),
    }
}

fn run_trial(seed: u64, mode: FaultMode, double: bool) -> Tally {
    let cfg = ParityConfig::small(4);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut mem = ParityMemory::new(LotEcc::five(), cfg);
    // Draw every line's contents in the original per-line order (writes
    // consume no randomness), then push the whole fill through the batched
    // write path so codec setup is amortized across the channel.
    let mut shadow = vec![];
    for c in 0..cfg.channels {
        for bank in 0..cfg.banks_per_channel {
            for row in 0..cfg.data_rows {
                for line in 0..cfg.lines_per_row {
                    let d: Vec<u8> = (0..64).map(|_| rng.gen()).collect();
                    let loc = LineLoc { bank, row, line };
                    shadow.push((c, loc, d));
                }
            }
        }
    }
    let batch: Vec<(usize, LineLoc, &[u8])> = shadow
        .iter()
        .map(|(c, loc, d)| (*c, *loc, d.as_slice()))
        .collect();
    for res in mem.write_lines(&batch) {
        res.unwrap();
    }
    let c1 = rng.gen_range(0..cfg.channels);
    mem.inject_fault(random_fault(&mut rng, &cfg, mode, c1));
    if double {
        let mut c2 = rng.gen_range(0..cfg.channels);
        while c2 == c1 {
            c2 = rng.gen_range(0..cfg.channels);
        }
        mem.inject_fault(random_fault(&mut rng, &cfg, mode, c2));
    }
    // Scrub twice (detection + post-migration steady state), then audit.
    let rep1 = mem.scrub();
    let rep2 = mem.scrub();
    let mut t = Tally {
        trials: 1,
        migrations: rep1.pairs_migrated + rep2.pairs_migrated,
        uncorrectable: rep1.uncorrectable + rep2.uncorrectable,
        ..Default::default()
    };
    t.retired_pages = mem.health().retired_count() as u64;
    let before_errors = mem.stats().detected_errors;
    for (c, loc, d) in &shadow {
        if mem.health().is_retired(*c, loc.bank, loc.row) {
            continue;
        }
        match mem.read(*c, *loc) {
            Ok(got) => {
                if &got == d {
                    t.clean_reads += 1;
                } else {
                    t.silent += 1; // must never happen
                }
            }
            Err(MemError::Uncorrectable) => t.uncorrectable += 1,
            Err(MemError::RetiredPage) => {}
            // Locations come from the shadow copy of successful writes, so
            // addressing errors are impossible here; surface loudly if not.
            Err(e) => panic!("unexpected memory error during campaign read: {e}"),
        }
    }
    t.corrected_reads = mem.stats().detected_errors - before_errors;
    t
}

fn main() {
    let run_meter = eccparity_bench::RunMeter::start("campaign");
    let trials: u64 = if fast_mode() { 40 } else { 150 };
    // Supervised execution: each (fault mode, single/double) group is cut
    // into trial chunks small enough that a SIGKILL loses at most one
    // chunk's work; seeds depend only on the trial index, so the chunked
    // tallies sum to exactly what the old monolithic loop produced.
    let chunk: u64 = if fast_mode() { 10 } else { 25 };
    let groups: Vec<(bool, FaultMode)> = [false, true]
        .iter()
        .flat_map(|&double| FaultMode::ALL.iter().map(move |&mode| (double, mode)))
        .collect();
    let mut shards: Vec<Shard<Tally>> = vec![];
    let mut shard_group: Vec<usize> = vec![];
    for (gi, &(double, mode)) in groups.iter().enumerate() {
        for k in 0..trials.div_ceil(chunk) {
            let lo = k * chunk;
            let hi = (lo + chunk).min(trials);
            shards.push(Shard::new(
                format!(
                    "campaign:{mode:?}{}:chunk{k}",
                    if double { "+x2ch" } else { "" }
                ),
                move || {
                    (lo..hi)
                        .into_par_iter()
                        .map(|i| run_trial(i * 31 + mode as u64 * 7 + double as u64, mode, double))
                        .reduce(Tally::default, merge)
                },
            ));
            shard_group.push(gi);
        }
    }
    let sup_cfg = SupervisorConfig::from_env(
        "campaign",
        format!(
            "campaign-v1|trials={trials}|chunk={chunk}|groups={}",
            groups.len()
        ),
    );
    let supervised = supervise(&sup_cfg, shards);
    supervised.exit_if_incomplete();

    let mut tallies = vec![Tally::default(); groups.len()];
    for (t, &gi) in supervised.into_results().iter().zip(&shard_group) {
        tallies[gi] = merge(tallies[gi], *t);
    }
    let mut rows = vec![];
    let mut total_silent = 0u64;
    for (&(double, mode), tally) in groups.iter().zip(&tallies) {
        total_silent += tally.silent;
        rows.push(vec![
            format!("{mode:?}{}", if double { " x2ch" } else { "" }),
            tally.trials.to_string(),
            tally.clean_reads.to_string(),
            tally.corrected_reads.to_string(),
            tally.retired_pages.to_string(),
            tally.migrations.to_string(),
            tally.uncorrectable.to_string(),
            tally.silent.to_string(),
        ]);
    }
    print_table(
        "Fault-injection campaign (4-channel LOT-ECC5 + ECC Parity)",
        &[
            "fault",
            "trials",
            "clean",
            "corrected",
            "retired",
            "migrations",
            "uncorrectable",
            "SILENT",
        ],
        &rows,
    );
    println!(
        "\nsingle-channel rows must show zero uncorrectable; double-channel \
         rows may show detected-uncorrectable (the paper's accumulation \
         window) but the SILENT column must be zero everywhere."
    );
    if total_silent != 0 {
        eprintln!(
            "campaign FAILED: {total_silent} silent-corruption event(s) — \
             a read returned wrong data as if clean"
        );
        // Flush provenance/metrics before the non-zero exit (same
        // convention as the soak driver): a failing campaign is exactly
        // when the observability artifacts matter.
        drop(run_meter);
        std::process::exit(1);
    }
    println!("campaign PASSED: no silent corruption in any trial.");
}
