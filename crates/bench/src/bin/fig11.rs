//! Fig 11: memory EPI reduction over each baseline, dual-channel-equivalent
//! systems. Paper: same trends as Fig 10; chipkill reduction ~56% vs 36-dev,
//! DIMM-kill ~18% vs RAIM.

use eccparity_bench::{comparison_figure, Metric};
use mem_sim::SystemScale;

fn main() {
    let _run = eccparity_bench::RunMeter::start("fig11");
    let sums = comparison_figure(
        "Fig 11 — memory EPI reduction, dual-channel-equivalent systems",
        SystemScale::DualEquivalent,
        Metric::TotalEpi,
    );
    println!("\npaper anchors: ~56% vs 36-dev (intro), ~18% RAIM+P vs RAIM.");
    println!(
        "ours: vs 36-dev (Bin1 {:.1}%, Bin2 {:.1}%); RAIM (Bin1 {:.1}%, Bin2 {:.1}%)",
        sums[0].0, sums[0].1, sums[5].0, sums[5].1
    );
}
