//! Table I: the modeled processor microarchitecture.

use eccparity_bench::print_table;
use mem_sim::CoreConfig;

fn main() {
    let _run = eccparity_bench::RunMeter::start("table01");
    let c = CoreConfig::default();
    let rows = vec![
        vec!["Issue width".into(), c.issue_width.to_string()],
        vec!["Type".into(), "OoO (bounded-MLP model)".into()],
        vec![
            "LSQ size".into(),
            format!("{}LQ/{}SQ", c.lq_size, c.sq_size),
        ],
        vec!["ROB size".into(), c.rob_size.to_string()],
        vec!["L1 line size".into(), "64B".into()],
        vec!["L1 D$, I$".into(), format!("{} KB", c.l1_bytes / 1024)],
        vec!["L2 size".into(), format!("{} MB", c.l2_bytes / 1024 / 1024)],
        vec!["L2 assoc.".into(), format!("{} ways", c.l2_ways)],
        vec!["L2 latency".into(), format!("{} cycles", c.l2_latency)],
        vec!["Clock".into(), format!("{} GHz", c.freq_ghz)],
        vec!["MLP window".into(), format!("{} fills", c.mlp)],
    ];
    print_table(
        "Table I — processor microarchitecture",
        &["parameter", "value"],
        &rows,
    );
}
