//! Ablation: memory-controller reordering. The paper uses DRAMsim's
//! Most-Pending policy; this model's equivalent is gap-filled bus/activate
//! ledgers (a younger, ready request may run before an older, blocked one).
//! Degrading to strict submission-order FIFO shows what the reordering
//! buys — and why deferred ECC-parity writes are harmless in a real
//! controller but poisonous under FIFO (head-of-line blocking).

use eccparity_bench::{cached_run, cell_config, print_cache_summary, print_table};
use mem_sim::{SchemeConfig, SchemeId, SystemScale, WorkloadSpec};
use rayon::prelude::*;

fn main() {
    let _run = eccparity_bench::RunMeter::start("ablation_scheduler");
    let cells: Vec<(&str, SchemeId)> = vec![
        ("milc/LOT5+P", SchemeId::Lot5Parity),
        ("milc/36-dev", SchemeId::Ck36),
        ("milc/18-dev", SchemeId::Ck18),
        ("lbm/LOT5+P", SchemeId::Lot5Parity),
    ];
    let rows: Vec<Vec<String>> = cells
        .par_iter()
        .map(|(label, id)| {
            let wname = label.split('/').next().unwrap();
            let w = WorkloadSpec::lookup(wname).unwrap_or_else(|e| panic!("{e}"));
            let run = |strict| {
                let mut scheme = SchemeConfig::build(*id, SystemScale::QuadEquivalent);
                scheme.mem.strict_fifo = strict;
                cached_run(&cell_config(scheme, w))
            };
            let reorder = run(false);
            let fifo = run(true);
            vec![
                label.to_string(),
                format!("{}", reorder.cycles),
                format!("{}", fifo.cycles),
                format!(
                    "{:+.1}%",
                    (fifo.cycles as f64 / reorder.cycles as f64 - 1.0) * 100.0
                ),
                format!(
                    "{:.0} / {:.0}",
                    reorder.avg_mem_latency, fifo.avg_mem_latency
                ),
            ]
        })
        .collect();
    print_table(
        "Ablation — controller reordering vs strict FIFO (quad-equivalent)",
        &[
            "cell",
            "reorder cycles",
            "FIFO cycles",
            "FIFO slowdown",
            "avg latency (re/fifo)",
        ],
        &rows,
    );
    println!(
        "\nwithout reordering, any blocked request (a bank conflict in the \
         single-rank commercial organizations, a deferred parity write in \
         the ECC Parity schemes) stalls every younger demand read behind it; \
         the one-rank 36-device organization suffers most, and all of the \
         paper's comparative results presume a reordering controller."
    );
    print_cache_summary();
}
