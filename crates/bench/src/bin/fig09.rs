//! Fig 9: workload memory bandwidth utilization in a dual-channel
//! commercial ECC memory system (the paper's workload characterization; all
//! selected workloads consume at least 1% of total bandwidth).

use eccparity_bench::{print_cache_summary, print_table, supervised_matrix, workloads};
use mem_sim::{SchemeConfig, SchemeId, SystemScale};

fn main() {
    let _run = eccparity_bench::RunMeter::start("fig09");
    let scheme = SchemeConfig::build(SchemeId::Ck36, SystemScale::DualEquivalent);
    let burst = scheme.mem.burst_cycles();
    let channels = scheme.mem.channels;
    // One supervised shard per workload cell: a crash mid-figure resumes
    // with only the in-flight cells re-simulated (ECC_PARITY_RESUME=1).
    let matrix = supervised_matrix(
        "fig09",
        SystemScale::DualEquivalent,
        &[SchemeId::Ck36],
        workloads(),
    );
    let mut results: Vec<(String, u8, f64, f64)> = workloads()
        .iter()
        .map(|w| {
            let r = &matrix[&(SchemeId::Ck36, w.name)];
            (
                w.name.to_string(),
                w.bin,
                r.bandwidth_gbs(),
                r.bus_utilization(channels, burst) * 100.0,
            )
        })
        .collect();
    results.sort_by(|a, b| b.3.total_cmp(&a.3));
    let rows: Vec<Vec<String>> = results
        .iter()
        .map(|(name, bin, gbs, util)| {
            vec![
                name.clone(),
                format!("Bin{bin}"),
                format!("{gbs:.2}"),
                format!("{util:.1}%"),
            ]
        })
        .collect();
    print_table(
        "Fig 9 — bandwidth utilization, dual-channel commercial ECC system",
        &["workload", "bin", "GB/s", "bus utilization"],
        &rows,
    );
    let min_util = results.iter().map(|r| r.3).fold(f64::MAX, f64::min);
    println!(
        "\npaper selection criterion: every workload uses >= 1% of bandwidth \
         (ours: minimum {min_util:.1}%); Bin2 = the eight highest access rates."
    );
    print_cache_summary();
}
