//! Ablation: intra-channel address mapping under the close-page policy.
//! The DRAMsim-style High-Performance map (consecutive lines to different
//! banks) against a row-locality map (consecutive lines share a row) —
//! the latter wastes the bank-level parallelism close-page depends on.

use dram_sim::MapPolicy;
use eccparity_bench::{cached_run, cell_config, print_cache_summary, print_table};
use mem_sim::{SchemeConfig, SchemeId, SystemScale, WorkloadSpec};
use rayon::prelude::*;

fn main() {
    let _run = eccparity_bench::RunMeter::start("ablation_mapping");
    let names = ["milc", "lbm", "streamcluster", "omnetpp"];
    let results: Vec<Vec<String>> = names
        .par_iter()
        .map(|&name| {
            let w = WorkloadSpec::lookup(name).unwrap_or_else(|e| panic!("{e}"));
            let run = |policy| {
                let mut scheme =
                    SchemeConfig::build(SchemeId::Lot5Parity, SystemScale::QuadEquivalent);
                scheme.mem.map_policy = policy;
                cached_run(&cell_config(scheme, w))
            };
            let hp = run(MapPolicy::HighPerformance);
            let rl = run(MapPolicy::RowLocality);
            vec![
                name.to_string(),
                format!("{}", hp.cycles),
                format!("{}", rl.cycles),
                format!(
                    "{:.1}%",
                    (rl.cycles as f64 / hp.cycles as f64 - 1.0) * 100.0
                ),
                format!("{:.1} / {:.1}", hp.avg_mem_latency, rl.avg_mem_latency),
            ]
        })
        .collect();
    print_table(
        "Ablation — intra-channel mapping (LOT-ECC5 + ECC Parity, quad-equivalent)",
        &[
            "workload",
            "high-perf cycles",
            "row-local cycles",
            "slowdown",
            "avg latency (hp/rl)",
        ],
        &results,
    );
    print_cache_summary();
}
