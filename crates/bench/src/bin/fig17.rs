//! Fig 17: memory accesses per instruction normalized to each baseline,
//! dual-channel-equivalent. Paper: overheads are *higher* than Fig 16
//! because each ECC parity (and thus each XOR cacheline) is shared across
//! fewer channels, raising the XOR-cacheline miss rate.

use eccparity_bench::{comparison_figure, Metric};
use mem_sim::SystemScale;

fn main() {
    let _run = eccparity_bench::RunMeter::start("fig17");
    let sums = comparison_figure(
        "Fig 17 — 64B accesses per instruction normalized, dual-channel-equivalent",
        SystemScale::DualEquivalent,
        Metric::Units,
    );
    let all18 = (sums[1].0 + sums[1].1) / 2.0;
    println!(
        "\nours vs 18-dev: {:+.1}% (must exceed the quad-equivalent figure's \
         overhead — run fig16 to compare).",
        (all18 - 1.0) * 100.0
    );
}
