//! Trace utility: record synthetic reference streams to JSON-lines, inspect
//! them, and replay them through any Table II organization.
//!
//! ```text
//! trace_tool record --workload milc --cores 8 --refs 50000 --out milc.jsonl
//! trace_tool inspect --trace milc.jsonl
//! trace_tool replay --trace milc.jsonl --scheme lot5p [--scale dual|quad]
//! ```
//!
//! Replay accepts traces produced elsewhere too: one JSON object per line,
//! `{"core":0,"line":123,"is_write":false,"gap_instr":25}`.

use mem_sim::{RunConfig, SchemeConfig, SchemeId, SimRunner, SystemScale, Trace, WorkloadSpec};
use std::collections::HashMap;
use std::path::Path;
use std::process::ExitCode;

fn flags(args: &[String]) -> HashMap<String, String> {
    let mut out = HashMap::new();
    let mut i = 0;
    while i + 1 < args.len() {
        if let Some(k) = args[i].strip_prefix("--") {
            out.insert(k.to_string(), args[i + 1].clone());
            i += 2;
        } else {
            i += 1;
        }
    }
    out
}

fn main() -> ExitCode {
    let _run = eccparity_bench::RunMeter::start("trace_tool");
    let args: Vec<String> = std::env::args().skip(1).collect();
    let f = flags(args.get(1..).unwrap_or(&[]));
    match args.first().map(String::as_str) {
        Some("record") => {
            let wname = f.get("workload").map(String::as_str).unwrap_or("milc");
            let spec = match WorkloadSpec::lookup(wname) {
                Ok(w) => w,
                Err(e) => {
                    eprintln!("{e}");
                    return ExitCode::FAILURE;
                }
            };
            let cores: usize = f.get("cores").and_then(|v| v.parse().ok()).unwrap_or(8);
            let refs: usize = f.get("refs").and_then(|v| v.parse().ok()).unwrap_or(50_000);
            let out = f
                .get("out")
                .cloned()
                .unwrap_or_else(|| format!("{wname}.jsonl"));
            let t = Trace::record(spec, cores, refs, 0xECC_9A817);
            t.save_jsonl(Path::new(&out)).expect("write trace");
            println!(
                "recorded {} refs ({} cores) to {out}",
                t.total_refs(),
                t.cores()
            );
        }
        Some("inspect") => {
            let path = f.get("trace").expect("--trace <file>");
            let t = Trace::load_jsonl(Path::new(path)).expect("read trace");
            println!("{path}: {} cores, {} refs", t.cores(), t.total_refs());
            for (c, refs) in t.per_core.iter().enumerate() {
                let writes = refs.iter().filter(|r| r.is_write).count();
                let instr: u64 = refs.iter().map(|r| r.gap_instr as u64).sum();
                let seq = refs
                    .windows(2)
                    .filter(|p| p[1].line == p[0].line + 1)
                    .count();
                println!(
                    "  core {c}: {} refs, {:.1}% writes, {:.1} instr/ref, {:.1}% sequential",
                    refs.len(),
                    writes as f64 / refs.len() as f64 * 100.0,
                    instr as f64 / refs.len() as f64,
                    seq as f64 / (refs.len() - 1).max(1) as f64 * 100.0
                );
            }
        }
        Some("replay") => {
            let path = f.get("trace").expect("--trace <file>");
            let t = Trace::load_jsonl(Path::new(path)).expect("read trace");
            let scheme = match f.get("scheme").map(String::as_str) {
                Some("ck36") => SchemeId::Ck36,
                Some("ck18") => SchemeId::Ck18,
                Some("lot5") => SchemeId::Lot5,
                Some("lot9") => SchemeId::Lot9,
                Some("multi") => SchemeId::MultiEcc,
                Some("raim") => SchemeId::Raim,
                Some("raimp") => SchemeId::RaimParity,
                _ => SchemeId::Lot5Parity,
            };
            let scale = match f.get("scale").map(String::as_str) {
                Some("dual") => SystemScale::DualEquivalent,
                _ => SystemScale::QuadEquivalent,
            };
            let cores = t.cores();
            let per_core = t.per_core[0].len();
            let mut cfg =
                RunConfig::paper(SchemeConfig::build(scheme, scale), WorkloadSpec::all()[0]);
            cfg.cores = cores;
            cfg.warmup_per_core = (per_core / 3).min(50_000);
            cfg.accesses_per_core = (per_core - cfg.warmup_per_core).min(100_000);
            cfg.trace = Some(t);
            let r = SimRunner::new(cfg).run();
            println!("scheme   : {}", r.scheme_name);
            println!("EPI      : {:.1} pJ/instr", r.epi_pj());
            println!("traffic  : {:.4} units/instr", r.units_per_instruction());
            println!(
                "runtime  : {} cycles, {:.2} GB/s",
                r.cycles,
                r.bandwidth_gbs()
            );
        }
        _ => {
            eprintln!("usage: trace_tool <record|inspect|replay> [--flags]");
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}
