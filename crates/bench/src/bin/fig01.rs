//! Fig 1: breakdown of memory-ECC capacity overheads into detection and
//! correction bits. Prints both the paper's idealized rows and the split
//! measured from this repo's functional code implementations.

use ecc_codes::{Chipkill18, Chipkill36, LotEcc, MemoryEcc, OverheadModel, Raim};
use eccparity_bench::print_table;
use resilience_analysis::capacity::figure1_rows;

fn main() {
    let _run = eccparity_bench::RunMeter::start("fig01");
    let rows: Vec<Vec<String>> = figure1_rows()
        .into_iter()
        .map(|(name, b)| {
            vec![
                name.to_string(),
                format!("{:.2}%", b.detection * 100.0),
                format!("{:.2}%", b.correction * 100.0),
                format!("{:.2}%", b.total() * 100.0),
            ]
        })
        .collect();
    print_table(
        "Fig 1 — capacity overhead split (paper rows)",
        &["ECC", "detection", "correction", "total"],
        &rows,
    );

    let ck36 = Chipkill36::new();
    let ck18 = Chipkill18::new();
    let lot9 = LotEcc::nine();
    let lot5 = LotEcc::five();
    let raim = Raim::new();
    let codes: Vec<(&dyn MemoryEcc, bool)> = vec![
        (&ck36, false),
        (&ck18, false),
        (&lot9, true),
        (&lot5, true),
        (&raim, false),
    ];
    let rows: Vec<Vec<String>> = codes
        .into_iter()
        .map(|(c, in_mem)| {
            let b = OverheadModel::baseline(c, in_mem);
            vec![
                c.name().to_string(),
                format!("{:.2}%", b.detection * 100.0),
                format!("{:.2}%", b.correction * 100.0),
                format!("{:.2}%", b.total() * 100.0),
            ]
        })
        .collect();
    print_table(
        "Fig 1 — split measured from the functional codes in crates/ecc",
        &["implementation", "detection", "correction", "total"],
        &rows,
    );
    println!(
        "\npaper's claim: \"typically 50% or more of the ECC capacity overhead \
         comes from the ECC correction bits\" — holds for every row above."
    );
}
