//! Ablation: the §III-D XOR-cacheline compaction. Without it, every dirty
//! writeback performs its own parity read-modify-write (plus a read of the
//! old data value when the LLC can't supply it); with it, deltas accumulate
//! in the LLC and only XOR-cacheline evictions touch memory.

use eccparity_bench::{cached_run, cell_config, print_cache_summary, print_table, workloads};
use mem_sim::{SchemeConfig, SchemeId, SystemScale};
use rayon::prelude::*;

fn main() {
    let _run = eccparity_bench::RunMeter::start("ablation_xorcache");
    let scheme = SchemeConfig::build(SchemeId::Lot5Parity, SystemScale::QuadEquivalent);
    let results: Vec<(String, f64, f64, f64)> = workloads()
        .into_par_iter()
        .map(|w| {
            let r = cached_run(&cell_config(scheme.clone(), *w));
            let cached_overhead = (r.traffic.ecc_read_units + r.traffic.ecc_write_units) as f64;
            // Uncompacted: each data writeback performs one parity read +
            // one parity write (equation (1) per line).
            let naive_overhead = 2.0 * r.traffic.data_write_units as f64;
            let data = (r.traffic.data_read_units + r.traffic.data_write_units) as f64;
            (
                w.name.to_string(),
                cached_overhead / data * 100.0,
                naive_overhead / data * 100.0,
                naive_overhead / cached_overhead.max(1.0),
            )
        })
        .collect();
    let rows: Vec<Vec<String>> = results
        .iter()
        .map(|(n, c, v, s)| {
            vec![
                n.clone(),
                format!("{c:.1}%"),
                format!("{v:.1}%"),
                format!("{s:.1}x"),
            ]
        })
        .collect();
    print_table(
        "Ablation — XOR-cacheline compaction (parity-update traffic / data traffic)",
        &["workload", "with compaction", "without", "traffic saved"],
        &rows,
    );
    let avg: f64 = results.iter().map(|r| r.3).sum::<f64>() / results.len() as f64;
    println!("\naverage parity-update traffic reduction from compaction: {avg:.1}x");
    print_cache_summary();
}
