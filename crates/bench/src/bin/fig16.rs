//! Fig 16: memory accesses per instruction (each 64B read or written counts
//! as one access) normalized to each baseline, quad-channel-equivalent.
//! Lower is better.

use eccparity_bench::{comparison_figure, paper, Metric};
use mem_sim::SystemScale;

fn main() {
    let _run = eccparity_bench::RunMeter::start("fig16");
    let sums = comparison_figure(
        "Fig 16 — 64B accesses per instruction normalized, quad-channel-equivalent",
        SystemScale::QuadEquivalent,
        Metric::Units,
    );
    let all18 = (sums[1].0 + sums[1].1) / 2.0;
    let all36 = (sums[0].0 + sums[0].1) / 2.0;
    println!(
        "\npaper anchors: +{:.1}% vs 18-dev (ECC-update overhead), {:.0}% vs \
         36-dev (128B lines overfetch for low-locality workloads).",
        paper::FIG16_VS_CK18_PCT,
        paper::FIG16_VS_CK36_PCT
    );
    println!(
        "ours: {:+.1}% vs 18-dev, {:+.1}% vs 36-dev",
        (all18 - 1.0) * 100.0,
        (all36 - 1.0) * 100.0
    );
}
