//! Fig 18: probability of faults occurring in more than one channel within
//! any single detection window (scrub interval) during a seven-year
//! lifetime, for per-chip fault rates of 22/44/100 FIT.

use eccparity_bench::print_table;
use mem_faults::SystemGeometry;
use resilience_analysis::scrub::analytic_window_probability;
use resilience_analysis::{fig18_series, scrub_bandwidth_fraction, years_per_extra_uncorrectable};

fn main() {
    let _run = eccparity_bench::RunMeter::start("fig18");
    let windows = [0.25, 1.0, 4.0, 8.0, 24.0, 72.0, 168.0];
    let fits = [22.0, 44.0, 100.0];
    // Monte Carlo at these rates needs enormous trial counts to resolve
    // 1e-4 probabilities; run it only as a sanity check at inflated rates in
    // the test suite, and print the analytic curve here.
    let mc_trials = 0;
    let series = fig18_series(&windows, &fits, mc_trials, 7);
    let mut rows = vec![];
    for &w in &windows {
        let mut row = vec![if w < 1.0 {
            format!("{:.0} min", w * 60.0)
        } else {
            format!("{w:.0} h")
        }];
        for &f in &fits {
            let (_, _, p, _) = series
                .iter()
                .find(|r| r.0 == w && r.1 == f)
                .copied()
                .unwrap();
            row.push(format!("{p:.2e}"));
        }
        rows.push(row);
    }
    print_table(
        "Fig 18 — P(faults in >1 channel within one window, 7-year life)",
        &["window", "22 FIT", "44 FIT", "100 FIT"],
        &rows,
    );

    println!("\nscrub cost side of the trade-off (512GB, 128GB/s peak):");
    for &w in &windows {
        println!(
            "  {:>6.2} h window -> {:.4}% of memory bandwidth",
            w,
            scrub_bandwidth_fraction(512e9, w, 128e9) * 100.0
        );
    }

    let geo = SystemGeometry::paper_reliability();
    let p8 = analytic_window_probability(&geo, 100.0, 8.0);
    println!(
        "\npaper anchor (§VI-C): 8-hour window @ 100 FIT -> ~2e-4 over seven \
         years (ours {p8:.1e}), i.e. one extra uncorrectable error per \
         ~35,000 years (ours {:.0}) — versus the 10-year/server target [8].",
        years_per_extra_uncorrectable(p8)
    );
}
