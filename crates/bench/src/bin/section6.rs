//! Section VI estimates: HPC stall fraction (VI-B), extra-uncorrectable
//! interpretation of the scrub analysis (VI-C), and the undetectable-error
//! estimate for the RS-based encoding (VI-D).

use mem_faults::SystemGeometry;
use resilience_analysis::hpc::{hpc_stall_fraction, HpcConfig};
use resilience_analysis::mixed_ranks::{evaluate as evaluate_mixed, MixedRankDesign};
use resilience_analysis::scrub::analytic_window_probability;
use resilience_analysis::undetect::{undetectable_years_estimate, UndetectConfig};
use resilience_analysis::years_per_extra_uncorrectable;

fn main() {
    let _run = eccparity_bench::RunMeter::start("section6");
    println!("== Section VI — system-level analyses ==\n");

    println!("VI-A  mixed narrow/wide ranks (hot pages in wide ranks):");
    for (wide, narrow, hot) in [(1usize, 3usize, 0.8f64), (2, 2, 0.9), (4, 0, 1.0)] {
        let out = evaluate_mixed(
            &MixedRankDesign {
                wide_ranks: wide,
                narrow_ranks: narrow,
                hot_access_fraction: hot,
            },
            8,
        );
        println!(
            "\x20     {wide} wide + {narrow} narrow ranks, {:.0}% hot hits: \
             {:.0}% of baseline energy/access at {:.0}% capacity \
             (ECC overhead {:.1}% via ECC Parity)",
            hot * 100.0,
            out.energy_per_access_rel * 100.0,
            out.capacity_rel * 100.0,
            out.ecc_overhead * 100.0
        );
    }
    println!();

    let cfg = HpcConfig::paper();
    let stall = hpc_stall_fraction(&cfg);
    println!(
        "VI-B  HPC stall fraction (2PB system, 128GB/node, 1GB/s NIC):\n\
         \x20     {:.2}% of time stalled on migration + ECC reconstruction \
         (paper: 0.35%)\n\
         \x20     {:.0} nodes, {:.0} chips/node, {:.0}s stall per large fault\n",
        stall * 100.0,
        cfg.nodes(),
        cfg.chips_per_node(),
        cfg.stall_seconds_per_event()
    );

    let geo = SystemGeometry::paper_reliability();
    let p = analytic_window_probability(&geo, 100.0, 8.0);
    println!(
        "VI-C  scrubbing every 8 hours at a pessimistic 100 FIT/chip:\n\
         \x20     P(multi-channel coincidence over 7 years) = {p:.1e} \
         (paper: 2e-4)\n\
         \x20     => one extra uncorrectable per {:.0} years (paper: ~35,000; \
         target [8]: one per 10 years)\n",
        years_per_extra_uncorrectable(p)
    );

    let years = undetectable_years_estimate(&UndetectConfig::paper());
    println!(
        "VI-D  RS-based LOT-ECC5+Parity, all faults pessimistically address \
         faults:\n\
         \x20     one undetected error per {years:.0} years across all \
         unmarked banks (paper: ~300,000; target [8]: one per 1,000 years)"
    );
}
