//! Ablation: health-tracking granularity (paper §III-B picks *bank pairs*).
//!
//! Finer tracking (per bank) needs more on-chip SRAM and, because ECC lines
//! live cross-unit, forces a different ECC-line home; coarser tracking
//! (per rank) migrates far more capacity per fault. This ablation computes,
//! for each granularity: the controller SRAM, the expected end-of-life
//! migrated-capacity fraction (7-year Monte Carlo), and the EOL capacity
//! overhead of the 8-channel LOT-ECC5 + ECC Parity configuration.

use ecc_codes::OverheadModel;
use eccparity_bench::{fast_mode, print_table};
use mem_faults::{FitTable, LifetimeSim, SystemGeometry};
use std::collections::HashSet;

/// Banks a large fault marks under each granularity (per event), given 8
/// banks/chip.
fn banks_marked(mode: mem_faults::FaultMode, granularity_banks: usize) -> usize {
    use mem_faults::FaultMode::*;
    let raw: usize = match mode {
        SingleBit | SingleWord | SingleRow => 0,
        SingleColumn | SingleBank => 1,
        MultiBank => 2,
        MultiRank => 16,
    };
    if raw == 0 {
        0
    } else {
        raw.div_ceil(granularity_banks) * granularity_banks
    }
}

fn main() {
    let _run = eccparity_bench::RunMeter::start("ablation_granularity");
    let geo = SystemGeometry::paper_reliability();
    let sim = LifetimeSim::new(geo, FitTable::DDR3_AVERAGE);
    let trials = if fast_mode() { 5_000 } else { 30_000 };
    let mut rows = vec![];
    for (label, gran_banks) in [
        ("per bank", 1usize),
        ("bank pair (paper)", 2),
        ("per rank", 8),
    ] {
        let total_banks = geo.channels * geo.ranks_per_channel * geo.banks_per_chip;
        let fractions = sim.run_trials(trials, 99, |events| {
            let mut marked: HashSet<(usize, usize, usize)> = HashSet::new();
            for e in events {
                let n = banks_marked(e.fault.mode, gran_banks);
                for k in 0..n {
                    let unit = (e.fault.bank as usize + k) % geo.banks_per_chip
                        + ((e.fault.chip.rank + k / geo.banks_per_chip) % geo.ranks_per_channel)
                            * geo.banks_per_chip;
                    marked.insert((e.fault.chip.channel, unit / gran_banks, gran_banks));
                }
            }
            marked.len() as f64 * gran_banks as f64 / total_banks as f64
        });
        let mean = fractions.iter().sum::<f64>() / trials as f64;
        // Counters: 0.5B per tracked unit.
        let sram = total_banks / gran_banks / 2;
        let eol = OverheadModel::ecc_parity_eol(0.25, 8, mean).total();
        rows.push(vec![
            label.to_string(),
            format!("{sram} B"),
            format!("{:.3}%", mean * 100.0),
            format!("{:.2}%", eol * 100.0),
        ]);
    }
    print_table(
        "Ablation — health-table granularity (8-chan LOT-ECC5 + ECC Parity)",
        &[
            "granularity",
            "SRAM",
            "EOL migrated fraction",
            "EOL capacity overhead",
        ],
        &rows,
    );
    println!(
        "\nthe paper's bank-pair choice halves the SRAM of per-bank tracking \
         while keeping the migrated fraction (and so the EOL overhead) within \
         noise of it; per-rank tracking migrates several times more capacity."
    );
}
