//! Table III: memory capacity overheads, including Monte Carlo end-of-life
//! averages for the ECC Parity rows.

use eccparity_bench::{fast_mode, print_table};
use resilience_analysis::table3_rows;

fn main() {
    let _run = eccparity_bench::RunMeter::start("table03");
    let trials = if fast_mode() { 4_000 } else { 25_000 };
    let rows: Vec<Vec<String>> = table3_rows(trials, 33)
        .into_iter()
        .map(|r| {
            vec![
                r.name.to_string(),
                format!("{:.1}%", r.static_overhead * 100.0),
                r.eol_avg
                    .map(|e| format!("{:.1}%", e * 100.0))
                    .unwrap_or_else(|| "-".into()),
                format!("{:.1}%", r.paper_value * 100.0),
            ]
        })
        .collect();
    print_table(
        "Table III — capacity overheads (EOL = end of life, 7-year MC)",
        &["scheme", "static", "EOL avg", "paper"],
        &rows,
    );
}
