//! Simulator validation against analytically-known microbenchmarks:
//!
//! * `stream` (long sequential runs, 2:1 read:write) must run near the
//!   channel bandwidth limit and gain from more channels;
//! * `randomwalk` (dependent-ish random reads) must be latency-bound with
//!   near-idle bus utilization;
//! * `cached` (LLC-resident) must produce almost no memory traffic and
//!   background-dominated energy.
//!
//! These are the sanity anchors that give the Table/Figure results their
//! credibility: if the simulator mishandled bandwidth or latency limits,
//! it would show here first.

use eccparity_bench::{cached_run, cell_config, print_cache_summary, print_table};
use mem_sim::{SchemeConfig, SchemeId, SystemScale, WorkloadSpec};

fn main() {
    let _run = eccparity_bench::RunMeter::start("microbench");
    let scheme = SchemeConfig::build(SchemeId::Ck18, SystemScale::QuadEquivalent);
    let channels = scheme.mem.channels;
    let burst = scheme.mem.burst_cycles();
    let mut rows = vec![];
    for w in WorkloadSpec::microbenchmarks() {
        let mut cfg = cell_config(scheme.clone(), w);
        if w.name == "randomwalk" {
            // dependent pointer chasing: one outstanding load at a time
            cfg.core_config.mlp = 1;
        }
        let r = cached_run(&cfg);
        rows.push(vec![
            w.name.to_string(),
            format!("{:.2}", r.bandwidth_gbs()),
            format!("{:.1}%", r.bus_utilization(channels, burst) * 100.0),
            format!("{:.1}", r.avg_mem_latency),
            format!(
                "{:.1}%",
                r.energy.background_pj() / r.energy.total_pj() * 100.0
            ),
            format!("{:.4}", r.units_per_instruction()),
        ]);
    }
    print_table(
        "Microbenchmark validation (18-device chipkill, quad-equivalent)",
        &[
            "microbench",
            "GB/s",
            "bus util",
            "avg latency",
            "bg energy share",
            "units/instr",
        ],
        &rows,
    );
    println!(
        "\nexpected: stream -> high utilization; randomwalk (dependent loads, \
         MLP 1) -> near-unloaded latency, low utilization; cached -> ~zero \
         traffic, background-dominated energy."
    );
    print_cache_summary();
}
