//! Ablation: the bank-pair error-counter threshold (paper §III-C fixes it
//! at 4). Sweeping it trades page-retirement capacity loss (low thresholds
//! migrate eagerly, high thresholds retire more pages and react slower)
//! against exposure time before a faulty region gains stored ECC bits.
//!
//! Driven end-to-end through the functional `ParityMemory` with an injected
//! bank fault: counts scrub sweeps to migration and pages retired.

use ecc_codes::lotecc::LotEcc;
use ecc_parity::layout::LineLoc;
use ecc_parity::memory::{ParityConfig, ParityMemory};
use eccparity_bench::print_table;
use mem_faults::{ChipLocation, FaultInstance, FaultMode};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    let _run = eccparity_bench::RunMeter::start("ablation_threshold");
    let mut rows = vec![];
    for threshold in [1u8, 2, 4, 8, 16] {
        let cfg = ParityConfig {
            channels: 8,
            banks_per_channel: 4,
            data_rows: 21, // 3 blocks of 7
            lines_per_row: 4,
            threshold,
        };
        let mut mem = ParityMemory::new(LotEcc::five(), cfg);
        let mut rng = StdRng::seed_from_u64(threshold as u64);
        // Populate channel 0 bank 0 (data drawn in the original per-line
        // rng order, written through the batched path) and inject a bank
        // fault there.
        let mut fill = vec![];
        for row in 0..cfg.data_rows {
            for line in 0..cfg.lines_per_row {
                let data: Vec<u8> = (0..64).map(|_| rng.gen()).collect();
                fill.push((LineLoc { bank: 0, row, line }, data));
            }
        }
        let batch: Vec<(usize, LineLoc, &[u8])> = fill
            .iter()
            .map(|(loc, d)| (0, *loc, d.as_slice()))
            .collect();
        for res in mem.write_lines(&batch) {
            res.unwrap();
        }
        mem.inject_fault(FaultInstance {
            chip: ChipLocation {
                channel: 0,
                rank: 0,
                chip: 1,
            },
            mode: FaultMode::SingleBank,
            bank: 0,
            row: 0,
            line: 0,
            pattern_seed: 42,
        });
        let mut sweeps = 0;
        let mut retired_total = 0;
        for _ in 0..threshold as usize + 2 {
            sweeps += 1;
            let rep = mem.scrub();
            retired_total += rep.pages_retired;
            if rep.pairs_migrated > 0 {
                break;
            }
        }
        rows.push(vec![
            threshold.to_string(),
            sweeps.to_string(),
            retired_total.to_string(),
            format!("{}", mem.stats().pairs_migrated),
            format!("{:.2}%", mem.capacity_overhead() * 100.0),
        ]);
    }
    print_table(
        "Ablation — error-counter threshold (bank fault in one channel)",
        &[
            "threshold",
            "scrubs to migrate",
            "pages retired",
            "migrations",
            "capacity overhead",
        ],
        &rows,
    );
    println!(
        "\npaper's choice: threshold 4 — max 4*(N-1) retired pages per pair, \
         one scrub sweep to migrate a large fault (each sweep sees >=4 errors)."
    );
}
