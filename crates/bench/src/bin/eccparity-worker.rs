//! Distributed campaign worker: attach to a campaign's checkpoint
//! journal, claim shards through the lease protocol, execute and publish
//! them until the campaign is drained.
//!
//! Usage: `eccparity-worker --campaign <name>`
//!
//! The worker rebuilds the campaign's shard list from the same
//! environment the coordinator used (`ECC_PARITY_FAST`,
//! `ECC_PARITY_CHECKPOINT_DIR`), so only campaigns with a library-side
//! work plan can run distributed; today that is `campaign`
//! (`eccparity_bench::faultcampaign`). Normally spawned by the campaign
//! binary's coordinator mode (`ECC_PARITY_WORKERS`), but can be started
//! by hand against a live journal to add capacity.
//!
//! Exit status: 0 once the campaign is drained, 2 on usage errors, 3 on
//! setup failures (no journal header within the attach window), 86 for a
//! chaos-injected kill (`ECC_PARITY_CHAOS` worker faults).

use eccparity_bench::distrib::{run_worker, WorkerOptions};
use eccparity_bench::faultcampaign;
use eccparity_bench::supervisor::SupervisorConfig;

fn usage() -> ! {
    eprintln!("usage: eccparity-worker --campaign <name>   (supported: campaign)");
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut campaign: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--campaign" => {
                i += 1;
                campaign = Some(args.get(i).cloned().unwrap_or_else(|| usage()));
            }
            _ => usage(),
        }
        i += 1;
    }
    let Some(campaign) = campaign else { usage() };
    if campaign != faultcampaign::CAMPAIGN_NAME {
        eprintln!("eccparity-worker: unknown campaign {campaign:?} (supported: campaign)");
        std::process::exit(2);
    }

    let plan = faultcampaign::plan();
    let mut cfg = SupervisorConfig::from_env(faultcampaign::CAMPAIGN_NAME, plan.config_key());
    // Resume is the coordinator's decision; a worker only ever attaches.
    cfg.resume = false;
    match run_worker(
        &cfg,
        &plan.shards,
        WorkerOptions {
            worker_faults: true,
        },
    ) {
        Ok(report) => {
            eprintln!(
                "worker[{}]: drained: executed {}, published {}, steals {}, rejected {}",
                std::process::id(),
                report.executed,
                report.published,
                report.steals,
                report.rejected
            );
            obs::metrics::write_snapshot_if_configured("eccparity-worker");
            obs::trace::flush();
        }
        Err(e) => {
            eprintln!("worker[{}]: {e}", std::process::id());
            obs::trace::flush();
            std::process::exit(3);
        }
    }
}
