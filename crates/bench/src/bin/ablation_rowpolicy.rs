//! Ablation: row-buffer policy. The paper adopts close-page "which allows a
//! rank to be placed in sleep mode when idle to reduce background power".
//! This ablation runs LOT-ECC5 + ECC Parity under both policies: open page
//! wins activates back on row hits but pins every touched rank in active
//! standby, forfeiting the sleep residency the energy results rest on.

use dram_sim::RowPolicy;
use eccparity_bench::{cached_run, cell_config, print_cache_summary, print_table};
use mem_sim::{SchemeConfig, SchemeId, SystemScale, WorkloadSpec};
use rayon::prelude::*;

fn main() {
    let _run = eccparity_bench::RunMeter::start("ablation_rowpolicy");
    let names = ["milc", "lbm", "streamcluster", "sjeng", "omnetpp"];
    let rows: Vec<Vec<String>> = names
        .par_iter()
        .map(|&name| {
            let w = WorkloadSpec::lookup(name).unwrap_or_else(|e| panic!("{e}"));
            let run = |policy| {
                let mut scheme =
                    SchemeConfig::build(SchemeId::Lot5Parity, SystemScale::QuadEquivalent);
                scheme.mem.row_policy = policy;
                cached_run(&cell_config(scheme, w))
            };
            let close = run(RowPolicy::ClosePage);
            let open = run(RowPolicy::OpenPage);
            vec![
                name.to_string(),
                format!("{:.0}", close.epi_pj()),
                format!("{:.0}", open.epi_pj()),
                format!("{:+.1}%", (open.epi_pj() / close.epi_pj() - 1.0) * 100.0),
                format!(
                    "{:.0} / {:.0}",
                    close.background_epi_pj(),
                    open.background_epi_pj()
                ),
                format!(
                    "{:+.1}%",
                    (close.cycles as f64 / open.cycles as f64 - 1.0) * 100.0
                ),
            ]
        })
        .collect();
    print_table(
        "Ablation — row-buffer policy (LOT-ECC5+Parity, quad-equivalent)",
        &[
            "workload",
            "close EPI",
            "open EPI",
            "open EPI delta",
            "bg EPI close/open",
            "open perf gain",
        ],
        &rows,
    );
    println!(
        "\nthe close-page choice trades row-hit latency for sleep residency; \
         with many small ranks the background savings dominate (paper §IV-B)."
    );
    print_cache_summary();
}
