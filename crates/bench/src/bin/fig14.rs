//! Fig 14: performance normalized to each baseline (values > 1 mean the
//! ECC-Parity organization is faster), quad-channel-equivalent systems.

use eccparity_bench::{comparison_figure, Metric};
use mem_sim::SystemScale;

fn main() {
    let _run = eccparity_bench::RunMeter::start("fig14");
    let sums = comparison_figure(
        "Fig 14 — performance normalized to baselines, quad-channel-equivalent",
        SystemScale::QuadEquivalent,
        Metric::Perf,
    );
    println!(
        "\npaper anchors: slight gains (<5%) vs the 64B-line baselines from \
         higher rank-level parallelism; ~equal vs LOT-ECC5; RAIM+P +1.5% vs \
         RAIM; high-spatial-locality workloads (streamcluster) favor the \
         128B-line organizations (36-dev, RAIM)."
    );
    println!(
        "ours (Bin1, Bin2 mean speedup): vs LOT-ECC9 ({:.3}, {:.3}); vs \
         LOT-ECC5 ({:.3}, {:.3}); RAIM+P vs RAIM ({:.3}, {:.3})",
        sums[2].0, sums[2].1, sums[4].0, sums[4].1, sums[5].0, sums[5].1
    );
}
