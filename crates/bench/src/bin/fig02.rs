//! Fig 2: mean time between faults in *different* channels vs the per-chip
//! DRAM fault rate (8 channels x 4 ranks x 9 chips, exponential failures).

use eccparity_bench::{fast_mode, print_table};
use resilience_analysis::fig2_series;

fn main() {
    let _run = eccparity_bench::RunMeter::start("fig02");
    let fits = [10.0, 25.0, 44.0, 100.0, 200.0, 400.0, 800.0];
    let trials = if fast_mode() { 100 } else { 400 };
    let series = fig2_series(&fits, trials, 2024);
    let rows: Vec<Vec<String>> = series
        .iter()
        .map(|(fit, analytic, mc)| {
            vec![
                format!("{fit:.0}"),
                format!("{analytic:.0}"),
                format!("{mc:.0}"),
            ]
        })
        .collect();
    print_table(
        "Fig 2 — mean time between faults in different channels (days)",
        &["FIT/chip", "analytic", "Monte Carlo"],
        &rows,
    );
    println!(
        "\npaper anchor: [21] reports ~44 FIT/chip; the gap is 'on the order \
         of 100's of days' across the figure's rate range (ours: {:.0} days at \
         44 FIT, falling toward 100s of days as rates climb).",
        series.iter().find(|r| r.0 == 44.0).unwrap().1
    );
}
