//! Calibration probe: prints the key shape metrics for a few cells so the
//! model can be tuned against the paper's anchors without running the full
//! figure suite.

use eccparity_bench::*;
use mem_sim::{SchemeId, SystemScale, WorkloadSpec};

fn main() {
    let _run = eccparity_bench::RunMeter::start("probe");
    let schemes = [
        SchemeId::Ck36,
        SchemeId::Ck18,
        SchemeId::Lot9,
        SchemeId::MultiEcc,
        SchemeId::Lot5,
        SchemeId::Lot5Parity,
        SchemeId::Raim,
        SchemeId::RaimParity,
    ];
    let ws: Vec<WorkloadSpec> = ["milc", "lbm", "streamcluster", "sjeng", "omnetpp"]
        .iter()
        .map(|n| WorkloadSpec::lookup(n).unwrap_or_else(|e| panic!("{e}")))
        .collect();
    let m = run_matrix(SystemScale::QuadEquivalent, &schemes, &ws);

    let mut rows = vec![];
    for w in &ws {
        for s in schemes {
            let r = &m[&(s, w.name)];
            rows.push(vec![
                w.name.to_string(),
                r.scheme_name.to_string(),
                format!("{:.1}", r.epi_pj()),
                format!("{:.1}", r.dynamic_epi_pj()),
                format!("{:.1}", r.background_epi_pj()),
                format!("{:.4}", r.units_per_instruction()),
                format!("{}", r.cycles),
                format!("{:.2}", r.bandwidth_gbs()),
            ]);
        }
    }
    print_table(
        "probe (quad-equivalent)",
        &[
            "workload",
            "scheme",
            "EPI pJ",
            "dynEPI",
            "bgEPI",
            "units/instr",
            "cycles",
            "GB/s",
        ],
        &rows,
    );

    // Headline ratios for milc (a Bin2 workload)
    for w in ["milc", "sjeng"] {
        let p = &m[&(SchemeId::Lot5Parity, w)];
        println!("\n-- {w} --");
        for s in [
            SchemeId::Ck36,
            SchemeId::Ck18,
            SchemeId::Lot9,
            SchemeId::MultiEcc,
            SchemeId::Lot5,
        ] {
            let b = &m[&(s, w)];
            println!(
                "LOT5+Parity vs {:<12?}: EPI {:+.1}%  units {:+.1}%  perf {:+.1}%",
                s,
                reduction_pct(b.epi_pj(), p.epi_pj()),
                (p.units_per_instruction() / b.units_per_instruction() - 1.0) * 100.0,
                (b.cycles as f64 / p.cycles as f64 - 1.0) * 100.0,
            );
        }
        let rp = &m[&(SchemeId::RaimParity, w)];
        let rb = &m[&(SchemeId::Raim, w)];
        println!(
            "RAIM+Parity vs RAIM      : EPI {:+.1}%  units {:+.1}%  perf {:+.1}%",
            reduction_pct(rb.epi_pj(), rp.epi_pj()),
            (rp.units_per_instruction() / rb.units_per_instruction() - 1.0) * 100.0,
            (rb.cycles as f64 / rp.cycles as f64 - 1.0) * 100.0,
        );
    }
}
