//! §V-D: the speed-bin escape hatch for bandwidth-bound deployments.
//!
//! The paper: LOT-ECC5+Parity needs 13.3% more accesses per instruction
//! than the 18-device baseline; where bandwidth is the bottleneck, use
//! DRAMs "with a slightly higher frequency (e.g., 13.3% higher)" — and
//! "DRAMs in a 16% faster speed bin consume roughly 5% higher memory EPI",
//! small against the ~49% EPI reduction the scheme delivers.
//!
//! This binary reproduces both halves: the EPI cost of a 16% faster bin,
//! and the runtime recovered on a bandwidth-hungry workload.

use eccparity_bench::{cached_run, cell_config, print_cache_summary, print_table};
use mem_sim::{SchemeConfig, SchemeId, SystemScale, WorkloadSpec};
use rayon::prelude::*;

fn main() {
    let _run = eccparity_bench::RunMeter::start("speedbin");
    let rows: Vec<Vec<String>> = ["milc", "lbm", "libquantum", "canneal"]
        .par_iter()
        .map(|&name| {
            let w = WorkloadSpec::lookup(name).unwrap_or_else(|e| panic!("{e}"));
            let run = |factor: f64| {
                let mut scheme =
                    SchemeConfig::build(SchemeId::Lot5Parity, SystemScale::QuadEquivalent);
                scheme.mem.speed_factor = factor;
                cached_run(&cell_config(scheme, w))
            };
            let base = run(1.0);
            let fast = run(1.16);
            vec![
                name.to_string(),
                format!("{:.0}", base.epi_pj()),
                format!("{:.0}", fast.epi_pj()),
                format!("{:+.1}%", (fast.epi_pj() / base.epi_pj() - 1.0) * 100.0),
                format!(
                    "{:+.1}%",
                    (base.cycles as f64 / fast.cycles as f64 - 1.0) * 100.0
                ),
            ]
        })
        .collect();
    print_table(
        "§V-D — 16% faster speed bin (LOT-ECC5 + ECC Parity, quad-equivalent)",
        &[
            "workload",
            "EPI base",
            "EPI fast bin",
            "EPI cost",
            "runtime gain",
        ],
        &rows,
    );
    println!(
        "\npaper anchor: a 16% faster bin costs ~5% memory EPI — small \
         against the ~49% reduction vs the 18-device baseline."
    );
    print_cache_summary();
}
