//! Fig 8: fraction of memory per system that ends up with its ECC
//! correction bits stored in memory after seven years (solid bars: average;
//! horizontal lines: the 99.9th percentile), by channel count.

use eccparity_bench::{fast_mode, print_table};
use resilience_analysis::fig8_point;

fn main() {
    let _run = eccparity_bench::RunMeter::start("fig08");
    let trials = if fast_mode() { 5_000 } else { 40_000 };
    let rows: Vec<Vec<String>> = [2usize, 4, 8, 16]
        .iter()
        .map(|&ch| {
            let p = fig8_point(ch, trials, 88);
            vec![
                format!("{ch}"),
                format!("{:.3}%", p.mean_fraction * 100.0),
                format!("{:.3}%", p.p999_fraction * 100.0),
                format!("{:.1}", p.mean_retired_pages),
            ]
        })
        .collect();
    print_table(
        "Fig 8 — memory migrated to stored ECC correction bits after 7 years",
        &["channels", "mean", "99.9th pct", "retired pages (mean)"],
        &rows,
    );
    println!("\npaper anchor: ~0.4% mean across configurations.");
}
