//! Fig 10: memory energy-per-instruction reduction over each baseline, in
//! systems equivalent in physical bandwidth/size to a *quad-channel*
//! commercial ECC memory system.

use eccparity_bench::{comparison_figure, paper, Metric};
use mem_sim::SystemScale;

fn main() {
    let _run = eccparity_bench::RunMeter::start("fig10");
    let sums = comparison_figure(
        "Fig 10 — memory EPI reduction, quad-channel-equivalent systems",
        SystemScale::QuadEquivalent,
        Metric::TotalEpi,
    );
    println!("\npaper averages (Bin1, Bin2):");
    println!(
        "  vs 36-dev     {:?}   ours ({:.1}, {:.1})",
        paper::FIG10_VS_CK36,
        sums[0].0,
        sums[0].1
    );
    println!(
        "  vs 18-dev     {:?}   ours ({:.1}, {:.1})",
        paper::FIG10_VS_CK18,
        sums[1].0,
        sums[1].1
    );
    println!(
        "  vs LOT-ECC9   {:?}   ours ({:.1}, {:.1})",
        paper::FIG10_VS_LOT9,
        sums[2].0,
        sums[2].1
    );
    println!(
        "  vs Multi-ECC  {:?}   ours ({:.1}, {:.1})",
        paper::FIG10_VS_MULTI,
        sums[3].0,
        sums[3].1
    );
    println!(
        "  RAIM+P vs RAIM{:?}   ours ({:.1}, {:.1})",
        paper::FIG10_RAIM,
        sums[5].0,
        sums[5].1
    );
}
