//! Fig 15: performance normalized to each baseline, dual-channel-equivalent
//! systems (paper: similar behavior to Fig 14).

use eccparity_bench::{comparison_figure, Metric};
use mem_sim::SystemScale;

fn main() {
    let _run = eccparity_bench::RunMeter::start("fig15");
    comparison_figure(
        "Fig 15 — performance normalized to baselines, dual-channel-equivalent",
        SystemScale::DualEquivalent,
        Metric::Perf,
    );
}
