//! Full energy-breakdown profile: every EnergyBreakdown component for every
//! Table II organization on one workload — the decomposition behind
//! Figs 10-13 at full resolution.

use eccparity_bench::{cached_run, cell_config, print_cache_summary, print_table};
use mem_sim::{SchemeConfig, SchemeId, SystemScale, WorkloadSpec};
use rayon::prelude::*;
use std::env;

fn main() {
    let _run = eccparity_bench::RunMeter::start("power_profile");
    let wname = env::args().nth(1).unwrap_or_else(|| "milc".to_string());
    let w = match WorkloadSpec::lookup(&wname) {
        Ok(w) => w,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(1);
        }
    };
    let results: Vec<_> = SchemeId::ALL
        .par_iter()
        .map(|&id| {
            let cfg = cell_config(SchemeConfig::build(id, SystemScale::QuadEquivalent), w);
            cached_run(&cfg)
        })
        .collect();
    let rows: Vec<Vec<String>> = results
        .iter()
        .map(|r| {
            let i = r.instructions as f64;
            let e = &r.energy;
            vec![
                r.scheme_name.to_string(),
                format!("{:.0}", e.activate_pj / i),
                format!("{:.0}", e.read_pj / i),
                format!("{:.0}", e.write_pj / i),
                format!("{:.0}", e.refresh_pj / i),
                format!("{:.0}", e.bg_active_pj / i),
                format!("{:.0}", e.bg_standby_pj / i),
                format!("{:.0}", e.bg_sleep_pj / i),
                format!("{:.0}", r.epi_pj()),
            ]
        })
        .collect();
    print_table(
        &format!("Energy profile on {wname} (pJ/instruction, quad-equivalent)"),
        &[
            "scheme", "ACT", "RD", "WR", "REF", "bgACT", "bgSTBY", "bgSLEEP", "total",
        ],
        &rows,
    );
    println!(
        "\nthe paper's story in one table: the 36-device/RAIM rows burn their \
         energy in ACT (36-45 chips per access); the ECC Parity rows shift \
         the profile toward background, most of it in cheap sleep residency."
    );
    print_cache_summary();
}
