//! Table II: the evaluated ECC organizations (rank configuration, line
//! size, ranks/channel, logical channels, total I/O pins) at both scales.

use eccparity_bench::print_table;
use mem_sim::{SchemeConfig, SchemeId, SystemScale};

fn main() {
    let _run = eccparity_bench::RunMeter::start("table02");
    let mut rows = vec![];
    for id in SchemeId::ALL {
        let q = SchemeConfig::build(id, SystemScale::QuadEquivalent);
        let d = SchemeConfig::build(id, SystemScale::DualEquivalent);
        rows.push(vec![
            q.name.to_string(),
            format!("{} chips", q.mem.rank.chips()),
            format!("{}B", q.mem.line_bytes),
            q.mem.ranks_per_channel.to_string(),
            format!("{}, {}", d.mem.channels, q.mem.channels),
            format!("{}, {}", d.mem.total_pins(), q.mem.total_pins()),
        ]);
    }
    print_table(
        "Table II — evaluated ECC organizations (dual-, quad-equivalent)",
        &[
            "scheme",
            "rank",
            "line",
            "ranks/chan",
            "logical channels",
            "total pins",
        ],
        &rows,
    );
}
