//! Degraded-mode study (paper §III-C): steady-state cost of a migrated
//! bank pair. Application reads to the faulty pair fetch the covering ECC
//! line (Fig 6 step B — "the most expensive step among the added steps");
//! writes update it (step D). Both are LLC-cached per §III-D.
//!
//! The paper argues the overall impact is small because only the faulty
//! region pays, and its ECC lines cache well — this binary quantifies that.

use eccparity_bench::{cached_run, cell_config, print_cache_summary, print_table, workloads};
use mem_sim::{DegradedConfig, SchemeConfig, SchemeId, SystemScale};
use rayon::prelude::*;

fn main() {
    let _run = eccparity_bench::RunMeter::start("degraded_mode");
    let scheme = SchemeConfig::build(SchemeId::Lot5Parity, SystemScale::QuadEquivalent);
    let rows: Vec<Vec<String>> = workloads()
        .into_par_iter()
        .map(|w| {
            let mut healthy_cfg = cell_config(scheme.clone(), *w);
            let mut degraded_cfg = healthy_cfg.clone();
            healthy_cfg.degraded = None;
            degraded_cfg.degraded = Some(DegradedConfig {
                channel: 0,
                pair: 0,
            });
            let h = cached_run(&healthy_cfg);
            let d = cached_run(&degraded_cfg);
            vec![
                w.name.to_string(),
                format!("{:.2}%", (d.cycles as f64 / h.cycles as f64 - 1.0) * 100.0),
                format!("{:.2}%", (d.epi_pj() / h.epi_pj() - 1.0) * 100.0),
                format!(
                    "{:.2}%",
                    d.traffic.faulty_ecc_units as f64 / d.traffic.total_units() as f64 * 100.0
                ),
            ]
        })
        .collect();
    print_table(
        "Degraded mode — one migrated bank pair (LOT-ECC5+Parity, quad-equivalent)",
        &[
            "workload",
            "runtime overhead",
            "EPI overhead",
            "step-B/D traffic share",
        ],
        &rows,
    );
    println!(
        "\npaper §III-C: step B (parallel ECC-line reads for faulty banks) is \
         the most expensive added step, but its cost is confined to the \
         faulty pair's share of traffic."
    );
    print_cache_summary();
}
