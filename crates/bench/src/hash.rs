//! Shared hashing primitives for the bench infrastructure.

/// 64-bit FNV-1a. Stable, dependency-free, and plenty for cache keys,
/// journal checksums, and deterministic chaos rolls — every consumer also
/// carries enough context (full key strings, payload re-verification) that
/// a collision degrades to a miss or a re-execution, never a wrong result.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_is_stable_and_input_sensitive() {
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_ne!(fnv1a64(b"a"), fnv1a64(b"b"));
        assert_eq!(fnv1a64(b"campaign"), fnv1a64(b"campaign"));
    }
}
