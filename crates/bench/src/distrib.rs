//! Multi-process campaign execution: worker loop and coordinator.
//!
//! [`crate::supervisor`] shards a campaign within one process; this module
//! scales the same journal out to a fleet. The pieces:
//!
//! * **Worker** ([`run_worker`]): attaches to the campaign journal, and
//!   loops — replay + [`crate::supervisor::distill_records`] to see what
//!   is settled, claim an unsettled shard through [`crate::lease`],
//!   execute it under the same catch_unwind + watchdog + bounded-retry
//!   machinery, publish a `ShardDone` (stamped with the lease's fencing
//!   token) via the `O_APPEND` path, release, repeat — until every shard
//!   is settled. A heartbeat thread refreshes the lease while the shard
//!   runs; before publishing, the worker re-verifies ownership so a
//!   stolen lease's result is discarded, never journaled
//!   (`supervisor.lease.stale_publish_rejected`).
//! * **Coordinator** ([`supervise_distributed`]): publishes the journal
//!   header, spawns `ECC_PARITY_WORKERS` local `eccparity-worker`
//!   processes, reaps the dead and immediately re-queues their leases
//!   (`supervisor.lease.requeued`), respawns within a bounded budget,
//!   publishes a live `eccparity-progress-v1` stamp, and finally merges
//!   the journal into the same [`SupervisedRun`] — and byte-identical
//!   stdout — a single-process [`supervise`] call produces. If workers
//!   cannot run (binary missing, respawn budget burned), the coordinator
//!   finishes the remainder in-process, so a distributed campaign never
//!   completes *less* than a local one.
//!
//! Worker-level chaos ([`crate::chaos`]: kill-after-claim, heartbeat
//! stall, double-claim probe, stale-fencing publish) is only honored when
//! [`WorkerOptions::worker_faults`] is set — the worker binary sets it,
//! the coordinator's in-process fallback does not, so chaos can never
//! kill the coordinator itself.

use crate::chaos::Chaos;
use crate::hash::fnv1a64;
use crate::lease::{self, ClaimOutcome, LeaseConfig};
use crate::supervisor::{
    append_record, distill_records, header_matches, panic_message, quarantine_path, replay_journal,
    supervise, JournalRecord, OutcomeClass, Shard, ShardOutcome, SupervisedRun, SupervisorConfig,
    JOURNAL_SCHEMA,
};
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

/// Schema stamped into the coordinator's live progress stamp.
pub const PROGRESS_SCHEMA: &str = "eccparity-progress-v1";

/// Exit status the worker binary uses for a chaos-injected `kill -9`
/// (distinct from real failures so the coordinator can log it as
/// expected attrition).
pub const CHAOS_KILL_EXIT: i32 = 86;

/// How a [`run_worker`] call should behave.
#[derive(Debug, Clone, Copy, Default)]
pub struct WorkerOptions {
    /// Honor worker-level chaos faults (process kill, heartbeat stall,
    /// forged stale publish). Only the standalone worker binary sets
    /// this; in-process callers must not, or chaos would kill them.
    pub worker_faults: bool,
}

/// What one worker did before the campaign drained.
#[derive(Debug, Default, Clone, Copy)]
pub struct WorkerReport {
    /// Shards this worker executed to a terminal class.
    pub executed: u64,
    /// `ShardDone` records this worker published.
    pub published: u64,
    /// Results discarded because the lease was stolen mid-run.
    pub rejected: u64,
    /// Claims that arrived via a steal (token > 1).
    pub steals: u64,
}

/// Live progress stamp (`eccparity-progress-v1`), republished atomically
/// by the coordinator every poll tick.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ProgressStamp {
    /// Always [`PROGRESS_SCHEMA`].
    pub schema: String,
    /// Campaign name.
    pub campaign: String,
    /// Shards the campaign submits.
    pub total_shards: u64,
    /// Shards with a terminal journal record.
    pub done: u64,
    /// Shards currently under a lease (in flight somewhere).
    pub claimed: u64,
    /// Shards neither done nor claimed.
    pub remaining: u64,
    /// Worker processes currently alive.
    pub workers_alive: u64,
    /// Coordinator wall time so far, milliseconds.
    pub elapsed_ms: u64,
    /// Naive completion estimate: mean done-shard wall time times
    /// remaining shards, divided by live workers. 0 when unknowable.
    pub eta_ms: u64,
}

/// Worker-count policy from `ECC_PARITY_WORKERS`: unset or `1` means
/// single-process supervision (the default stays exactly the old
/// behavior); `0` or `auto` means CPU-count-scaled; `N >= 2` means N.
pub fn workers_from_env() -> usize {
    match std::env::var("ECC_PARITY_WORKERS") {
        Err(_) => 1,
        Ok(v) => {
            let v = v.trim().to_string();
            if v == "0" || v.eq_ignore_ascii_case("auto") {
                let cpus = std::thread::available_parallelism().map_or(4, |n| n.get());
                (cpus / 2).clamp(2, 8)
            } else {
                v.parse::<usize>().unwrap_or_else(|_| {
                    eprintln!("supervisor: ECC_PARITY_WORKERS={v:?} is not a count; using 1");
                    1
                })
            }
        }
    }
}

/// Distributed entry point for campaign binaries: single-process
/// [`supervise`] unless `ECC_PARITY_WORKERS` asks for a fleet (and a
/// checkpoint directory exists to share the journal through).
pub fn supervise_distributed<T>(cfg: &SupervisorConfig, shards: Vec<Shard<T>>) -> SupervisedRun<T>
where
    T: Serialize + Deserialize + Send + 'static,
{
    let workers = workers_from_env();
    if workers <= 1 || cfg.dir.is_none() {
        return supervise(cfg, shards);
    }
    coordinate(cfg, shards, workers)
}

// ---- worker ----------------------------------------------------------------

/// Terminal outcome of executing one shard in a worker.
struct ExecOutcome {
    class: OutcomeClass,
    attempts: u32,
    wall_ms: u64,
    payload: String,
}

/// One shard attempt chain: catch_unwind + watchdog (`recv_timeout`) +
/// exponential backoff, mirroring the in-process scheduler's semantics so
/// a worker-run shard classifies exactly like a supervised one.
fn execute_with_retries<T>(cfg: &SupervisorConfig, shard: &Shard<T>, chaos: Chaos) -> ExecOutcome
where
    T: Serialize + Deserialize + Send + 'static,
{
    let mut attempt: u32 = 1;
    loop {
        let started = Instant::now();
        let (tx, rx) = mpsc::channel();
        let work = shard.work_arc();
        let name = shard.name.clone();
        std::thread::spawn(move || {
            let result = catch_unwind(AssertUnwindSafe(|| {
                if let Some(ms) = chaos.shard_delay_ms(&name, attempt) {
                    std::thread::sleep(Duration::from_millis(ms));
                }
                if chaos.shard_panic(&name, attempt) {
                    panic!("chaos: injected shard panic");
                }
                work()
            }));
            let _ = tx.send(result.map_err(|e| panic_message(e.as_ref())));
        });
        let verdict = rx.recv_timeout(cfg.timeout);
        let wall_ms = started.elapsed().as_millis() as u64;
        match verdict {
            Ok(Ok(v)) => {
                let payload = serde_json::to_string(&v).unwrap_or_else(|e| {
                    crate::harness::warn_io("shard payload serialize", &e);
                    String::new()
                });
                return ExecOutcome {
                    class: if attempt > 1 {
                        OutcomeClass::Retried
                    } else {
                        OutcomeClass::Completed
                    },
                    attempts: attempt,
                    wall_ms,
                    payload,
                };
            }
            failed => {
                let (kind, class) = match &failed {
                    Ok(Err(_)) => ("panicked", OutcomeClass::Panicked),
                    Err(mpsc::RecvTimeoutError::Timeout) => ("timed_out", OutcomeClass::TimedOut),
                    Err(mpsc::RecvTimeoutError::Disconnected) => {
                        ("panicked", OutcomeClass::Panicked)
                    }
                    Ok(Ok(_)) => unreachable!("success handled above"),
                };
                eprintln!(
                    "worker[{}]: {}: shard {} attempt {attempt} {kind}",
                    std::process::id(),
                    cfg.campaign,
                    shard.name
                );
                if attempt > cfg.retries {
                    return ExecOutcome {
                        class,
                        attempts: attempt,
                        wall_ms,
                        payload: String::new(),
                    };
                }
                let factor = 1u32 << (attempt - 1).min(16);
                std::thread::sleep(cfg.backoff * factor);
                attempt += 1;
            }
        }
    }
}

/// Attach to `cfg`'s campaign journal and execute shards until every one
/// is settled. Returns what this worker contributed; `Err` only for
/// setup-level problems (no checkpoint dir, header never appeared).
pub fn run_worker<T>(
    cfg: &SupervisorConfig,
    shards: &[Shard<T>],
    opts: WorkerOptions,
) -> Result<WorkerReport, String>
where
    T: Serialize + Deserialize + Send + 'static,
{
    let journal = cfg
        .journal_path()
        .ok_or_else(|| "worker requires a checkpoint directory".to_string())?;
    let ldir = cfg
        .lease_dir()
        .ok_or_else(|| "worker requires a checkpoint directory".to_string())?;
    let quarantine = quarantine_path(&journal);
    let lcfg = LeaseConfig::from_env();
    let chaos = cfg.chaos;
    let total = shards.len() as u64;
    let mut report = WorkerReport::default();
    let header_wait = Instant::now();

    'drain: loop {
        let (records, _) = replay_journal(&journal);
        if !header_matches(&records, cfg, total) {
            // The coordinator publishes the header before spawning us,
            // but tolerate a short window (or an operator starting
            // workers by hand before the coordinator).
            if header_wait.elapsed() > Duration::from_secs(10) {
                return Err(format!(
                    "no matching {JOURNAL_SCHEMA} header in {} after 10s",
                    journal.display()
                ));
            }
            std::thread::sleep(Duration::from_millis(50));
            continue;
        }
        let view = distill_records(&records, Some(&quarantine));
        if shards.iter().all(|s| view.done.contains_key(&s.name)) {
            break 'drain;
        }

        for shard in shards {
            if view.done.contains_key(&shard.name) {
                continue;
            }
            let lease = match lease::try_claim(&ldir, &shard.name, &lcfg) {
                Ok(ClaimOutcome::Claimed(l)) => l,
                Ok(ClaimOutcome::Busy) | Ok(ClaimOutcome::Conflict) => continue,
                Err(e) => {
                    crate::harness::warn_io("lease claim", &e);
                    continue;
                }
            };
            if lease.token > 1 {
                report.steals += 1;
            }
            if opts.worker_faults && chaos.worker_kill_after_claim(&shard.name, lease.token) {
                eprintln!(
                    "worker[{}]: chaos: dying after claiming {} (token {})",
                    std::process::id(),
                    shard.name,
                    lease.token
                );
                // No cleanup on purpose: the lease file survives with our
                // (now dead) pid, exercising the steal path.
                std::process::exit(CHAOS_KILL_EXIT);
            }
            if chaos.worker_double_claim(&shard.name) {
                // Protocol probe: a second claim of a held shard must be
                // refused. If it is not, the lease layer is broken and
                // results can no longer be trusted.
                if let Ok(ClaimOutcome::Claimed(_)) = lease::try_claim(&ldir, &shard.name, &lcfg) {
                    eprintln!(
                        "worker[{}]: FATAL: double-claim probe acquired {} twice",
                        std::process::id(),
                        shard.name
                    );
                    std::process::exit(3);
                }
            }
            // Crash-loop guard, same threshold as single-process.
            if view.crash_counts.get(&shard.name).copied().unwrap_or(0) >= cfg.poison_threshold {
                eprintln!(
                    "worker[{}]: {}: shard {} was in flight at {}+ process deaths; poisoned",
                    std::process::id(),
                    cfg.campaign,
                    shard.name,
                    cfg.poison_threshold
                );
                publish_done(
                    &journal,
                    &shard.name,
                    OutcomeClass::Poisoned,
                    0,
                    0,
                    String::new(),
                    lease.token,
                );
                report.published += 1;
                lease.release();
                // Re-replay before the next claim so freshly settled
                // shards are not re-executed.
                continue 'drain;
            }
            if let Err(e) = append_record(
                &journal,
                &JournalRecord::ShardStart {
                    shard: shard.name.clone(),
                },
            ) {
                crate::harness::warn_io("journal append", &e);
            }

            // Heartbeat until the attempt chain settles. A chaos stall
            // leaves the thread sleeping without refreshing the mtime, so
            // the lease expires mid-run and another worker steals it.
            let stall =
                opts.worker_faults && chaos.worker_heartbeat_stall(&shard.name, lease.token);
            if stall {
                eprintln!(
                    "worker[{}]: chaos: stalling heartbeat on {} (token {})",
                    std::process::id(),
                    shard.name,
                    lease.token
                );
            }
            let stop = Arc::new(AtomicBool::new(false));
            let hb = {
                let lease = lease.clone();
                let stop = Arc::clone(&stop);
                let interval = lcfg.heartbeat;
                std::thread::spawn(move || {
                    while !stop.load(Ordering::Relaxed) {
                        if !stall && !lease.heartbeat() {
                            break; // stolen; the publish check handles it
                        }
                        std::thread::sleep(interval);
                    }
                })
            };
            let exec = execute_with_retries(cfg, shard, chaos);
            stop.store(true, Ordering::Relaxed);
            let _ = hb.join();
            report.executed += 1;

            // Fencing: publish only while the lease is still ours.
            if !lease.still_owned() {
                obs::counter!("supervisor.lease.stale_publish_rejected").inc();
                report.rejected += 1;
                eprintln!(
                    "worker[{}]: lease for {} was stolen mid-run; result discarded",
                    std::process::id(),
                    shard.name
                );
                continue 'drain;
            }
            if opts.worker_faults && chaos.worker_stale_publish(&shard.name, lease.token) {
                // Zombie-writer probe: forge the publish a fenced-out
                // worker would have made (token 1), then publish the real
                // record. Replay must keep the higher token.
                eprintln!(
                    "worker[{}]: chaos: forging stale token-1 publish for {}",
                    std::process::id(),
                    shard.name
                );
                publish_done(
                    &journal,
                    &shard.name,
                    exec.class,
                    exec.attempts,
                    exec.wall_ms,
                    exec.payload.clone(),
                    1,
                );
            }
            publish_done(
                &journal,
                &shard.name,
                exec.class,
                exec.attempts,
                exec.wall_ms,
                exec.payload,
                lease.token,
            );
            report.published += 1;
            lease.release();
            continue 'drain;
        }
        // Fell through the scan without settling anything: every
        // unsettled shard is claimed by someone alive. Wait for their
        // publishes (or their leases to go stale).
        std::thread::sleep(Duration::from_millis(40));
    }
    Ok(report)
}

fn publish_done(
    journal: &Path,
    shard: &str,
    class: OutcomeClass,
    attempts: u32,
    wall_ms: u64,
    payload: String,
    token: u64,
) {
    let rec = JournalRecord::ShardDone {
        shard: shard.to_string(),
        class: class.as_str().to_string(),
        attempts,
        wall_ms,
        checksum: fnv1a64(payload.as_bytes()),
        payload,
        token,
    };
    if let Err(e) = append_record(journal, &rec) {
        crate::harness::warn_io("journal append", &e);
    }
}

// ---- coordinator -----------------------------------------------------------

/// Count the lease files currently present (in-flight shards).
fn count_leases(ldir: &Path) -> u64 {
    std::fs::read_dir(ldir).map_or(0, |entries| {
        entries
            .flatten()
            .filter(|e| e.path().extension().and_then(|x| x.to_str()) == Some("lease"))
            .count() as u64
    })
}

/// Atomically republish the progress stamp (tmp + rename, like every
/// other published artifact).
fn write_progress(path: &Path, stamp: &ProgressStamp) {
    let Ok(json) = serde_json::to_string(stamp) else {
        return;
    };
    let tmp = path.with_extension(format!("tmp.{}", std::process::id()));
    let ok = std::fs::write(&tmp, json.as_bytes())
        .and_then(|()| std::fs::rename(&tmp, path))
        .is_ok();
    if !ok {
        let _ = std::fs::remove_file(&tmp);
    }
}

/// Locate the worker binary: a sibling of the running executable.
fn worker_binary() -> Option<PathBuf> {
    let exe = std::env::current_exe().ok()?;
    let bin = exe.parent()?.join("eccparity-worker");
    bin.exists().then_some(bin)
}

fn spawn_worker(bin: &Path, campaign: &str, idx: usize) -> std::io::Result<std::process::Child> {
    let mut cmd = std::process::Command::new(bin);
    cmd.arg("--campaign").arg(campaign);
    // Workers must never resume-rewrite the journal the coordinator owns.
    cmd.env_remove("ECC_PARITY_RESUME");
    // Give each worker its own metrics snapshot path so the fleet does
    // not clobber one file (and the coordinator's final snapshot).
    if let Some(base) = obs::metrics::snapshot_path() {
        cmd.env(
            "ECC_PARITY_METRICS",
            format!("{}.worker{idx}", base.display()),
        );
    }
    cmd.spawn()
}

/// Multi-process supervision: publish the header, run `workers` local
/// worker processes to drain the journal, merge. See the module docs.
fn coordinate<T>(cfg: &SupervisorConfig, shards: Vec<Shard<T>>, workers: usize) -> SupervisedRun<T>
where
    T: Serialize + Deserialize + Send + 'static,
{
    {
        let mut seen = HashSet::new();
        for s in &shards {
            assert!(
                seen.insert(s.name.as_str()),
                "duplicate shard name {:?}",
                s.name
            );
        }
    }
    let total = shards.len() as u64;
    let journal = cfg.journal_path().expect("caller checked cfg.dir");
    let ldir = cfg.lease_dir().expect("caller checked cfg.dir");
    let quarantine = quarantine_path(&journal);
    let started = Instant::now();

    // Resume: distill the old journal and rebuild it as header + crash
    // markers + successful results only, so workers re-execute terminal
    // failures with a fresh retry budget (exactly like single-process
    // resume). Anything else starts fresh.
    let header = JournalRecord::Header {
        schema: JOURNAL_SCHEMA.to_string(),
        campaign: cfg.campaign.clone(),
        config_key: cfg.config_key.clone(),
        total_shards: total,
    };
    let mut base_records = vec![header];
    let mut resumed_names: HashSet<String> = HashSet::new();
    if cfg.resume && journal.exists() {
        let (records, _) = replay_journal(&journal);
        if header_matches(&records, cfg, total) {
            let view = distill_records(&records, Some(&quarantine));
            for (shard, n) in &view.crash_counts {
                for _ in 0..*n {
                    base_records.push(JournalRecord::ShardStart {
                        shard: shard.clone(),
                    });
                }
            }
            // Deterministic rebuild order: submission order.
            for shard in &shards {
                let Some(rec) = view.done.get(&shard.name) else {
                    continue;
                };
                if !rec.class.is_success() {
                    continue;
                }
                base_records.push(JournalRecord::ShardDone {
                    shard: shard.name.clone(),
                    class: rec.class.as_str().to_string(),
                    attempts: rec.attempts,
                    wall_ms: rec.wall_ms,
                    checksum: fnv1a64(rec.payload.as_bytes()),
                    payload: rec.payload.clone(),
                    token: rec.token,
                });
                resumed_names.insert(shard.name.clone());
            }
        } else {
            obs::counter!("supervisor.journal_discarded").inc();
            eprintln!(
                "supervisor: {}: existing journal does not match this campaign's configuration; starting fresh",
                cfg.campaign
            );
        }
    }
    let mut publisher = crate::supervisor::Journal {
        path: Some(journal.clone()),
        records: base_records,
        chaos: Chaos::off(), // the coordinator's own publish is never chaos'd
        persists: 0,
        write_failures: 0,
    };
    publisher.persist();
    drop(publisher);
    // Leases from a previous (dead) coordinator are garbage: pids may
    // have been reused, so clear rather than steal.
    let _ = std::fs::remove_dir_all(&ldir);

    let name_of: Vec<&str> = shards.iter().map(|s| s.name.as_str()).collect();
    let worker_bin = worker_binary();
    if worker_bin.is_none() {
        eprintln!(
            "supervisor: {}: eccparity-worker binary not found next to this executable; \
             running the campaign in-process",
            cfg.campaign
        );
    }
    let respawn_budget = workers * 4;
    let mut spawned = 0usize;
    let mut children: Vec<(std::process::Child, u32)> = Vec::new();
    let progress = cfg.progress_path();
    let mut fell_back = false;

    loop {
        let (records, _) = replay_journal(&journal);
        let view = distill_records(&records, Some(&quarantine));
        let done = name_of
            .iter()
            .filter(|n| view.done.contains_key(**n))
            .count() as u64;
        if let Some(ppath) = &progress {
            let claimed = count_leases(&ldir).min(total - done);
            let remaining = total - done - claimed;
            let done_wall: Vec<u64> = name_of
                .iter()
                .filter_map(|n| view.done.get(*n))
                .map(|r| r.wall_ms)
                .collect();
            let eta_ms = if done_wall.is_empty() || children.is_empty() {
                0
            } else {
                let mean = done_wall.iter().sum::<u64>() / done_wall.len() as u64;
                mean * remaining / children.len().max(1) as u64
            };
            write_progress(
                ppath,
                &ProgressStamp {
                    schema: PROGRESS_SCHEMA.to_string(),
                    campaign: cfg.campaign.clone(),
                    total_shards: total,
                    done,
                    claimed,
                    remaining,
                    workers_alive: children.len() as u64,
                    elapsed_ms: started.elapsed().as_millis() as u64,
                    eta_ms,
                },
            );
        }
        if done == total {
            break;
        }

        // Reap dead workers; their leases re-queue immediately so the
        // campaign never waits on a dead pid's TTL.
        let mut i = 0;
        while i < children.len() {
            match children[i].0.try_wait() {
                Ok(Some(status)) => {
                    let (_, pid) = children.remove(i);
                    let requeued = lease::requeue_leases_of(&ldir, pid);
                    let note = match status.code() {
                        Some(0) => "drained".to_string(),
                        Some(CHAOS_KILL_EXIT) => "chaos-killed".to_string(),
                        Some(c) => format!("exit {c}"),
                        None => "killed by signal".to_string(),
                    };
                    if !requeued.is_empty() || status.code() != Some(0) {
                        eprintln!(
                            "supervisor: {}: worker {pid} {note}; re-queued {} shard(s)",
                            cfg.campaign,
                            requeued.len()
                        );
                    }
                }
                Ok(None) => i += 1,
                Err(_) => i += 1,
            }
        }

        // Keep the fleet at strength while there is work and budget.
        if let Some(bin) = &worker_bin {
            while children.len() < workers && spawned < respawn_budget {
                match spawn_worker(bin, &cfg.campaign, spawned) {
                    Ok(child) => {
                        let pid = child.id();
                        children.push((child, pid));
                        spawned += 1;
                    }
                    Err(e) => {
                        crate::harness::warn_io("worker spawn", &e);
                        break;
                    }
                }
            }
        }
        if children.is_empty() && !fell_back {
            // No fleet (missing binary, spawn failures, or budget burned
            // by chaos): finish the remainder ourselves, without worker
            // faults so chaos cannot kill the coordinator.
            fell_back = true;
            if spawned > 0 {
                eprintln!(
                    "supervisor: {}: worker respawn budget exhausted; finishing in-process",
                    cfg.campaign
                );
            }
            if let Err(e) = run_worker(cfg, &shards, WorkerOptions::default()) {
                eprintln!("supervisor: {}: in-process drain failed: {e}", cfg.campaign);
                obs::trace::flush();
                std::process::exit(3);
            }
            continue;
        }
        std::thread::sleep(Duration::from_millis(50));
    }

    // Workers notice the drained journal and exit on their own.
    for (mut child, _) in children {
        let _ = child.wait();
    }
    let succeeded = {
        let (records, _) = replay_journal(&journal);
        let view = distill_records(&records, Some(&quarantine));
        name_of
            .iter()
            .filter(|n| view.done.get(**n).is_some_and(|r| r.class.is_success()))
            .count() as u64
    };
    if let Err(e) = append_record(&journal, &JournalRecord::RunComplete { succeeded }) {
        crate::harness::warn_io("journal append", &e);
    }

    merge_results(cfg, shards, &journal, &quarantine, &resumed_names, total)
}

/// Distill the drained journal into a [`SupervisedRun`] in submission
/// order, re-executing in-process any shard whose payload no longer
/// deserializes (defense in depth; checksums make this near-impossible).
fn merge_results<T>(
    cfg: &SupervisorConfig,
    shards: Vec<Shard<T>>,
    journal: &Path,
    quarantine: &Path,
    resumed_names: &HashSet<String>,
    total: u64,
) -> SupervisedRun<T>
where
    T: Serialize + Deserialize + Send + 'static,
{
    let (records, _) = replay_journal(journal);
    let view = distill_records(&records, Some(quarantine));
    let mut tally: HashMap<&'static str, u64> = HashMap::new();
    let mut outcomes = Vec::with_capacity(shards.len());
    for shard in shards {
        let Some(rec) = view.done.get(&shard.name) else {
            // Unreachable: coordinate() loops until every shard is done.
            eprintln!(
                "supervisor: {}: shard {} missing from drained journal",
                cfg.campaign, shard.name
            );
            obs::trace::flush();
            std::process::exit(3);
        };
        let resumed = resumed_names.contains(&shard.name);
        let result = if rec.class.is_success() {
            match serde_json::from_str::<T>(&rec.payload) {
                Ok(v) => Some(v),
                Err(_) => {
                    obs::counter!("supervisor.journal_corrupt_payloads").inc();
                    Some(shard.run())
                }
            }
        } else {
            None
        };
        *tally.entry(rec.class.as_str()).or_insert(0) += 1;
        if resumed {
            *tally.entry("resumed").or_insert(0) += 1;
        }
        outcomes.push(ShardOutcome {
            name: shard.name.clone(),
            class: rec.class,
            attempts: rec.attempts,
            resumed,
            wall_ms: rec.wall_ms,
            result,
        });
    }
    let n = |k: &str| tally.get(k).copied().unwrap_or(0);
    obs::counter!("supervisor.shards_completed").add(n("completed"));
    obs::counter!("supervisor.shards_retried").add(n("retried"));
    obs::counter!("supervisor.shards_timed_out").add(n("timed_out"));
    obs::counter!("supervisor.shards_panicked").add(n("panicked"));
    obs::counter!("supervisor.shards_resumed").add(n("resumed"));
    eprintln!(
        "supervisor: {}: {} shards | {} resumed, {} executed | completed {}, retried {}, timed_out {}, panicked {}, poisoned {} | journal write failures {}",
        cfg.campaign,
        total,
        n("resumed"),
        total - n("resumed"),
        n("completed"),
        n("retried"),
        n("timed_out"),
        n("panicked"),
        n("poisoned"),
        0,
    );
    SupervisedRun {
        campaign: cfg.campaign.clone(),
        outcomes,
    }
}
