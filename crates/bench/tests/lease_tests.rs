//! Contract of the lease protocol and the distributed worker loop: claims
//! are exclusive, stale leases (dead pid / expired heartbeat) are stolen
//! with a fencing-token bump, racing claimants settle on one winner, and a
//! zombie's late publish never beats the thief's record.
//!
//! All tests use private temp dirs and explicit configs (never
//! `from_env`), so they are immune to `ECC_PARITY_*` in the environment.

use eccparity_bench::chaos::Chaos;
use eccparity_bench::distrib::{run_worker, WorkerOptions};
use eccparity_bench::hash::fnv1a64;
use eccparity_bench::lease::{
    lease_path, requeue_leases_of, try_claim, ClaimOutcome, LeaseConfig, LeaseFile, LEASE_SCHEMA,
};
use eccparity_bench::supervisor::{
    append_record, distill_records, replay_journal, JournalRecord, Shard, SupervisorConfig,
    JOURNAL_SCHEMA,
};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;
use std::time::Duration;

fn temp_dir() -> PathBuf {
    static N: AtomicU32 = AtomicU32::new(0);
    let dir = std::env::temp_dir().join(format!(
        "eccparity_lease_test_{}_{}",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn short_ttl() -> LeaseConfig {
    LeaseConfig {
        ttl: Duration::from_millis(60),
        heartbeat: Duration::from_millis(15),
    }
}

fn claim(dir: &Path, shard: &str, cfg: &LeaseConfig) -> eccparity_bench::lease::Lease {
    match try_claim(dir, shard, cfg).unwrap() {
        ClaimOutcome::Claimed(l) => l,
        other => panic!("expected a claim on {shard}, got {other:?}"),
    }
}

#[test]
fn steal_from_dead_pid_bumps_the_fencing_token() {
    let dir = temp_dir();
    // Long TTL: only the dead pid makes it stale. Plant a lease owned
    // by a pid that cannot exist (beyond Linux's default pid_max), as a
    // crashed worker would leave behind.
    let cfg = LeaseConfig::default();
    let body = LeaseFile {
        schema: LEASE_SCHEMA.to_string(),
        shard: "campaign:dead:chunk0".to_string(),
        pid: u32::MAX - 7,
        nonce: 12345,
        token: 4,
    };
    let path = lease_path(&dir, &body.shard);
    std::fs::write(&path, serde_json::to_string(&body).unwrap()).unwrap();

    let lease = claim(&dir, "campaign:dead:chunk0", &cfg);
    assert_eq!(
        lease.token, 5,
        "a steal must publish under the previous token + 1"
    );
}

#[test]
fn heartbeat_expiry_during_long_shard_lets_another_worker_steal() {
    let dir = temp_dir();
    let cfg = short_ttl();
    // Worker A claims and then wedges (no heartbeats) while its "shard"
    // runs long. The owner pid is alive the whole time — expiry alone
    // must make the lease stealable.
    let a = claim(&dir, "campaign:slow:chunk0", &cfg);
    std::thread::sleep(cfg.ttl + Duration::from_millis(40));
    let b = claim(&dir, "campaign:slow:chunk0", &cfg);
    assert_eq!(b.token, a.token + 1);
    // The zombie is fenced out: it no longer owns the lease, so its
    // publish path must reject the result.
    assert!(!a.still_owned());
    assert!(!a.heartbeat());
    // The thief is unaffected.
    assert!(b.still_owned());
}

#[test]
fn heartbeats_keep_a_slow_shard_owned() {
    let dir = temp_dir();
    let cfg = short_ttl();
    let lease = claim(&dir, "campaign:hb:chunk0", &cfg);
    // Heartbeat for several TTLs: the lease must never become stealable.
    for _ in 0..8 {
        std::thread::sleep(cfg.heartbeat);
        assert!(lease.heartbeat());
        match try_claim(&dir, "campaign:hb:chunk0", &cfg).unwrap() {
            ClaimOutcome::Busy => {}
            other => panic!("heartbeaten lease must stay busy, got {other:?}"),
        }
    }
}

#[test]
fn two_workers_racing_one_claim_settle_on_one_winner() {
    let dir = temp_dir();
    let cfg = LeaseConfig::default();
    for round in 0..20 {
        let shard = format!("campaign:race:chunk{round}");
        let barrier = Arc::new(std::sync::Barrier::new(2));
        let wins: Vec<bool> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..2)
                .map(|_| {
                    let barrier = Arc::clone(&barrier);
                    let dir = dir.clone();
                    let shard = shard.clone();
                    s.spawn(move || {
                        barrier.wait();
                        matches!(
                            try_claim(&dir, &shard, &cfg).unwrap(),
                            ClaimOutcome::Claimed(_)
                        )
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        assert_eq!(
            wins.iter().filter(|w| **w).count(),
            1,
            "exactly one racer may win round {round} (got {wins:?})"
        );
    }
}

#[test]
fn requeue_attributes_only_the_dead_workers_leases() {
    let dir = temp_dir();
    let cfg = LeaseConfig::default();
    let mine = claim(&dir, "campaign:mine:chunk0", &cfg);
    let dead_pid = u32::MAX - 13;
    let body = LeaseFile {
        schema: LEASE_SCHEMA.to_string(),
        shard: "campaign:orphan:chunk0".to_string(),
        pid: dead_pid,
        nonce: 7,
        token: 1,
    };
    std::fs::write(
        lease_path(&dir, &body.shard),
        serde_json::to_string(&body).unwrap(),
    )
    .unwrap();

    let requeued = requeue_leases_of(&dir, dead_pid);
    assert_eq!(requeued, vec!["campaign:orphan:chunk0".to_string()]);
    assert!(mine.still_owned(), "live leases must survive a requeue");
    // The lease file itself must remain: deleting it would reset the
    // fencing token; the dead pid already makes it instantly stealable.
    let orphan = claim(&dir, "campaign:orphan:chunk0", &cfg);
    assert_eq!(orphan.token, 2, "requeue must preserve fencing history");
}

// ---- worker-loop end-to-end ------------------------------------------------

fn worker_cfg(campaign: &str, dir: &Path) -> SupervisorConfig {
    SupervisorConfig {
        campaign: campaign.to_string(),
        config_key: "lease-e2e-v1".to_string(),
        dir: Some(dir.to_path_buf()),
        resume: false,
        timeout: Duration::from_secs(30),
        retries: 2,
        backoff: Duration::from_millis(1),
        poison_threshold: 3,
        max_inflight: 2,
        chaos: Chaos::off(),
        failures_path: None,
    }
}

fn publish_header(cfg: &SupervisorConfig, total: u64) {
    append_record(
        &cfg.journal_path().unwrap(),
        &JournalRecord::Header {
            schema: JOURNAL_SCHEMA.to_string(),
            campaign: cfg.campaign.clone(),
            config_key: cfg.config_key.clone(),
            total_shards: total,
        },
    )
    .unwrap();
}

#[test]
fn concurrent_workers_drain_a_campaign_exactly_once() {
    let dir = temp_dir();
    let cfg = worker_cfg("lease_e2e", &dir);
    let shards: Vec<Shard<u64>> = (0..10u64)
        .map(|i| Shard::new(format!("campaign:e2e:chunk{i}"), move || i * 3 + 1))
        .collect();
    publish_header(&cfg, shards.len() as u64);

    // Three in-process "workers" race over the same journal.
    let reports: Vec<_> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..3)
            .map(|_| {
                let cfg = cfg.clone();
                let shards = shards.clone();
                s.spawn(move || run_worker(&cfg, &shards, WorkerOptions::default()).unwrap())
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    let published: u64 = reports.iter().map(|r| r.published).sum();
    assert!(
        published >= 10,
        "every shard must be published at least once ({published})"
    );
    let (records, _) = replay_journal(&cfg.journal_path().unwrap());
    let view = distill_records(&records, None);
    for (i, shard) in shards.iter().enumerate() {
        let rec = view
            .done
            .get(&shard.name)
            .unwrap_or_else(|| panic!("{} must settle", shard.name));
        assert!(rec.class.is_success());
        assert_eq!(
            serde_json::from_str::<u64>(&rec.payload).unwrap(),
            i as u64 * 3 + 1,
            "distributed result must match the work function"
        );
    }
    // No lease may outlive the drain.
    let leases = std::fs::read_dir(cfg.lease_dir().unwrap())
        .map(|d| d.count())
        .unwrap_or(0);
    assert_eq!(leases, 0, "drained campaign must leave no leases behind");
}

#[test]
fn zombie_publish_is_rejected_by_the_fencing_token() {
    let dir = temp_dir();
    let cfg = worker_cfg("lease_zombie", &dir);
    let journal = cfg.journal_path().unwrap();
    publish_header(&cfg, 1);
    let lcfg = short_ttl();
    let ldir = cfg.lease_dir().unwrap();

    // Zombie claims, wedges past TTL; thief steals and publishes.
    let zombie = claim(&ldir, "campaign:z:chunk0", &lcfg);
    std::thread::sleep(lcfg.ttl + Duration::from_millis(40));
    let thief = claim(&ldir, "campaign:z:chunk0", &lcfg);
    let honest = "42".to_string();
    append_record(
        &journal,
        &JournalRecord::ShardDone {
            shard: "campaign:z:chunk0".to_string(),
            class: "completed".to_string(),
            attempts: 1,
            wall_ms: 1,
            checksum: fnv1a64(honest.as_bytes()),
            payload: honest,
            token: thief.token,
        },
    )
    .unwrap();
    thief.release();

    // The fenced-out zombie wakes up. The worker loop's own guard is the
    // ownership check...
    assert!(!zombie.still_owned());
    // ...but even a worker that skips it and publishes anyway (the
    // chaos `worker_stale_publish` scenario) cannot win: its token is
    // superseded at distillation.
    let forged = "666".to_string();
    append_record(
        &journal,
        &JournalRecord::ShardDone {
            shard: "campaign:z:chunk0".to_string(),
            class: "completed".to_string(),
            attempts: 1,
            wall_ms: 1,
            checksum: fnv1a64(forged.as_bytes()),
            payload: forged,
            token: zombie.token,
        },
    )
    .unwrap();

    let (records, _) = replay_journal(&journal);
    let view = distill_records(&records, None);
    let rec = &view.done["campaign:z:chunk0"];
    assert_eq!(rec.payload, "42", "the thief's record must win");
    assert_eq!(rec.token, 2);
    assert_eq!(view.superseded, 1, "the zombie record must be attributed");
}

#[test]
fn worker_poisons_a_crash_looping_shard() {
    let dir = temp_dir();
    let cfg = worker_cfg("lease_poison", &dir);
    let journal = cfg.journal_path().unwrap();
    publish_header(&cfg, 1);
    // Three unmatched starts: the shard was in flight at three deaths.
    for _ in 0..3 {
        append_record(
            &journal,
            &JournalRecord::ShardStart {
                shard: "campaign:p:chunk0".to_string(),
            },
        )
        .unwrap();
    }
    let shards = vec![Shard::new("campaign:p:chunk0", || 1u64)];
    let report = run_worker(&cfg, &shards, WorkerOptions::default()).unwrap();
    assert_eq!(report.executed, 0, "a poisoned shard must not re-execute");
    let (records, _) = replay_journal(&journal);
    let view = distill_records(&records, None);
    assert_eq!(
        view.done["campaign:p:chunk0"].class,
        eccparity_bench::supervisor::OutcomeClass::Poisoned
    );
}
