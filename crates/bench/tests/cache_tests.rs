//! Correctness contract of the run cache: a cache hit must be
//! bit-identical to a fresh simulation, and any change to the run's
//! identity — config contents or model-version stamp — must miss.
//!
//! All tests use explicit [`RunCache`] instances against private temp
//! dirs, so they are immune to `ECC_PARITY_NO_CACHE` in the environment
//! and to each other.

use eccparity_bench::RunCache;
use mem_sim::{RunConfig, RunResult, SchemeConfig, SchemeId, SystemScale, Trace, WorkloadSpec};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU32, Ordering};

/// Fresh private temp dir per test (pid + counter; no tempfile dep).
fn temp_dir() -> PathBuf {
    static N: AtomicU32 = AtomicU32::new(0);
    let dir = std::env::temp_dir().join(format!(
        "eccparity_cache_test_{}_{}",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A small but real run: full paper config shrunk to hundreds of accesses.
fn small_config() -> RunConfig {
    let scheme = SchemeConfig::build(SchemeId::Lot5Parity, SystemScale::QuadEquivalent);
    let workload = WorkloadSpec::by_name("milc").unwrap();
    let mut cfg = RunConfig::paper(scheme, workload);
    cfg.warmup_per_core = 200;
    cfg.accesses_per_core = 500;
    cfg
}

/// Bit-identity via the same serialization the JSON dumps use.
fn bytes(r: &RunResult) -> String {
    serde_json::to_string_pretty(r).unwrap()
}

#[test]
fn hit_is_bit_identical_to_fresh_run() {
    let cache = RunCache::new(Some(temp_dir()));
    let cfg = small_config();
    let fresh = cache.run(&cfg);
    let hit = cache.run(&cfg);
    assert_eq!(bytes(&fresh), bytes(&hit));
    assert_eq!(cache.counters(), (1, 1), "second run must be a reuse");
    // ... and identical to a run through a completely unrelated cache.
    let other = RunCache::new(Some(temp_dir()));
    assert_eq!(bytes(&other.run(&cfg)), bytes(&fresh));
}

#[test]
fn disk_persistence_survives_process_restart() {
    // Two cache instances over one dir model two back-to-back invocations.
    let dir = temp_dir();
    let cfg = small_config();
    let first = RunCache::new(Some(dir.clone()));
    let cold = first.run(&cfg);
    drop(first);
    let second = RunCache::new(Some(dir));
    let warm = second.run(&cfg);
    assert_eq!(
        second.counters(),
        (0, 1),
        "restart must reuse the disk entry"
    );
    assert_eq!(bytes(&cold), bytes(&warm));
}

#[test]
fn changed_config_misses() {
    let cache = RunCache::new(Some(temp_dir()));
    let cfg = small_config();
    cache.run(&cfg);
    let mut tweaked = cfg.clone();
    tweaked.seed ^= 1;
    cache.run(&tweaked);
    assert_eq!(
        cache.counters(),
        (2, 0),
        "a changed seed must simulate fresh"
    );
}

#[test]
fn changed_model_version_stamp_misses() {
    let dir = temp_dir();
    let cfg = small_config();
    let v1 = RunCache::with_stamp(Some(dir.clone()), "model-v1");
    v1.run(&cfg);
    // Same dir, bumped stamp: the persisted entry must not resurrect.
    let v2 = RunCache::with_stamp(Some(dir.clone()), "model-v2");
    v2.run(&cfg);
    assert_eq!(
        v2.counters(),
        (1, 0),
        "a stamp bump must invalidate disk entries"
    );
    // Unchanged stamp still hits.
    let v1_again = RunCache::with_stamp(Some(dir), "model-v1");
    v1_again.run(&cfg);
    assert_eq!(v1_again.counters(), (0, 1));
}

#[test]
fn trace_replay_bypasses_cache() {
    let dir = temp_dir();
    let cache = RunCache::new(Some(dir.clone()));
    let mut cfg = small_config();
    cfg.trace = Some(Trace::record(cfg.workload, cfg.cores, 700, cfg.seed));
    let a = cache.run(&cfg);
    let b = cache.run(&cfg);
    assert_eq!(
        cache.counters(),
        (2, 0),
        "trace runs must never hit the cache"
    );
    // Determinism still holds; only the caching is bypassed.
    assert_eq!(bytes(&a), bytes(&b));
    assert!(
        !dir.exists() || std::fs::read_dir(&dir).unwrap().next().is_none(),
        "trace runs must not write cache entries"
    );
}

/// The single persisted entry file under a cache dir.
fn entry_file(dir: &std::path::Path) -> PathBuf {
    std::fs::read_dir(dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .find(|p| p.extension().is_some_and(|e| e == "json"))
        .expect("cache dir holds one entry")
}

/// Corrupt one entry on disk, then confirm the next cache instance treats
/// it as a miss (never an error or a wrong result), simulates fresh with
/// bit-identical output, and repairs the file so the run after that hits.
fn assert_corruption_is_a_miss(corrupt: impl FnOnce(&str) -> String) {
    let dir = temp_dir();
    let cfg = small_config();
    let first = RunCache::new(Some(dir.clone()));
    let cold = first.run(&cfg);
    drop(first);
    let path = entry_file(&dir);
    let text = std::fs::read_to_string(&path).unwrap();
    std::fs::write(&path, corrupt(&text)).unwrap();
    let second = RunCache::new(Some(dir.clone()));
    let fresh = second.run(&cfg);
    assert_eq!(
        second.counters(),
        (1, 0),
        "a damaged entry must simulate fresh"
    );
    assert_eq!(bytes(&cold), bytes(&fresh));
    // The fresh run's store repaired the file: a third instance hits.
    let third = RunCache::new(Some(dir));
    assert_eq!(bytes(&third.run(&cfg)), bytes(&cold));
    assert_eq!(
        third.counters(),
        (0, 1),
        "the rewrite must repair the entry"
    );
}

#[test]
fn truncated_disk_entry_is_a_miss() {
    assert_corruption_is_a_miss(|text| text[..text.len() / 2].to_string());
}

#[test]
fn garbage_disk_entry_is_a_miss() {
    assert_corruption_is_a_miss(|_| "{ this is not JSON at all".to_string());
}

#[test]
fn checksum_mismatch_is_a_miss() {
    // Flip one digit of the stored checksum; the file stays valid JSON but
    // no longer matches its payload.
    assert_corruption_is_a_miss(|text| {
        let at = text.find("\"checksum\"").expect("entry has a checksum");
        let (head, tail) = text.split_at(at);
        let digit = tail
            .char_indices()
            .find(|(_, c)| c.is_ascii_digit())
            .map(|(i, _)| i)
            .expect("checksum has digits");
        let old = tail.as_bytes()[digit] as char;
        let new = if old == '9' {
            '0'
        } else {
            ((old as u8) + 1) as char
        };
        format!("{head}{}{new}{}", &tail[..digit], &tail[digit + 1..])
    });
}

#[test]
fn corrupt_entry_is_quarantined_for_forensics() {
    let dir = temp_dir();
    let cfg = small_config();
    let first = RunCache::new(Some(dir.clone()));
    let cold = first.run(&cfg);
    drop(first);
    let path = entry_file(&dir);
    std::fs::write(&path, "{ damaged beyond parsing").unwrap();

    let second = RunCache::new(Some(dir.clone()));
    let fresh = second.run(&cfg);
    assert_eq!(second.counters(), (1, 0));
    assert_eq!(bytes(&cold), bytes(&fresh));
    // The damaged bytes were moved aside — not deleted — for forensics,
    // and the store repaired the live entry alongside them.
    let quarantined = path.with_extension("corrupt");
    assert!(
        quarantined.exists(),
        "corrupt entry must be renamed to {quarantined:?}"
    );
    assert_eq!(
        std::fs::read_to_string(&quarantined).unwrap(),
        "{ damaged beyond parsing",
        "quarantine must preserve the damaged bytes verbatim"
    );
    assert!(path.exists(), "the store must repair the live entry");
    let third = RunCache::new(Some(dir));
    assert_eq!(bytes(&third.run(&cfg)), bytes(&cold));
    assert_eq!(third.counters(), (0, 1), "the repaired entry must hit");
}

#[test]
fn chaos_corrupted_store_is_quarantined_and_recovers() {
    use eccparity_bench::chaos::Chaos;
    let cfg = small_config();
    // Reference bytes of an undamaged persisted entry.
    let clean_dir = temp_dir();
    let clean_cache = RunCache::new(Some(clean_dir.clone()));
    let cold = clean_cache.run(&cfg);
    let clean_bytes = std::fs::read(entry_file(&clean_dir)).unwrap();

    // Find a chaos seed that damages this entry's store (~1/3 per seed,
    // deterministic, so the scan is stable run to run).
    let damaged_dir = (0..64u64)
        .map(|seed| {
            let dir = temp_dir();
            let cache = RunCache::new(Some(dir.clone())).with_chaos(Chaos::from_seed(seed));
            cache.run(&cfg);
            dir
        })
        .find(|dir| std::fs::read(entry_file(dir)).unwrap() != clean_bytes)
        .expect("some seed under 64 must corrupt the stored entry");

    // A later (chaos-free) invocation over the damaged dir must treat the
    // entry as a miss, quarantine it, and re-simulate bit-identically.
    let recover = RunCache::new(Some(damaged_dir.clone()));
    let fresh = recover.run(&cfg);
    assert_eq!(recover.counters(), (1, 0), "damaged store must miss");
    assert_eq!(bytes(&cold), bytes(&fresh));
    assert!(
        std::fs::read_dir(&damaged_dir)
            .unwrap()
            .map(|e| e.unwrap().path())
            .any(|p| p.extension().is_some_and(|e| e == "corrupt")),
        "the damaged entry must be quarantined"
    );
}

#[test]
fn disabled_cache_always_simulates() {
    let cache = RunCache::disabled();
    let cfg = small_config();
    let a = cache.run(&cfg);
    let b = cache.run(&cfg);
    assert_eq!(cache.counters(), (2, 0));
    assert_eq!(bytes(&a), bytes(&b));
}
