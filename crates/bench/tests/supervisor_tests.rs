//! Contract of the campaign supervisor: crash-safe journaling, resume
//! transparency, watchdog/retry classification, poison detection, and the
//! chaos convergence gate.
//!
//! All tests construct explicit [`SupervisorConfig`]s against private temp
//! dirs (never `from_env`), so they are immune to `ECC_PARITY_*` in the
//! environment and to each other.

use eccparity_bench::chaos::Chaos;
use eccparity_bench::hash::fnv1a64;
use eccparity_bench::supervisor::{
    distill_records, replay_journal, supervise, JournalRecord, OutcomeClass, Shard,
    SupervisorConfig, JOURNAL_SCHEMA,
};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Fresh private temp dir per test (pid + counter; no tempfile dep).
fn temp_dir() -> PathBuf {
    static N: AtomicU32 = AtomicU32::new(0);
    let dir = std::env::temp_dir().join(format!(
        "eccparity_supervisor_test_{}_{}",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn test_cfg(campaign: &str, dir: &Path) -> SupervisorConfig {
    SupervisorConfig {
        campaign: campaign.to_string(),
        config_key: "test-v1".to_string(),
        dir: Some(dir.to_path_buf()),
        resume: false,
        timeout: Duration::from_secs(30),
        retries: 2,
        backoff: Duration::from_millis(1),
        poison_threshold: 3,
        max_inflight: 4,
        chaos: Chaos::off(),
        failures_path: None,
    }
}

fn journal_path(dir: &Path, campaign: &str) -> PathBuf {
    dir.join(format!("{campaign}.journal.jsonl"))
}

/// Shards 0..n computing a deterministic function of their index, with an
/// execution counter so tests can assert exactly which shards ran.
fn counting_shards(n: u64, executed: &Arc<AtomicU32>) -> Vec<Shard<u64>> {
    (0..n)
        .map(|i| {
            let executed = Arc::clone(executed);
            Shard::new(format!("s{i}"), move || {
                executed.fetch_add(1, Ordering::Relaxed);
                i * i + 7
            })
        })
        .collect()
}

#[test]
fn journal_records_round_trip() {
    let records = [
        JournalRecord::Header {
            schema: JOURNAL_SCHEMA.to_string(),
            campaign: "camp".to_string(),
            config_key: "key|with|bars".to_string(),
            total_shards: 56,
        },
        JournalRecord::ShardStart {
            shard: "cell:Lot5Parity:milc".to_string(),
        },
        JournalRecord::ShardDone {
            shard: "cell:Lot5Parity:milc".to_string(),
            class: "retried".to_string(),
            attempts: 2,
            wall_ms: 1234,
            checksum: 0xdead_beef_cafe_f00d,
            payload: "{\"cycles\":42,\"note\":\"quoted \\\"string\\\"\"}".to_string(),
            token: 3,
        },
        JournalRecord::RunComplete { succeeded: 56 },
    ];
    for rec in &records {
        let line = serde_json::to_string(rec).unwrap();
        let back: JournalRecord = serde_json::from_str(&line).unwrap();
        assert_eq!(&back, rec, "round-trip must preserve {line}");
    }
}

#[test]
fn replay_tolerates_torn_tail() {
    let dir = temp_dir();
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("torn.journal.jsonl");
    let good = [
        JournalRecord::Header {
            schema: JOURNAL_SCHEMA.to_string(),
            campaign: "torn".to_string(),
            config_key: "k".to_string(),
            total_shards: 2,
        },
        JournalRecord::ShardStart {
            shard: "a".to_string(),
        },
        JournalRecord::ShardDone {
            shard: "a".to_string(),
            class: "completed".to_string(),
            attempts: 1,
            wall_ms: 5,
            checksum: 0,
            payload: String::new(),
            token: 0,
        },
    ];
    let mut text = good
        .iter()
        .map(|r| serde_json::to_string(r).unwrap() + "\n")
        .collect::<String>();
    // A write torn mid-record: valid prefix, garbage tail.
    text.push_str("{\"ShardDone\":{\"shard\":\"b\",\"class\":\"comp");
    std::fs::write(&path, text).unwrap();
    let (records, torn) = replay_journal(&path);
    assert!(torn, "the damaged tail must be reported");
    assert_eq!(records.len(), 3, "the intact prefix must replay");
    assert_eq!(&records[..], &good[..]);

    // An intact journal reports no tear.
    let clean = dir.join("clean.journal.jsonl");
    std::fs::write(&clean, serde_json::to_string(&good[0]).unwrap() + "\n").unwrap();
    let (records, torn) = replay_journal(&clean);
    assert!(!torn);
    assert_eq!(records.len(), 1);
}

#[test]
fn fresh_run_executes_everything_and_journals() {
    let dir = temp_dir();
    let cfg = test_cfg("fresh", &dir);
    let executed = Arc::new(AtomicU32::new(0));
    let run = supervise(&cfg, counting_shards(5, &executed));
    assert!(run.all_succeeded());
    assert_eq!(executed.load(Ordering::Relaxed), 5);
    let results = run.into_results();
    assert_eq!(results, (0..5).map(|i| i * i + 7).collect::<Vec<u64>>());
    let (records, torn) = replay_journal(&journal_path(&dir, "fresh"));
    assert!(!torn);
    // Header + 5 starts + 5 dones + RunComplete.
    assert_eq!(records.len(), 12);
    assert!(matches!(
        records[0],
        JournalRecord::Header {
            total_shards: 5,
            ..
        }
    ));
    assert!(matches!(
        records[11],
        JournalRecord::RunComplete { succeeded: 5 }
    ));
}

#[test]
fn resume_replays_all_completed_shards_without_execution() {
    let dir = temp_dir();
    let cfg = test_cfg("resume_all", &dir);
    let executed = Arc::new(AtomicU32::new(0));
    let first = supervise(&cfg, counting_shards(6, &executed));
    let want = first.into_results();
    assert_eq!(executed.load(Ordering::Relaxed), 6);

    let mut resume_cfg = test_cfg("resume_all", &dir);
    resume_cfg.resume = true;
    let second = supervise(&resume_cfg, counting_shards(6, &executed));
    assert_eq!(
        executed.load(Ordering::Relaxed),
        6,
        "a fully journaled run must re-execute nothing"
    );
    assert!(second.outcomes.iter().all(|o| o.resumed));
    assert_eq!(
        second.into_results(),
        want,
        "resumed results must be identical"
    );
}

#[test]
fn resume_after_partial_journal_executes_only_missing_shards() {
    let dir = temp_dir();
    let cfg = test_cfg("resume_partial", &dir);
    let executed = Arc::new(AtomicU32::new(0));
    let want = supervise(&cfg, counting_shards(6, &executed)).into_results();

    // Simulate a crash while shard s3 was in flight: drop its records (and
    // the RunComplete) from the journal, as if the process died before
    // writing them.
    let path = journal_path(&dir, "resume_partial");
    let text = std::fs::read_to_string(&path).unwrap();
    let kept: String = text
        .lines()
        .filter(|l| !l.contains("\"s3\"") && !l.contains("RunComplete"))
        .map(|l| format!("{l}\n"))
        .collect();
    std::fs::write(&path, kept).unwrap();

    executed.store(0, Ordering::Relaxed);
    let mut resume_cfg = test_cfg("resume_partial", &dir);
    resume_cfg.resume = true;
    let second = supervise(&resume_cfg, counting_shards(6, &executed));
    assert_eq!(
        executed.load(Ordering::Relaxed),
        1,
        "only the missing shard may re-execute"
    );
    let resumed: Vec<bool> = second.outcomes.iter().map(|o| o.resumed).collect();
    assert_eq!(resumed, [true, true, true, false, true, true]);
    assert_eq!(
        second.into_results(),
        want,
        "tallies must match the uninterrupted run"
    );
}

#[test]
fn mismatched_config_key_discards_the_journal() {
    let dir = temp_dir();
    let executed = Arc::new(AtomicU32::new(0));
    supervise(&test_cfg("drift", &dir), counting_shards(3, &executed));
    assert_eq!(executed.load(Ordering::Relaxed), 3);

    let mut changed = test_cfg("drift", &dir);
    changed.resume = true;
    changed.config_key = "test-v2".to_string();
    let run = supervise(&changed, counting_shards(3, &executed));
    assert_eq!(
        executed.load(Ordering::Relaxed),
        6,
        "a journal for different work must not be resumed"
    );
    assert!(run.outcomes.iter().all(|o| !o.resumed));
}

#[test]
fn first_attempt_panic_is_retried() {
    let dir = temp_dir();
    let cfg = test_cfg("retry", &dir);
    let attempts = Arc::new(AtomicU32::new(0));
    let a = Arc::clone(&attempts);
    let run = supervise(
        &cfg,
        vec![Shard::new("flaky", move || {
            if a.fetch_add(1, Ordering::Relaxed) == 0 {
                panic!("injected first-attempt failure");
            }
            99u64
        })],
    );
    let o = &run.outcomes[0];
    assert_eq!(o.class, OutcomeClass::Retried);
    assert_eq!(o.attempts, 2);
    assert_eq!(o.result, Some(99));
}

#[test]
fn persistent_panic_exhausts_to_panicked() {
    let dir = temp_dir();
    let mut cfg = test_cfg("hopeless", &dir);
    cfg.retries = 1;
    cfg.failures_path = Some(dir.join("hopeless.failures.jsonl"));
    let run = supervise(
        &cfg,
        vec![
            Shard::new("doomed", || -> u64 { panic!("always fails") }),
            Shard::new("fine", || 5u64),
        ],
    );
    assert!(!run.all_succeeded());
    assert_eq!(run.failed_shards(), ["doomed"]);
    let doomed = run.outcomes.iter().find(|o| o.name == "doomed").unwrap();
    assert_eq!(doomed.class, OutcomeClass::Panicked);
    assert_eq!(doomed.attempts, 2, "retries=1 means two attempts total");
    assert!(doomed.result.is_none());
    let fine = run.outcomes.iter().find(|o| o.name == "fine").unwrap();
    assert_eq!(fine.class, OutcomeClass::Completed);
    assert_eq!(fine.result, Some(5));

    // The failure ledger recorded both the attempts and the outcomes.
    let ledger = std::fs::read_to_string(dir.join("hopeless.failures.jsonl")).unwrap();
    assert!(
        ledger.lines().count() >= 4,
        "2 attempt failures + 2 outcomes: {ledger}"
    );
    assert!(ledger.contains("eccparity-failures-v1"));
    assert!(ledger.contains("shard.attempt_failed"));
    assert!(ledger.contains("\"failure\":\"panicked\""));
    assert!(ledger.contains("always fails"));
    assert!(ledger.contains("shard.outcome"));
}

#[test]
fn watchdog_times_out_hung_attempt_then_retry_succeeds() {
    let dir = temp_dir();
    let mut cfg = test_cfg("hang", &dir);
    cfg.timeout = Duration::from_millis(100);
    let attempts = Arc::new(AtomicU32::new(0));
    let a = Arc::clone(&attempts);
    let run = supervise(
        &cfg,
        vec![Shard::new("sleepy", move || {
            if a.fetch_add(1, Ordering::Relaxed) == 0 {
                // Far past the watchdog: the attempt gets abandoned.
                std::thread::sleep(Duration::from_millis(2_000));
            }
            11u64
        })],
    );
    let o = &run.outcomes[0];
    assert_eq!(o.class, OutcomeClass::Retried);
    assert_eq!(o.result, Some(11));
    assert!(o.attempts >= 2);
}

#[test]
fn hung_shard_with_no_retries_is_timed_out() {
    let dir = temp_dir();
    let mut cfg = test_cfg("hang2", &dir);
    cfg.timeout = Duration::from_millis(50);
    cfg.retries = 0;
    let run = supervise(
        &cfg,
        vec![Shard::new("stuck", || {
            std::thread::sleep(Duration::from_millis(2_000));
            1u64
        })],
    );
    assert_eq!(run.outcomes[0].class, OutcomeClass::TimedOut);
    assert!(run.outcomes[0].result.is_none());
}

#[test]
fn crash_looping_shard_is_poisoned_not_reexecuted() {
    let dir = temp_dir();
    std::fs::create_dir_all(&dir).unwrap();
    // A journal showing shard "bad" in flight at three process deaths:
    // three ShardStart records, never a ShardDone.
    let mut text = String::new();
    let header = JournalRecord::Header {
        schema: JOURNAL_SCHEMA.to_string(),
        campaign: "poison".to_string(),
        config_key: "test-v1".to_string(),
        total_shards: 2,
    };
    text.push_str(&(serde_json::to_string(&header).unwrap() + "\n"));
    for _ in 0..3 {
        let start = JournalRecord::ShardStart {
            shard: "bad".to_string(),
        };
        text.push_str(&(serde_json::to_string(&start).unwrap() + "\n"));
    }
    std::fs::write(journal_path(&dir, "poison"), text).unwrap();

    let mut cfg = test_cfg("poison", &dir);
    cfg.resume = true;
    let executed = Arc::new(AtomicU32::new(0));
    let e1 = Arc::clone(&executed);
    let e2 = Arc::clone(&executed);
    let run = supervise(
        &cfg,
        vec![
            Shard::new("bad", move || {
                e1.fetch_add(1, Ordering::Relaxed);
                1u64
            }),
            Shard::new("good", move || {
                e2.fetch_add(1, Ordering::Relaxed);
                2u64
            }),
        ],
    );
    let bad = run.outcomes.iter().find(|o| o.name == "bad").unwrap();
    assert_eq!(bad.class, OutcomeClass::Poisoned);
    assert!(bad.result.is_none());
    let good = run.outcomes.iter().find(|o| o.name == "good").unwrap();
    assert_eq!(good.class, OutcomeClass::Completed);
    assert_eq!(
        executed.load(Ordering::Relaxed),
        1,
        "the poisoned shard must never run again"
    );
}

#[test]
fn two_crashes_is_below_the_poison_threshold() {
    let dir = temp_dir();
    std::fs::create_dir_all(&dir).unwrap();
    let mut text = String::new();
    let header = JournalRecord::Header {
        schema: JOURNAL_SCHEMA.to_string(),
        campaign: "twice".to_string(),
        config_key: "test-v1".to_string(),
        total_shards: 1,
    };
    text.push_str(&(serde_json::to_string(&header).unwrap() + "\n"));
    for _ in 0..2 {
        let start = JournalRecord::ShardStart {
            shard: "s".to_string(),
        };
        text.push_str(&(serde_json::to_string(&start).unwrap() + "\n"));
    }
    std::fs::write(journal_path(&dir, "twice"), text).unwrap();
    let mut cfg = test_cfg("twice", &dir);
    cfg.resume = true;
    let run = supervise(&cfg, vec![Shard::new("s", || 3u64)]);
    assert_eq!(run.outcomes[0].class, OutcomeClass::Completed);
    assert_eq!(run.outcomes[0].result, Some(3));
}

#[test]
fn corrupt_journal_payload_reexecutes_that_shard() {
    let dir = temp_dir();
    let cfg = test_cfg("corrupt", &dir);
    let executed = Arc::new(AtomicU32::new(0));
    let want = supervise(&cfg, counting_shards(3, &executed)).into_results();

    // Flip the payload of s1's Done record without fixing its checksum.
    let path = journal_path(&dir, "corrupt");
    let text = std::fs::read_to_string(&path).unwrap();
    let patched: String = text
        .lines()
        .map(|l| {
            if l.contains("\"s1\"") && l.contains("ShardDone") {
                l.replace("\"payload\":\"8\"", "\"payload\":\"9\"")
            } else {
                l.to_string()
            }
        })
        .map(|l| format!("{l}\n"))
        .collect();
    assert_ne!(patched, text, "the patch must hit s1's payload (1*1+7 = 8)");
    std::fs::write(&path, patched).unwrap();

    executed.store(0, Ordering::Relaxed);
    let mut resume_cfg = test_cfg("corrupt", &dir);
    resume_cfg.resume = true;
    let second = supervise(&resume_cfg, counting_shards(3, &executed));
    assert_eq!(
        executed.load(Ordering::Relaxed),
        1,
        "the checksum-mismatched shard must re-execute"
    );
    assert_eq!(
        second.into_results(),
        want,
        "and still converge to the right value"
    );
}

/// The chaos acceptance gate: a run with deterministic infrastructure
/// faults injected (shard panics, stalls, journal write failures) must
/// converge to exactly the fault-free results, with zero lost shards.
#[test]
fn chaos_soak_converges_to_fault_free_results() {
    let make_shards = || -> Vec<Shard<u64>> {
        (0..16u64)
            .map(|i| {
                Shard::new(format!("cell{i}"), move || {
                    i.wrapping_mul(0x9e37_79b9_7f4a_7c15) >> 7
                })
            })
            .collect()
    };
    let clean_dir = temp_dir();
    let clean = supervise(&test_cfg("chaos_base", &clean_dir), make_shards());
    assert!(clean.all_succeeded());
    let want = clean.into_results();

    let mut injected_any = false;
    for seed in [1u64, 7, 13] {
        let dir = temp_dir();
        let mut cfg = test_cfg(&format!("chaos_{seed}"), &dir);
        cfg.chaos = Chaos::from_seed(seed);
        let run = supervise(&cfg, make_shards());
        assert_eq!(run.outcomes.len(), 16, "no shard may be lost (seed {seed})");
        assert!(
            run.all_succeeded(),
            "chaos must never cause terminal failures (seed {seed}): {:?}",
            run.failed_shards()
        );
        injected_any |= run
            .outcomes
            .iter()
            .any(|o| o.class == OutcomeClass::Retried);
        assert_eq!(
            run.into_results(),
            want,
            "chaos run must produce fault-free results (seed {seed})"
        );
    }
    assert!(
        injected_any,
        "at least one chaos seed must actually inject a shard fault"
    );
}

#[test]
#[should_panic(expected = "duplicate shard name")]
fn duplicate_shard_names_are_rejected() {
    // Duplicate names would corrupt the journal keying.
    supervise(
        &test_cfg("dup", &temp_dir()),
        vec![Shard::new("x", || 1u64), Shard::new("x", || 2u64)],
    );
}

// ---- multi-writer journal hardening (distributed campaigns) ----------------

#[test]
fn replay_keeps_records_after_interior_damage() {
    // A fleet of appending workers can interleave or tear a line in the
    // *middle* of the journal; everything after it must still replay.
    let dir = temp_dir();
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("interior.journal.jsonl");
    let a = JournalRecord::ShardStart {
        shard: "a".to_string(),
    };
    let b = JournalRecord::ShardStart {
        shard: "b".to_string(),
    };
    let text = format!(
        "{}\n{{\"ShardDone\":{{\"shard\":\"x\",\"cla GARBAGE\n{}\n",
        serde_json::to_string(&a).unwrap(),
        serde_json::to_string(&b).unwrap(),
    );
    std::fs::write(&path, text).unwrap();
    let (records, damaged) = replay_journal(&path);
    assert!(damaged);
    assert_eq!(records, vec![a, b], "records after the damage must survive");
}

fn done(shard: &str, payload: &str, token: u64) -> JournalRecord {
    JournalRecord::ShardDone {
        shard: shard.to_string(),
        class: "completed".to_string(),
        attempts: 1,
        wall_ms: 1,
        checksum: fnv1a64(payload.as_bytes()),
        payload: payload.to_string(),
        token,
    }
}

#[test]
fn distill_rejects_zombie_publish_with_stale_token() {
    // The thief (token 2) published first; the fenced-out zombie's later
    // token-1 record must be discarded, not trusted.
    let records = vec![done("s", "2", 2), done("s", "1", 1)];
    let view = distill_records(&records, None);
    assert_eq!(view.done["s"].payload, "2");
    assert_eq!(view.done["s"].token, 2);
    assert_eq!(view.superseded, 1);
    assert_eq!(view.quarantined, 0);
}

#[test]
fn distill_prefers_higher_token_regardless_of_order() {
    // Zombie landed first, thief second: higher token still wins.
    let records = vec![done("s", "1", 1), done("s", "2", 2)];
    let view = distill_records(&records, None);
    assert_eq!(view.done["s"].payload, "2");
    assert_eq!(view.superseded, 1);
}

#[test]
fn distill_equal_tokens_last_valid_wins() {
    // Two stealers that raced to the same token: deterministic work makes
    // the payloads identical in practice, but the rule is last-valid-wins.
    let records = vec![done("s", "first", 1), done("s", "second", 1)];
    let view = distill_records(&records, None);
    assert_eq!(view.done["s"].payload, "second");
    assert_eq!(view.superseded, 1);
}

#[test]
fn distill_quarantines_checksum_mismatch() {
    let dir = temp_dir();
    std::fs::create_dir_all(&dir).unwrap();
    let qpath = dir.join("j.journal.jsonl.quarantine");
    let mut bad = done("s", "honest", 1);
    if let JournalRecord::ShardDone { checksum, .. } = &mut bad {
        *checksum ^= 1;
    }
    let good = done("s", "honest", 1);
    let view = distill_records(&[bad.clone(), good], Some(&qpath));
    assert_eq!(view.quarantined, 1);
    assert_eq!(
        view.done["s"].payload, "honest",
        "the valid record must still win"
    );
    // A corrupt record is never silently dropped: it lands in the
    // quarantine sidecar for post-mortems.
    let q = std::fs::read_to_string(&qpath).unwrap();
    assert_eq!(
        serde_json::from_str::<JournalRecord>(q.trim()).unwrap(),
        bad
    );

    // Quarantined-only shards stay unsettled (they must re-execute).
    let view = distill_records(&[bad], None);
    assert!(view.done.is_empty());
    assert_eq!(view.quarantined, 1);
}

#[test]
fn distill_tracks_unmatched_starts_as_crashes() {
    let records = vec![
        JournalRecord::ShardStart {
            shard: "dead".to_string(),
        },
        JournalRecord::ShardStart {
            shard: "dead".to_string(),
        },
        JournalRecord::ShardStart {
            shard: "fine".to_string(),
        },
        done("fine", "ok", 1),
    ];
    let view = distill_records(&records, None);
    assert_eq!(view.crash_counts.get("dead"), Some(&2));
    assert_eq!(view.crash_counts.get("fine"), None);
}
