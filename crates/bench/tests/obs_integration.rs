//! End-to-end checks of the observability contract on a real figure binary.
//!
//! `fig01` is analytic (no Monte-Carlo simulation), so it runs in
//! milliseconds; these tests drive the compiled binary via
//! `CARGO_BIN_EXE_fig01` and verify the two halves of the contract:
//!
//! 1. with `ECC_PARITY_METRICS` / `ECC_PARITY_TRACE` unset, enabling them
//!    must not perturb stdout by a single byte, and
//! 2. when set, the emitted artifacts follow their documented schemas
//!    (`eccparity-metrics-v1`, `eccparity-trace-v1`,
//!    `eccparity-provenance-v1`).

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

/// The environment knobs the harness reads (see EXPERIMENTS.md); every run
/// starts from a clean slate so the ambient test environment can't leak in.
const KNOBS: &[&str] = &[
    "ECC_PARITY_FAST",
    "ECC_PARITY_NO_CACHE",
    "ECC_PARITY_JSON_DIR",
    "ECC_PARITY_METRICS",
    "ECC_PARITY_TRACE",
];

fn run_fig01(workdir: &Path, envs: &[(&str, &str)]) -> Output {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_fig01"));
    for k in KNOBS {
        cmd.env_remove(k);
    }
    for (k, v) in envs {
        cmd.env(k, v);
    }
    let out = cmd
        .current_dir(workdir)
        .output()
        .expect("failed to spawn fig01");
    assert!(
        out.status.success(),
        "fig01 exited nonzero: {:?}",
        out.status
    );
    out
}

fn temp_workdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("eccparity-obs-it-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Observability off must be the default, and turning it on must not change
/// what the figure prints: downstream tooling diffs stdout across revisions.
#[test]
fn stdout_byte_identical_with_observability_enabled() {
    let dir = temp_workdir("stdout");
    let baseline = run_fig01(&dir, &[]);
    let metrics = dir.join("metrics.json");
    let trace = dir.join("trace.jsonl");
    let instrumented = run_fig01(
        &dir,
        &[
            ("ECC_PARITY_METRICS", metrics.to_str().unwrap()),
            ("ECC_PARITY_TRACE", trace.to_str().unwrap()),
        ],
    );
    assert!(
        !baseline.stdout.is_empty(),
        "fig01 prints its table to stdout"
    );
    assert_eq!(
        baseline.stdout, instrumented.stdout,
        "enabling metrics + tracing changed figure stdout"
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// The metrics snapshot must parse as JSON and follow the documented
/// `eccparity-metrics-v1` shape, with the run-provenance gauge present and
/// every histogram carrying exactly 65 buckets.
#[test]
fn metrics_snapshot_follows_schema() {
    let dir = temp_workdir("metrics");
    let metrics = dir.join("metrics.json");
    run_fig01(&dir, &[("ECC_PARITY_METRICS", metrics.to_str().unwrap())]);

    let text = std::fs::read_to_string(&metrics).expect("snapshot written at exit");
    let v: serde_json::Value = serde_json::from_str(&text).expect("snapshot is valid JSON");
    assert_eq!(
        v.get("schema").and_then(|s| s.as_str()),
        Some(obs::metrics::SNAPSHOT_SCHEMA)
    );
    assert_eq!(v.get("title").and_then(|s| s.as_str()), Some("fig01"));

    for section in ["counters", "gauges", "histograms"] {
        assert!(
            v.get(section).is_some(),
            "snapshot is missing the {section} section"
        );
    }
    // RunMeter::drop always records wall time while metrics are on.
    assert!(
        v.get("gauges")
            .and_then(|g| g.get("run.wall_ms"))
            .and_then(|w| w.as_u64())
            .is_some(),
        "run.wall_ms gauge missing from snapshot"
    );
    if let Some(hists) = v.get("histograms").and_then(|h| h.as_object()) {
        for (name, h) in hists {
            let buckets = h.get("buckets").and_then(|b| b.as_array());
            assert_eq!(
                buckets.map(|b| b.len()),
                Some(obs::metrics::HISTOGRAM_BUCKETS),
                "histogram {name} bucket count"
            );
            assert!(h.get("count").and_then(|c| c.as_u64()).is_some());
            assert!(h.get("sum").and_then(|s| s.as_u64()).is_some());
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// The trace is JSONL: every line parses on its own, `seq` is 1-based and
/// monotone, and the run lifecycle brackets everything else.
#[test]
fn trace_is_schema_tagged_jsonl_with_monotone_seq() {
    let dir = temp_workdir("trace");
    let trace = dir.join("trace.jsonl");
    run_fig01(&dir, &[("ECC_PARITY_TRACE", trace.to_str().unwrap())]);

    let text = std::fs::read_to_string(&trace).expect("trace written");
    let lines: Vec<&str> = text.lines().collect();
    assert!(
        !lines.is_empty(),
        "trace has at least the run lifecycle events"
    );
    let mut kinds = Vec::new();
    for (i, line) in lines.iter().enumerate() {
        let v: serde_json::Value =
            serde_json::from_str(line).unwrap_or_else(|e| panic!("line {i} is not JSON: {e:?}"));
        assert_eq!(
            v.get("schema").and_then(|s| s.as_str()),
            Some(obs::trace::TRACE_SCHEMA)
        );
        assert_eq!(
            v.get("seq").and_then(|s| s.as_u64()),
            Some(i as u64 + 1),
            "seq must match line order"
        );
        kinds.push(v.get("kind").and_then(|k| k.as_str()).unwrap().to_string());
    }
    assert_eq!(kinds.first().map(String::as_str), Some("run.start"));
    assert_eq!(kinds.last().map(String::as_str), Some("run.end"));
    std::fs::remove_dir_all(&dir).ok();
}

/// `ECC_PARITY_JSON_DIR` makes the run self-describing: a provenance
/// manifest with the model version, config digest, and cache statistics.
#[test]
fn provenance_manifest_written_to_json_dir() {
    let dir = temp_workdir("prov");
    let json_dir = dir.join("json");
    run_fig01(&dir, &[("ECC_PARITY_JSON_DIR", json_dir.to_str().unwrap())]);

    let manifest = json_dir.join("fig01.provenance.json");
    let text = std::fs::read_to_string(&manifest).expect("provenance manifest written");
    let v: serde_json::Value = serde_json::from_str(&text).expect("manifest is valid JSON");
    assert_eq!(
        v.get("schema").and_then(|s| s.as_str()),
        Some(eccparity_bench::provenance::PROVENANCE_SCHEMA)
    );
    assert_eq!(v.get("bin").and_then(|b| b.as_str()), Some("fig01"));
    assert_eq!(
        v.get("model_version").and_then(|m| m.as_str()),
        Some(eccparity_bench::MODEL_VERSION)
    );
    let digest = v
        .get("config_digest")
        .and_then(|d| d.as_str())
        .expect("digest present");
    assert_eq!(
        digest.len(),
        16,
        "digest is a zero-padded 64-bit hex string"
    );
    assert!(digest.chars().all(|c| c.is_ascii_hexdigit()));
    // fig01 is analytic: it never touches the run cache.
    assert_eq!(v.get("cells_simulated").and_then(|c| c.as_u64()), Some(0));
    assert_eq!(v.get("cells_reused").and_then(|c| c.as_u64()), Some(0));
    assert!(v.get("wall_time_s").is_some());
    assert!(v.get("git_revision").and_then(|g| g.as_str()).is_some());
    assert_eq!(v.get("fast_mode").and_then(|f| f.as_bool()), Some(false));
    std::fs::remove_dir_all(&dir).ok();
}
