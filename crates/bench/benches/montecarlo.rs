//! Criterion benchmark of the reliability Monte Carlo: sampled lifetimes
//! per second (this is what bounds the precision of Figs 2/8/18).

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use mem_faults::{FitTable, LifetimeSim, SystemGeometry};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn benches(c: &mut Criterion) {
    let mut g = c.benchmark_group("montecarlo");
    let sim = LifetimeSim::new(SystemGeometry::paper_reliability(), FitTable::DDR3_AVERAGE);
    g.throughput(Throughput::Elements(1));
    g.bench_function("sample_lifetime", |b| {
        let mut rng = StdRng::seed_from_u64(11);
        b.iter(|| black_box(sim.sample(&mut rng)))
    });
    g.bench_function("trials_100_with_fraction_reduction", |b| {
        b.iter(|| {
            black_box(sim.run_trials(100, 1, |ev| {
                resilience_analysis::eol::faulty_fraction_of_history(
                    &SystemGeometry::paper_reliability(),
                    ev,
                )
            }))
        })
    });
    g.finish();
}

criterion_group!(mc, benches);
criterion_main!(mc);
