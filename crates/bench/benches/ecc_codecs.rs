//! Criterion micro-benchmarks of the functional ECC codecs: encode,
//! on-the-fly detection, and correction throughput per scheme.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use ecc_codes::{Chipkill18, Chipkill36, LotEcc, MemoryEcc, Raim};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn bench_codec(c: &mut Criterion, name: &str, ecc: &dyn MemoryEcc) {
    let mut rng = StdRng::seed_from_u64(1);
    let data: Vec<u8> = (0..ecc.data_bytes()).map(|_| rng.gen()).collect();
    let cw = ecc.encode(&data);

    let mut g = c.benchmark_group(name);
    g.throughput(Throughput::Bytes(ecc.data_bytes() as u64));
    g.bench_function("encode", |b| {
        b.iter(|| black_box(ecc.encode(black_box(&data))))
    });
    g.bench_function("detect_clean", |b| {
        b.iter(|| black_box(ecc.detect(black_box(&cw.data), black_box(&cw.detection))))
    });
    // single corrupted chip -> correction path
    let mut noisy = cw.data.clone();
    let layout = ecc.chip_layout();
    for span in &layout[0] {
        if span.region == ecc_codes::traits::Region::Data {
            for b in &mut noisy[span.start..span.start + span.len] {
                *b ^= 0x5a;
            }
        }
    }
    g.bench_function("correct_one_chip", |b| {
        b.iter(|| {
            let mut d = noisy.clone();
            let _ = black_box(ecc.correct(&mut d, &cw.detection, &cw.correction, None));
        })
    });
    g.finish();
}

fn benches(c: &mut Criterion) {
    bench_codec(c, "chipkill36", &Chipkill36::new());
    bench_codec(c, "chipkill18", &Chipkill18::new());
    bench_codec(c, "lotecc5", &LotEcc::five());
    bench_codec(c, "lotecc9", &LotEcc::nine());
    bench_codec(c, "raim", &Raim::new());
}

/// Old-vs-new GF(2^8) kernels: the exp/log multiply the codecs used to run
/// on, against the flat 64 KiB table (and, for RS syndromes, the
/// precomputed per-root contexts). The baselines are kept callable exactly
/// so this comparison stays honest as the kernels evolve.
fn bench_gf_kernels(c: &mut Criterion) {
    use ecc_codes::gf::{Field, Gf256};
    use ecc_codes::rs::ReedSolomon;

    let mut rng = StdRng::seed_from_u64(2);
    let pairs: Vec<(u8, u8)> = (0..65536).map(|_| (rng.gen(), rng.gen())).collect();

    let mut g = c.benchmark_group("gf256_mul");
    g.throughput(Throughput::Elements(pairs.len() as u64));
    g.bench_function("exp_log_baseline", |b| {
        b.iter(|| {
            let mut acc = 0u8;
            for &(x, y) in black_box(&pairs) {
                acc ^= Gf256::mul_exp_log(x, y);
            }
            black_box(acc)
        })
    });
    g.bench_function("flat_table_kernel", |b| {
        b.iter(|| {
            let mut acc = 0u8;
            for &(x, y) in black_box(&pairs) {
                acc ^= Gf256::mul(x, y);
            }
            black_box(acc)
        })
    });
    // The shape the codecs actually run: a fixed multiplier (genpoly
    // coefficient / root power) against a stream of variable operands.
    let coeff = 0x5au8;
    g.bench_function("exp_log_fixed_multiplier", |b| {
        b.iter(|| {
            let mut acc = 0u8;
            for &(x, _) in black_box(&pairs) {
                acc ^= Gf256::mul_exp_log(coeff, x);
            }
            black_box(acc)
        })
    });
    g.bench_function("ctx_row_fixed_multiplier", |b| {
        let ctx = Gf256::mul_ctx(coeff);
        b.iter(|| {
            let mut acc = 0u8;
            for &(x, _) in black_box(&pairs) {
                acc ^= Gf256::ctx_mul(ctx, x);
            }
            black_box(acc)
        })
    });
    g.finish();

    let rs: ReedSolomon<Gf256> = ReedSolomon::new(4);
    let data: Vec<u8> = (0..64).map(|_| rng.gen()).collect();
    // `encode` returns the check symbols; the codeword is data ++ parity.
    let mut cw = data.clone();
    cw.extend(rs.encode(&data));

    let mut g = c.benchmark_group("rs_syndrome");
    g.throughput(Throughput::Elements(cw.len() as u64));
    g.bench_function("exp_log_horner_baseline", |b| {
        // The pre-optimization syndrome loop: alpha^j hoisted, every
        // multiply through exp/log.
        b.iter(|| {
            let cw = black_box(&cw);
            let mut out = [0u8; 4];
            for (j, o) in out.iter_mut().enumerate() {
                let a = Gf256::alpha_pow(j as i64);
                let mut acc = 0u8;
                for &s in cw {
                    acc = Gf256::add(Gf256::mul_exp_log(acc, a), s);
                }
                *o = acc;
            }
            black_box(out)
        })
    });
    g.bench_function("precomputed_ctx", |b| {
        b.iter(|| black_box(rs.syndromes(black_box(&cw))))
    });
    g.finish();
}

criterion_group!(codecs, benches, bench_gf_kernels);
criterion_main!(codecs);
