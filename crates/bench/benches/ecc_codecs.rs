//! Criterion micro-benchmarks of the functional ECC codecs: encode,
//! on-the-fly detection, and correction throughput per scheme.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use ecc_codes::{Chipkill18, Chipkill36, LotEcc, MemoryEcc, Raim};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn bench_codec(c: &mut Criterion, name: &str, ecc: &dyn MemoryEcc) {
    let mut rng = StdRng::seed_from_u64(1);
    let data: Vec<u8> = (0..ecc.data_bytes()).map(|_| rng.gen()).collect();
    let cw = ecc.encode(&data);

    let mut g = c.benchmark_group(name);
    g.throughput(Throughput::Bytes(ecc.data_bytes() as u64));
    g.bench_function("encode", |b| {
        b.iter(|| black_box(ecc.encode(black_box(&data))))
    });
    g.bench_function("detect_clean", |b| {
        b.iter(|| black_box(ecc.detect(black_box(&cw.data), black_box(&cw.detection))))
    });
    // single corrupted chip -> correction path
    let mut noisy = cw.data.clone();
    let layout = ecc.chip_layout();
    for span in &layout[0] {
        if span.region == ecc_codes::traits::Region::Data {
            for b in &mut noisy[span.start..span.start + span.len] {
                *b ^= 0x5a;
            }
        }
    }
    g.bench_function("correct_one_chip", |b| {
        b.iter(|| {
            let mut d = noisy.clone();
            let _ = black_box(ecc.correct(&mut d, &cw.detection, &cw.correction, None));
        })
    });
    g.finish();
}

fn benches(c: &mut Criterion) {
    bench_codec(c, "chipkill36", &Chipkill36::new());
    bench_codec(c, "chipkill18", &Chipkill18::new());
    bench_codec(c, "lotecc5", &LotEcc::five());
    bench_codec(c, "lotecc9", &LotEcc::nine());
    bench_codec(c, "raim", &Raim::new());
}

criterion_group!(codecs, benches);
criterion_main!(codecs);
