//! Criterion micro-benchmarks of the functional ECC codecs: encode,
//! on-the-fly detection, and correction throughput per scheme.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use ecc_codes::{Chipkill18, Chipkill36, LotEcc, MemoryEcc, Raim};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn bench_codec(c: &mut Criterion, name: &str, ecc: &dyn MemoryEcc) {
    let mut rng = StdRng::seed_from_u64(1);
    let data: Vec<u8> = (0..ecc.data_bytes()).map(|_| rng.gen()).collect();
    let cw = ecc.encode(&data);

    let mut g = c.benchmark_group(name);
    g.throughput(Throughput::Bytes(ecc.data_bytes() as u64));
    g.bench_function("encode", |b| {
        b.iter(|| black_box(ecc.encode(black_box(&data))))
    });
    g.bench_function("detect_clean", |b| {
        b.iter(|| black_box(ecc.detect(black_box(&cw.data), black_box(&cw.detection))))
    });
    // single corrupted chip -> correction path
    let mut noisy = cw.data.clone();
    let layout = ecc.chip_layout();
    for span in &layout[0] {
        if span.region == ecc_codes::traits::Region::Data {
            for b in &mut noisy[span.start..span.start + span.len] {
                *b ^= 0x5a;
            }
        }
    }
    g.bench_function("correct_one_chip", |b| {
        b.iter(|| {
            let mut d = noisy.clone();
            let _ = black_box(ecc.correct(&mut d, &cw.detection, &cw.correction, None));
        })
    });
    g.finish();
}

fn benches(c: &mut Criterion) {
    bench_codec(c, "chipkill36", &Chipkill36::new());
    bench_codec(c, "chipkill18", &Chipkill18::new());
    bench_codec(c, "lotecc5", &LotEcc::five());
    bench_codec(c, "lotecc9", &LotEcc::nine());
    bench_codec(c, "raim", &Raim::new());
}

/// Old-vs-new GF(2^8) kernels: the exp/log multiply the codecs used to run
/// on, against the flat 64 KiB table (and, for RS syndromes, the
/// precomputed per-root contexts). The baselines are kept callable exactly
/// so this comparison stays honest as the kernels evolve.
fn bench_gf_kernels(c: &mut Criterion) {
    use ecc_codes::gf::{Field, Gf256};
    use ecc_codes::gfsimd;
    use ecc_codes::rs::ReedSolomon;

    let mut rng = StdRng::seed_from_u64(2);
    let pairs: Vec<(u8, u8)> = (0..65536).map(|_| (rng.gen(), rng.gen())).collect();

    let mut g = c.benchmark_group("gf256_mul");
    g.throughput(Throughput::Elements(pairs.len() as u64));
    g.bench_function("exp_log_baseline", |b| {
        b.iter(|| {
            let mut acc = 0u8;
            for &(x, y) in black_box(&pairs) {
                acc ^= Gf256::mul_exp_log(x, y);
            }
            black_box(acc)
        })
    });
    g.bench_function("flat_table_kernel", |b| {
        b.iter(|| {
            let mut acc = 0u8;
            for &(x, y) in black_box(&pairs) {
                acc ^= Gf256::mul(x, y);
            }
            black_box(acc)
        })
    });
    // The shape the codecs actually run: a fixed multiplier (genpoly
    // coefficient / root power) against a stream of variable operands.
    let coeff = 0x5au8;
    g.bench_function("exp_log_fixed_multiplier", |b| {
        b.iter(|| {
            let mut acc = 0u8;
            for &(x, _) in black_box(&pairs) {
                acc ^= Gf256::mul_exp_log(coeff, x);
            }
            black_box(acc)
        })
    });
    g.bench_function("ctx_row_fixed_multiplier", |b| {
        let ctx = Gf256::mul_ctx(coeff);
        b.iter(|| {
            let mut acc = 0u8;
            for &(x, _) in black_box(&pairs) {
                acc ^= Gf256::ctx_mul(ctx, x);
            }
            black_box(acc)
        })
    });
    // The vectorized shape: the same 65,536 fixed-multiplier products, as
    // one bulk nibble-table pass — dispatched (AVX2/SSSE3 when the CPU has
    // them) and pinned-scalar, so the JSON records both tiers.
    let xs: Vec<u8> = pairs.iter().map(|&(x, _)| x).collect();
    g.bench_function("simd_nibble_fixed_multiplier", |b| {
        let ctx = gfsimd::NibbleCtx::new(coeff);
        let mut dst = vec![0u8; xs.len()];
        b.iter(|| {
            gfsimd::mul_slice(black_box(&ctx), black_box(&xs), &mut dst);
            black_box(dst[0])
        })
    });
    g.bench_function("scalar_nibble_fixed_multiplier", |b| {
        let ctx = gfsimd::NibbleCtx::new(coeff);
        let mut dst = vec![0u8; xs.len()];
        b.iter(|| {
            gfsimd::mul_slice_scalar(black_box(&ctx), black_box(&xs), &mut dst);
            black_box(dst[0])
        })
    });
    g.finish();

    let rs: ReedSolomon<Gf256> = ReedSolomon::new(4);
    let data: Vec<u8> = (0..64).map(|_| rng.gen()).collect();
    // `encode` returns the check symbols; the codeword is data ++ parity.
    let mut cw = data.clone();
    cw.extend(rs.encode(&data));

    let mut g = c.benchmark_group("rs_syndrome");
    g.throughput(Throughput::Elements(cw.len() as u64));
    g.bench_function("exp_log_horner_baseline", |b| {
        // The pre-optimization syndrome loop: alpha^j hoisted, every
        // multiply through exp/log.
        b.iter(|| {
            let cw = black_box(&cw);
            let mut out = [0u8; 4];
            for (j, o) in out.iter_mut().enumerate() {
                let a = Gf256::alpha_pow(j as i64);
                let mut acc = 0u8;
                for &s in cw {
                    acc = Gf256::add(Gf256::mul_exp_log(acc, a), s);
                }
                *o = acc;
            }
            black_box(out)
        })
    });
    g.bench_function("precomputed_ctx", |b| {
        b.iter(|| black_box(rs.syndromes_horner(black_box(&cw))))
    });
    g.bench_function("sliced_by_4_ctx", |b| {
        b.iter(|| black_box(rs.syndromes(black_box(&cw))))
    });
    g.finish();
}

/// Batched codec entry points against their per-line equivalents, in
/// lines/s: the RS lane-parallel encode/syndromes, and a full codec
/// (`Chipkill36::encode_lines`) the memory write path actually calls.
fn bench_batched(c: &mut Criterion) {
    use ecc_codes::gf::Gf256;
    use ecc_codes::rs::ReedSolomon;

    let mut rng = StdRng::seed_from_u64(3);
    const LANES: usize = 256;

    // 16 data + 2 check symbols per word: the 18-device chipkill geometry.
    let rs: ReedSolomon<Gf256> = ReedSolomon::new(2);
    let words: Vec<Vec<u8>> = (0..LANES)
        .map(|_| (0..16).map(|_| rng.gen()).collect())
        .collect();
    let word_refs: Vec<&[u8]> = words.iter().map(|w| w.as_slice()).collect();
    let cws: Vec<Vec<u8>> = words
        .iter()
        .map(|w| {
            let mut cw = w.clone();
            cw.extend(rs.encode(w));
            cw
        })
        .collect();
    let cw_refs: Vec<&[u8]> = cws.iter().map(|w| w.as_slice()).collect();

    let mut g = c.benchmark_group("rs_batched_encode");
    g.throughput(Throughput::Elements(LANES as u64));
    g.bench_function("per_line", |b| {
        b.iter(|| {
            let out: Vec<Vec<u8>> = black_box(&word_refs).iter().map(|w| rs.encode(w)).collect();
            black_box(out)
        })
    });
    g.bench_function("batched_lanes", |b| {
        b.iter(|| black_box(rs.encode_lines(black_box(&word_refs))))
    });
    g.finish();

    let mut g = c.benchmark_group("rs_batched_syndromes");
    g.throughput(Throughput::Elements(LANES as u64));
    g.bench_function("per_line", |b| {
        b.iter(|| {
            let out: Vec<Vec<u8>> = black_box(&cw_refs)
                .iter()
                .map(|w| rs.syndromes(w))
                .collect();
            black_box(out)
        })
    });
    g.bench_function("batched_lanes", |b| {
        b.iter(|| black_box(rs.syndromes_lines(black_box(&cw_refs))))
    });
    g.finish();

    // Whole-codec view: full cache lines through the 36-device chipkill
    // codec, as the batched write path issues them.
    let ck = Chipkill36::new();
    let lines: Vec<Vec<u8>> = (0..LANES)
        .map(|_| (0..ck.data_bytes()).map(|_| rng.gen()).collect())
        .collect();
    let line_refs: Vec<&[u8]> = lines.iter().map(|l| l.as_slice()).collect();
    let mut g = c.benchmark_group("chipkill36_encode");
    g.throughput(Throughput::Elements(LANES as u64));
    g.bench_function("per_line", |b| {
        b.iter(|| {
            let out: Vec<_> = black_box(&line_refs).iter().map(|l| ck.encode(l)).collect();
            black_box(out)
        })
    });
    g.bench_function("encode_lines", |b| {
        b.iter(|| black_box(ck.encode_lines(black_box(&line_refs))))
    });
    g.finish();
}

criterion_group!(codecs, benches, bench_gf_kernels, bench_batched);
criterion_main!(codecs);
