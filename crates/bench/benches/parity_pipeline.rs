//! Criterion benchmark of the ECC Parity functional pipeline: healthy
//! writes (parity update, equation (1)), healthy reads, and the expensive
//! reconstruction path (Fig 6 step C).

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use ecc_codes::lotecc::LotEcc;
use ecc_parity::layout::LineLoc;
use ecc_parity::memory::{ParityConfig, ParityMemory};
use mem_faults::{ChipLocation, FaultInstance, FaultMode};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn mem8() -> ParityMemory<LotEcc> {
    ParityMemory::new(LotEcc::five(), ParityConfig::small(8))
}

fn benches(c: &mut Criterion) {
    let mut g = c.benchmark_group("parity_pipeline");
    g.throughput(Throughput::Bytes(64));

    g.bench_function("write_healthy", |b| {
        let mut m = mem8();
        let mut rng = StdRng::seed_from_u64(5);
        let data: Vec<u8> = (0..64).map(|_| rng.gen()).collect();
        let mut i = 0u32;
        b.iter(|| {
            let loc = LineLoc {
                bank: (i % 4) as usize,
                row: (i / 4) % m.config().data_rows,
                line: i % m.config().lines_per_row,
            };
            m.write((i % 8) as usize, loc, black_box(&data)).unwrap();
            i = i.wrapping_add(1);
        })
    });

    g.bench_function("read_clean", |b| {
        let mut m = mem8();
        let data = vec![7u8; 64];
        let loc = LineLoc {
            bank: 1,
            row: 2,
            line: 3,
        };
        m.write(2, loc, &data).unwrap();
        b.iter(|| black_box(m.read(2, loc).unwrap()))
    });

    g.bench_function("read_corrected_degraded", |b| {
        // Steady-state faulty-bank reads (Fig 6 step B): the pair is
        // migrated, every read detects the permanent fault and corrects
        // through the stored ECC line.
        let mut m = mem8();
        let mut rng = StdRng::seed_from_u64(6);
        let data: Vec<u8> = (0..64).map(|_| rng.gen()).collect();
        for row in 0..m.config().data_rows {
            for line in 0..m.config().lines_per_row {
                m.write(3, LineLoc { bank: 2, row, line }, &data).unwrap();
            }
        }
        m.inject_fault(FaultInstance {
            chip: ChipLocation {
                channel: 3,
                rank: 0,
                chip: 1,
            },
            mode: FaultMode::SingleBank,
            bank: 2,
            row: 0,
            line: 0,
            pattern_seed: 9,
        });
        m.migrate_pair(3, 1); // banks 2,3
        let rows = m.config().data_rows;
        let lines = m.config().lines_per_row;
        let mut i = 0u32;
        b.iter(|| {
            let loc = LineLoc {
                bank: 2,
                row: i % rows,
                line: (i / rows) % lines,
            };
            i = i.wrapping_add(1);
            black_box(m.read(3, loc).unwrap())
        })
    });

    g.bench_function("parity_reconstruction_primitive", |b| {
        // The step-C cost: rebuilding one group's parity from member data
        // (reads N-1 lines and recomputes their correction bits).
        let mut m = mem8();
        let mut rng = StdRng::seed_from_u64(7);
        for c in 0..8 {
            for bank in 0..4 {
                let data: Vec<u8> = (0..64).map(|_| rng.gen()).collect();
                m.write(
                    c,
                    LineLoc {
                        bank,
                        row: 0,
                        line: 0,
                    },
                    &data,
                )
                .unwrap();
            }
        }
        let g0 = m.layout().group_of(
            0,
            &LineLoc {
                bank: 0,
                row: 0,
                line: 0,
            },
        );
        b.iter(|| black_box(m.compute_parity_from_scratch(&g0)))
    });
    g.finish();
}

criterion_group!(parity, benches);
criterion_main!(parity);
