//! Criterion benchmark of the DRAM channel scheduler: requests per second
//! through the timestamp-algebra model under random and streaming traffic.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use dram_sim::{DeviceKind, MemRequest, MemoryConfig, MemorySystem, RankConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn benches(c: &mut Criterion) {
    let mut g = c.benchmark_group("dram_channel");
    let n = 10_000u64;
    g.throughput(Throughput::Elements(n));
    g.bench_function("random_requests", |b| {
        b.iter(|| {
            let cfg = MemoryConfig::new(8, 4, RankConfig::lotecc5(), 64);
            let mut sys = MemorySystem::new(cfg);
            let mut rng = StdRng::seed_from_u64(3);
            let mut t = 0u64;
            for _ in 0..n {
                t += rng.gen_range(0..8u64);
                black_box(sys.submit(MemRequest {
                    line_addr: rng.gen_range(0..1_000_000),
                    is_write: rng.gen_bool(0.3),
                    arrival: t,
                }));
            }
        })
    });
    g.bench_function("streaming_requests", |b| {
        b.iter(|| {
            let cfg = MemoryConfig::new(4, 1, RankConfig::uniform(DeviceKind::X4, 36), 128);
            let mut sys = MemorySystem::new(cfg);
            for i in 0..n {
                black_box(sys.submit(MemRequest {
                    line_addr: i,
                    is_write: false,
                    arrival: i * 4,
                }));
            }
        })
    });
    g.finish();
}

criterion_group!(dram, benches);
criterion_main!(dram);
