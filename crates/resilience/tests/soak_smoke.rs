//! Bounded soak smoke: a small chaos run per scheme must finish with zero
//! silent corruption, zero panics, and both correction paths exercised.

use resilience::{ScenarioKind, SoakConfig, SoakHarness, Verdict};

fn smoke_config(schemes: &[&str], accesses: u64) -> SoakConfig {
    SoakConfig {
        seed: 7,
        accesses,
        schemes: schemes.iter().map(|s| s.to_string()).collect(),
        ..SoakConfig::default()
    }
}

#[test]
fn bounded_soak_is_clean_for_lotecc5() {
    let harness = SoakHarness::new(smoke_config(&["lotecc5"], 45_000));
    let report = harness.run_scheme("lotecc5").unwrap();
    assert!(report.accesses >= 45_000);
    assert_eq!(report.counts.silent_corruption, 0, "zero-SDC gate");
    assert_eq!(report.panics, 0);
    assert_eq!(report.monotonicity_violations, 0);
    assert_eq!(report.audit_failures, 0);
    assert!(report.is_clean());
    assert!(
        report.counts.corrected_via_parity > 0,
        "parity reconstruction path exercised"
    );
    assert!(
        report.counts.corrected_degraded > 0,
        "stored-ECC-line (degraded) path exercised"
    );
    assert!(
        report.counts.detected_uncorrectable > 0,
        "adversarial scenarios force visible uncorrectables"
    );
    assert!(report.counts.clean_reads > 0);
    // Ledger records only non-clean reads and respects its cap.
    assert!(report.ledger.len() <= harness.config().ledger_limit);
    assert!(report
        .ledger
        .iter()
        .all(|r| r.verdict != Verdict::CleanRead.as_str()));
}

#[test]
fn bounded_soak_is_clean_for_chipkill18() {
    let report = SoakHarness::new(smoke_config(&["chipkill18"], 45_000))
        .run_scheme("chipkill18")
        .unwrap();
    assert!(report.is_clean(), "chipkill18 soak: {:?}", report.counts);
    assert!(report.counts.corrected_via_parity > 0);
    assert!(report.counts.corrected_degraded > 0);
}

#[test]
fn soak_is_deterministic_per_seed() {
    let cfg = smoke_config(&["lotecc5"], 12_000);
    let a = SoakHarness::new(cfg.clone()).run_scheme("lotecc5").unwrap();
    let b = SoakHarness::new(cfg).run_scheme("lotecc5").unwrap();
    assert_eq!(a.counts, b.counts);
    assert_eq!(a.accesses, b.accesses);
}

#[test]
fn single_scenario_run_works_in_isolation() {
    for kind in ScenarioKind::all() {
        let cfg = SoakConfig {
            seed: 3,
            accesses: 5_000,
            scenarios: vec![kind],
            schemes: vec!["lotecc5".to_string()],
            ..SoakConfig::default()
        };
        let report = SoakHarness::new(cfg).run_scheme("lotecc5").unwrap();
        assert!(
            report.is_clean(),
            "scenario {} dirty: counts={:?} panics={} mono={} audit={}",
            kind.name(),
            report.counts,
            report.panics,
            report.monotonicity_violations,
            report.audit_failures
        );
    }
}

#[test]
fn unknown_scheme_is_a_typed_error() {
    let err = SoakHarness::new(SoakConfig::default())
        .run_scheme("not-a-scheme")
        .unwrap_err();
    assert_eq!(err.name, "not-a-scheme");
}
