//! Deterministic fleet event streams for the `eccparityd` load generator.
//!
//! The soak harness replays *one* node's fault history against a live
//! memory; the fleet daemon ingests corrected-error telemetry from
//! *millions* of nodes. This module bridges the two: it derives, from the
//! same [`LifetimeSim`] Poisson machinery the soak harness uses, a
//! per-node fault history and then expands each materialized fault into
//! the stream of corrected-error (CE) events a memory controller would
//! report as the workload keeps striking the faulty cells. The expansion
//! mirrors the empirical shape of fleet CE logs: a small number of fault
//! sites produce almost all events, repeated strikes cluster on the same
//! row, and the occasional large (whole-bank) fault shows up as a
//! diagnosis event rather than a CE drizzle.
//!
//! Everything is a pure function of `(seed, node)`, so any two expansions
//! of the same node agree — the daemon's kill-and-restart smoke relies on
//! replaying byte-identical streams.

use mem_faults::{FaultMode, FitTable, LifetimeSim, SystemGeometry};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One fleet telemetry event, pre-addressing: which node saw what where.
///
/// `channel`/`bank`/`row` are in the daemon's health-table coordinates
/// (logical banks per channel, as [`SystemGeometry::banks_per_channel`]
/// counts them).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FleetEvent {
    /// Node (simulated DIMM/host) the event originates from.
    pub node: u64,
    /// Channel within the node.
    pub channel: u32,
    /// Logical bank within the channel.
    pub bank: u32,
    /// Row within the bank.
    pub row: u32,
    /// `true` for a whole-bank diagnosis (the daemon marks the pair
    /// faulty directly); `false` for an ordinary corrected error.
    pub bank_fault: bool,
}

/// Configuration of one deterministic fleet stream.
#[derive(Debug, Clone, Copy)]
pub struct StreamConfig {
    /// Master seed; combined with the node id per node.
    pub seed: u64,
    /// Number of nodes emitting events (round-robin interleaved).
    pub nodes: u64,
    /// Total events to emit across all nodes.
    pub events: u64,
    /// Channels per node (must match the daemon's `--channels`).
    pub channels: u32,
    /// Logical banks per channel (must match the daemon's `--banks`).
    pub banks: u32,
}

impl Default for StreamConfig {
    fn default() -> Self {
        StreamConfig {
            seed: 1,
            nodes: 1024,
            events: 1_000_000,
            channels: 8,
            banks: 16,
        }
    }
}

/// FNV-1a over 8 bytes — cheap per-node seed mixing.
fn mix(seed: u64, node: u64) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64 ^ seed.wrapping_mul(0x0010_0000_01b3);
    for b in node.to_le_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// The fault sites of one node, expanded lazily into CE events.
struct NodeScript {
    rng: StdRng,
    /// `(channel, bank, row, weight)` — CE strikes draw sites by weight.
    sites: Vec<(u32, u32, u32, u32)>,
    /// Whole-bank faults reported once, early in the node's stream.
    bank_faults: Vec<(u32, u32)>,
    emitted: u64,
}

impl NodeScript {
    fn new(cfg: &StreamConfig, node: u64) -> NodeScript {
        let mut rng = StdRng::seed_from_u64(mix(cfg.seed, node));
        // Sample the node's lifetime fault history with the soak harness's
        // sampler, on a geometry scaled to the requested channel count.
        // DDR3's 8 banks/chip times 2 ranks gives 16 logical banks, the
        // daemon default; other `banks` values just remap modulo below.
        let geo = SystemGeometry {
            channels: cfg.channels.max(1) as usize,
            ranks_per_channel: 2,
            chips_per_rank: 9,
            banks_per_chip: 8,
        };
        // DDR3_AVERAGE yields <1 fault per 7-year life; fleet telemetry is
        // interesting when most nodes have at least one active site, so
        // scale the FIT rates up — the *shape* (mode mix, placement) stays
        // the paper's.
        let sim = LifetimeSim::new(geo, FitTable::DDR3_AVERAGE.scaled_to(1_500.0));
        let history = sim.sample(&mut rng);
        let mut sites = Vec::new();
        let mut bank_faults = Vec::new();
        for ev in &history {
            let channel = (ev.fault.chip.channel as u32) % cfg.channels.max(1);
            let bank = ev.fault.bank % cfg.banks.max(1);
            let row = ev.fault.row;
            if ev.fault.mode.is_large() && matches!(ev.fault.mode, FaultMode::SingleBank) {
                bank_faults.push((channel, bank));
            }
            // Large or small, the site keeps producing CEs; permanent
            // large faults strike far more often.
            let weight = if ev.fault.mode.is_large() { 16 } else { 4 };
            sites.push((channel, bank, row, weight));
        }
        if sites.is_empty() {
            // A clean node still emits sporadic transient CEs from one
            // random cell (cosmic-ray style), so every node contributes
            // traffic and the health table sees singleton counters.
            sites.push((
                rng.gen_range(0..cfg.channels.max(1)),
                rng.gen_range(0..cfg.banks.max(1)),
                rng.gen_range(0..4096),
                1,
            ));
        }
        NodeScript {
            rng,
            sites,
            bank_faults,
            emitted: 0,
        }
    }

    fn next_event(&mut self, node: u64) -> FleetEvent {
        self.emitted += 1;
        // Report whole-bank diagnoses as the node's first events.
        if let Some((channel, bank)) = self.bank_faults.get(self.emitted as usize - 1).copied() {
            return FleetEvent {
                node,
                channel,
                bank,
                row: 0,
                bank_fault: true,
            };
        }
        let total: u32 = self.sites.iter().map(|s| s.3).sum();
        let mut pick = self.rng.gen_range(0..total.max(1));
        let mut site = self.sites[0];
        for &s in &self.sites {
            if pick < s.3 {
                site = s;
                break;
            }
            pick -= s.3;
        }
        // Strikes cluster on the fault row but wander within the page.
        let row = site.2.wrapping_add(self.rng.gen_range(0..4)) & 0x000f_ffff;
        FleetEvent {
            node,
            channel: site.0,
            bank: site.1,
            row,
            bank_fault: false,
        }
    }
}

/// Iterator over the full stream: nodes interleave round-robin, so the
/// daemon's shards all stay busy from the first batch onward.
pub struct FleetStream {
    cfg: StreamConfig,
    scripts: Vec<NodeScript>,
    next_node: u64,
    emitted: u64,
}

impl FleetStream {
    /// Build the stream for `cfg`. Allocates per-node scripts up front
    /// (cheap: a few fault sites per node).
    pub fn new(cfg: StreamConfig) -> FleetStream {
        assert!(cfg.nodes >= 1, "need at least one node");
        assert!(cfg.channels >= 1 && cfg.banks >= 2);
        let scripts = (0..cfg.nodes).map(|n| NodeScript::new(&cfg, n)).collect();
        FleetStream {
            cfg,
            scripts,
            next_node: 0,
            emitted: 0,
        }
    }

    /// Total events this stream will yield.
    pub fn len_events(&self) -> u64 {
        self.cfg.events
    }
}

impl Iterator for FleetStream {
    type Item = FleetEvent;

    fn next(&mut self) -> Option<FleetEvent> {
        if self.emitted >= self.cfg.events {
            return None;
        }
        let node = self.next_node;
        self.next_node = (self.next_node + 1) % self.cfg.nodes;
        self.emitted += 1;
        Some(self.scripts[node as usize].next_event(node))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_is_deterministic_and_bounded() {
        let cfg = StreamConfig {
            seed: 7,
            nodes: 13,
            events: 500,
            channels: 4,
            banks: 8,
        };
        let a: Vec<_> = FleetStream::new(cfg).collect();
        let b: Vec<_> = FleetStream::new(cfg).collect();
        assert_eq!(a, b, "same config must replay identically");
        assert_eq!(a.len(), 500);
        for ev in &a {
            assert!(ev.node < 13);
            assert!(ev.channel < 4);
            assert!(ev.bank < 8);
        }
        // Round-robin interleave: first 13 events cover all 13 nodes.
        let first: std::collections::HashSet<u64> = a[..13].iter().map(|e| e.node).collect();
        assert_eq!(first.len(), 13);
    }

    #[test]
    fn different_seeds_differ() {
        let mk = |seed| {
            FleetStream::new(StreamConfig {
                seed,
                nodes: 5,
                events: 200,
                channels: 4,
                banks: 8,
            })
            .map(|e| (e.node, e.channel, e.bank, e.row))
            .collect::<Vec<_>>()
        };
        assert_ne!(mk(1), mk(2));
    }
}
