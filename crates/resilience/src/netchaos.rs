//! Deterministic network chaos against a live `eccparityd`.
//!
//! The service crate's [`chaos`](../../eccparity_service/chaos/index.html)
//! module attacks the daemon's *internals* (shard panics, stalls, worker
//! poisoning); this module attacks it from the *outside*, the way a
//! hostile or broken fleet would: torn frames, drip-fed bytes,
//! mid-line disconnects, malformed-JSON and oversized-line floods, and
//! invalid UTF-8 — all derived from one seed, so a CI run replays
//! byte-identically.
//!
//! Two carefully separated roles keep the CI gate meaningful:
//!
//! - **The relay is content-pure.** [`run_relay`] forwards every client
//!   byte to the daemon unmodified and in order — it only distorts the
//!   *framing* (deterministic torn writes and drip-feed pauses). A
//!   newline-delimited protocol must not care where the write boundaries
//!   fall, so a daemon behind the relay must produce byte-identical query
//!   transcripts to one talking directly. That is exactly what the
//!   `chaos-smoke` CI job `cmp`s.
//! - **Abuse rides on sacrificial connections.** [`run_abuse`] opens its
//!   *own* connections to inject garbage (parse rejects), invalid UTF-8,
//!   out-of-geometry events (shard-level rejects), oversized lines
//!   (bounded-reader refusals), and mid-line disconnects (truncated
//!   final frames). None of these mutate fleet state — they only drive
//!   the daemon's `service.reject.*` accounting — so they can interleave
//!   with relayed traffic arbitrarily without perturbing transcripts.
//!
//! [`ChaosSummary::to_json`] renders an `eccparity-netchaos-v1` record of
//! everything injected, so CI can assert the daemon's reject counters
//! attribute every hostile line.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{Shutdown, TcpStream};
use std::os::unix::net::UnixStream;
use std::path::PathBuf;
use std::time::{Duration, Instant};

/// Schema tag of the summary JSON emitted by `eccparity-chaosproxy`.
pub const NETCHAOS_SCHEMA: &str = "eccparity-netchaos-v1";

/// Where the daemon under attack listens.
#[derive(Debug, Clone)]
pub enum Endpoint {
    /// Unix-domain socket path.
    Unix(PathBuf),
    /// TCP `host:port`.
    Tcp(String),
}

/// A connected socket of either family, with the two operations chaos
/// needs beyond byte I/O: cloning (split read/write halves) and
/// half-close (drain responses after EOF'ing the request side).
pub enum ChaosStream {
    /// Unix-domain connection.
    Unix(UnixStream),
    /// TCP connection.
    Tcp(TcpStream),
}

impl ChaosStream {
    /// Connect to `ep`, retrying until `deadline` so the daemon and the
    /// chaos tooling can start concurrently.
    pub fn connect(ep: &Endpoint, deadline: Instant) -> std::io::Result<ChaosStream> {
        loop {
            let attempt = match ep {
                Endpoint::Unix(path) => UnixStream::connect(path).map(ChaosStream::Unix),
                Endpoint::Tcp(addr) => TcpStream::connect(addr).map(|s| {
                    let _ = s.set_nodelay(true);
                    ChaosStream::Tcp(s)
                }),
            };
            match attempt {
                Ok(s) => return Ok(s),
                Err(e) => {
                    if Instant::now() >= deadline {
                        return Err(e);
                    }
                    std::thread::sleep(Duration::from_millis(25));
                }
            }
        }
    }

    /// An independently owned handle to the same connection.
    pub fn try_clone(&self) -> std::io::Result<ChaosStream> {
        match self {
            ChaosStream::Unix(s) => s.try_clone().map(ChaosStream::Unix),
            ChaosStream::Tcp(s) => s.try_clone().map(ChaosStream::Tcp),
        }
    }

    /// Half-close the write side: the daemon sees EOF but can still
    /// answer everything already sent.
    pub fn shutdown_write(&self) {
        match self {
            ChaosStream::Unix(s) => {
                let _ = s.shutdown(Shutdown::Write);
            }
            ChaosStream::Tcp(s) => {
                let _ = s.shutdown(Shutdown::Write);
            }
        }
    }
}

impl Read for ChaosStream {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            ChaosStream::Unix(s) => s.read(buf),
            ChaosStream::Tcp(s) => s.read(buf),
        }
    }
}

impl Write for ChaosStream {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            ChaosStream::Unix(s) => s.write(buf),
            ChaosStream::Tcp(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            ChaosStream::Unix(s) => s.flush(),
            ChaosStream::Tcp(s) => s.flush(),
        }
    }
}

/// Knobs of one chaos campaign. Everything downstream is a pure function
/// of these values.
#[derive(Debug, Clone, Copy)]
pub struct ChaosConfig {
    /// Master seed for torn-write boundaries, drip pauses, and garbage
    /// content.
    pub seed: u64,
    /// Hostile lines injected *per category* by the abuse phase
    /// (0 disables abuse).
    pub abuse_lines: u64,
    /// Size of each injected oversized line (should exceed the daemon's
    /// `--max-line-bytes`).
    pub oversized_bytes: usize,
    /// Torn-write split cap in bytes: the relay never writes more than
    /// this in one syscall (minimum 1).
    pub max_split: usize,
    /// Roughly one relay split in `drip_every` sleeps 1–3 ms (slow-loris
    /// drip; 0 disables).
    pub drip_every: u64,
    /// Sacrificial connections that die mid-line (no trailing newline).
    pub torn_disconnects: u64,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        ChaosConfig {
            seed: 7,
            abuse_lines: 25,
            oversized_bytes: 2 << 20,
            max_split: 1024,
            drip_every: 64,
            torn_disconnects: 3,
        }
    }
}

/// Everything a campaign injected, for the CI attribution check.
#[derive(Debug, Clone, Copy, Default)]
pub struct ChaosSummary {
    /// Malformed-JSON lines injected (daemon: parse rejects + error lines).
    pub garbage_lines: u64,
    /// Invalid-UTF-8 lines injected (daemon: parse rejects + error lines).
    pub utf8_lines: u64,
    /// Well-formed events with out-of-range geometry (daemon: shard-level
    /// geometry rejects, no response line).
    pub geometry_bad_lines: u64,
    /// Oversized lines injected (daemon: `"code":"oversized"` refusals).
    pub oversized_lines: u64,
    /// Connections dropped mid-line with no newline.
    pub torn_disconnects: u64,
    /// Error/refusal response lines read back on abuse connections.
    pub abuse_responses: u64,
    /// Client bytes relayed to the daemon, verbatim.
    pub relay_bytes_in: u64,
    /// Daemon bytes relayed back to the client, verbatim.
    pub relay_bytes_out: u64,
    /// Torn-write splits performed by the relay.
    pub relay_splits: u64,
    /// Drip-feed pauses taken by the relay.
    pub relay_drips: u64,
}

impl ChaosSummary {
    /// Expected parse rejects at the daemon from this campaign's abuse
    /// (torn disconnects surface as truncated-final-line parse rejects).
    pub fn expected_parse_rejects(&self) -> u64 {
        self.garbage_lines + self.utf8_lines + self.torn_disconnects
    }

    /// Render the `eccparity-netchaos-v1` summary record.
    pub fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\"schema\":\"{}\",",
                "\"garbage_lines\":{},\"utf8_lines\":{},",
                "\"geometry_bad_lines\":{},\"oversized_lines\":{},",
                "\"torn_disconnects\":{},\"abuse_responses\":{},",
                "\"relay_bytes_in\":{},\"relay_bytes_out\":{},",
                "\"relay_splits\":{},\"relay_drips\":{}}}"
            ),
            NETCHAOS_SCHEMA,
            self.garbage_lines,
            self.utf8_lines,
            self.geometry_bad_lines,
            self.oversized_lines,
            self.torn_disconnects,
            self.abuse_responses,
            self.relay_bytes_in,
            self.relay_bytes_out,
            self.relay_splits,
            self.relay_drips,
        )
    }
}

/// Deterministic torn-write planner: the sequence of split sizes and
/// drip decisions is a pure function of the seed.
pub struct Framer {
    rng: StdRng,
    max_split: usize,
    drip_every: u64,
}

impl Framer {
    /// A planner for `cfg`, salted with `stream` so concurrent relay
    /// connections tear differently but reproducibly.
    pub fn new(cfg: &ChaosConfig, stream: u64) -> Framer {
        Framer {
            rng: StdRng::seed_from_u64(cfg.seed ^ stream.wrapping_mul(0x9e37_79b9_7f4a_7c15)),
            max_split: cfg.max_split.max(1),
            drip_every: cfg.drip_every,
        }
    }

    /// How many of the `remaining` bytes the next write should carry
    /// (1..=max_split), and whether to pause 1–3 ms first.
    pub fn next_split(&mut self, remaining: usize) -> (usize, Option<Duration>) {
        let cap = self.max_split.min(remaining).max(1);
        let take = self.rng.gen_range(1..=cap);
        let drip = if self.drip_every > 0 && self.rng.gen_range(0..self.drip_every.max(1)) == 0 {
            Some(Duration::from_millis(self.rng.gen_range(1..=3)))
        } else {
            None
        };
        (take, drip)
    }
}

/// Write `buf` to `out` in deterministically torn pieces, flushing each
/// piece so the peer really sees the partial frames. Returns
/// `(splits, drips)`.
pub fn write_torn(
    out: &mut impl Write,
    framer: &mut Framer,
    mut buf: &[u8],
) -> std::io::Result<(u64, u64)> {
    let (mut splits, mut drips) = (0u64, 0u64);
    while !buf.is_empty() {
        let (take, drip) = framer.next_split(buf.len());
        if let Some(pause) = drip {
            std::thread::sleep(pause);
            drips += 1;
        }
        out.write_all(&buf[..take])?;
        out.flush()?;
        splits += 1;
        buf = &buf[take..];
    }
    Ok((splits, drips))
}

/// One deterministic malformed-JSON line (index `i` of the campaign).
fn garbage_line(rng: &mut StdRng, i: u64) -> Vec<u8> {
    let shapes: [&[u8]; 4] = [
        b"{\"kind\":\"event\",\"node\":",
        b"not json at all",
        b"{\"kind\":\"query\",\"op\":\"no_such_op\"}",
        b"[1,2,3]",
    ];
    let mut line = shapes[(i % 4) as usize].to_vec();
    // Vary the tail so dedup/caching anywhere cannot mask a bug.
    line.extend_from_slice(format!(" #{}", rng.gen_range(0..1_000_000u64)).as_bytes());
    line
}

/// Inject every abuse category over dedicated connections; the relayed
/// client traffic is never touched. Returns what was injected.
pub fn run_abuse(upstream: &Endpoint, cfg: &ChaosConfig) -> std::io::Result<ChaosSummary> {
    let mut summary = ChaosSummary::default();
    if cfg.abuse_lines == 0 && cfg.torn_disconnects == 0 {
        return Ok(summary);
    }
    let mut rng = StdRng::seed_from_u64(cfg.seed.wrapping_mul(0xa076_1d64_78bd_642f));
    let deadline = Instant::now() + Duration::from_secs(10);

    // Mid-line disconnects: a frame torn by connection death. The partial
    // line is garbage, so the daemon's truncated-final-line handling
    // counts a parse reject and nothing else.
    for i in 0..cfg.torn_disconnects {
        let mut conn = ChaosStream::connect(upstream, deadline)?;
        let mut partial = garbage_line(&mut rng, i);
        partial.truncate(partial.len().saturating_sub(2).max(1));
        conn.write_all(&partial)?;
        conn.flush()?;
        summary.torn_disconnects += 1;
        // Dropped with no newline and no half-close: an abrupt death.
    }

    if cfg.abuse_lines > 0 {
        let conn = ChaosStream::connect(upstream, deadline)?;
        let mut writer = conn.try_clone()?;
        let mut reader = BufReader::new(conn);
        let mut framer = Framer::new(cfg, u64::MAX);
        for i in 0..cfg.abuse_lines {
            // Malformed JSON → parse reject + error response.
            let mut line = garbage_line(&mut rng, i);
            line.push(b'\n');
            write_torn(&mut writer, &mut framer, &line)?;
            summary.garbage_lines += 1;
            // Invalid UTF-8 → parse reject + error response.
            let mut line = vec![0xff, 0xfe, 0x80, b'{', 0xc0];
            line.extend_from_slice(i.to_string().as_bytes());
            line.push(b'\n');
            write_torn(&mut writer, &mut framer, &line)?;
            summary.utf8_lines += 1;
            // Geometry-bad event: parses fine, routes to a shard, rejected
            // there (no response line — events are fire-and-forget).
            let line = format!(
                "{{\"kind\":\"event\",\"node\":{},\"channel\":9999,\"bank\":9999,\"row\":1}}\n",
                rng.gen_range(0..1_000_000u64),
            );
            write_torn(&mut writer, &mut framer, line.as_bytes())?;
            summary.geometry_bad_lines += 1;
        }
        // One oversized flood line per 8 abuse rounds, at least one.
        for _ in 0..cfg.abuse_lines.div_ceil(8) {
            let mut line = vec![b'z'; cfg.oversized_bytes.max(2)];
            line.push(b'\n');
            writer.write_all(&line)?;
            writer.flush()?;
            summary.oversized_lines += 1;
        }
        writer.shutdown_write();
        // Drain every error/refusal the daemon answered with; EOF once it
        // has processed our half-closed stream.
        let mut resp = String::new();
        loop {
            resp.clear();
            match reader.read_line(&mut resp) {
                Ok(0) | Err(_) => break,
                Ok(_) => summary.abuse_responses += 1,
            }
        }
    }
    Ok(summary)
}

/// Relay `client` to the daemon at `upstream`, byte-for-byte and
/// in-order, tearing only the write framing. Responses stream back
/// verbatim. Returns relay counters once the client side finishes.
pub fn run_relay(
    client: ChaosStream,
    upstream: &Endpoint,
    cfg: &ChaosConfig,
    stream_id: u64,
) -> std::io::Result<ChaosSummary> {
    let mut summary = ChaosSummary::default();
    let up = ChaosStream::connect(upstream, Instant::now() + Duration::from_secs(10))?;
    let mut up_writer = up.try_clone()?;
    let mut up_reader = up;
    let mut client_writer = client.try_clone()?;
    let mut client_reader = client;

    // Daemon → client: responses copied verbatim (chaos on this leg
    // would desync the loadgen's request/response pairing).
    let responder = std::thread::spawn(move || -> u64 {
        let mut buf = vec![0u8; 64 * 1024];
        let mut bytes = 0u64;
        loop {
            match up_reader.read(&mut buf) {
                Ok(0) | Err(_) => break,
                Ok(n) => {
                    if client_writer.write_all(&buf[..n]).is_err() {
                        break;
                    }
                    let _ = client_writer.flush();
                    bytes += n as u64;
                }
            }
        }
        bytes
    });

    // Client → daemon: torn framing, pure content.
    let mut framer = Framer::new(cfg, stream_id);
    let mut buf = vec![0u8; 64 * 1024];
    loop {
        match client_reader.read(&mut buf) {
            Ok(0) | Err(_) => break,
            Ok(n) => {
                let (splits, drips) = write_torn(&mut up_writer, &mut framer, &buf[..n])?;
                summary.relay_bytes_in += n as u64;
                summary.relay_splits += splits;
                summary.relay_drips += drips;
            }
        }
    }
    up_writer.shutdown_write();
    summary.relay_bytes_out = responder.join().unwrap_or(0);
    Ok(summary)
}

/// Merge two campaigns' counters (abuse phase + relay phase).
pub fn merge(a: ChaosSummary, b: ChaosSummary) -> ChaosSummary {
    ChaosSummary {
        garbage_lines: a.garbage_lines + b.garbage_lines,
        utf8_lines: a.utf8_lines + b.utf8_lines,
        geometry_bad_lines: a.geometry_bad_lines + b.geometry_bad_lines,
        oversized_lines: a.oversized_lines + b.oversized_lines,
        torn_disconnects: a.torn_disconnects + b.torn_disconnects,
        abuse_responses: a.abuse_responses + b.abuse_responses,
        relay_bytes_in: a.relay_bytes_in + b.relay_bytes_in,
        relay_bytes_out: a.relay_bytes_out + b.relay_bytes_out,
        relay_splits: a.relay_splits + b.relay_splits,
        relay_drips: a.relay_drips + b.relay_drips,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn framer_is_deterministic_per_seed_and_stream() {
        let cfg = ChaosConfig::default();
        let plan = |stream: u64| {
            let mut f = Framer::new(&cfg, stream);
            (0..200).map(|_| f.next_split(4096)).collect::<Vec<_>>()
        };
        assert_eq!(plan(1), plan(1), "same seed+stream must replay");
        assert_ne!(plan(1), plan(2), "streams must tear differently");
        for (take, _) in plan(1) {
            assert!((1..=cfg.max_split).contains(&take));
        }
    }

    #[test]
    fn torn_writes_preserve_content_exactly() {
        let cfg = ChaosConfig {
            drip_every: 0, // keep the test fast
            max_split: 7,
            ..ChaosConfig::default()
        };
        let mut framer = Framer::new(&cfg, 3);
        let payload: Vec<u8> = (0..10_000u32).flat_map(|i| i.to_le_bytes()).collect();
        let mut out = Vec::new();
        let (splits, _) = write_torn(&mut out, &mut framer, &payload).unwrap();
        assert_eq!(out, payload, "relay must be content-pure");
        assert!(
            splits as usize >= payload.len() / cfg.max_split,
            "must actually tear ({splits} splits)"
        );
    }

    #[test]
    fn summary_json_is_valid_and_tagged() {
        let s = ChaosSummary {
            garbage_lines: 3,
            utf8_lines: 2,
            torn_disconnects: 1,
            ..ChaosSummary::default()
        };
        let v: serde_json::Value = serde_json::from_str(&s.to_json()).unwrap();
        assert_eq!(v["schema"].as_str(), Some(NETCHAOS_SCHEMA));
        assert_eq!(v["garbage_lines"].as_u64(), Some(3));
        assert_eq!(s.expected_parse_rejects(), 6);
    }
}
