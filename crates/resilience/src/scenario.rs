//! The adversarial scenario catalog.
//!
//! Each scenario is a self-contained chaos pattern driven against a fresh
//! [`ecc_parity::ParityMemory`]: a mix of fault injection, demand traffic,
//! scrub sweeps, and health-table abuse chosen to stress one specific
//! corner of the paper's error-handling state machine. The harness
//! round-robins over the selected scenarios until the configured access
//! budget is spent.

use serde::{Deserialize, Serialize};

/// One entry of the scenario catalog.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ScenarioKind {
    /// Replay a deterministic [`mem_faults::LifetimeSim`] fault history
    /// (FIT rates inflated so events exist at soak scale), interleaving
    /// demand traffic and scrub sweeps between arrivals.
    LifetimeReplay,
    /// Bursts of transient strikes (particle hits) across random modes and
    /// coordinates, healed by scrub sweeps between bursts.
    TransientStorm,
    /// Two banks of one pair racing their *shared* error counter toward the
    /// migration threshold from both sides.
    BankPairCounterRace,
    /// A second fault arriving in a different channel immediately after a
    /// pair migration completes.
    MidMigrationFault,
    /// Simultaneous permanent faults in multiple channels (the paper's
    /// worst case: parity corrects only one channel at a time).
    MultiChannelSimultaneous,
    /// Corruption of the reserved parity region itself; reconstruction
    /// through a damaged parity must be detected, never silent.
    ParityRegionFault,
    /// Write-heavy traffic against a migrated (degraded) pair with a
    /// persistent whole-bank fault — the stored-ECC-line fast path.
    WriteHeavyDegraded,
    /// Many small faults on one pair driving the counter exactly to, then
    /// past, saturation.
    ThresholdSaturation,
    /// Reads and writes hammering already-retired pages: every access must
    /// be refused cleanly, never served or panicking.
    RetiredPageHammer,
    /// Several distinct permanent faults inside one channel (different
    /// banks and modes) with mixed traffic and scrubbing.
    MultiFaultOneChannel,
}

impl ScenarioKind {
    /// Every scenario, in the order the harness cycles them.
    pub fn all() -> Vec<ScenarioKind> {
        use ScenarioKind::*;
        vec![
            LifetimeReplay,
            TransientStorm,
            BankPairCounterRace,
            MidMigrationFault,
            MultiChannelSimultaneous,
            ParityRegionFault,
            WriteHeavyDegraded,
            ThresholdSaturation,
            RetiredPageHammer,
            MultiFaultOneChannel,
        ]
    }

    /// Stable kebab-case name (CLI `--scenarios` values, ledger records).
    pub fn name(&self) -> &'static str {
        match self {
            ScenarioKind::LifetimeReplay => "lifetime-replay",
            ScenarioKind::TransientStorm => "transient-storm",
            ScenarioKind::BankPairCounterRace => "bank-pair-counter-race",
            ScenarioKind::MidMigrationFault => "mid-migration-fault",
            ScenarioKind::MultiChannelSimultaneous => "multi-channel-simultaneous",
            ScenarioKind::ParityRegionFault => "parity-region-fault",
            ScenarioKind::WriteHeavyDegraded => "write-heavy-degraded",
            ScenarioKind::ThresholdSaturation => "threshold-saturation",
            ScenarioKind::RetiredPageHammer => "retired-page-hammer",
            ScenarioKind::MultiFaultOneChannel => "multi-fault-one-channel",
        }
    }

    /// Look a scenario up by its [`ScenarioKind::name`].
    pub fn by_name(name: &str) -> Option<ScenarioKind> {
        Self::all().into_iter().find(|s| s.name() == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_has_at_least_eight_distinct_scenarios() {
        let all = ScenarioKind::all();
        assert!(all.len() >= 8, "issue requires >= 8 scenarios");
        let names: std::collections::HashSet<_> = all.iter().map(|s| s.name()).collect();
        assert_eq!(names.len(), all.len(), "names are unique");
    }

    #[test]
    fn by_name_roundtrips() {
        for s in ScenarioKind::all() {
            assert_eq!(ScenarioKind::by_name(s.name()), Some(s));
        }
        assert_eq!(ScenarioKind::by_name("nope"), None);
    }
}
