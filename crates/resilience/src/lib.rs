//! # resilience — the end-to-end soak harness
//!
//! Chaos-style verification of the ECC Parity memory system: deterministic
//! fault-history replays plus hand-crafted adversarial scenarios are driven
//! against a live [`ecc_parity::ParityMemory`] (real bytes, real codes, real
//! health table) for every ECC scheme, and **every read is classified**:
//!
//! | Verdict | Meaning |
//! |---|---|
//! | `CleanRead` | no error detected; bytes match the golden shadow copy |
//! | `CorrectedViaParity` | corrected by cross-channel parity reconstruction |
//! | `CorrectedDegraded` | corrected from a migrated pair's stored ECC line |
//! | `DetectedUncorrectable` | refused visibly (machine-check semantics) |
//! | `DetectionAliased` | `Ok` with wrong bytes that are detection-equivalent to the golden data — the scheme's design coverage limit, reported but not a gate failure |
//! | `SilentCorruption` | `Ok` with wrong bytes detection *would* have flagged — **must never occur** |
//!
//! The shadow copy ([`ShadowMemory`]) lives outside the system under test,
//! so the `SilentCorruption` check does not depend on any code's own
//! detection strength. Alongside verdicts, the harness audits post-scrub
//! parity consistency and monotone health-state transitions (counters never
//! decrease, faulty marks never clear, the retired set only grows), and
//! counts scenario panics instead of dying (`faults.soak.panics`).
//!
//! See `ARCHITECTURE.md` ("Resilience verification") for the scenario
//! catalog and the rationale for excluding `lotecc9` from the default
//! zero-SDC gate.

#![warn(missing_docs)]

pub mod harness;
pub mod loadgen;
pub mod netchaos;
pub mod scenario;
pub mod shadow;
pub mod verdict;

pub use harness::{
    scheme_by_name, SoakConfig, SoakEnv, SoakHarness, SoakReport, UnknownScheme, DEFAULT_SCHEMES,
};
pub use scenario::ScenarioKind;
pub use shadow::ShadowMemory;
pub use verdict::{Verdict, VerdictCounts, VerdictRecord};
