//! Read-outcome classification for the soak harness.
//!
//! Every application read the harness issues is classified against a golden
//! shadow copy of the data and the memory's own counters. The one verdict
//! that must never occur is [`Verdict::SilentCorruption`]: the memory
//! returned `Ok` with bytes that differ from what was last written.

use serde::{Deserialize, Serialize};

/// What happened on one classified read.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Verdict {
    /// Detection saw nothing; returned bytes match the shadow copy.
    CleanRead,
    /// An error was detected and corrected by reconstructing the line's
    /// correction bits from the cross-channel ECC parity (Fig 6 step C).
    CorrectedViaParity,
    /// An error was detected and corrected from the stored ECC line of a
    /// migrated (degraded) bank pair (Fig 6 step B).
    CorrectedDegraded,
    /// The memory refused the read: detected but uncorrectable. Data is
    /// lost, but the failure is *visible* — the machine-check path fires.
    DetectedUncorrectable,
    /// The memory returned `Ok` with wrong bytes, but the wrong bytes
    /// produce the *same detection bits* as the correct data: the
    /// corruption aliased through the scheme's detection code, so no
    /// implementation of the scheme could have flagged it. This is the
    /// scheme's published detection-coverage limit (e.g. ~2⁻¹⁶ per line
    /// for LOT-ECC5's ones'-complement checksum16), not a harness or
    /// library defect — reported, ledgered, but it does not fail the run.
    DetectionAliased,
    /// The memory returned `Ok` with wrong bytes *that detection would
    /// have flagged* — an implementation bug by definition. The cardinal
    /// sin; the soak run fails if this count is ever non-zero.
    SilentCorruption,
}

impl Verdict {
    /// Stable lower-snake name used in ledger records and summary JSON.
    pub fn as_str(&self) -> &'static str {
        match self {
            Verdict::CleanRead => "clean_read",
            Verdict::CorrectedViaParity => "corrected_via_parity",
            Verdict::CorrectedDegraded => "corrected_degraded",
            Verdict::DetectedUncorrectable => "detected_uncorrectable",
            Verdict::DetectionAliased => "detection_aliased",
            Verdict::SilentCorruption => "silent_corruption",
        }
    }
}

/// Aggregate verdict tallies for one soak run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct VerdictCounts {
    /// [`Verdict::CleanRead`] occurrences.
    pub clean_reads: u64,
    /// [`Verdict::CorrectedViaParity`] occurrences.
    pub corrected_via_parity: u64,
    /// [`Verdict::CorrectedDegraded`] occurrences.
    pub corrected_degraded: u64,
    /// [`Verdict::DetectedUncorrectable`] occurrences.
    pub detected_uncorrectable: u64,
    /// [`Verdict::DetectionAliased`] occurrences (design-coverage misses;
    /// reported but not a gate failure).
    pub detection_aliased: u64,
    /// [`Verdict::SilentCorruption`] occurrences (must stay zero).
    pub silent_corruption: u64,
    /// Reads refused because the page was retired (not a verdict: the
    /// OS-visible remapping path, exercised for absence of panics).
    pub retired_page_reads: u64,
    /// Writes refused because the page was retired.
    pub retired_page_writes: u64,
    /// Writes machine-checked because the line's parity-group state was
    /// beyond the single-device envelope (visible, like an uncorrectable
    /// read — never silent).
    pub uncorrectable_writes: u64,
    /// Successful writes issued (shadow updated).
    pub writes: u64,
}

impl VerdictCounts {
    /// Record one verdict.
    pub fn record(&mut self, v: Verdict) {
        match v {
            Verdict::CleanRead => self.clean_reads += 1,
            Verdict::CorrectedViaParity => self.corrected_via_parity += 1,
            Verdict::CorrectedDegraded => self.corrected_degraded += 1,
            Verdict::DetectedUncorrectable => self.detected_uncorrectable += 1,
            Verdict::DetectionAliased => self.detection_aliased += 1,
            Verdict::SilentCorruption => self.silent_corruption += 1,
        }
    }

    /// Total classified reads (excluding retired-page refusals).
    pub fn reads(&self) -> u64 {
        self.clean_reads
            + self.corrected_via_parity
            + self.corrected_degraded
            + self.detected_uncorrectable
            + self.detection_aliased
            + self.silent_corruption
    }

    /// Fold another tally into this one.
    pub fn merge(&mut self, other: &VerdictCounts) {
        self.clean_reads += other.clean_reads;
        self.corrected_via_parity += other.corrected_via_parity;
        self.corrected_degraded += other.corrected_degraded;
        self.detected_uncorrectable += other.detected_uncorrectable;
        self.detection_aliased += other.detection_aliased;
        self.silent_corruption += other.silent_corruption;
        self.retired_page_reads += other.retired_page_reads;
        self.retired_page_writes += other.retired_page_writes;
        self.uncorrectable_writes += other.uncorrectable_writes;
        self.writes += other.writes;
    }
}

/// One non-clean read in the JSONL verdict ledger. Clean reads are
/// summarized in [`VerdictCounts`] only — a million-access soak would
/// otherwise produce a million-line ledger of no diagnostic value.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct VerdictRecord {
    /// Scenario that issued the read.
    pub scenario: String,
    /// Access sequence number within the scenario run.
    pub access: u64,
    /// Channel read.
    pub channel: usize,
    /// Bank within the channel.
    pub bank: usize,
    /// Row within the bank.
    pub row: u32,
    /// Line within the row.
    pub line: u32,
    /// The classification.
    pub verdict: &'static str,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_record_and_merge() {
        let mut a = VerdictCounts::default();
        a.record(Verdict::CleanRead);
        a.record(Verdict::CorrectedViaParity);
        a.record(Verdict::DetectedUncorrectable);
        let mut b = VerdictCounts::default();
        b.record(Verdict::CorrectedDegraded);
        b.writes = 3;
        a.merge(&b);
        assert_eq!(a.reads(), 4);
        assert_eq!(a.clean_reads, 1);
        assert_eq!(a.corrected_degraded, 1);
        assert_eq!(a.writes, 3);
        assert_eq!(a.silent_corruption, 0);
    }

    #[test]
    fn verdict_names_are_stable() {
        assert_eq!(Verdict::SilentCorruption.as_str(), "silent_corruption");
        assert_eq!(Verdict::CleanRead.as_str(), "clean_read");
    }
}
