//! Golden shadow copy of the memory contents.
//!
//! The shadow is a plain byte mirror written on every successful
//! application write. It is *outside* the system under test — no codes, no
//! parity, no fault overlays — so comparing a read's returned bytes against
//! it detects silent corruption with certainty, independent of any ECC
//! scheme's own detection strength.

use ecc_parity::LineLoc;

/// Byte-exact mirror of everything the harness has written.
#[derive(Debug, Clone)]
pub struct ShadowMemory {
    /// `[channel][line-index] -> last written bytes` (None = never written).
    lines: Vec<Vec<Option<Vec<u8>>>>,
    data_rows: u32,
    lines_per_row: u32,
}

impl ShadowMemory {
    /// An empty shadow for the given shape.
    pub fn new(channels: usize, banks: usize, data_rows: u32, lines_per_row: u32) -> Self {
        let per_channel = banks as u64 * data_rows as u64 * lines_per_row as u64;
        Self {
            lines: vec![vec![None; per_channel as usize]; channels],
            data_rows,
            lines_per_row,
        }
    }

    fn idx(&self, loc: &LineLoc) -> usize {
        ((loc.bank as u64 * self.data_rows as u64 + loc.row as u64) * self.lines_per_row as u64
            + loc.line as u64) as usize
    }

    /// Record a successful write.
    pub fn set(&mut self, channel: usize, loc: &LineLoc, data: &[u8]) {
        let i = self.idx(loc);
        self.lines[channel][i] = Some(data.to_vec());
    }

    /// The golden bytes for a location, if it was ever written.
    pub fn get(&self, channel: usize, loc: &LineLoc) -> Option<&[u8]> {
        let i = self.idx(loc);
        self.lines[channel][i].as_deref()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_then_get_roundtrips_per_location() {
        let mut s = ShadowMemory::new(2, 2, 4, 4);
        let a = LineLoc {
            bank: 0,
            row: 1,
            line: 2,
        };
        let b = LineLoc {
            bank: 1,
            row: 3,
            line: 0,
        };
        assert!(s.get(0, &a).is_none());
        s.set(0, &a, &[1, 2, 3]);
        s.set(1, &b, &[9; 4]);
        assert_eq!(s.get(0, &a), Some(&[1u8, 2, 3][..]));
        assert_eq!(s.get(1, &b), Some(&[9u8; 4][..]));
        assert!(s.get(1, &a).is_none(), "channels are independent");
        s.set(0, &a, &[7]);
        assert_eq!(s.get(0, &a), Some(&[7u8][..]), "overwrite wins");
    }
}
