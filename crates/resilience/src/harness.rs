//! The soak harness: scheme registry, classified-access environment,
//! scenario drivers, and the top-level [`SoakHarness`] runner.

use crate::scenario::ScenarioKind;
use crate::shadow::ShadowMemory;
use crate::verdict::{Verdict, VerdictCounts, VerdictRecord};
use ecc_codes::raim::RaimParityCode;
use ecc_codes::{Chipkill18, Chipkill36, ChipkillDouble, CorrectionSplit, LotEcc, LotEcc5Rs, Raim};
use ecc_parity::{GroupId, LineLoc, MemError, ParityConfig, ParityMemory};
use mem_faults::{ChipLocation, FaultInstance, FaultMode, FitTable, LifetimeSim, SystemGeometry};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::collections::HashSet;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Schemes the soak runs by default.
///
/// **`lotecc9` is deliberately absent.** Its per-chip detection is an 8-bit
/// ones'-complement checksum, so a whole corrupted chip segment aliases to
/// "clean" with probability ~1/255 *per line* — at soak scale (millions of
/// corrupted-line draws) silent corruption is statistically guaranteed.
/// That is a genuine property of the code (the paper pairs ECC Parity with
/// stronger detection tiers), not a harness defect, so the soak documents
/// it here and excludes the scheme from the zero-SDC gate. It remains
/// constructible via [`scheme_by_name`] for targeted experiments.
pub const DEFAULT_SCHEMES: &[&str] = &[
    "lotecc5",
    "lotecc5rs",
    "chipkill18",
    "chipkill36",
    "chipkill-double",
    "raim",
    "raimparity",
];

/// Error from [`scheme_by_name`]: no such scheme.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnknownScheme {
    /// The name that failed to resolve.
    pub name: String,
}

impl std::fmt::Display for UnknownScheme {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "unknown scheme `{}`; valid names: {} (and `lotecc9`, excluded from defaults for its weak 8-bit detection)",
            self.name,
            DEFAULT_SCHEMES.join(", ")
        )
    }
}

impl std::error::Error for UnknownScheme {}

/// Construct a boxed ECC scheme by soak-registry name.
pub fn scheme_by_name(name: &str) -> Result<Box<dyn CorrectionSplit>, UnknownScheme> {
    Ok(match name {
        "lotecc5" => Box::new(LotEcc::five()),
        "lotecc9" => Box::new(LotEcc::nine()),
        "lotecc5rs" => Box::new(LotEcc5Rs::new()),
        "chipkill18" => Box::new(Chipkill18::new()),
        "chipkill36" => Box::new(Chipkill36::new()),
        "chipkill-double" => Box::new(ChipkillDouble::new()),
        "raim" => Box::new(Raim::new()),
        "raimparity" => Box::new(RaimParityCode::new()),
        _ => {
            return Err(UnknownScheme {
                name: name.to_string(),
            })
        }
    })
}

/// Knobs of one soak run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SoakConfig {
    /// Master seed; every scenario invocation derives its own sub-seed.
    pub seed: u64,
    /// Minimum accesses (reads + writes) to issue per scheme.
    pub accesses: u64,
    /// Channels of the memory under test.
    pub channels: usize,
    /// Banks per channel (even).
    pub banks_per_channel: usize,
    /// Data rows per bank.
    pub data_rows: u32,
    /// Lines per row.
    pub lines_per_row: u32,
    /// Bank-pair error-counter threshold.
    pub threshold: u8,
    /// Schemes to soak (registry names).
    pub schemes: Vec<String>,
    /// Scenarios to cycle through.
    pub scenarios: Vec<ScenarioKind>,
    /// Cap on retained non-clean ledger records per scheme.
    pub ledger_limit: usize,
}

impl Default for SoakConfig {
    fn default() -> Self {
        SoakConfig {
            seed: 1,
            accesses: 100_000,
            channels: 4,
            banks_per_channel: 4,
            data_rows: 24,
            lines_per_row: 8,
            threshold: 4,
            schemes: DEFAULT_SCHEMES.iter().map(|s| s.to_string()).collect(),
            scenarios: ScenarioKind::all(),
            ledger_limit: 10_000,
        }
    }
}

impl SoakConfig {
    fn parity_config(&self) -> ParityConfig {
        ParityConfig {
            channels: self.channels,
            banks_per_channel: self.banks_per_channel,
            data_rows: self.data_rows,
            lines_per_row: self.lines_per_row,
            threshold: self.threshold,
        }
    }

    /// The config's full identity as a canonical string (its JSON
    /// serialization: stable field order, every knob that affects results).
    /// Checkpoint/resume machinery keys soak journals on this, so a resumed
    /// run against a *different* configuration is rejected rather than
    /// silently mixing results.
    pub fn identity_key(&self) -> String {
        serde_json::to_string(self).unwrap_or_else(|e| format!("unserializable-config:{e}"))
    }
}

/// Monotonicity monitor over [`ecc_parity::HealthTable`] snapshots: error
/// counters never decrease, faulty marks never clear, the retired-page set
/// only grows.
#[derive(Debug)]
struct HealthMonitor {
    counters: Vec<u8>,
    faulty: Vec<bool>,
    retired: HashSet<(usize, usize, u32)>,
    violations: u64,
}

impl HealthMonitor {
    fn new(mem: &ParityMemory<Box<dyn CorrectionSplit>>) -> Self {
        HealthMonitor {
            counters: mem.health().counters_snapshot(),
            faulty: mem.health().faulty_snapshot(),
            retired: mem.health().retired_pages().into_iter().collect(),
            violations: 0,
        }
    }

    fn check(&mut self, mem: &ParityMemory<Box<dyn CorrectionSplit>>) {
        let counters = mem.health().counters_snapshot();
        let faulty = mem.health().faulty_snapshot();
        let retired: HashSet<(usize, usize, u32)> =
            mem.health().retired_pages().into_iter().collect();
        if counters
            .iter()
            .zip(&self.counters)
            .any(|(now, before)| now < before)
        {
            self.violations += 1;
        }
        if faulty
            .iter()
            .zip(&self.faulty)
            .any(|(now, before)| *before && !*now)
        {
            self.violations += 1;
        }
        if !self.retired.is_subset(&retired) {
            self.violations += 1;
        }
        self.counters = counters;
        self.faulty = faulty;
        self.retired = retired;
    }
}

/// How often (in accesses) the health monitor re-snapshots during traffic.
const MONITOR_STRIDE: u64 = 512;

/// One live system under chaos: the memory, its golden shadow, and the
/// classification/monitoring state.
pub struct SoakEnv {
    mem: ParityMemory<Box<dyn CorrectionSplit>>,
    shadow: ShadowMemory,
    rng: StdRng,
    counts: VerdictCounts,
    ledger: Vec<VerdictRecord>,
    ledger_limit: usize,
    accesses: u64,
    monitor: Option<HealthMonitor>,
    audit_failures: u64,
    scenario: &'static str,
    line_bytes: usize,
    shape: ParityConfig,
}

impl SoakEnv {
    /// A fresh environment for one scenario invocation.
    pub fn new(
        scheme: Box<dyn CorrectionSplit>,
        cfg: &SoakConfig,
        seed: u64,
        scenario: &'static str,
    ) -> Self {
        let shape = cfg.parity_config();
        let line_bytes = scheme.data_bytes();
        let mem = ParityMemory::new(scheme, shape);
        let monitor = Some(HealthMonitor::new(&mem));
        SoakEnv {
            mem,
            shadow: ShadowMemory::new(
                shape.channels,
                shape.banks_per_channel,
                shape.data_rows,
                shape.lines_per_row,
            ),
            rng: StdRng::seed_from_u64(seed),
            counts: VerdictCounts::default(),
            ledger: Vec::new(),
            ledger_limit: cfg.ledger_limit,
            accesses: 0,
            monitor,
            audit_failures: 0,
            scenario,
            line_bytes,
            shape,
        }
    }

    /// Accesses issued so far (reads + writes, including refused ones).
    pub fn accesses(&self) -> u64 {
        self.accesses
    }

    fn random_line_bytes(&mut self) -> Vec<u8> {
        (0..self.line_bytes).map(|_| self.rng.gen()).collect()
    }

    fn random_loc(&mut self) -> LineLoc {
        LineLoc {
            bank: self.rng.gen_range(0..self.shape.banks_per_channel),
            row: self.rng.gen_range(0..self.shape.data_rows),
            line: self.rng.gen_range(0..self.shape.lines_per_row),
        }
    }

    fn random_channel(&mut self) -> usize {
        self.rng.gen_range(0..self.shape.channels)
    }

    /// A fault with coordinates clamped into this memory's shape.
    fn random_fault(&mut self, channel: usize, modes: &[FaultMode]) -> FaultInstance {
        let mode = modes[self.rng.gen_range(0..modes.len())];
        FaultInstance {
            chip: ChipLocation {
                channel,
                rank: 0,
                chip: self.rng.gen_range(0..self.mem.ecc().chips_per_rank()),
            },
            mode,
            bank: self.rng.gen_range(0..self.shape.banks_per_channel) as u32,
            row: self.rng.gen_range(0..self.shape.data_rows),
            line: self.rng.gen_range(0..self.shape.lines_per_row),
            pattern_seed: self.rng.gen(),
        }
    }

    /// Write every line of every channel so the shadow covers the whole
    /// address space before chaos begins.
    fn fill(&mut self) {
        // One batched write per channel: the data stream comes off the rng
        // in exactly the per-line order (writes consume no randomness), and
        // `checked_write_lines` replays the per-item bookkeeping, so the
        // fill is observationally identical to line-at-a-time writes while
        // the codec work runs through the batched entry points.
        for channel in 0..self.shape.channels {
            let mut batch = Vec::with_capacity(self.shape.lines_per_channel() as usize);
            for bank in 0..self.shape.banks_per_channel {
                for row in 0..self.shape.data_rows {
                    for line in 0..self.shape.lines_per_row {
                        let loc = LineLoc { bank, row, line };
                        let data = self.random_line_bytes();
                        batch.push((loc, data));
                    }
                }
            }
            self.checked_write_lines(channel, &batch);
        }
    }

    /// Issue a write; on success, mirror it into the shadow.
    fn checked_write(&mut self, channel: usize, loc: LineLoc, data: &[u8]) {
        self.accesses += 1;
        match self.mem.write(channel, loc, data) {
            Ok(()) => {
                self.shadow.set(channel, &loc, data);
                self.counts.writes += 1;
            }
            Err(MemError::RetiredPage) => self.counts.retired_page_writes += 1,
            // A write into a parity group whose state is beyond the
            // single-device envelope machine-checks visibly (and retires
            // the group) rather than drifting the parity.
            Err(MemError::Uncorrectable) => self.counts.uncorrectable_writes += 1,
            Err(e) => panic!("soak write to in-range location failed: {e}"),
        }
        self.maybe_monitor();
    }

    /// Batched counterpart of [`Self::checked_write`]: one `write_lines`
    /// call to a single channel, then the identical per-item accounting
    /// (access counter, shadow mirror, outcome counts, monitor cadence).
    fn checked_write_lines(&mut self, channel: usize, writes: &[(LineLoc, Vec<u8>)]) {
        let batch: Vec<(usize, LineLoc, &[u8])> = writes
            .iter()
            .map(|(loc, data)| (channel, *loc, data.as_slice()))
            .collect();
        let results = self.mem.write_lines(&batch);
        for ((loc, data), res) in writes.iter().zip(results) {
            self.accesses += 1;
            match res {
                Ok(()) => {
                    self.shadow.set(channel, loc, data);
                    self.counts.writes += 1;
                }
                Err(MemError::RetiredPage) => self.counts.retired_page_writes += 1,
                Err(MemError::Uncorrectable) => self.counts.uncorrectable_writes += 1,
                Err(e) => panic!("soak write to in-range location failed: {e}"),
            }
            self.maybe_monitor();
        }
    }

    /// Issue a read and classify the outcome against the shadow copy and
    /// the memory's own correction counters.
    fn verified_read(&mut self, channel: usize, loc: LineLoc) -> Option<Verdict> {
        self.accesses += 1;
        let pr_before = self.mem.stats().parity_reconstructions;
        let el_before = self.mem.stats().ecc_line_corrections;
        let verdict = match self.mem.read(channel, loc) {
            Ok(got) => {
                let golden = self
                    .shadow
                    .get(channel, &loc)
                    .expect("soak reads only written locations");
                if got != golden {
                    // Wrong bytes under `Ok` — but not every such read is an
                    // implementation bug. If the returned bytes produce the
                    // *same detection bits* as the golden data, no amount of
                    // correct engineering could have flagged them: the
                    // corruption aliased through the scheme's detection code
                    // (e.g. LOT-ECC5's ones'-complement checksum16 passes a
                    // whole-segment corruption with probability ~2^-16 per
                    // line — its published detection coverage). Algebraic RS
                    // detection never aliases on ≤1 corrupted chip, so for
                    // chipkill-class schemes every mismatch stays a
                    // SilentCorruption.
                    let ecc = self.mem.ecc();
                    let verdict = if ecc.detection_of(&got) == ecc.detection_of(golden) {
                        Verdict::DetectionAliased
                    } else {
                        Verdict::SilentCorruption
                    };
                    if std::env::var("SOAK_DEBUG").is_ok() {
                        let diff: Vec<usize> = got
                            .iter()
                            .zip(golden.iter())
                            .enumerate()
                            .filter(|(_, (a, b))| a != b)
                            .map(|(i, _)| i)
                            .collect();
                        eprintln!(
                            "{} ch{channel} bank{} row{} line{} access{} faulty={} pr_delta={} el_delta={} diff_bytes={:?}\n  got    {:02x?}\n  golden {:02x?}\n  faults={:?}",
                            verdict.as_str(),
                            loc.bank,
                            loc.row,
                            loc.line,
                            self.accesses,
                            self.mem.health().is_faulty(channel, loc.bank),
                            self.mem.stats().parity_reconstructions - pr_before,
                            self.mem.stats().ecc_line_corrections - el_before,
                            diff,
                            got,
                            golden,
                            self.mem.faults(),
                        );
                    }
                    verdict
                } else if self.mem.stats().parity_reconstructions > pr_before {
                    Verdict::CorrectedViaParity
                } else if self.mem.stats().ecc_line_corrections > el_before {
                    Verdict::CorrectedDegraded
                } else {
                    Verdict::CleanRead
                }
            }
            Err(MemError::Uncorrectable) => Verdict::DetectedUncorrectable,
            Err(MemError::RetiredPage) => {
                self.counts.retired_page_reads += 1;
                self.maybe_monitor();
                return None;
            }
            Err(e) => panic!("soak read of in-range location failed: {e}"),
        };
        self.counts.record(verdict);
        // Silent corruptions and detection aliases bypass the cap: they are
        // the whole point of the ledger, and a flood of benign
        // corrected-read records must never crowd out the evidence.
        let retain = verdict == Verdict::SilentCorruption
            || verdict == Verdict::DetectionAliased
            || (verdict != Verdict::CleanRead && self.ledger.len() < self.ledger_limit);
        if retain {
            self.ledger.push(VerdictRecord {
                scenario: self.scenario.to_string(),
                access: self.accesses,
                channel,
                bank: loc.bank,
                row: loc.row,
                line: loc.line,
                verdict: verdict.as_str(),
            });
        }
        self.maybe_monitor();
        Some(verdict)
    }

    fn maybe_monitor(&mut self) {
        if self.accesses.is_multiple_of(MONITOR_STRIDE) {
            self.monitor_now();
        }
    }

    fn monitor_now(&mut self) {
        if let Some(mut m) = self.monitor.take() {
            m.check(&self.mem);
            self.monitor = Some(m);
        }
    }

    /// A scrub sweep followed by the parity-consistency audit (valid only
    /// post-scrub: pending transient damage legitimately desynchronizes
    /// stored parities from a recomputation over the corrupted store).
    fn scrub_and_audit(&mut self) {
        let _ = self.mem.scrub();
        if self.mem.audit_parity_consistency() != 0 {
            self.audit_failures += 1;
        }
        self.monitor_now();
    }

    /// `n` random accesses, roughly 2:1 read:write.
    fn random_traffic(&mut self, n: u64) {
        for _ in 0..n {
            let channel = self.random_channel();
            let loc = self.random_loc();
            if self.rng.gen_range(0..3) == 0 {
                let data = self.random_line_bytes();
                self.checked_write(channel, loc, &data);
            } else {
                self.verified_read(channel, loc);
            }
        }
    }
}

/// Outcome of soaking one scheme.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SoakReport {
    /// Registry name of the scheme.
    pub scheme: String,
    /// Total accesses issued.
    pub accesses: u64,
    /// Aggregate verdicts.
    pub counts: VerdictCounts,
    /// Scenario invocations completed, as `(name, runs)`.
    pub scenarios_run: Vec<(String, u64)>,
    /// Scenario invocations that panicked (their partial counts are lost).
    pub panics: u64,
    /// Health-table monotonicity violations observed.
    pub monotonicity_violations: u64,
    /// Post-scrub parity-audit failures observed.
    pub audit_failures: u64,
    /// Non-clean read records (capped at the configured ledger limit).
    pub ledger: Vec<VerdictRecord>,
}

impl SoakReport {
    /// The zero-SDC gate: no silent corruption, no panics, no health
    /// regressions, no parity drift.
    pub fn is_clean(&self) -> bool {
        self.counts.silent_corruption == 0
            && self.panics == 0
            && self.monotonicity_violations == 0
            && self.audit_failures == 0
    }
}

/// Top-level runner: cycles the scenario catalog against every configured
/// scheme until each has absorbed the configured access budget.
pub struct SoakHarness {
    cfg: SoakConfig,
}

impl SoakHarness {
    /// A harness over the given configuration.
    pub fn new(cfg: SoakConfig) -> Self {
        SoakHarness { cfg }
    }

    /// The configuration in use.
    pub fn config(&self) -> &SoakConfig {
        &self.cfg
    }

    /// Soak a single scheme.
    pub fn run_scheme(&self, name: &str) -> Result<SoakReport, UnknownScheme> {
        scheme_by_name(name)?; // validate the name up front
        let scenarios = if self.cfg.scenarios.is_empty() {
            ScenarioKind::all()
        } else {
            self.cfg.scenarios.clone()
        };
        // Per-invocation budget: enough rounds that every scenario runs at
        // least once even for tiny access targets, bounded so big targets
        // still revisit each scenario with fresh sub-seeds.
        let budget = (self.cfg.accesses / (4 * scenarios.len() as u64)).clamp(4_096, 50_000);
        let mut report = SoakReport {
            scheme: name.to_string(),
            accesses: 0,
            counts: VerdictCounts::default(),
            scenarios_run: scenarios
                .iter()
                .map(|s| (s.name().to_string(), 0))
                .collect(),
            panics: 0,
            monotonicity_violations: 0,
            audit_failures: 0,
            ledger: Vec::new(),
        };
        let mut round = 0u64;
        'soak: loop {
            for (i, &kind) in scenarios.iter().enumerate() {
                if report.accesses >= self.cfg.accesses {
                    break 'soak;
                }
                let sub_seed = derive_seed(self.cfg.seed, name, kind.name(), round);
                let cfg = &self.cfg;
                let outcome = catch_unwind(AssertUnwindSafe(|| {
                    let scheme = scheme_by_name(name).expect("validated above");
                    let mut env = SoakEnv::new(scheme, cfg, sub_seed, kind.name());
                    run_scenario(&mut env, kind, budget);
                    env.monitor_now();
                    env
                }));
                match outcome {
                    Ok(env) => {
                        report.accesses += env.accesses;
                        report.counts.merge(&env.counts);
                        report.audit_failures += env.audit_failures;
                        report.monotonicity_violations +=
                            env.monitor.as_ref().map_or(0, |m| m.violations);
                        report.scenarios_run[i].1 += 1;
                        // Cap benign records, but never drop silent-corruption
                        // or detection-alias evidence (mirrors the per-env
                        // retention rule).
                        let mut room = self.cfg.ledger_limit.saturating_sub(report.ledger.len());
                        for rec in env.ledger {
                            if rec.verdict == Verdict::SilentCorruption.as_str()
                                || rec.verdict == Verdict::DetectionAliased.as_str()
                            {
                                report.ledger.push(rec);
                            } else if room > 0 {
                                room -= 1;
                                report.ledger.push(rec);
                            }
                        }
                    }
                    Err(_) => {
                        report.panics += 1;
                        obs::counter!("faults.soak.panics").inc();
                    }
                }
            }
            round += 1;
        }
        Ok(report)
    }

    /// Soak every configured scheme, in order.
    pub fn run_all(&self) -> Result<Vec<SoakReport>, UnknownScheme> {
        self.cfg
            .schemes
            .iter()
            .map(|name| self.run_scheme(name))
            .collect()
    }
}

fn derive_seed(seed: u64, scheme: &str, scenario: &str, round: u64) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64 ^ seed;
    for b in scheme.bytes().chain(scenario.bytes()) {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h ^ round.wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// Drive one scenario against a fresh environment until `budget` accesses.
fn run_scenario(env: &mut SoakEnv, kind: ScenarioKind, budget: u64) {
    match kind {
        ScenarioKind::LifetimeReplay => lifetime_replay(env, budget),
        ScenarioKind::TransientStorm => transient_storm(env, budget),
        ScenarioKind::BankPairCounterRace => bank_pair_counter_race(env, budget),
        ScenarioKind::MidMigrationFault => mid_migration_fault(env, budget),
        ScenarioKind::MultiChannelSimultaneous => multi_channel_simultaneous(env, budget),
        ScenarioKind::ParityRegionFault => parity_region_fault(env, budget),
        ScenarioKind::WriteHeavyDegraded => write_heavy_degraded(env, budget),
        ScenarioKind::ThresholdSaturation => threshold_saturation(env, budget),
        ScenarioKind::RetiredPageHammer => retired_page_hammer(env, budget),
        ScenarioKind::MultiFaultOneChannel => multi_fault_one_channel(env, budget),
    }
}

/// Replay a sampled device-fault lifetime, with demand traffic and scrub
/// sweeps between arrivals. FIT rates are inflated so histories actually
/// contain events at soak scale; coordinates are clamped into the shape.
fn lifetime_replay(env: &mut SoakEnv, budget: u64) {
    let sim = LifetimeSim::new(
        SystemGeometry::paper_reliability(),
        FitTable::DDR3_AVERAGE.scaled_to(40_000.0),
    );
    let mut events = sim.sample(&mut env.rng);
    events.truncate(6);
    env.fill();
    // At most one device fault per channel: clamping coordinates into the
    // small soak shape would otherwise stack independent faults onto the
    // same bank via *different* chips, putting two corrupted symbols into
    // one line. That exceeds every scheme's single-device design envelope —
    // the paper's reliability analysis counts such overlaps as system-level
    // failures, not as loads the code must correct — so the zero-SDC gate
    // replays the in-envelope model.
    let mut struck_channels = HashSet::new();
    let slices = events.len() as u64 + 1;
    for ev in events {
        let mut f = ev.fault;
        f.chip.channel %= env.shape.channels;
        f.chip.chip %= env.mem.ecc().chips_per_rank();
        f.chip.rank = 0;
        f.bank %= env.shape.banks_per_channel as u32;
        f.row %= env.shape.data_rows;
        f.line %= env.shape.lines_per_row;
        if !struck_channels.insert(f.chip.channel) {
            env.random_traffic(budget / slices);
            env.scrub_and_audit();
            continue;
        }
        env.mem
            .try_inject_fault(f)
            .expect("clamped fault is in range");
        env.random_traffic(budget / slices / 2);
        env.scrub_and_audit();
        env.random_traffic(budget / slices / 2);
    }
    while env.accesses < budget {
        env.random_traffic(256.min(budget));
    }
    env.scrub_and_audit();
}

/// Bursts of transient strikes healed by scrubbing.
fn transient_storm(env: &mut SoakEnv, budget: u64) {
    env.fill();
    let modes = [
        FaultMode::SingleBit,
        FaultMode::SingleWord,
        FaultMode::SingleRow,
        FaultMode::SingleColumn,
    ];
    while env.accesses < budget {
        let strikes = env.rng.gen_range(1..4);
        let mut struck = Vec::new();
        // Distinct (channel, bank) per strike within a burst: two strikes
        // overlapping one bank via different chips would corrupt two
        // symbols of a single line — outside every scheme's single-device
        // correction envelope, so outside the zero-SDC gate's fault model.
        let mut hit: HashSet<(usize, usize)> = HashSet::new();
        for _ in 0..strikes {
            let channel = env.random_channel();
            let f = env.random_fault(channel, &modes);
            if !hit.insert((channel, f.bank as usize)) {
                continue;
            }
            env.mem.try_inject_transient(f).expect("in-range transient");
            struck.push((
                channel,
                LineLoc {
                    bank: f.bank as usize,
                    row: f.row,
                    line: f.line,
                },
            ));
        }
        // Demand reads race the scrubber to the damage: some hit the struck
        // lines (parity correction), the rest are background traffic.
        for (channel, loc) in struck {
            env.verified_read(channel, loc);
        }
        env.random_traffic(400);
        env.scrub_and_audit();
        // Transients are gone after the sweep; faults list stays empty, so
        // post-scrub traffic must be clean.
        env.random_traffic(100);
    }
}

/// Race both banks of one pair toward their shared error counter.
fn bank_pair_counter_race(env: &mut SoakEnv, budget: u64) {
    env.fill();
    let channel = env.random_channel();
    let pair = env.rng.gen_range(0..env.shape.banks_per_channel / 2);
    let banks = [2 * pair, 2 * pair + 1];
    let mut side = 0usize;
    let mut row = 0u32;
    while env.accesses < budget {
        if !env.mem.health().is_faulty(channel, banks[0]) {
            // Alternate the error source between the two banks of the pair.
            let f = FaultInstance {
                chip: ChipLocation {
                    channel,
                    rank: 0,
                    chip: env.rng.gen_range(0..env.mem.ecc().chips_per_rank()),
                },
                mode: FaultMode::SingleWord,
                bank: banks[side] as u32,
                row: row % env.shape.data_rows,
                line: env.rng.gen_range(0..env.shape.lines_per_row),
                pattern_seed: env.rng.gen(),
            };
            env.mem.try_inject_fault(f).expect("in-range fault");
            env.verified_read(
                channel,
                LineLoc {
                    bank: f.bank as usize,
                    row: f.row,
                    line: f.line,
                },
            );
            side ^= 1;
            row += 1;
        }
        env.random_traffic(300);
        env.scrub_and_audit();
    }
}

/// Migrate a pair, then hit a different channel immediately afterwards.
fn mid_migration_fault(env: &mut SoakEnv, budget: u64) {
    env.fill();
    let channel = env.random_channel();
    let bank = env.rng.gen_range(0..env.shape.banks_per_channel);
    let f = env.random_fault(channel, &[FaultMode::SingleBank]);
    let f = FaultInstance {
        bank: bank as u32,
        ..f
    };
    env.mem.try_inject_fault(f).expect("in-range fault");
    // Scrub sweeps tick the counter to the threshold and migrate.
    while !env.mem.health().is_faulty(channel, bank) && env.accesses < budget {
        env.scrub_and_audit();
        env.random_traffic(100);
    }
    // The adversarial beat: a second channel faults right as migration
    // lands, while the first pair's parity contributions were just struck.
    let other = (channel + 1) % env.shape.channels;
    let g = env.random_fault(other, &[FaultMode::SingleRow, FaultMode::SingleWord]);
    env.mem.try_inject_fault(g).expect("in-range fault");
    env.verified_read(
        other,
        LineLoc {
            bank: g.bank as usize,
            row: g.row,
            line: g.line,
        },
    );
    while env.accesses < budget {
        env.random_traffic(400);
        env.scrub_and_audit();
    }
}

/// Permanent faults in several channels at once, including a guaranteed
/// same-group collision (the configuration parity cannot correct).
fn multi_channel_simultaneous(env: &mut SoakEnv, budget: u64) {
    env.fill();
    // A fault somewhere, plus a second fault placed exactly on a parity
    // sibling of the first: reconstruction must fail *detectably*.
    let c0 = env.random_channel();
    let loc0 = env.random_loc();
    let group = env.mem.layout().group_of(c0, &loc0);
    let members = env.mem.layout().members(&group);
    let &(c1, loc1) = members
        .iter()
        .find(|(mc, _)| *mc != c0)
        .expect("groups span multiple channels");
    for (c, loc) in [(c0, loc0), (c1, loc1)] {
        let f = FaultInstance {
            chip: ChipLocation {
                channel: c,
                rank: 0,
                chip: env.rng.gen_range(0..env.mem.ecc().chips_per_rank()),
            },
            mode: FaultMode::SingleWord,
            bank: loc.bank as u32,
            row: loc.row,
            line: loc.line,
            pattern_seed: env.rng.gen(),
        };
        env.mem.try_inject_fault(f).expect("in-range fault");
    }
    env.verified_read(c0, loc0); // both siblings dirty: detected, not silent
                                 // And an independent fault in a third channel (distinct from both
                                 // struck channels: stacking it onto c0 or c1 would put two chips'
                                 // damage into one line, outside the single-device fault envelope),
                                 // still correctable through its own group.
    if let Some(c2) = (0..env.shape.channels).find(|&c| c != c0 && c != c1) {
        let f = env.random_fault(c2, &[FaultMode::SingleRow]);
        env.mem.try_inject_fault(f).expect("in-range fault");
    }
    while env.accesses < budget {
        env.random_traffic(400);
        env.scrub_and_audit();
    }
}

/// Corrupt the reserved parity region itself and prove the damage is never
/// silently consumed.
fn parity_region_fault(env: &mut SoakEnv, budget: u64) {
    env.fill();
    // Member strikes are *permanent* and accumulate across rounds, so they
    // need the same envelope dedup as every other scenario: a second chip
    // faulting a bank that is already carrying a fault can corrupt two
    // symbols of one line — outside the single-device correction envelope.
    let mut struck: HashSet<(usize, usize)> = HashSet::new();
    while env.accesses < budget {
        let mut corrupted: Vec<GroupId> = Vec::new();
        for _ in 0..3 {
            let channel = env.random_channel();
            let loc = env.random_loc();
            if env.mem.health().is_faulty(channel, loc.bank) {
                continue;
            }
            let g = env.mem.layout().group_of(channel, &loc);
            let seed = env.rng.gen();
            env.mem.corrupt_parity(g, seed);
            corrupted.push(g);
            // A clean member read never consults the parity: still clean.
            env.verified_read(channel, loc);
        }
        // Fault a member of one corrupted group: reconstruction through the
        // damaged parity must fail the codec's verification.
        if let Some(&g) = corrupted.first() {
            let members = env.mem.layout().members(&g);
            if let Some(&(mc, mloc)) = members.first() {
                if struck.insert((mc, mloc.bank)) {
                    let f = FaultInstance {
                        chip: ChipLocation {
                            channel: mc,
                            rank: 0,
                            chip: env.rng.gen_range(0..env.mem.ecc().chips_per_rank()),
                        },
                        mode: FaultMode::SingleWord,
                        bank: mloc.bank as u32,
                        row: mloc.row,
                        line: mloc.line,
                        pattern_seed: env.rng.gen(),
                    };
                    env.mem.try_inject_fault(f).expect("in-range fault");
                }
                env.verified_read(mc, mloc);
            }
        }
        // Scrub-style repair: rebuild every corrupted parity, then audit.
        for g in corrupted {
            env.mem.rebuild_parity(g);
        }
        env.random_traffic(300);
        env.scrub_and_audit();
    }
}

/// Saturate the stored-ECC-line path of a migrated pair under writes.
fn write_heavy_degraded(env: &mut SoakEnv, budget: u64) {
    env.fill();
    let channel = env.random_channel();
    let pair = env.rng.gen_range(0..env.shape.banks_per_channel / 2);
    env.mem.migrate_pair(channel, pair);
    // A persistent whole-bank fault on the migrated pair: every read is
    // detect-dirty and corrects from the stored ECC line, indefinitely.
    let f = FaultInstance {
        chip: ChipLocation {
            channel,
            rank: 0,
            chip: env.rng.gen_range(0..env.mem.ecc().chips_per_rank()),
        },
        mode: FaultMode::SingleBank,
        bank: (2 * pair) as u32,
        row: 0,
        line: 0,
        pattern_seed: env.rng.gen(),
    };
    env.mem.try_inject_fault(f).expect("in-range fault");
    while env.accesses < budget {
        for _ in 0..200 {
            let loc = LineLoc {
                bank: 2 * pair + env.rng.gen_range(0..2usize),
                row: env.rng.gen_range(0..env.shape.data_rows),
                line: env.rng.gen_range(0..env.shape.lines_per_row),
            };
            let data = env.random_line_bytes();
            env.checked_write(channel, loc, &data);
            env.verified_read(channel, loc);
        }
        env.random_traffic(100);
        env.scrub_and_audit();
    }
}

/// Drive one pair's counter exactly to saturation and past it.
fn threshold_saturation(env: &mut SoakEnv, budget: u64) {
    env.fill();
    let channel = env.random_channel();
    let bank = env.rng.gen_range(0..env.shape.banks_per_channel);
    let mut row = 0u32;
    // One small fault per distinct row; each corrected read ticks the
    // shared counter once, so the pair crosses the threshold exactly.
    while !env.mem.health().is_faulty(channel, bank)
        && row < env.shape.data_rows
        && env.accesses < budget
    {
        let f = FaultInstance {
            chip: ChipLocation {
                channel,
                rank: 0,
                chip: env.rng.gen_range(0..env.mem.ecc().chips_per_rank()),
            },
            mode: FaultMode::SingleWord,
            bank: bank as u32,
            row,
            line: env.rng.gen_range(0..env.shape.lines_per_row),
            pattern_seed: env.rng.gen(),
        };
        env.mem.try_inject_fault(f).expect("in-range fault");
        env.verified_read(
            channel,
            LineLoc {
                bank,
                row,
                line: f.line,
            },
        );
        row += 1;
        env.random_traffic(50);
    }
    // Past saturation: more errors on the now-faulty pair must be absorbed
    // (AlreadyFaulty) without counter movement — the monitor checks that.
    while env.accesses < budget {
        env.random_traffic(400);
        env.scrub_and_audit();
    }
}

/// Hammer retired pages: every access must be refused, never served.
fn retired_page_hammer(env: &mut SoakEnv, budget: u64) {
    env.fill();
    // Manufacture retirements: transient strikes read before the scrubber
    // reaches them retire their page (and parity-sharing peers). Distinct
    // (channel, bank) per strike — overlapping strikes would exceed the
    // single-device fault envelope (see `transient_storm`).
    let mut hit: HashSet<(usize, usize)> = HashSet::new();
    for _ in 0..4 {
        let channel = env.random_channel();
        let f = env.random_fault(channel, &[FaultMode::SingleRow]);
        if !hit.insert((channel, f.bank as usize)) {
            continue;
        }
        env.mem.try_inject_transient(f).expect("in-range transient");
        env.verified_read(
            channel,
            LineLoc {
                bank: f.bank as usize,
                row: f.row,
                line: f.line,
            },
        );
    }
    env.scrub_and_audit();
    let retired = env.mem.health().retired_pages();
    while env.accesses < budget {
        if let Some(&(c, bank, row)) = retired.first() {
            for _ in 0..100 {
                let loc = LineLoc {
                    bank,
                    row,
                    line: env.rng.gen_range(0..env.shape.lines_per_row),
                };
                if env.rng.gen_range(0..2) == 0 {
                    env.verified_read(c, loc);
                } else {
                    let data = env.random_line_bytes();
                    env.checked_write(c, loc, &data);
                }
            }
        }
        env.random_traffic(300);
    }
}

/// Several distinct faults inside one channel.
fn multi_fault_one_channel(env: &mut SoakEnv, budget: u64) {
    env.fill();
    let channel = env.random_channel();
    let plans = [
        (FaultMode::SingleRow, 0usize),
        (FaultMode::SingleColumn, 1),
        (FaultMode::SingleWord, 2),
        (FaultMode::SingleBank, 3),
    ];
    for (mode, bank) in plans {
        let bank = bank % env.shape.banks_per_channel;
        let f = env.random_fault(channel, &[mode]);
        let f = FaultInstance {
            bank: bank as u32,
            ..f
        };
        env.mem.try_inject_fault(f).expect("in-range fault");
    }
    while env.accesses < budget {
        env.random_traffic(400);
        env.scrub_and_audit();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scheme_registry_builds_every_default_scheme() {
        for name in DEFAULT_SCHEMES {
            let s = scheme_by_name(name).unwrap();
            assert!(s.data_bytes() > 0, "{name}");
        }
        assert!(
            !DEFAULT_SCHEMES.contains(&"lotecc9"),
            "lotecc9 is excluded from the zero-SDC gate (8-bit detection)"
        );
        assert!(scheme_by_name("lotecc9").is_ok(), "but still constructible");
        let err = match scheme_by_name("bogus") {
            Err(e) => e,
            Ok(_) => panic!("bogus scheme must not resolve"),
        };
        assert!(err.to_string().contains("lotecc5"));
    }

    #[test]
    fn derive_seed_separates_axes() {
        let a = derive_seed(1, "lotecc5", "transient-storm", 0);
        assert_ne!(a, derive_seed(2, "lotecc5", "transient-storm", 0));
        assert_ne!(a, derive_seed(1, "chipkill18", "transient-storm", 0));
        assert_ne!(a, derive_seed(1, "lotecc5", "lifetime-replay", 0));
        assert_ne!(a, derive_seed(1, "lotecc5", "transient-storm", 1));
        assert_eq!(a, derive_seed(1, "lotecc5", "transient-storm", 0));
    }
}
