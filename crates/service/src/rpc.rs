//! `eccparity-rpc-v1`: the daemon's newline-delimited JSON wire protocol.
//!
//! One JSON object per line, in both directions. Two request kinds:
//!
//! * **events** (`"kind":"event"`) — fire-and-forget corrected-error /
//!   fault telemetry. Events get **no** response line; at the target
//!   ingest rates (≥1M events/s) a per-event acknowledgement would
//!   dominate the wire. Rejected events are counted
//!   (`service.events_rejected`) and visible through the `stats` query.
//! * **queries** (`"kind":"query"`) — request/response. Before a query
//!   executes, the connection's buffered events are flushed and a shard
//!   barrier drains them, so a query observes every event previously
//!   written on the same connection (read-your-writes).
//!
//! The hot ingest path never goes through the full JSON parser: a
//! compact-form event line (exactly what [`render_event`] and the
//! `loadgen` binary emit) is recognized by [`fast_event`] with a byte
//! scanner; anything else falls back to a tolerant [`serde_json`] parse.
//! The fallback accepts whitespace, reordered fields, and extra fields —
//! the scanner is an optimization, never the definition of validity.
//!
//! See `docs/SCHEMAS.md` § `eccparity-rpc-v1` for the field-by-field
//! reference with example payloads.

use serde_json::Value;

/// Schema stamp carried by every response line.
pub const RPC_SCHEMA: &str = "eccparity-rpc-v1";

/// Largest `count` an event may carry (coalesced repeat strikes); larger
/// values are rejected as malformed rather than looping the health table.
pub const MAX_EVENT_COUNT: u64 = 4096;

/// Largest `k` a `top_pages` query may request.
pub const MAX_TOP_K: u64 = 10_000;

/// One ingested telemetry event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// Originating node (simulated DIMM/host).
    pub node: u64,
    /// Channel within the node.
    pub channel: u32,
    /// Logical bank within the channel.
    pub bank: u32,
    /// Row (page) within the bank.
    pub row: u32,
    /// Coalesced occurrence count (≥ 1).
    pub count: u32,
    /// `true`: a whole-bank fault diagnosis (pair marked faulty
    /// directly); `false`: an ordinary corrected error.
    pub bank_fault: bool,
}

/// One fleet-health query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Query {
    /// Per-node UE-risk summary.
    NodeRisk {
        /// Node to report on.
        node: u64,
    },
    /// Whole-fleet SDC posture.
    Fleet,
    /// HARP-style top-K at-risk pages across the fleet.
    TopPages {
        /// How many pages to return.
        k: usize,
    },
    /// Per-region (per-channel) scheme recommendation for one node.
    Recommend {
        /// Node to report on.
        node: u64,
    },
    /// Daemon ingest/shard statistics (process-local, not persisted).
    Stats,
    /// Write a checkpoint journal now.
    Checkpoint,
    /// Checkpoint (when persistence is configured) and exit cleanly.
    Shutdown,
    /// Liveness probe.
    Ping,
    /// Turn this connection into an `eccparity-push-v1` posture-
    /// transition stream (see [`crate::push`]). After the ok response the
    /// connection receives push lines only, until the client closes it.
    Subscribe,
}

/// A parsed request line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Request {
    /// Telemetry to ingest.
    Event(Event),
    /// A query to answer.
    Query(Query),
}

// ---- fast path -------------------------------------------------------------

/// Single-pass cursor over a compact-form line. Every helper either
/// consumes exactly what it claims or leaves the caller to bail out to
/// the tolerant parser — the scanner never guesses.
struct Scan<'a> {
    s: &'a [u8],
    i: usize,
}

impl<'a> Scan<'a> {
    /// Consume `lit` if it is next; `false` leaves the cursor in place.
    #[inline]
    fn lit(&mut self, lit: &[u8]) -> bool {
        if self.s[self.i..].starts_with(lit) {
            self.i += lit.len();
            true
        } else {
            false
        }
    }

    /// Consume a decimal integer (checked, so `u64::MAX` parses and
    /// anything larger bails to the tolerant path).
    #[inline]
    fn u64(&mut self) -> Option<u64> {
        let start = self.i;
        let mut v: u64 = 0;
        while let Some(d) = self.s.get(self.i).filter(|b| b.is_ascii_digit()) {
            v = v.checked_mul(10)?.checked_add(u64::from(d - b'0'))?;
            self.i += 1;
        }
        (self.i > start).then_some(v)
    }

    #[inline]
    fn done(&self) -> bool {
        self.i == self.s.len()
    }
}

/// The opening every compact-form event line starts with; field order is
/// fixed (it is exactly what [`render_event`] emits).
const COMPACT_PREFIX: &[u8] = b"{\"kind\":\"event\",\"node\":";

/// Cheap routing probe: is this a compact-form event line, and if so for
/// which node? The connection reader uses this to pick the owning shard
/// without a full parse; the shard then parses the line authoritatively.
pub fn fast_route(line: &[u8]) -> Option<u64> {
    let mut sc = Scan { s: line, i: 0 };
    if !sc.lit(COMPACT_PREFIX) {
        return None;
    }
    sc.u64()
}

/// Full scanner parse of a compact-form event line — one left-to-right
/// pass over the fixed field order. Returns `None` for anything it is
/// not *sure* about; the caller then falls back to [`parse_line`]'s
/// tolerant path, which is the definition of validity.
pub fn fast_event(line: &[u8]) -> Option<Event> {
    let mut sc = Scan { s: line, i: 0 };
    if !sc.lit(COMPACT_PREFIX) {
        return None;
    }
    let node = sc.u64()?;
    if !sc.lit(b",\"channel\":") {
        return None;
    }
    let channel = u32::try_from(sc.u64()?).ok()?;
    if !sc.lit(b",\"bank\":") {
        return None;
    }
    let bank = u32::try_from(sc.u64()?).ok()?;
    if !sc.lit(b",\"row\":") {
        return None;
    }
    let row = u32::try_from(sc.u64()?).ok()?;
    let count = if sc.lit(b",\"count\":") {
        let c = sc.u64()?;
        if c == 0 || c > MAX_EVENT_COUNT {
            return None;
        }
        c as u32
    } else {
        1
    };
    let bank_fault = sc.lit(b",\"fault\":\"bank\"");
    if !sc.lit(b"}") || !sc.done() {
        return None;
    }
    Some(Event {
        node,
        channel,
        bank,
        row,
        count,
        bank_fault,
    })
}

// ---- tolerant path ---------------------------------------------------------

fn field_u64(v: &Value, key: &str) -> Result<u64, String> {
    v.get(key)
        .and_then(Value::as_u64)
        .ok_or_else(|| format!("missing or non-integer field {key:?}"))
}

fn event_from_value(v: &Value) -> Result<Event, String> {
    let count = match v.get("count") {
        None => 1,
        Some(c) => {
            let c = c.as_u64().ok_or("count must be an integer")?;
            if c == 0 || c > MAX_EVENT_COUNT {
                return Err(format!("count must be in 1..={MAX_EVENT_COUNT}"));
            }
            c as u32
        }
    };
    let bank_fault = match v.get("fault").and_then(Value::as_str) {
        None => false,
        Some("bank") => true,
        Some("ce") => false,
        Some(other) => return Err(format!("unknown fault kind {other:?}")),
    };
    let narrow = |name: &str, val: u64| -> Result<u32, String> {
        u32::try_from(val).map_err(|_| format!("{name} out of range"))
    };
    Ok(Event {
        node: field_u64(v, "node")?,
        channel: narrow("channel", field_u64(v, "channel")?)?,
        bank: narrow("bank", field_u64(v, "bank")?)?,
        row: narrow("row", field_u64(v, "row")?)?,
        count,
        bank_fault,
    })
}

fn query_from_value(v: &Value) -> Result<Query, String> {
    let op = v
        .get("op")
        .and_then(Value::as_str)
        .ok_or("query is missing string field \"op\"")?;
    Ok(match op {
        "node_risk" => Query::NodeRisk {
            node: field_u64(v, "node")?,
        },
        "fleet" => Query::Fleet,
        "top_pages" => {
            let k = match v.get("k") {
                None => 10,
                Some(k) => {
                    let k = k.as_u64().ok_or("k must be an integer")?;
                    if k == 0 || k > MAX_TOP_K {
                        return Err(format!("k must be in 1..={MAX_TOP_K}"));
                    }
                    k as usize
                }
            };
            Query::TopPages { k }
        }
        "recommend" => Query::Recommend {
            node: field_u64(v, "node")?,
        },
        "stats" => Query::Stats,
        "checkpoint" => Query::Checkpoint,
        "shutdown" => Query::Shutdown,
        "ping" => Query::Ping,
        "subscribe" => Query::Subscribe,
        other => return Err(format!("unknown op {other:?}")),
    })
}

/// Parse one request line: scanner fast path first, tolerant JSON parse
/// otherwise. Errors describe what was malformed (for the error response
/// and the failure ledger; the line itself is never echoed back).
pub fn parse_line(line: &[u8]) -> Result<Request, String> {
    if let Some(ev) = fast_event(line) {
        return Ok(Request::Event(ev));
    }
    let text = std::str::from_utf8(line).map_err(|_| "line is not UTF-8".to_string())?;
    let v: Value = serde_json::from_str(text).map_err(|e| format!("bad JSON: {e}"))?;
    match v.get("kind").and_then(Value::as_str) {
        Some("event") => event_from_value(&v).map(Request::Event),
        Some("query") => query_from_value(&v).map(Request::Query),
        Some(other) => Err(format!("unknown kind {other:?}")),
        None => Err("missing string field \"kind\"".to_string()),
    }
}

// ---- rendering -------------------------------------------------------------

/// Render an event in the compact form [`fast_event`] recognizes.
pub fn render_event(ev: &Event) -> String {
    let mut s = format!(
        "{{\"kind\":\"event\",\"node\":{},\"channel\":{},\"bank\":{},\"row\":{}",
        ev.node, ev.channel, ev.bank, ev.row
    );
    if ev.count != 1 {
        s.push_str(&format!(",\"count\":{}", ev.count));
    }
    if ev.bank_fault {
        s.push_str(",\"fault\":\"bank\"");
    }
    s.push('}');
    s
}

/// Render a query line (the client side of the protocol; `loadgen` and
/// the tests use this).
pub fn render_query(q: &Query) -> String {
    match q {
        Query::NodeRisk { node } => {
            format!("{{\"kind\":\"query\",\"op\":\"node_risk\",\"node\":{node}}}")
        }
        Query::Fleet => "{\"kind\":\"query\",\"op\":\"fleet\"}".to_string(),
        Query::TopPages { k } => format!("{{\"kind\":\"query\",\"op\":\"top_pages\",\"k\":{k}}}"),
        Query::Recommend { node } => {
            format!("{{\"kind\":\"query\",\"op\":\"recommend\",\"node\":{node}}}")
        }
        Query::Stats => "{\"kind\":\"query\",\"op\":\"stats\"}".to_string(),
        Query::Checkpoint => "{\"kind\":\"query\",\"op\":\"checkpoint\"}".to_string(),
        Query::Shutdown => "{\"kind\":\"query\",\"op\":\"shutdown\"}".to_string(),
        Query::Ping => "{\"kind\":\"query\",\"op\":\"ping\"}".to_string(),
        Query::Subscribe => "{\"kind\":\"query\",\"op\":\"subscribe\"}".to_string(),
    }
}

/// Append a JSON string literal (with escaping) to `out`.
pub fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A success response: `result_json` must already be rendered JSON.
/// `degraded` is `true` when at least one shard was quarantined while
/// the query was answered — the result may be missing events applied
/// after the last checkpoint on those shards (see
/// `docs/OPERATIONS.md` § Failure modes and degraded operation).
pub fn ok_response(op: &str, degraded: bool, result_json: &str) -> String {
    let mut s = String::with_capacity(96 + result_json.len());
    ok_response_open(&mut s, op, degraded);
    s.push_str(result_json);
    ok_response_close(&mut s);
    s
}

/// Append a success envelope up to (and including) `"result":` — the
/// caller renders the result JSON straight into `out` and finishes with
/// [`ok_response_close`]. This open/render/close split is what lets the
/// per-connection response buffer be reused without an intermediate
/// `String` per reply.
pub fn ok_response_open(out: &mut String, op: &str, degraded: bool) {
    out.push_str("{\"schema\":\"");
    out.push_str(RPC_SCHEMA);
    out.push_str("\",\"ok\":true,\"op\":\"");
    out.push_str(op);
    out.push_str("\",\"degraded\":");
    out.push_str(if degraded { "true" } else { "false" });
    out.push_str(",\"result\":");
}

/// Close a success envelope opened by [`ok_response_open`].
pub fn ok_response_close(out: &mut String) {
    out.push('}');
}

/// An error response.
pub fn error_response(msg: &str) -> String {
    let mut s = String::with_capacity(64 + msg.len());
    error_response_into(&mut s, msg);
    s
}

/// Append an error response to a reused buffer.
pub fn error_response_into(out: &mut String, msg: &str) {
    out.push_str("{\"schema\":\"");
    out.push_str(RPC_SCHEMA);
    out.push_str("\",\"ok\":false,\"error\":");
    push_json_str(out, msg);
    out.push('}');
}

/// A structured refusal: an error response carrying a machine-readable
/// `code` (`"oversized"`, `"overloaded"`, …) so abuse-defense rejections
/// can be asserted on without string-matching the human text.
pub fn refusal_response(code: &str, msg: &str) -> String {
    let mut s = String::with_capacity(80 + msg.len());
    refusal_response_into(&mut s, code, msg);
    s
}

/// Append a structured refusal to a reused buffer.
pub fn refusal_response_into(out: &mut String, code: &str, msg: &str) {
    out.push_str("{\"schema\":\"");
    out.push_str(RPC_SCHEMA);
    out.push_str("\",\"ok\":false,\"code\":");
    push_json_str(out, code);
    out.push_str(",\"error\":");
    push_json_str(out, msg);
    out.push('}');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fast_and_tolerant_paths_agree() {
        let cases = [
            Event {
                node: 0,
                channel: 0,
                bank: 0,
                row: 0,
                count: 1,
                bank_fault: false,
            },
            Event {
                node: 18_446_744_073_709_551_615,
                channel: 7,
                bank: 15,
                row: 1_048_575,
                count: 4096,
                bank_fault: false,
            },
            Event {
                node: 42,
                channel: 3,
                bank: 9,
                row: 512,
                count: 1,
                bank_fault: true,
            },
        ];
        for ev in cases {
            let line = render_event(&ev);
            assert_eq!(fast_event(line.as_bytes()), Some(ev), "{line}");
            assert_eq!(fast_route(line.as_bytes()), Some(ev.node), "{line}");
            assert_eq!(
                parse_line(line.as_bytes()),
                Ok(Request::Event(ev)),
                "{line}"
            );
        }
    }

    #[test]
    fn tolerant_path_accepts_reordered_and_spaced_fields() {
        let line = br#"{ "row": 7, "kind": "event", "bank": 2, "node": 5, "channel": 1 }"#;
        assert_eq!(fast_event(line), None, "not compact form");
        assert_eq!(
            parse_line(line),
            Ok(Request::Event(Event {
                node: 5,
                channel: 1,
                bank: 2,
                row: 7,
                count: 1,
                bank_fault: false,
            }))
        );
    }

    #[test]
    fn malformed_lines_error_without_panicking() {
        let bad: &[&[u8]] = &[
            b"",
            b"not json at all",
            b"{\"kind\":\"event\"}",
            b"{\"kind\":\"event\",\"node\":1,\"channel\":0,\"bank\":0,\"row\":0,\"count\":0}",
            b"{\"kind\":\"event\",\"node\":1,\"channel\":0,\"bank\":0,\"row\":0,\"count\":999999}",
            b"{\"kind\":\"event\",\"node\":1,\"channel\":4294967296,\"bank\":0,\"row\":0}",
            b"{\"kind\":\"query\"}",
            b"{\"kind\":\"query\",\"op\":\"warp-core\"}",
            b"{\"kind\":\"mystery\"}",
            b"{\"node\":1}",
            b"\xff\xfe",
        ];
        for line in bad {
            assert!(
                parse_line(line).is_err(),
                "{:?}",
                String::from_utf8_lossy(line)
            );
        }
    }

    #[test]
    fn query_round_trip() {
        let qs = [
            Query::NodeRisk { node: 9 },
            Query::Fleet,
            Query::TopPages { k: 25 },
            Query::Recommend { node: 3 },
            Query::Stats,
            Query::Checkpoint,
            Query::Shutdown,
            Query::Ping,
            Query::Subscribe,
        ];
        for q in qs {
            let line = render_query(&q);
            assert_eq!(parse_line(line.as_bytes()), Ok(Request::Query(q)), "{line}");
        }
    }

    #[test]
    fn responses_escape_error_text() {
        let resp = error_response("bad \"quote\"\nnewline");
        let v: Value = serde_json::from_str(&resp).unwrap();
        assert_eq!(v["schema"].as_str(), Some(RPC_SCHEMA));
        assert_eq!(v["ok"].as_bool(), Some(false));
        assert_eq!(v["error"].as_str(), Some("bad \"quote\"\nnewline"));
    }

    #[test]
    fn ok_envelope_carries_degraded_stamp() {
        for degraded in [false, true] {
            let resp = ok_response("fleet", degraded, "{\"nodes\":3}");
            let v: Value = serde_json::from_str(&resp).unwrap();
            assert_eq!(v["ok"].as_bool(), Some(true));
            assert_eq!(v["degraded"].as_bool(), Some(degraded));
            assert_eq!(v["result"]["nodes"].as_u64(), Some(3));
        }
    }

    #[test]
    fn refusals_carry_a_machine_readable_code() {
        let resp = refusal_response("oversized", "line exceeds 1048576 bytes");
        let v: Value = serde_json::from_str(&resp).unwrap();
        assert_eq!(v["ok"].as_bool(), Some(false));
        assert_eq!(v["code"].as_str(), Some("oversized"));
        assert!(v["error"].as_str().unwrap().contains("1048576"));
    }
}
