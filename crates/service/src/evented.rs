//! Readiness-driven front-end ([`crate::server::IoMode::Evented`]): every
//! connection is multiplexed over [`ServerConfig::io_shards`] event-loop
//! threads instead of owning a blocking thread.
//!
//! Why: the thread-per-connection model prices an *idle* fleet
//! connection at one OS thread (~8 MiB of stack address space plus
//! scheduler load), so 10k mostly-idle agents would need 10k threads.
//! Here an idle connection is one registered file descriptor; the whole
//! daemon runs on a handful of loop threads regardless of connection
//! count.
//!
//! Mechanics:
//!
//! - The accept loop (the `serve_evented` caller thread) admits
//!   connections against the shared [`ConnCount`] cap, flips them
//!   nonblocking, and hands them round-robin to loop shards through a
//!   small injection queue + [`mio::Waker`] nudge.
//! - Each loop thread owns a [`mio::Poll`] (level-triggered `epoll`, or
//!   portable `poll(2)` under `ECC_PARITY_FORCE_POLL=1`) and a slab of
//!   connections indexed by token. Request bytes run through the same
//!   [`LineBuf`] reassembly and [`process_line`] state machine as the
//!   threaded mode — responses are byte-identical by construction.
//! - Writes never block the loop: responses land in a per-connection
//!   outbox that drains on writability. Past [`OUTBOX_HIGH_WATER`]
//!   pending bytes the connection's *read* interest is dropped
//!   (backpressure instead of unbounded buffering) and re-armed below
//!   [`OUTBOX_LOW_WATER`].
//! - `subscribe`d connections get their push lines copied into the same
//!   outbox; a subscriber whose outbox is over the high watermark has
//!   queued lines shed and counted (`service.push.shed`) rather than
//!   buffered without bound.
//! - A query still runs its router flush + engine barrier inline, which
//!   momentarily stalls the other connections on that loop shard: that
//!   is the documented price of read-your-writes, and queries are rare
//!   next to event traffic.

use crate::engine::{Engine, RejectKind, Router};
use crate::server::{
    drain, oversized_refusal_into, process_line, refuse_conn, write_line, ConnCount, ConnGuard,
    LineBuf, LineOutcome, Listen, Scan, ServerConfig, POLL_TICK, READ_CHUNK,
};
use mio::{Events, Interest, Poll, Token, Waker};
use std::collections::VecDeque;
use std::io::{ErrorKind, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::fd::{AsRawFd, RawFd};
use std::os::unix::net::{UnixListener, UnixStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{Receiver, TryRecvError};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Pending outbox bytes past which a connection's read interest is
/// dropped (and a subscriber's push lines are shed).
pub(crate) const OUTBOX_HIGH_WATER: usize = 1 << 20;

/// Pending outbox bytes below which read interest is re-armed.
pub(crate) const OUTBOX_LOW_WATER: usize = 64 * 1024;

/// Token reserved for the per-loop waker (connection slots use their
/// slab index).
const WAKER_TOKEN: Token = Token(usize::MAX);

/// Readiness events fetched per poll call.
const EVENTS_CAPACITY: usize = 1024;

/// Bound on chunks read from one connection per readiness event, so a
/// firehosing client cannot starve its loop-mates (level-triggered
/// readiness re-reports it next poll).
const MAX_CHUNKS_PER_EVENT: usize = 4;

/// Budget for the best-effort blocking flush of a closing connection's
/// outbox (responses to a final request, the shutdown ack).
const CLOSE_FLUSH_TIMEOUT: Duration = Duration::from_millis(250);

/// Borrowed raw fd, for registering enum-wrapped streams.
struct Fd(RawFd);

impl AsRawFd for Fd {
    fn as_raw_fd(&self) -> RawFd {
        self.0
    }
}

/// A nonblocking accepted stream of either flavor.
enum NbStream {
    Unix(UnixStream),
    Tcp(TcpStream),
}

impl NbStream {
    fn raw_fd(&self) -> RawFd {
        match self {
            NbStream::Unix(s) => s.as_raw_fd(),
            NbStream::Tcp(s) => s.as_raw_fd(),
        }
    }

    /// Flip back to blocking with a short write timeout, for the final
    /// best-effort outbox flush when a connection closes.
    fn prepare_blocking_flush(&self) {
        match self {
            NbStream::Unix(s) => {
                let _ = s.set_nonblocking(false);
                let _ = s.set_write_timeout(Some(CLOSE_FLUSH_TIMEOUT));
            }
            NbStream::Tcp(s) => {
                let _ = s.set_nonblocking(false);
                let _ = s.set_write_timeout(Some(CLOSE_FLUSH_TIMEOUT));
            }
        }
    }
}

impl Read for NbStream {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            NbStream::Unix(s) => s.read(buf),
            NbStream::Tcp(s) => s.read(buf),
        }
    }
}

impl Write for NbStream {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            NbStream::Unix(s) => s.write(buf),
            NbStream::Tcp(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            NbStream::Unix(s) => s.flush(),
            NbStream::Tcp(s) => s.flush(),
        }
    }
}

/// One connection's loop-side state.
struct Conn {
    stream: NbStream,
    buf: LineBuf,
    router: Router,
    /// Bytes queued to the client; `[outbox_written..]` is still unsent.
    outbox: Vec<u8>,
    outbox_written: usize,
    /// Reused response render buffer (no per-line allocation).
    resp: String,
    last_activity: Instant,
    /// Interests currently registered with the poller: (read, write).
    registered: (bool, bool),
    /// Read interest dropped by the outbox high watermark.
    paused_read: bool,
    /// Close once the outbox drains.
    closing: bool,
    /// Push subscription, once the client sent `subscribe`.
    sub: Option<(u64, Receiver<Arc<str>>)>,
    _guard: ConnGuard,
}

impl Conn {
    fn pending(&self) -> usize {
        self.outbox.len() - self.outbox_written
    }
}

/// What an I/O step decided about the connection.
enum Disposition {
    Keep,
    Close,
    Shutdown,
}

/// One event-loop shard: its poller, the waker the accept loop (and push
/// hub) nudges it with, and the injection queue of freshly accepted
/// connections.
struct Shard {
    poll: Poll,
    waker: Waker,
    inbox: Mutex<VecDeque<(NbStream, ConnGuard)>>,
}

impl Shard {
    fn new() -> std::io::Result<Shard> {
        let poll = Poll::new()?;
        let waker = Waker::new(&poll, WAKER_TOKEN)?;
        Ok(Shard {
            poll,
            waker,
            inbox: Mutex::new(VecDeque::new()),
        })
    }
}

/// Flush as much of the outbox as the socket accepts right now.
fn flush_outbox(conn: &mut Conn) -> Disposition {
    while conn.outbox_written < conn.outbox.len() {
        match conn.stream.write(&conn.outbox[conn.outbox_written..]) {
            Ok(0) => return Disposition::Close,
            Ok(n) => conn.outbox_written += n,
            Err(e) if e.kind() == ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(_) => return Disposition::Close,
        }
    }
    if conn.outbox_written == conn.outbox.len() {
        conn.outbox.clear();
        conn.outbox_written = 0;
        if conn.closing {
            return Disposition::Close;
        }
    } else if conn.outbox_written > OUTBOX_LOW_WATER {
        // Reclaim sent bytes so a slow reader doesn't pin the peak.
        conn.outbox.drain(..conn.outbox_written);
        conn.outbox_written = 0;
    }
    Disposition::Keep
}

/// Re-derive the watermark pause state and (re)register the interests
/// the connection actually needs right now.
fn sync_interest(poll: &Poll, idx: usize, conn: &mut Conn) {
    let pending = conn.pending();
    if pending > OUTBOX_HIGH_WATER {
        conn.paused_read = true;
    } else if pending < OUTBOX_LOW_WATER {
        conn.paused_read = false;
    }
    let want = (!conn.paused_read && !conn.closing, pending > 0);
    if want == conn.registered {
        return;
    }
    let interest = match want {
        (true, true) => Interest::READABLE | Interest::WRITABLE,
        (true, false) => Interest::READABLE,
        (false, true) => Interest::WRITABLE,
        // A paused or closing connection with a drained outbox: keep
        // write interest so socket errors still surface.
        (false, false) => Interest::WRITABLE,
    };
    if poll
        .reregister(&Fd(conn.stream.raw_fd()), Token(idx), interest)
        .is_ok()
    {
        conn.registered = want;
    }
}

/// Drain readable bytes through the shared line state machine.
fn handle_read(
    engine: &Engine,
    cfg: &ServerConfig,
    conn: &mut Conn,
    chunk: &mut [u8],
    waker: &Waker,
) -> Disposition {
    let mut eof = false;
    'chunks: for _ in 0..MAX_CHUNKS_PER_EVENT {
        if conn.pending() > OUTBOX_HIGH_WATER {
            break;
        }
        let n = match conn.stream.read(chunk) {
            Ok(0) => {
                eof = true;
                break;
            }
            Ok(n) => n,
            Err(e) if e.kind() == ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(_) => return Disposition::Close,
        };
        conn.last_activity = Instant::now();
        if conn.sub.is_some() {
            // A subscribed connection is push-only: request bytes after
            // `subscribe` are discarded (we only watch for EOF).
            continue;
        }
        let outcome = {
            let Conn {
                ref mut buf,
                ref mut router,
                ref mut outbox,
                ref mut resp,
                ..
            } = *conn;
            buf.feed(&chunk[..n], cfg.max_line_bytes, &mut |scan| match scan {
                Scan::Line(line) => process_line(engine, router, outbox, cfg, line, resp),
                Scan::Oversized => {
                    engine.note_reject(RejectKind::Oversized);
                    oversized_refusal_into(resp, cfg.max_line_bytes);
                    let _ = write_line(outbox, resp);
                    LineOutcome::Continue
                }
            })
        };
        match outcome {
            LineOutcome::Continue => {}
            // Writes into a Vec outbox cannot fail.
            LineOutcome::Closed => unreachable!("outbox writes are infallible"),
            LineOutcome::Shutdown => return Disposition::Shutdown,
            LineOutcome::Subscribe => {
                conn.buf.clear();
                // Register with the hub *before* queueing the ack (which
                // `process_line` left in `conn.resp`): a client that has
                // read the ack cannot miss a transition. The hub wakes
                // this loop whenever a line lands for the subscriber.
                let w = waker.clone();
                let (id, rx) = engine
                    .push_hub()
                    .subscribe(Some(Arc::new(move || {
                        let _ = w.wake();
                    })));
                let _ = write_line(&mut conn.outbox, &conn.resp);
                conn.sub = Some((id, rx));
                continue 'chunks;
            }
        }
    }
    if eof {
        if conn.sub.is_none() {
            let Conn {
                ref mut buf,
                ref mut router,
                ref mut outbox,
                ref mut resp,
                ..
            } = *conn;
            buf.finish(&mut |scan| match scan {
                Scan::Line(line) => process_line(engine, router, outbox, cfg, line, resp),
                Scan::Oversized => LineOutcome::Continue,
            });
        }
        conn.router.flush(engine);
        conn.closing = true;
        if conn.pending() == 0 {
            return Disposition::Close;
        }
    }
    Disposition::Keep
}

/// Copy queued push lines into a subscriber's outbox; over the high
/// watermark the queued lines are shed (dropped + counted) instead of
/// buffered without bound.
fn drain_pushes(engine: &Engine, conn: &mut Conn) {
    let Some((_, rx)) = &conn.sub else { return };
    let mut shed = 0u64;
    loop {
        if conn.outbox.len() - conn.outbox_written > OUTBOX_HIGH_WATER {
            match rx.try_recv() {
                Ok(_) => {
                    shed += 1;
                    continue;
                }
                Err(TryRecvError::Empty) => break,
                Err(TryRecvError::Disconnected) => {
                    conn.closing = true;
                    break;
                }
            }
        }
        match rx.try_recv() {
            Ok(line) => {
                conn.outbox.extend_from_slice(line.as_bytes());
                conn.outbox.push(b'\n');
            }
            Err(TryRecvError::Empty) => break,
            Err(TryRecvError::Disconnected) => {
                // Hub gone: the engine is shutting down; flush and close.
                conn.closing = true;
                break;
            }
        }
    }
    engine.push_hub().note_shed(shed);
}

/// Deregister, unsubscribe, flush what we can, and free the slot.
/// `flush_remaining` spends up to [`CLOSE_FLUSH_TIMEOUT`] in blocking
/// mode so final responses (shutdown ack, truncated-line replies) reach
/// the client.
fn close_conn(
    engine: &Engine,
    poll: &Poll,
    conns: &mut [Option<Conn>],
    free: &mut Vec<usize>,
    subscribed: &mut Vec<usize>,
    idx: usize,
    flush_remaining: bool,
) {
    let Some(mut conn) = conns[idx].take() else {
        return;
    };
    let _ = poll.deregister(&Fd(conn.stream.raw_fd()));
    if let Some((id, _)) = conn.sub.take() {
        engine.push_hub().unsubscribe(id);
        subscribed.retain(|&i| i != idx);
    }
    conn.router.flush(engine);
    if flush_remaining && conn.pending() > 0 {
        conn.stream.prepare_blocking_flush();
        let pending = &conn.outbox[conn.outbox_written..];
        let _ = conn.stream.write_all(pending).and_then(|()| conn.stream.flush());
    }
    free.push(idx);
}

/// One event-loop shard thread: poll, serve readiness, adopt injected
/// connections, fan pushes out, sweep idle conns — until `stop`.
fn run_loop(
    engine: Arc<Engine>,
    cfg: Arc<ServerConfig>,
    shard: Arc<Shard>,
    peers: Arc<Vec<Arc<Shard>>>,
    stop: Arc<AtomicBool>,
) {
    let mut events = Events::with_capacity(EVENTS_CAPACITY);
    let mut conns: Vec<Option<Conn>> = Vec::new();
    let mut free: Vec<usize> = Vec::new();
    let mut subscribed: Vec<usize> = Vec::new();
    let mut ready: Vec<(usize, bool, bool)> = Vec::new();
    let mut chunk = vec![0u8; READ_CHUNK];
    let mut last_sweep = Instant::now();
    loop {
        let _ = shard.poll.poll(&mut events, Some(POLL_TICK));
        if stop.load(Ordering::SeqCst) {
            break;
        }
        // Snapshot tokens first: handling mutates the slab.
        ready.clear();
        for ev in events.iter() {
            if ev.token() != WAKER_TOKEN {
                ready.push((ev.token().0, ev.is_readable(), ev.is_writable()));
            }
        }
        for &(idx, readable, writable) in &ready {
            let Some(conn) = conns.get_mut(idx).and_then(|c| c.as_mut()) else {
                continue;
            };
            let mut disp = Disposition::Keep;
            if writable {
                disp = flush_outbox(conn);
            }
            if readable && matches!(disp, Disposition::Keep) && !conn.closing {
                disp = handle_read(&engine, &cfg, conn, &mut chunk, &shard.waker);
                if matches!(disp, Disposition::Keep) {
                    // Push replies out now; arm write interest for the rest.
                    disp = flush_outbox(conn);
                }
                if conn.sub.is_some() && !subscribed.contains(&idx) {
                    subscribed.push(idx);
                }
            }
            match disp {
                Disposition::Keep => sync_interest(&shard.poll, idx, conn),
                Disposition::Close => {
                    close_conn(
                        &engine,
                        &shard.poll,
                        &mut conns,
                        &mut free,
                        &mut subscribed,
                        idx,
                        false,
                    );
                }
                Disposition::Shutdown => {
                    // Deliver the shutdown ack, then stop every shard.
                    close_conn(
                        &engine,
                        &shard.poll,
                        &mut conns,
                        &mut free,
                        &mut subscribed,
                        idx,
                        true,
                    );
                    stop.store(true, Ordering::SeqCst);
                    for p in peers.iter() {
                        let _ = p.waker.wake();
                    }
                }
            }
        }
        // Adopt freshly accepted connections (after event handling, so a
        // stale event for a recycled token cannot hit a new conn).
        loop {
            let next = shard.inbox.lock().expect("inbox lock").pop_front();
            let Some((stream, guard)) = next else { break };
            let idx = free.pop().unwrap_or_else(|| {
                conns.push(None);
                conns.len() - 1
            });
            if shard
                .poll
                .register(&Fd(stream.raw_fd()), Token(idx), Interest::READABLE)
                .is_err()
            {
                free.push(idx);
                continue;
            }
            obs::counter!("service.connections").inc();
            conns[idx] = Some(Conn {
                stream,
                buf: LineBuf::new(),
                router: Router::new(&engine),
                outbox: Vec::new(),
                outbox_written: 0,
                resp: String::with_capacity(256),
                last_activity: Instant::now(),
                registered: (true, false),
                paused_read: false,
                closing: false,
                sub: None,
                _guard: guard,
            });
        }
        // Fan queued push lines out to subscribers on this loop.
        if !subscribed.is_empty() {
            let subs = std::mem::take(&mut subscribed);
            for idx in subs {
                let Some(conn) = conns.get_mut(idx).and_then(|c| c.as_mut()) else {
                    continue;
                };
                drain_pushes(&engine, conn);
                let disp = flush_outbox(conn);
                if matches!(disp, Disposition::Close) {
                    close_conn(
                        &engine,
                        &shard.poll,
                        &mut conns,
                        &mut free,
                        &mut subscribed,
                        idx,
                        false,
                    );
                } else {
                    sync_interest(&shard.poll, idx, conn);
                    subscribed.push(idx);
                }
            }
        }
        // Idle sweep, at poll-tick resolution like the threaded mode.
        if cfg.idle_timeout_ms > 0 && last_sweep.elapsed() >= POLL_TICK {
            last_sweep = Instant::now();
            let deadline = Duration::from_millis(cfg.idle_timeout_ms);
            for idx in 0..conns.len() {
                let stale = conns[idx]
                    .as_ref()
                    .is_some_and(|c| c.sub.is_none() && c.last_activity.elapsed() >= deadline);
                if stale {
                    engine.note_idle_close();
                    close_conn(
                        &engine,
                        &shard.poll,
                        &mut conns,
                        &mut free,
                        &mut subscribed,
                        idx,
                        false,
                    );
                }
            }
        }
    }
    // Teardown: flush every router (so a final checkpoint sees all
    // in-flight events) and best-effort-drain the outboxes.
    for idx in 0..conns.len() {
        close_conn(
            &engine,
            &shard.poll,
            &mut conns,
            &mut free,
            &mut subscribed,
            idx,
            true,
        );
    }
}

/// Evented accept loop: admit, flip nonblocking, hand to a loop shard.
pub(crate) fn serve_evented(
    engine: Arc<Engine>,
    listen: Listen,
    cfg: Arc<ServerConfig>,
) -> std::io::Result<()> {
    let stop = Arc::new(AtomicBool::new(false));
    let active = Arc::new(ConnCount::new());
    let shards: Vec<Arc<Shard>> = (0..cfg.io_shards)
        .map(|_| Shard::new().map(Arc::new))
        .collect::<std::io::Result<_>>()?;
    let peers = Arc::new(shards.clone());
    let loops: Vec<std::thread::JoinHandle<()>> = shards
        .iter()
        .enumerate()
        .map(|(i, shard)| {
            let engine = Arc::clone(&engine);
            let cfg = Arc::clone(&cfg);
            let shard = Arc::clone(shard);
            let peers = Arc::clone(&peers);
            let stop = Arc::clone(&stop);
            std::thread::Builder::new()
                .name(format!("eccparityd-io-{i}"))
                .spawn(move || run_loop(engine, cfg, shard, peers, stop))
                .expect("spawn io loop")
        })
        .collect();

    let mut next = 0usize;
    let mut dispatch = |stream: NbStream| {
        active.inc();
        let guard = ConnGuard(Arc::clone(&active));
        let shard = &shards[next % shards.len()];
        next += 1;
        shard.inbox.lock().expect("inbox lock").push_back((stream, guard));
        let _ = shard.waker.wake();
    };

    let apoll = Poll::new()?;
    let mut aevents = Events::with_capacity(8);
    let unix_path = match listen {
        Listen::Unix(path) => {
            if let Some(dir) = path.parent() {
                if !dir.as_os_str().is_empty() {
                    std::fs::create_dir_all(dir)?;
                }
            }
            let _ = std::fs::remove_file(&path);
            let listener = UnixListener::bind(&path)?;
            listener.set_nonblocking(true)?;
            apoll.register(&Fd(listener.as_raw_fd()), Token(0), Interest::READABLE)?;
            eprintln!(
                "eccparityd: listening on unix://{} (evented, {} loop{}, {} backend)",
                path.display(),
                shards.len(),
                if shards.len() == 1 { "" } else { "s" },
                apoll.backend_name(),
            );
            while !stop.load(Ordering::SeqCst) {
                let _ = apoll.poll(&mut aevents, Some(POLL_TICK));
                loop {
                    match listener.accept() {
                        Ok((stream, _)) => {
                            if active.load() >= cfg.max_conns {
                                refuse_conn(Arc::clone(&engine), stream);
                                continue;
                            }
                            if stream.set_nonblocking(true).is_err() {
                                continue;
                            }
                            dispatch(NbStream::Unix(stream));
                        }
                        Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                        Err(e) if e.kind() == ErrorKind::Interrupted => {}
                        Err(_) => {
                            // EMFILE and friends leave the listener readable,
                            // so poll() would return instantly and we'd spin.
                            // Back off and let the loop shards run.
                            std::thread::sleep(crate::server::ACCEPT_ERR_BACKOFF);
                            break;
                        }
                    }
                }
            }
            Some(path)
        }
        Listen::Tcp(addr) => {
            let listener = TcpListener::bind(&addr)?;
            let local = listener.local_addr()?;
            listener.set_nonblocking(true)?;
            apoll.register(&Fd(listener.as_raw_fd()), Token(0), Interest::READABLE)?;
            eprintln!(
                "eccparityd: listening on tcp://{local} (evented, {} loop{}, {} backend)",
                shards.len(),
                if shards.len() == 1 { "" } else { "s" },
                apoll.backend_name(),
            );
            while !stop.load(Ordering::SeqCst) {
                let _ = apoll.poll(&mut aevents, Some(POLL_TICK));
                loop {
                    match listener.accept() {
                        Ok((stream, _)) => {
                            let _ = stream.set_nodelay(true);
                            if active.load() >= cfg.max_conns {
                                refuse_conn(Arc::clone(&engine), stream);
                                continue;
                            }
                            if stream.set_nonblocking(true).is_err() {
                                continue;
                            }
                            dispatch(NbStream::Tcp(stream));
                        }
                        Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                        Err(e) if e.kind() == ErrorKind::Interrupted => {}
                        Err(_) => {
                            std::thread::sleep(crate::server::ACCEPT_ERR_BACKOFF);
                            break;
                        }
                    }
                }
            }
            None
        }
    };

    // Loop threads flush routers + outboxes on their way out; joining
    // them is the drain.
    for (shard, handle) in shards.iter().zip(loops) {
        let _ = shard.waker.wake();
        let _ = handle.join();
    }
    drain(&active, cfg.drain_ms);
    if let Some(path) = unix_path {
        let _ = std::fs::remove_file(&path);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EngineConfig;
    use crate::server::{serve, IoMode};
    use std::io::{BufRead, BufReader};

    fn connect_with_retry(path: &std::path::Path) -> UnixStream {
        for _ in 0..200 {
            if let Ok(s) = UnixStream::connect(path) {
                return s;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        panic!("daemon socket never appeared at {}", path.display());
    }

    fn start_evented(
        engine: &Arc<Engine>,
        cfg: ServerConfig,
        tag: &str,
    ) -> (
        std::path::PathBuf,
        std::thread::JoinHandle<std::io::Result<()>>,
    ) {
        let sock =
            std::env::temp_dir().join(format!("eccparityd-ev-{tag}-{}.sock", std::process::id()));
        let e2 = Arc::clone(engine);
        let s2 = sock.clone();
        let cfg = ServerConfig {
            io_mode: IoMode::Evented,
            ..cfg
        };
        let srv = std::thread::spawn(move || serve(e2, Listen::Unix(s2), cfg));
        (sock, srv)
    }

    #[test]
    fn many_idle_connections_are_cheap_and_served() {
        let engine = Arc::new(Engine::start(EngineConfig {
            shards: 1,
            ..EngineConfig::default()
        }));
        let (sock, srv) = start_evented(&engine, ServerConfig::default(), "idlefleet");

        // Park a pile of idle connections; they must all stay open while
        // an active connection round-trips queries, with no thread per
        // connection.
        let idle: Vec<UnixStream> = (0..100).map(|_| connect_with_retry(&sock)).collect();
        let active = connect_with_retry(&sock);
        let mut w = active.try_clone().unwrap();
        let mut r = BufReader::new(active);
        let mut resp = String::new();
        w.write_all(b"{\"kind\":\"event\",\"node\":5,\"channel\":1,\"bank\":2,\"row\":3}\n")
            .unwrap();
        w.write_all(b"{\"kind\":\"query\",\"op\":\"stats\"}\n")
            .unwrap();
        w.flush().unwrap();
        r.read_line(&mut resp).unwrap();
        assert!(resp.contains("\"events_ingested\":1"), "{resp}");
        let threads: u64 = resp
            .split("\"os_threads\":")
            .nth(1)
            .and_then(|s| s.split(&[',', '}'][..]).next())
            .and_then(|s| s.parse().ok())
            .unwrap_or(0);
        assert!(
            threads > 0 && threads < 64,
            "101 connections must not cost 101 threads, saw {threads}: {resp}"
        );
        drop(idle);
        w.write_all(b"{\"kind\":\"query\",\"op\":\"shutdown\"}\n")
            .unwrap();
        w.flush().unwrap();
        resp.clear();
        r.read_line(&mut resp).unwrap();
        assert!(resp.contains("\"op\":\"shutdown\""), "{resp}");
        srv.join().unwrap().unwrap();
        engine.shutdown();
    }

    #[test]
    fn subscribe_streams_posture_transitions_evented() {
        let engine = Arc::new(Engine::start(EngineConfig {
            shards: 2,
            ..EngineConfig::default()
        }));
        let (sock, srv) = start_evented(&engine, ServerConfig::default(), "sub");

        let sub = connect_with_retry(&sock);
        let mut sw = sub.try_clone().unwrap();
        let mut sr = BufReader::new(sub);
        sw.write_all(b"{\"kind\":\"query\",\"op\":\"subscribe\"}\n")
            .unwrap();
        sw.flush().unwrap();
        let mut resp = String::new();
        sr.read_line(&mut resp).unwrap();
        assert!(resp.contains("\"op\":\"subscribe\""), "{resp}");
        assert!(resp.contains("eccparity-push-v1"), "{resp}");

        // Drive node 9 over a tier edge: one pair migration puts risk at
        // 275000 ppm (nominal → watch).
        let feeder = connect_with_retry(&sock);
        let mut fw = feeder.try_clone().unwrap();
        let mut fr = BufReader::new(feeder);
        fw.write_all(
            b"{\"kind\":\"event\",\"node\":9,\"channel\":0,\"bank\":0,\"row\":0,\"count\":4}\n",
        )
        .unwrap();
        fw.write_all(b"{\"kind\":\"query\",\"op\":\"stats\"}\n")
            .unwrap();
        fw.flush().unwrap();
        resp.clear();
        fr.read_line(&mut resp).unwrap();
        assert!(resp.contains("\"push_subscribers\":1"), "{resp}");

        resp.clear();
        sr.read_line(&mut resp).unwrap();
        assert!(resp.contains("\"schema\":\"eccparity-push-v1\""), "{resp}");
        assert!(resp.contains("\"node\":9"), "{resp}");
        assert!(resp.contains("\"from\":\"nominal\""), "{resp}");
        assert!(resp.contains("\"to\":\"watch\""), "{resp}");

        drop(sw);
        drop(sr);
        fw.write_all(b"{\"kind\":\"query\",\"op\":\"shutdown\"}\n")
            .unwrap();
        fw.flush().unwrap();
        resp.clear();
        fr.read_line(&mut resp).unwrap();
        srv.join().unwrap().unwrap();
        engine.shutdown();
    }

    #[test]
    fn pipelined_split_writes_reassemble() {
        // Drip a request stream byte-by-byte: reassembly across reads
        // must behave exactly like the threaded path.
        let engine = Arc::new(Engine::start(EngineConfig {
            shards: 2,
            ..EngineConfig::default()
        }));
        let (sock, srv) = start_evented(&engine, ServerConfig::default(), "drip");
        let stream = connect_with_retry(&sock);
        let mut w = stream.try_clone().unwrap();
        let mut r = BufReader::new(stream);
        let payload = b"{\"kind\":\"event\",\"node\":1,\"channel\":0,\"bank\":0,\"row\":7}\n{\"kind\":\"query\",\"op\":\"node_risk\",\"node\":1}\n";
        for b in payload.iter() {
            w.write_all(std::slice::from_ref(b)).unwrap();
            w.flush().unwrap();
        }
        let mut resp = String::new();
        r.read_line(&mut resp).unwrap();
        assert!(resp.contains("\"op\":\"node_risk\""), "{resp}");
        assert!(resp.contains("\"events\":1"), "{resp}");
        w.write_all(b"{\"kind\":\"query\",\"op\":\"shutdown\"}\n")
            .unwrap();
        w.flush().unwrap();
        resp.clear();
        r.read_line(&mut resp).unwrap();
        srv.join().unwrap().unwrap();
        engine.shutdown();
    }
}
