//! Bounded, generation-aware shard mailboxes.
//!
//! The first daemon iteration used `std::sync::mpsc::sync_channel`, which
//! is bounded but offers no way to (a) shed the *oldest* queued work under
//! overload or (b) invalidate a queue's current consumer when a shard
//! worker is quarantined and respawned. This queue adds both:
//!
//! - **Depth accounting counts only `Batch` messages.** Control messages
//!   (barriers, queries, snapshots, shutdown) always enqueue: a full
//!   ingest queue must never be able to starve the query plane or wedge a
//!   barrier.
//! - **Two overload policies.** [`OverloadPolicy::Block`] applies
//!   backpressure to the pushing connection thread (the default —
//!   preserves the read-your-writes barrier and lossless ingest).
//!   [`OverloadPolicy::Shed`] drops the *oldest* queued batch to make
//!   room, returning it so the caller can count every shed line in
//!   `service.shed.*`.
//! - **Generations.** Each respawn of a shard's worker bumps the queue
//!   generation. A worker passes its own generation to [`ShardQueue::pop`]
//!   and exits cleanly on [`Popped::Stale`], so a hung-but-alive worker
//!   that finally wakes up cannot race its replacement for messages.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};
use std::time::Duration;

use crate::engine::ShardMsg;

/// What to do when a shard's ingest queue is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OverloadPolicy {
    /// Block the pusher until the worker drains a batch. Lossless;
    /// backpressure propagates to the client socket. The default.
    #[default]
    Block,
    /// Drop the oldest queued batch to admit the new one. Trades the
    /// read-your-writes guarantee for ingest liveness; every dropped
    /// line is returned to the caller for counting.
    Shed,
}

/// Outcome of pushing a batch onto a full-or-not queue.
#[derive(Debug)]
pub enum Pushed {
    /// Enqueued without dropping anything.
    Ok,
    /// Enqueued after shedding the oldest batch; the shed payload is
    /// returned so the caller can attribute every lost line.
    Shed {
        /// The evicted batch's raw newline-delimited bytes.
        bytes: Vec<u8>,
    },
    /// The queue was closed (engine shutting down); nothing enqueued —
    /// the rejected payload is returned so the caller can count it.
    Closed {
        /// The batch that was not admitted.
        bytes: Vec<u8>,
    },
}

/// Outcome of a worker's pop.
#[derive(Debug)]
pub enum Popped {
    /// A message to process.
    Msg(ShardMsg),
    /// The caller's generation is no longer current — a replacement
    /// worker owns this queue now; exit without touching state.
    Stale,
    /// Queue closed and fully drained.
    Closed,
}

struct QueueInner {
    msgs: VecDeque<ShardMsg>,
    /// Number of `Batch` messages currently queued (control messages are
    /// exempt from the depth limit).
    batches: usize,
    generation: u64,
    closed: bool,
}

/// One shard's mailbox. See the module docs for semantics.
pub struct ShardQueue {
    inner: Mutex<QueueInner>,
    /// Signalled when a message is enqueued or the queue closes/bumps.
    pop_cv: Condvar,
    /// Signalled when a batch is drained (room for blocked pushers).
    push_cv: Condvar,
    depth: usize,
}

impl ShardQueue {
    /// A queue admitting at most `depth` batches (minimum 1).
    pub fn new(depth: usize) -> ShardQueue {
        ShardQueue {
            inner: Mutex::new(QueueInner {
                msgs: VecDeque::new(),
                batches: 0,
                generation: 0,
                closed: false,
            }),
            pop_cv: Condvar::new(),
            push_cv: Condvar::new(),
            depth: depth.max(1),
        }
    }

    /// Push an ingest batch under `policy`. Blocks only under
    /// [`OverloadPolicy::Block`] with a full queue.
    pub fn push_batch(&self, bytes: Vec<u8>, policy: OverloadPolicy) -> Pushed {
        let mut g = self.inner.lock().expect("shard queue poisoned");
        loop {
            if g.closed {
                return Pushed::Closed { bytes };
            }
            if g.batches < self.depth {
                g.batches += 1;
                g.msgs.push_back(ShardMsg::Batch(bytes));
                drop(g);
                self.pop_cv.notify_one();
                return Pushed::Ok;
            }
            match policy {
                OverloadPolicy::Block => {
                    g = self.push_cv.wait(g).expect("shard queue poisoned");
                }
                OverloadPolicy::Shed => {
                    // Evict the oldest queued batch; control messages keep
                    // their relative order and are never shed.
                    let pos = g
                        .msgs
                        .iter()
                        .position(|m| matches!(m, ShardMsg::Batch(_)))
                        .expect("batches counter says a batch is queued");
                    let Some(ShardMsg::Batch(old)) = g.msgs.remove(pos) else {
                        unreachable!("position() found a batch");
                    };
                    g.msgs.push_back(ShardMsg::Batch(bytes));
                    drop(g);
                    self.pop_cv.notify_one();
                    return Pushed::Shed { bytes: old };
                }
            }
        }
    }

    /// Enqueue a control message (barrier, query, snapshot, shutdown).
    /// Never blocks on depth and succeeds even on a closed queue, so the
    /// shutdown path can always deliver its final messages.
    pub fn push_ctl(&self, msg: ShardMsg) {
        let mut g = self.inner.lock().expect("shard queue poisoned");
        g.msgs.push_back(msg);
        drop(g);
        self.pop_cv.notify_one();
    }

    /// Pop the next message for a worker running at `my_gen`. Blocks
    /// until a message arrives, the generation moves on, or the queue is
    /// closed *and* drained.
    pub fn pop(&self, my_gen: u64) -> Popped {
        let mut g = self.inner.lock().expect("shard queue poisoned");
        loop {
            if g.generation != my_gen {
                return Popped::Stale;
            }
            if let Some(msg) = g.msgs.pop_front() {
                if matches!(msg, ShardMsg::Batch(_)) {
                    g.batches -= 1;
                    drop(g);
                    self.push_cv.notify_one();
                }
                return Popped::Msg(msg);
            }
            if g.closed {
                return Popped::Closed;
            }
            let (ng, timeout) = self
                .pop_cv
                .wait_timeout(g, Duration::from_millis(200))
                .expect("shard queue poisoned");
            g = ng;
            let _ = timeout; // loop re-checks generation/close either way
        }
    }

    /// Bump the generation (quarantine): the current worker's next pop
    /// returns [`Popped::Stale`]. Queued messages are *retained* for the
    /// replacement worker. Returns the new generation.
    pub fn bump_generation(&self) -> u64 {
        let mut g = self.inner.lock().expect("shard queue poisoned");
        g.generation += 1;
        let gen = g.generation;
        drop(g);
        self.pop_cv.notify_all();
        gen
    }

    /// Current generation.
    pub fn generation(&self) -> u64 {
        self.inner.lock().expect("shard queue poisoned").generation
    }

    /// Number of batches currently queued (diagnostics).
    pub fn queued_batches(&self) -> usize {
        self.inner.lock().expect("shard queue poisoned").batches
    }

    /// Close the queue: pushers get [`Pushed::Closed`], the worker drains
    /// what is queued and then sees [`Popped::Closed`].
    pub fn close(&self) {
        let mut g = self.inner.lock().expect("shard queue poisoned");
        g.closed = true;
        drop(g);
        self.pop_cv.notify_all();
        self.push_cv.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn batch(tag: u8) -> Vec<u8> {
        vec![tag, b'\n']
    }

    #[test]
    fn shed_drops_oldest_batch_and_returns_it() {
        let q = ShardQueue::new(2);
        assert!(matches!(
            q.push_batch(batch(1), OverloadPolicy::Shed),
            Pushed::Ok
        ));
        assert!(matches!(
            q.push_batch(batch(2), OverloadPolicy::Shed),
            Pushed::Ok
        ));
        match q.push_batch(batch(3), OverloadPolicy::Shed) {
            Pushed::Shed { bytes } => assert_eq!(bytes, batch(1), "oldest is shed"),
            other => panic!("expected shed, got {other:?}"),
        }
        // Queue now holds batches 2 and 3, in order.
        match q.pop(0) {
            Popped::Msg(ShardMsg::Batch(b)) => assert_eq!(b, batch(2)),
            other => panic!("{other:?}"),
        }
        match q.pop(0) {
            Popped::Msg(ShardMsg::Batch(b)) => assert_eq!(b, batch(3)),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn control_messages_bypass_depth_and_survive_shed() {
        let q = ShardQueue::new(1);
        assert!(matches!(
            q.push_batch(batch(1), OverloadPolicy::Shed),
            Pushed::Ok
        ));
        let (tx, _rx) = std::sync::mpsc::channel();
        q.push_ctl(ShardMsg::Barrier(tx));
        // Queue full of batches (depth 1) + one barrier; shedding a new
        // batch must evict batch 1, not the barrier.
        assert!(matches!(
            q.push_batch(batch(2), OverloadPolicy::Shed),
            Pushed::Shed { .. }
        ));
        match q.pop(0) {
            Popped::Msg(ShardMsg::Barrier(_)) => {}
            other => panic!("barrier should still be first: {other:?}"),
        }
        match q.pop(0) {
            Popped::Msg(ShardMsg::Batch(b)) => assert_eq!(b, batch(2)),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn block_policy_waits_for_room() {
        let q = Arc::new(ShardQueue::new(1));
        assert!(matches!(
            q.push_batch(batch(1), OverloadPolicy::Block),
            Pushed::Ok
        ));
        let q2 = Arc::clone(&q);
        let pusher = std::thread::spawn(move || q2.push_batch(batch(2), OverloadPolicy::Block));
        std::thread::sleep(Duration::from_millis(50));
        assert!(!pusher.is_finished(), "push must block on a full queue");
        match q.pop(0) {
            Popped::Msg(ShardMsg::Batch(b)) => assert_eq!(b, batch(1)),
            other => panic!("{other:?}"),
        }
        assert!(matches!(pusher.join().unwrap(), Pushed::Ok));
    }

    #[test]
    fn generation_bump_stales_old_worker_and_keeps_messages() {
        let q = ShardQueue::new(4);
        assert!(matches!(
            q.push_batch(batch(7), OverloadPolicy::Block),
            Pushed::Ok
        ));
        let new_gen = q.bump_generation();
        assert_eq!(new_gen, 1);
        assert!(
            matches!(q.pop(0), Popped::Stale),
            "old generation must exit"
        );
        // The replacement worker (generation 1) still sees the batch.
        match q.pop(1) {
            Popped::Msg(ShardMsg::Batch(b)) => assert_eq!(b, batch(7)),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn close_drains_then_reports_closed() {
        let q = ShardQueue::new(4);
        assert!(matches!(
            q.push_batch(batch(1), OverloadPolicy::Block),
            Pushed::Ok
        ));
        q.close();
        assert!(matches!(
            q.push_batch(batch(2), OverloadPolicy::Block),
            Pushed::Closed { .. }
        ));
        assert!(matches!(q.pop(0), Popped::Msg(ShardMsg::Batch(_))));
        assert!(matches!(q.pop(0), Popped::Closed));
    }
}
