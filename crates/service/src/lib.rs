//! `eccparity-service`: the long-lived fleet reliability daemon behind
//! the `eccparityd` binary.
//!
//! The batch pipeline in this repository answers "what *would* each ECC
//! scheme's reliability be" by Monte-Carlo simulation; this crate answers
//! the operational question that motivates ECC Parity deployment in the
//! first place: *given the corrected-error and fault events my fleet is
//! reporting right now, which nodes are at uncorrected-error risk, which
//! pages should be retired (HARP-style), and which memory regions should
//! be promoted to stored-ECC or pre-migrated* (paper §5's counter-mode
//! policy, run continuously instead of per-simulation).
//!
//! Layering, bottom-up:
//!
//! - [`rpc`] — the `eccparity-rpc-v1` wire protocol: newline-delimited
//!   JSON requests (events + queries) and response rendering, with a
//!   byte-scanner fast path for compact event lines.
//! - [`state`] — per-shard state: a [`ecc_parity::health::HealthTable`]
//!   per node plus page CE ledgers, risk scoring, per-region scheme
//!   recommendation, and serde snapshot types.
//! - [`queue`] — bounded, generation-aware shard mailboxes: blocking
//!   backpressure or oldest-batch shedding under overload, with every
//!   shed line returned for accounting.
//! - [`chaos`] — deterministic fault injection against the daemon's own
//!   machinery (batch panics, stalls, worker poisoning), armed by
//!   `ECC_PARITY_SERVICE_CHAOS`.
//! - [`engine`] — actor-per-shard execution (`node % shards` routing,
//!   bounded mailboxes, deterministic merged queries), degraded-shard
//!   quarantine/respawn, timer-driven self-checkpointing, and the
//!   `eccparity-journal-v1` checkpoint/resume discipline.
//! - [`server`] — Unix-socket / TCP front-end, one router per
//!   connection, read-your-writes barrier before every query, bounded
//!   line reads, connection admission caps, and idle timeouts.
//!
//! Determinism is load-bearing: the same event stream produces
//! byte-identical query responses regardless of shard count, thread
//! schedule, or an intervening SIGKILL+restart from a checkpoint. The
//! daemon-lifecycle integration tests and the CI `daemon-smoke` job both
//! `cmp` response transcripts to enforce this.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod chaos;
pub mod engine;
pub mod queue;
pub mod rpc;
pub mod server;
pub mod state;
