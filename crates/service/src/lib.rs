//! `eccparity-service`: the long-lived fleet reliability daemon behind
//! the `eccparityd` binary.
//!
//! The batch pipeline in this repository answers "what *would* each ECC
//! scheme's reliability be" by Monte-Carlo simulation; this crate answers
//! the operational question that motivates ECC Parity deployment in the
//! first place: *given the corrected-error and fault events my fleet is
//! reporting right now, which nodes are at uncorrected-error risk, which
//! pages should be retired (HARP-style), and which memory regions should
//! be promoted to stored-ECC or pre-migrated* (paper §5's counter-mode
//! policy, run continuously instead of per-simulation).
//!
//! Layering, bottom-up:
//!
//! - [`rpc`] — the `eccparity-rpc-v1` wire protocol: newline-delimited
//!   JSON requests (events + queries) and response rendering, with a
//!   byte-scanner fast path for compact event lines.
//! - [`state`] — per-shard state: a [`ecc_parity::health::HealthTable`]
//!   per node plus page CE ledgers, risk scoring, per-region scheme
//!   recommendation, and serde snapshot types.
//! - [`queue`] — bounded, generation-aware shard mailboxes: blocking
//!   backpressure or oldest-batch shedding under overload, with every
//!   shed line returned for accounting.
//! - [`chaos`] — deterministic fault injection against the daemon's own
//!   machinery (batch panics, stalls, worker poisoning), armed by
//!   `ECC_PARITY_SERVICE_CHAOS`.
//! - [`engine`] — actor-per-shard execution (`node % shards` routing,
//!   bounded mailboxes, deterministic merged queries), degraded-shard
//!   quarantine/respawn, timer-driven self-checkpointing, and the
//!   `eccparity-journal-v1` checkpoint/resume discipline.
//! - [`push`] — the `eccparity-push-v1` posture-transition channel: a
//!   fan-out hub from shard workers to `subscribe`d operator
//!   connections, with per-subscriber bounded queues and counted
//!   shedding (`service.push.shed`).
//! - [`server`] — the socket front-ends (Unix-domain or TCP) behind a
//!   shared per-line state machine: the default `evented` mode (in
//!   [`evented`]) multiplexes every connection over a handful of
//!   readiness-driven event-loop shards; the `threads` mode keeps one
//!   blocking thread per connection. Both enforce read-your-writes
//!   barriers before queries, bounded line reads, connection admission
//!   caps, and idle timeouts.
//! - [`evented`] — the nonblocking readiness loop itself: per-connection
//!   read reassembly and write outboxes with watermark backpressure and
//!   interest re-arming over the vendored `mio`-style poller.
//!
//! Determinism is load-bearing: the same event stream produces
//! byte-identical query responses regardless of shard count, thread
//! schedule, or an intervening SIGKILL+restart from a checkpoint. The
//! daemon-lifecycle integration tests and the CI `daemon-smoke` job both
//! `cmp` response transcripts to enforce this.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod chaos;
pub mod engine;
pub mod evented;
pub mod push;
pub mod queue;
pub mod rpc;
pub mod server;
pub mod state;
