//! The sharded ingest/query engine behind `eccparityd`.
//!
//! Actor-per-shard: [`Engine::start`] spawns one worker thread per shard,
//! each exclusively owning a [`ShardState`] partition (`node % shards`).
//! Connections route raw event lines to shards through bounded channels
//! (backpressure instead of unbounded queues); queries fan out to every
//! shard and merge deterministically, so responses are byte-identical
//! regardless of shard count or thread schedule.
//!
//! Persistence reuses the `eccparity-journal-v1` checkpoint discipline
//! from [`eccparity_bench::supervisor`]: a checkpoint serializes every
//! shard's partition into `ShardDone` records behind a `Header`, publishes
//! the whole journal tmp+fsync+rename (readers never see a torn file),
//! and [`Engine::start`] with [`EngineConfig::resume`] replays it —
//! checksum-verified, torn-tail-tolerant — so a SIGKILL'd daemon restarts
//! to exactly the state of its last checkpoint.

use crate::rpc::{self, Query};
use crate::state::{
    merge_top_pages, Geometry, NodeSnapshot, PageRisk, RegionRec, ShardAgg, ShardSnapshot,
    ShardState,
};
use eccparity_bench::hash::fnv1a64;
use eccparity_bench::supervisor::{replay_journal, JournalRecord, JOURNAL_SCHEMA};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, Sender, SyncSender};
use std::sync::Mutex;
use std::time::Instant;

/// Batches a shard channel holds before senders block (backpressure).
const CHANNEL_DEPTH: usize = 256;

/// Router flushes a per-shard buffer once it holds this many bytes.
const BATCH_BYTES: usize = 64 * 1024;

/// Configuration of one engine instance.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Shard (worker thread) count, ≥ 1.
    pub shards: usize,
    /// Per-node health-table geometry.
    pub geom: Geometry,
    /// Checkpoint directory; `None` disables persistence.
    pub state_dir: Option<PathBuf>,
    /// Instance name: journal file stem and metrics title.
    pub name: String,
    /// Load the existing checkpoint journal on start.
    pub resume: bool,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            shards: 4,
            geom: Geometry::default(),
            state_dir: None,
            name: "eccparityd".to_string(),
            resume: false,
        }
    }
}

impl EngineConfig {
    /// Path of this instance's checkpoint journal, if persistence is on.
    pub fn journal_path(&self) -> Option<PathBuf> {
        let dir = self.state_dir.as_ref()?;
        let stem: String = self
            .name
            .chars()
            .map(|c| {
                if c.is_ascii_alphanumeric() || c == '-' || c == '_' {
                    c
                } else {
                    '_'
                }
            })
            .collect();
        Some(dir.join(format!("{stem}.journal.jsonl")))
    }
}

enum ShardMsg {
    /// Newline-separated raw request lines owned by this shard.
    Batch(Vec<u8>),
    /// Reply when everything previously enqueued has been applied.
    Barrier(Sender<()>),
    Agg(Sender<ShardAgg>),
    NodeView(u64, Sender<Option<crate::state::NodeView>>),
    TopPages(usize, Sender<Vec<PageRisk>>),
    Recommend(u64, Sender<Option<Vec<RegionRec>>>),
    Snapshot(Sender<ShardSnapshot>),
    Shutdown,
}

/// What a checkpoint wrote.
#[derive(Debug, Clone)]
pub struct CheckpointInfo {
    /// Journal file published.
    pub path: PathBuf,
    /// Shards serialized.
    pub shards: u64,
    /// Nodes serialized across all shards.
    pub nodes: u64,
}

/// The running engine: shard workers plus routing/query front-end.
pub struct Engine {
    cfg: EngineConfig,
    txs: Vec<SyncSender<ShardMsg>>,
    handles: Mutex<Vec<std::thread::JoinHandle<()>>>,
    /// Lines the connection readers rejected before routing.
    reader_rejects: AtomicU64,
    checkpoints: AtomicU64,
    resumed_nodes: u64,
}

fn shard_worker(shard: u64, mut state: ShardState, rx: Receiver<ShardMsg>) {
    while let Ok(msg) = rx.recv() {
        match msg {
            ShardMsg::Batch(bytes) => {
                let t0 = Instant::now();
                let before_applied = state.applied;
                let before_rejected = state.rejected;
                // A panic while applying (it would take a bug — malformed
                // input is rejected, not thrown) must not kill the shard:
                // a dead shard would hang every future barrier.
                let res = catch_unwind(AssertUnwindSafe(|| {
                    for line in bytes.split(|&b| b == b'\n') {
                        if !line.is_empty() {
                            state.apply_line(line);
                        }
                    }
                }));
                if res.is_err() {
                    obs::counter!("service.shard_panics").inc();
                }
                let applied = state.applied - before_applied;
                let rejected = state.rejected - before_rejected;
                if obs::metrics::enabled() {
                    obs::counter!("service.events_ingested").add(applied);
                    obs::counter!("service.events_rejected").add(rejected);
                    obs::histogram!("service.ingest.batch_events").observe(applied);
                    obs::histogram!("service.ingest.batch_ns")
                        .observe(t0.elapsed().as_nanos() as u64);
                }
            }
            ShardMsg::Barrier(tx) => {
                let _ = tx.send(());
            }
            ShardMsg::Agg(tx) => {
                let _ = tx.send(state.agg());
            }
            ShardMsg::NodeView(node, tx) => {
                let _ = tx.send(state.node_view(node));
            }
            ShardMsg::TopPages(k, tx) => {
                let _ = tx.send(state.top_pages(k));
            }
            ShardMsg::Recommend(node, tx) => {
                let _ = tx.send(state.recommend(node));
            }
            ShardMsg::Snapshot(tx) => {
                let _ = tx.send(state.snapshot(shard));
            }
            ShardMsg::Shutdown => break,
        }
    }
}

impl Engine {
    /// Spawn the shard workers, loading the checkpoint journal first when
    /// `cfg.resume` is set and a valid journal exists.
    pub fn start(cfg: EngineConfig) -> Engine {
        assert!(cfg.shards >= 1, "need at least one shard");
        let mut initial: Vec<Vec<NodeSnapshot>> = (0..cfg.shards).map(|_| Vec::new()).collect();
        let mut resumed_nodes = 0u64;
        if cfg.resume {
            if let Some(path) = cfg.journal_path() {
                if path.exists() {
                    let nodes = load_checkpoint(&path, &cfg.name, &cfg.geom.config_key());
                    resumed_nodes = nodes.len() as u64;
                    for snap in nodes {
                        let shard = (snap.node % cfg.shards as u64) as usize;
                        initial[shard].push(snap);
                    }
                    obs::counter!("service.resumes").inc();
                    if obs::trace::enabled() {
                        obs::trace::event(
                            "service.resume",
                            &[
                                (
                                    "journal",
                                    obs::trace::Value::Str(&path.display().to_string()),
                                ),
                                ("nodes", obs::trace::Value::U64(resumed_nodes)),
                            ],
                        );
                    }
                }
            }
        }
        let mut txs = Vec::with_capacity(cfg.shards);
        let mut handles = Vec::with_capacity(cfg.shards);
        for (i, nodes) in initial.into_iter().enumerate() {
            let (tx, rx) = sync_channel(CHANNEL_DEPTH);
            let state = ShardState::restore(cfg.geom, nodes);
            handles.push(
                std::thread::Builder::new()
                    .name(format!("shard-{i}"))
                    .spawn(move || shard_worker(i as u64, state, rx))
                    .expect("spawn shard worker"),
            );
            txs.push(tx);
        }
        if obs::trace::enabled() {
            obs::trace::event(
                "service.start",
                &[
                    ("shards", obs::trace::Value::U64(cfg.shards as u64)),
                    ("resumed_nodes", obs::trace::Value::U64(resumed_nodes)),
                ],
            );
        }
        Engine {
            cfg,
            txs,
            handles: Mutex::new(Vec::from_iter(handles)),
            reader_rejects: AtomicU64::new(0),
            checkpoints: AtomicU64::new(0),
            resumed_nodes,
        }
    }

    /// This engine's configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.cfg
    }

    /// Shard owning `node`.
    pub fn shard_of(&self, node: u64) -> usize {
        (node % self.cfg.shards as u64) as usize
    }

    /// Enqueue a raw batch for `shard` (blocks when the shard is
    /// `CHANNEL_DEPTH` batches behind — backpressure to the socket).
    pub fn send_batch(&self, shard: usize, bytes: Vec<u8>) {
        self.txs[shard]
            .send(ShardMsg::Batch(bytes))
            .expect("shard worker alive");
    }

    /// Count a line the connection reader rejected before routing.
    pub fn note_reader_reject(&self) {
        self.reader_rejects.fetch_add(1, Ordering::Relaxed);
        obs::counter!("service.events_rejected").inc();
    }

    /// Wait until every shard has drained everything enqueued before the
    /// call (the read-your-writes barrier queries rely on).
    pub fn barrier(&self) {
        let (tx, rx) = std::sync::mpsc::channel();
        for s in &self.txs {
            s.send(ShardMsg::Barrier(tx.clone())).expect("shard alive");
        }
        drop(tx);
        while rx.recv().is_ok() {}
    }

    fn gather<R>(&self, make: impl Fn(Sender<R>) -> ShardMsg) -> Vec<R> {
        let (tx, rx) = std::sync::mpsc::channel();
        for s in &self.txs {
            s.send(make(tx.clone())).expect("shard alive");
        }
        drop(tx);
        let mut out: Vec<R> = rx.iter().collect();
        debug_assert_eq!(out.len(), self.txs.len());
        // Shard replies arrive in scheduler order; queries that merge
        // per-shard lists sort again, and aggregates are commutative, so
        // ordering here only matters for determinism hygiene.
        out.reverse();
        out
    }

    fn merged_agg(&self) -> ShardAgg {
        let mut total = ShardAgg::default();
        for a in self.gather(ShardMsg::Agg) {
            total.merge(&a);
        }
        total
    }

    /// Answer one query. The caller is responsible for flushing its
    /// router and calling [`Engine::barrier`] first. `Checkpoint` and
    /// `Shutdown` are *not* answered here — the server owns their side
    /// effects — and render as errors if they reach this path.
    pub fn query(&self, q: &Query) -> String {
        obs::counter!("service.queries").inc();
        match *q {
            Query::Ping => rpc::ok_response("ping", "\"pong\""),
            Query::NodeRisk { node } => {
                let shard = self.shard_of(node);
                let (tx, rx) = std::sync::mpsc::channel();
                self.txs[shard]
                    .send(ShardMsg::NodeView(node, tx))
                    .expect("shard alive");
                let view = rx.recv().expect("shard replies");
                let result = match view {
                    Some(v) => format!(
                        "{{\"node\":{},\"known\":true,\"risk_ppm\":{},\"events\":{},\"faulty_pairs\":{},\"retired_pages\":{},\"active_counter_sum\":{}}}",
                        v.node, v.risk_ppm, v.events, v.faulty_pairs, v.retired_pages,
                        v.active_counter_sum
                    ),
                    None => format!(
                        "{{\"node\":{node},\"known\":false,\"risk_ppm\":0,\"events\":0,\"faulty_pairs\":0,\"retired_pages\":0,\"active_counter_sum\":0}}"
                    ),
                };
                rpc::ok_response("node_risk", &result)
            }
            Query::Fleet => {
                let a = self.merged_agg();
                let result = format!(
                    "{{\"nodes\":{},\"events\":{},\"faulty_pairs\":{},\"retired_pages\":{},\"active_counter_sum\":{},\"at_risk_nodes\":{},\"posture\":\"{}\"}}",
                    a.nodes,
                    a.events,
                    a.faulty_pairs,
                    a.retired_pages,
                    a.active_counter_sum,
                    a.at_risk_nodes,
                    a.posture()
                );
                rpc::ok_response("fleet", &result)
            }
            Query::TopPages { k } => {
                let lists = self.gather(|tx| ShardMsg::TopPages(k, tx));
                let top = merge_top_pages(lists, k);
                let mut pages = String::from("[");
                for (i, p) in top.iter().enumerate() {
                    if i > 0 {
                        pages.push(',');
                    }
                    pages.push_str(&format!(
                        "{{\"node\":{},\"channel\":{},\"bank\":{},\"row\":{},\"ce\":{},\"retired\":{}}}",
                        p.node, p.channel, p.bank, p.row, p.ce, p.retired
                    ));
                }
                pages.push(']');
                rpc::ok_response("top_pages", &format!("{{\"k\":{k},\"pages\":{pages}}}"))
            }
            Query::Recommend { node } => {
                let shard = self.shard_of(node);
                let (tx, rx) = std::sync::mpsc::channel();
                self.txs[shard]
                    .send(ShardMsg::Recommend(node, tx))
                    .expect("shard alive");
                let result = match rx.recv().expect("shard replies") {
                    Some(recs) => {
                        let mut regions = String::from("[");
                        for (i, r) in recs.iter().enumerate() {
                            if i > 0 {
                                regions.push(',');
                            }
                            regions.push_str(&format!(
                                "{{\"channel\":{},\"action\":\"{}\"}}",
                                r.channel, r.action
                            ));
                        }
                        regions.push(']');
                        format!(
                            "{{\"node\":{node},\"known\":true,\"threshold\":{},\"regions\":{regions}}}",
                            self.cfg.geom.threshold
                        )
                    }
                    None => format!(
                        "{{\"node\":{node},\"known\":false,\"threshold\":{},\"regions\":[]}}",
                        self.cfg.geom.threshold
                    ),
                };
                rpc::ok_response("recommend", &result)
            }
            Query::Stats => {
                let a = self.merged_agg();
                let result = format!(
                    "{{\"shards\":{},\"nodes\":{},\"events_ingested\":{},\"events_rejected\":{},\"checkpoints\":{},\"resumed_nodes\":{}}}",
                    self.cfg.shards,
                    a.nodes,
                    a.applied,
                    a.rejected + self.reader_rejects.load(Ordering::Relaxed),
                    self.checkpoints.load(Ordering::Relaxed),
                    self.resumed_nodes
                );
                rpc::ok_response("stats", &result)
            }
            Query::Checkpoint | Query::Shutdown => {
                rpc::error_response("checkpoint/shutdown must be handled by the server")
            }
        }
    }

    /// Checkpoint every shard's partition to the journal. Runs a barrier
    /// first, so everything enqueued by the calling connection is
    /// captured. (Each shard snapshots at its own message position; for
    /// a globally consistent cut, quiesce other writers — see
    /// `docs/OPERATIONS.md`.)
    pub fn checkpoint(&self) -> std::io::Result<CheckpointInfo> {
        let path = self.cfg.journal_path().ok_or_else(|| {
            std::io::Error::other("no state dir configured (--state-dir / ECC_PARITY_SERVICE_DIR)")
        })?;
        self.barrier();
        let mut snaps = self.gather(ShardMsg::Snapshot);
        snaps.sort_by_key(|s| s.shard);
        let nodes: u64 = snaps.iter().map(|s| s.nodes.len() as u64).sum();
        let mut records = Vec::with_capacity(snaps.len() + 2);
        records.push(JournalRecord::Header {
            schema: JOURNAL_SCHEMA.to_string(),
            campaign: self.cfg.name.clone(),
            config_key: self.cfg.geom.config_key(),
            total_shards: snaps.len() as u64,
        });
        for snap in &snaps {
            let payload = serde_json::to_string(snap)
                .map_err(|e| std::io::Error::other(format!("serialize shard snapshot: {e}")))?;
            records.push(JournalRecord::ShardDone {
                shard: format!("shard-{}", snap.shard),
                class: "completed".to_string(),
                attempts: 1,
                wall_ms: 0,
                checksum: fnv1a64(payload.as_bytes()),
                payload,
            });
        }
        records.push(JournalRecord::RunComplete {
            succeeded: snaps.len() as u64,
        });
        publish_journal(&path, &records)?;
        self.checkpoints.fetch_add(1, Ordering::Relaxed);
        obs::counter!("service.checkpoints").inc();
        if obs::trace::enabled() {
            obs::trace::event(
                "service.checkpoint",
                &[
                    (
                        "journal",
                        obs::trace::Value::Str(&path.display().to_string()),
                    ),
                    ("nodes", obs::trace::Value::U64(nodes)),
                ],
            );
        }
        obs::metrics::write_snapshot_if_configured(&self.cfg.name);
        Ok(CheckpointInfo {
            path,
            shards: snaps.len() as u64,
            nodes,
        })
    }

    /// Stop the shard workers and join them.
    pub fn shutdown(&self) {
        for s in &self.txs {
            let _ = s.send(ShardMsg::Shutdown);
        }
        for h in self.handles.lock().expect("engine lock").drain(..) {
            let _ = h.join();
        }
    }
}

/// Publish `records` to `path` atomically: one JSON line per record,
/// written to a pid-suffixed temp file, fsynced, renamed over the
/// journal — the same discipline as the campaign supervisor's journal.
fn publish_journal(path: &Path, records: &[JournalRecord]) -> std::io::Result<()> {
    use std::io::Write;
    let mut text = String::new();
    for rec in records {
        let line = serde_json::to_string(rec)
            .map_err(|e| std::io::Error::other(format!("serialize journal record: {e}")))?;
        text.push_str(&line);
        text.push('\n');
    }
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir)?;
        }
    }
    let tmp = path.with_extension(format!("tmp.{}", std::process::id()));
    let mut f = std::fs::File::create(&tmp)?;
    f.write_all(text.as_bytes())?;
    f.sync_all()?;
    drop(f);
    std::fs::rename(&tmp, path)
}

/// Load a checkpoint journal: validate the header against this daemon's
/// identity, verify each shard payload's checksum, and return every
/// recovered node snapshot. Damaged shards are skipped with a counter
/// (partial recovery beats none); a mismatched header recovers nothing.
pub fn load_checkpoint(path: &Path, name: &str, config_key: &str) -> Vec<NodeSnapshot> {
    let (records, torn) = replay_journal(path);
    if torn {
        obs::counter!("service.journal_torn_tail").inc();
        eprintln!(
            "eccparityd: checkpoint journal {} had a torn/damaged tail; replaying the intact prefix",
            path.display()
        );
    }
    let header_ok = matches!(
        records.first(),
        Some(JournalRecord::Header { schema, campaign, config_key: ck, .. })
            if schema == JOURNAL_SCHEMA && campaign == name && ck == config_key
    );
    if !header_ok {
        obs::counter!("service.journal_discarded").inc();
        eprintln!(
            "eccparityd: checkpoint journal {} does not match this instance (name/geometry); starting empty",
            path.display()
        );
        return Vec::new();
    }
    let mut nodes = Vec::new();
    for rec in &records {
        if let JournalRecord::ShardDone {
            shard,
            checksum,
            payload,
            ..
        } = rec
        {
            if *checksum != fnv1a64(payload.as_bytes()) {
                obs::counter!("service.journal_corrupt_payloads").inc();
                eprintln!("eccparityd: checkpoint shard {shard} failed its checksum; skipping");
                continue;
            }
            match serde_json::from_str::<ShardSnapshot>(payload) {
                Ok(snap) => nodes.extend(snap.nodes),
                Err(e) => {
                    obs::counter!("service.journal_corrupt_payloads").inc();
                    eprintln!(
                        "eccparityd: checkpoint shard {shard} failed to parse ({e}); skipping"
                    );
                }
            }
        }
    }
    nodes
}

// ---- router ----------------------------------------------------------------

/// Per-connection batcher: accumulates raw event lines per shard and
/// flushes them as bulk batches, amortizing channel traffic.
pub struct Router {
    bufs: Vec<Vec<u8>>,
}

impl Router {
    /// A router for `engine`'s shard count.
    pub fn new(engine: &Engine) -> Router {
        Router {
            bufs: (0..engine.cfg.shards).map(|_| Vec::new()).collect(),
        }
    }

    /// Route one raw request line. Event lines go to their owning shard;
    /// anything unrecognized still goes to shard 0 so rejection is
    /// counted exactly once, in one place.
    pub fn push_line(&mut self, engine: &Engine, line: &[u8]) {
        let shard = match rpc::fast_route(line) {
            Some(node) => engine.shard_of(node),
            None => match rpc::parse_line(line) {
                Ok(rpc::Request::Event(ev)) => engine.shard_of(ev.node),
                _ => 0,
            },
        };
        self.push_routed(engine, shard, line);
    }

    /// Append a line the caller has already routed (the connection reader
    /// runs [`rpc::fast_route`] once and hands the shard in, so the hot
    /// path never scans a line twice).
    pub fn push_routed(&mut self, engine: &Engine, shard: usize, line: &[u8]) {
        let buf = &mut self.bufs[shard];
        buf.extend_from_slice(line);
        buf.push(b'\n');
        if buf.len() >= BATCH_BYTES {
            engine.send_batch(shard, std::mem::take(buf));
        }
    }

    /// Flush every non-empty per-shard buffer.
    pub fn flush(&mut self, engine: &Engine) {
        for (shard, buf) in self.bufs.iter_mut().enumerate() {
            if !buf.is_empty() {
                engine.send_batch(shard, std::mem::take(buf));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rpc::Event;

    fn line(node: u64, ch: u32, bank: u32, row: u32) -> String {
        rpc::render_event(&Event {
            node,
            channel: ch,
            bank,
            row,
            count: 1,
            bank_fault: false,
        })
    }

    fn drive(engine: &Engine, lines: &[String]) {
        let mut router = Router::new(engine);
        for l in lines {
            router.push_line(engine, l.as_bytes());
        }
        router.flush(engine);
        engine.barrier();
    }

    #[test]
    fn queries_identical_across_shard_counts() {
        let lines: Vec<String> = (0..500)
            .map(|i| {
                line(
                    i % 37,
                    (i % 8) as u32,
                    (i % 16) as u32,
                    (i * 13 % 97) as u32,
                )
            })
            .collect();
        let mut golden: Option<Vec<String>> = None;
        for shards in [1usize, 2, 3, 8] {
            let engine = Engine::start(EngineConfig {
                shards,
                ..EngineConfig::default()
            });
            drive(&engine, &lines);
            let responses: Vec<String> = [
                Query::Fleet,
                Query::TopPages { k: 12 },
                Query::NodeRisk { node: 5 },
                Query::NodeRisk { node: 9999 },
                Query::Recommend { node: 5 },
            ]
            .iter()
            .map(|q| engine.query(q))
            .collect();
            engine.shutdown();
            match &golden {
                None => golden = Some(responses),
                Some(g) => assert_eq!(g, &responses, "shards={shards}"),
            }
        }
    }

    #[test]
    fn checkpoint_resume_round_trip_across_shard_counts() {
        let dir = std::env::temp_dir().join(format!("eccparityd-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let lines: Vec<String> = (0..300)
            .map(|i| line(i % 23, (i % 8) as u32, (i % 16) as u32, (i % 41) as u32))
            .collect();
        let cfg = EngineConfig {
            shards: 3,
            state_dir: Some(dir.clone()),
            name: "ckpt-test".to_string(),
            ..EngineConfig::default()
        };
        let engine = Engine::start(cfg.clone());
        drive(&engine, &lines);
        let queries = [
            Query::Fleet,
            Query::TopPages { k: 20 },
            Query::NodeRisk { node: 7 },
            Query::Recommend { node: 7 },
        ];
        let golden: Vec<String> = queries.iter().map(|q| engine.query(q)).collect();
        let info = engine.checkpoint().unwrap();
        assert_eq!(info.shards, 3);
        assert!(info.nodes > 0);
        engine.shutdown();

        // Restart with a different shard count: resume repartitions.
        for shards in [1usize, 5] {
            let engine = Engine::start(EngineConfig {
                shards,
                resume: true,
                ..cfg.clone()
            });
            let resumed: Vec<String> = queries.iter().map(|q| engine.query(q)).collect();
            assert_eq!(golden, resumed, "resume with shards={shards}");
            engine.shutdown();
        }

        // A mismatched geometry refuses the journal.
        let engine = Engine::start(EngineConfig {
            shards: 2,
            resume: true,
            geom: Geometry {
                channels: 4,
                banks: 8,
                threshold: 2,
            },
            ..cfg.clone()
        });
        let fleet = engine.query(&Query::Fleet);
        assert!(fleet.contains("\"nodes\":0"), "{fleet}");
        engine.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn malformed_lines_reject_without_killing_shards() {
        let engine = Engine::start(EngineConfig::default());
        let mut router = Router::new(&engine);
        router.push_line(&engine, b"garbage that is not json");
        router.push_line(
            &engine,
            b"{\"kind\":\"event\",\"node\":1,\"channel\":77,\"bank\":0,\"row\":0}",
        );
        router.push_line(&engine, line(1, 0, 0, 5).as_bytes());
        router.flush(&engine);
        engine.barrier();
        let stats = engine.query(&Query::Stats);
        assert!(stats.contains("\"events_ingested\":1"), "{stats}");
        assert!(stats.contains("\"events_rejected\":2"), "{stats}");
        // Shards are still alive and answering.
        let fleet = engine.query(&Query::Fleet);
        assert!(fleet.contains("\"events\":1"), "{fleet}");
        engine.shutdown();
    }
}
