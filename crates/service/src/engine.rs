//! The sharded ingest/query engine behind `eccparityd`.
//!
//! Actor-per-shard: [`Engine::start`] spawns one worker thread per shard,
//! each exclusively owning a [`ShardState`] partition (`node % shards`).
//! Connections route raw event lines to shards through bounded
//! [`ShardQueue`] mailboxes (backpressure — or, under
//! [`OverloadPolicy::Shed`], oldest-batch shedding with every dropped
//! line counted); queries fan out to every shard and merge
//! deterministically, so responses are byte-identical regardless of
//! shard count or thread schedule.
//!
//! **Degraded-shard mode.** A monitor thread watches every worker: a
//! worker that panics outside its per-batch guard, or stays busy past
//! the watchdog deadline, is *quarantined* — its mailbox generation is
//! bumped (so a hung-but-alive worker can never race its replacement)
//! and, after an exponential backoff, a replacement worker is respawned
//! from the shard's partition of the last checkpoint. Queued messages
//! survive quarantine and are applied by the replacement. While any
//! shard is quarantined the engine answers queries from that shard's
//! last-checkpoint partition instead of blocking, and stamps every
//! response envelope `"degraded":true`. Events the dead worker applied
//! after the last checkpoint are lost and counted
//! (`service.shed.quarantine_events`).
//!
//! **Timer checkpoints.** With [`EngineConfig::checkpoint_interval_ms`]
//! set (and a state dir), a maintenance thread self-checkpoints on that
//! cadence, with bounded retry/backoff when the persist fails — an
//! operator never has to remember to checkpoint.
//!
//! Persistence reuses the `eccparity-journal-v1` checkpoint discipline
//! from [`eccparity_bench::supervisor`]: a checkpoint serializes every
//! shard's partition into `ShardDone` records behind a `Header`, publishes
//! the whole journal tmp+fsync+rename (readers never see a torn file),
//! and [`Engine::start`] with [`EngineConfig::resume`] replays it —
//! checksum-verified, torn-tail-tolerant — so a SIGKILL'd daemon restarts
//! to exactly the state of its last checkpoint.

use crate::chaos::ServiceChaos;
use crate::push::PushHub;
use crate::queue::{OverloadPolicy, Popped, Pushed, ShardQueue};
use crate::rpc::{self, Query};
use crate::state::{
    merge_top_pages, Geometry, NodeSnapshot, NodeView, PageRisk, RegionRec, ShardAgg,
    ShardSnapshot, ShardState,
};
use eccparity_bench::hash::fnv1a64;
use eccparity_bench::supervisor::{replay_journal, JournalRecord, JOURNAL_SCHEMA};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::mpsc::{RecvTimeoutError, Sender};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Router flushes a per-shard buffer once it holds this many bytes.
const BATCH_BYTES: usize = 64 * 1024;

/// Longest the query plane waits on shard replies before substituting
/// last-checkpoint fallbacks (pathological-hang escape hatch; quarantine
/// + respawn normally answers far sooner).
const GATHER_DEADLINE: Duration = Duration::from_secs(10);

/// Monitor thread tick.
const MONITOR_TICK: Duration = Duration::from_millis(25);

/// Cap on the quarantine respawn backoff.
const MAX_BACKOFF_MS: u64 = 5_000;

/// Timer-checkpoint persist attempts per cadence before giving up until
/// the next interval.
const CHECKPOINT_ATTEMPTS: u32 = 3;

/// Configuration of one engine instance.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Shard (worker thread) count, ≥ 1.
    pub shards: usize,
    /// Per-node health-table geometry.
    pub geom: Geometry,
    /// Checkpoint directory; `None` disables persistence.
    pub state_dir: Option<PathBuf>,
    /// Instance name: journal file stem and metrics title.
    pub name: String,
    /// Load the existing checkpoint journal on start.
    pub resume: bool,
    /// Batches a shard mailbox holds before the overload policy applies.
    pub queue_depth: usize,
    /// What to do when a shard mailbox is full: block the pusher
    /// (lossless backpressure, the default) or shed the oldest batch.
    pub overload: OverloadPolicy,
    /// Quarantine a worker busy on one message longer than this
    /// (milliseconds; 0 disables the watchdog).
    pub watchdog_ms: u64,
    /// Self-checkpoint cadence in milliseconds (0 disables; needs a
    /// state dir).
    pub checkpoint_interval_ms: u64,
    /// Base respawn backoff after a quarantine; doubles per consecutive
    /// failure, capped at 5 s.
    pub quarantine_backoff_ms: u64,
    /// Retries for a batch whose application panicked before consuming
    /// any line (injected chaos panics always qualify).
    pub batch_retries: u32,
    /// Lines one `subscribe`d connection may have queued before further
    /// pushes to it are shed (counted in `service.push.shed`).
    pub push_queue: usize,
    /// Deterministic fault injection for this engine's own machinery.
    pub chaos: ServiceChaos,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            shards: 4,
            geom: Geometry::default(),
            state_dir: None,
            name: "eccparityd".to_string(),
            resume: false,
            queue_depth: 256,
            overload: OverloadPolicy::Block,
            watchdog_ms: 5_000,
            checkpoint_interval_ms: 0,
            quarantine_backoff_ms: 50,
            batch_retries: 2,
            push_queue: crate::push::DEFAULT_PUSH_QUEUE,
            chaos: ServiceChaos::off(),
        }
    }
}

impl EngineConfig {
    /// Path of this instance's checkpoint journal, if persistence is on.
    pub fn journal_path(&self) -> Option<PathBuf> {
        let dir = self.state_dir.as_ref()?;
        let stem: String = self
            .name
            .chars()
            .map(|c| {
                if c.is_ascii_alphanumeric() || c == '-' || c == '_' {
                    c
                } else {
                    '_'
                }
            })
            .collect();
        Some(dir.join(format!("{stem}.journal.jsonl")))
    }
}

/// Messages a shard worker consumes from its mailbox. Public because
/// [`crate::queue::ShardQueue`] stores them; constructed only inside
/// this crate.
#[derive(Debug)]
pub enum ShardMsg {
    /// Newline-separated raw request lines owned by this shard.
    Batch(Vec<u8>),
    /// Reply with the shard id once everything enqueued earlier has been
    /// applied.
    Barrier(Sender<u64>),
    /// Reply with this shard's additive aggregate.
    Agg(Sender<(u64, ShardAgg)>),
    /// Reply with one node's view (single-shard query).
    NodeView(u64, Sender<Option<NodeView>>),
    /// Reply with this shard's top-k pages.
    TopPages(usize, Sender<(u64, Vec<PageRisk>)>),
    /// Reply with one node's recommendations (single-shard query).
    Recommend(u64, Sender<Option<Vec<RegionRec>>>),
    /// Reply with this shard's serialized partition.
    Snapshot(Sender<(u64, ShardSnapshot)>),
}

/// What a checkpoint wrote.
#[derive(Debug, Clone)]
pub struct CheckpointInfo {
    /// Journal file published.
    pub path: PathBuf,
    /// Shards serialized.
    pub shards: u64,
    /// Nodes serialized across all shards.
    pub nodes: u64,
}

/// Reasons the front-end rejected input before it reached a shard.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RejectKind {
    /// Line failed to parse at the connection reader.
    Parse,
    /// Line exceeded the configured size cap.
    Oversized,
    /// Connection refused by the admission cap.
    ConnLimit,
}

const STATUS_HEALTHY: u8 = 0;
const STATUS_QUARANTINED: u8 = 1;

/// One shard's slot: mailbox plus worker-health bookkeeping.
struct ShardSlot {
    queue: Arc<ShardQueue>,
    /// `STATUS_HEALTHY` or `STATUS_QUARANTINED`.
    status: AtomicU8,
    /// Engine-relative ms when the worker started its current message;
    /// 0 = idle. The watchdog quarantines on a stale non-zero value.
    busy_since_ms: AtomicU64,
    /// Set by a worker whose run loop panicked (escaped the per-batch
    /// guard); the monitor turns it into a quarantine.
    worker_died: AtomicBool,
    /// Monotonic per-shard batch numbering (continues across respawns,
    /// which is what makes one-shot chaos poisons one-shot).
    batches_seen: AtomicU64,
    /// Events applied since the last checkpoint — the amount lost if the
    /// worker dies now.
    applied_since_ckpt: AtomicU64,
    /// Consecutive quarantines (drives the exponential backoff).
    failures: AtomicU64,
    quarantined_at_ms: AtomicU64,
    handle: Mutex<Option<std::thread::JoinHandle<()>>>,
}

impl ShardSlot {
    fn healthy(&self) -> bool {
        self.status.load(Ordering::SeqCst) == STATUS_HEALTHY
    }
}

struct EngineInner {
    cfg: EngineConfig,
    slots: Vec<ShardSlot>,
    epoch: Instant,
    stop: AtomicBool,
    /// Serializes concurrent checkpoint() callers (timer vs query).
    ckpt_lock: Mutex<()>,
    /// Every node snapshot of the last successful checkpoint (or resume
    /// load) — the state a quarantined shard falls back to and respawns
    /// from.
    last_checkpoint: Mutex<Vec<NodeSnapshot>>,
    // Front-end reject accounting.
    reader_parse_rejects: AtomicU64,
    oversized_rejects: AtomicU64,
    conn_limit_rejects: AtomicU64,
    idle_closed: AtomicU64,
    // Overload/loss accounting.
    shed_batches: AtomicU64,
    shed_lines: AtomicU64,
    panic_lost_lines: AtomicU64,
    quarantine_lost_events: AtomicU64,
    // Degradation accounting.
    batch_panics: AtomicU64,
    quarantines: AtomicU64,
    restarts: AtomicU64,
    // Checkpoint accounting.
    checkpoints: AtomicU64,
    auto_checkpoints: AtomicU64,
    checkpoint_failures: AtomicU64,
    resumed_nodes: u64,
    /// Posture-transition fan-out to `subscribe`d connections.
    push: PushHub,
}

/// The running engine: shard workers, monitor/timer maintenance threads,
/// and the routing/query front-end.
pub struct Engine {
    inner: Arc<EngineInner>,
    maint: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

/// `(Threads, VmRSS-in-kB)` of this process from `/proc/self/status`,
/// `(0, 0)` where procfs is unavailable. Surfaced by the `stats` query so
/// the evented front-end's thread economy is observable (CI gates the
/// idle-fleet run on `os_threads`); like every `stats` field it is
/// process-local and excluded from determinism transcripts.
fn proc_thread_and_rss() -> (u64, u64) {
    let Ok(text) = std::fs::read_to_string("/proc/self/status") else {
        return (0, 0);
    };
    let mut threads = 0;
    let mut rss = 0;
    for line in text.lines() {
        if let Some(rest) = line.strip_prefix("Threads:") {
            threads = rest.trim().parse().unwrap_or(0);
        } else if let Some(rest) = line.strip_prefix("VmRSS:") {
            rss = rest.trim().trim_end_matches("kB").trim().parse().unwrap_or(0);
        }
    }
    (threads, rss)
}

fn count_lines(bytes: &[u8]) -> u64 {
    bytes
        .split(|&b| b == b'\n')
        .filter(|l| !l.is_empty())
        .count() as u64
}

fn backoff_ms(base: u64, failures: u64) -> u64 {
    base.max(1)
        .saturating_mul(1u64 << failures.saturating_sub(1).min(10))
        .min(MAX_BACKOFF_MS)
}

impl EngineInner {
    fn now_ms(&self) -> u64 {
        self.epoch.elapsed().as_millis() as u64
    }

    fn degraded(&self) -> bool {
        self.slots.iter().any(|s| !s.healthy())
    }

    fn degraded_shards(&self) -> u64 {
        self.slots.iter().filter(|s| !s.healthy()).count() as u64
    }

    /// A quarantined shard's stand-in state: its partition of the last
    /// checkpoint (exactly what its replacement worker will restore).
    fn fallback_state(&self, shard: usize) -> ShardState {
        let nodes = self.checkpoint_partition(shard);
        ShardState::restore(self.cfg.geom, nodes)
    }

    fn checkpoint_partition(&self, shard: usize) -> Vec<NodeSnapshot> {
        self.last_checkpoint
            .lock()
            .expect("last-checkpoint lock")
            .iter()
            .filter(|n| (n.node % self.cfg.shards as u64) as usize == shard)
            .cloned()
            .collect()
    }

    /// Fan a control message out to every *healthy* shard, substituting
    /// last-checkpoint fallbacks for quarantined shards (and, as a
    /// pathology escape hatch, for shards that miss the deadline).
    /// Results come back sorted by shard — deterministic merge order.
    fn gather<R>(
        &self,
        mk: impl Fn(Sender<(u64, R)>) -> ShardMsg,
        fallback: impl Fn(&ShardState, u64) -> R,
    ) -> Vec<(u64, R)> {
        let (tx, rx) = std::sync::mpsc::channel();
        let mut out: Vec<(u64, R)> = Vec::with_capacity(self.cfg.shards);
        let mut expected = 0usize;
        for (i, slot) in self.slots.iter().enumerate() {
            if slot.healthy() {
                slot.queue.push_ctl(mk(tx.clone()));
                expected += 1;
            } else {
                out.push((i as u64, fallback(&self.fallback_state(i), i as u64)));
            }
        }
        drop(tx);
        let deadline = Instant::now() + GATHER_DEADLINE;
        while expected > 0 {
            let left = deadline.saturating_duration_since(Instant::now());
            match rx.recv_timeout(left.max(Duration::from_millis(1))) {
                Ok(pair) => {
                    out.push(pair);
                    expected -= 1;
                }
                Err(RecvTimeoutError::Timeout) => {
                    if Instant::now() >= deadline {
                        obs::counter!("service.gather_timeouts").inc();
                        break;
                    }
                }
                Err(RecvTimeoutError::Disconnected) => break,
            }
        }
        for i in 0..self.cfg.shards {
            if !out.iter().any(|(s, _)| *s == i as u64) {
                out.push((i as u64, fallback(&self.fallback_state(i), i as u64)));
            }
        }
        out.sort_by_key(|(s, _)| *s);
        out
    }

    /// Wait until every healthy shard has drained everything enqueued
    /// before the call (the read-your-writes barrier). Quarantined
    /// shards are skipped — their answers come from the last checkpoint
    /// anyway.
    fn barrier(&self) {
        let (tx, rx) = std::sync::mpsc::channel();
        let mut expected = 0usize;
        for slot in &self.slots {
            if slot.healthy() {
                slot.queue.push_ctl(ShardMsg::Barrier(tx.clone()));
                expected += 1;
            }
        }
        drop(tx);
        let deadline = Instant::now() + GATHER_DEADLINE;
        while expected > 0 {
            let left = deadline.saturating_duration_since(Instant::now());
            match rx.recv_timeout(left.max(Duration::from_millis(1))) {
                Ok(_) => expected -= 1,
                Err(RecvTimeoutError::Timeout) => {
                    if Instant::now() >= deadline {
                        obs::counter!("service.barrier_timeouts").inc();
                        break;
                    }
                }
                Err(RecvTimeoutError::Disconnected) => break,
            }
        }
    }

    fn merged_agg(&self) -> ShardAgg {
        let mut total = ShardAgg::default();
        for (_, a) in self.gather(ShardMsg::Agg, |st, _| st.agg()) {
            total.merge(&a);
        }
        total
    }

    fn node_view_of(&self, node: u64) -> Option<NodeView> {
        let shard = (node % self.cfg.shards as u64) as usize;
        if self.slots[shard].healthy() {
            let (tx, rx) = std::sync::mpsc::channel();
            self.slots[shard]
                .queue
                .push_ctl(ShardMsg::NodeView(node, tx));
            if let Ok(v) = rx.recv_timeout(GATHER_DEADLINE) {
                return v;
            }
            obs::counter!("service.gather_timeouts").inc();
        }
        self.fallback_state(shard).node_view(node)
    }

    fn recommend_of(&self, node: u64) -> Option<Vec<RegionRec>> {
        let shard = (node % self.cfg.shards as u64) as usize;
        if self.slots[shard].healthy() {
            let (tx, rx) = std::sync::mpsc::channel();
            self.slots[shard]
                .queue
                .push_ctl(ShardMsg::Recommend(node, tx));
            if let Ok(v) = rx.recv_timeout(GATHER_DEADLINE) {
                return v;
            }
            obs::counter!("service.gather_timeouts").inc();
        }
        self.fallback_state(shard).recommend(node)
    }

    /// Quarantine `shard`: bump its mailbox generation (stale-proofing
    /// any still-running worker), account the events lost since the last
    /// checkpoint, and schedule a respawn after backoff.
    fn quarantine(&self, shard: usize, reason: &str) {
        let slot = &self.slots[shard];
        slot.queue.bump_generation();
        slot.status.store(STATUS_QUARANTINED, Ordering::SeqCst);
        slot.busy_since_ms.store(0, Ordering::SeqCst);
        slot.quarantined_at_ms
            .store(self.now_ms().max(1), Ordering::SeqCst);
        let failures = slot.failures.fetch_add(1, Ordering::SeqCst) + 1;
        let lost = slot.applied_since_ckpt.swap(0, Ordering::SeqCst);
        self.quarantine_lost_events
            .fetch_add(lost, Ordering::Relaxed);
        self.quarantines.fetch_add(1, Ordering::Relaxed);
        obs::counter!("service.shard.quarantines").inc();
        if lost > 0 {
            obs::counter!("service.shed.quarantine_events").add(lost);
        }
        // A dead worker's thread has finished and can be reaped; a hung
        // one cannot be joined — drop the handle and let the generation
        // bump retire it whenever it wakes.
        if let Some(h) = slot.handle.lock().expect("slot handle lock").take() {
            if h.is_finished() {
                let _ = h.join();
            }
        }
        eprintln!(
            "eccparityd: shard {shard} quarantined ({reason}); {lost} events since last \
             checkpoint lost, respawn in {} ms",
            backoff_ms(self.cfg.quarantine_backoff_ms, failures)
        );
        if obs::trace::enabled() {
            obs::trace::event(
                "service.quarantine",
                &[
                    ("shard", obs::trace::Value::U64(shard as u64)),
                    ("reason", obs::trace::Value::Str(reason)),
                    ("lost_events", obs::trace::Value::U64(lost)),
                ],
            );
        }
    }

    /// Checkpoint every shard's partition to the journal. Runs a barrier
    /// first, so everything enqueued by the calling connection is
    /// captured. Quarantined shards contribute their last-checkpoint
    /// partition (fresh state for them no longer exists).
    fn checkpoint(&self) -> std::io::Result<CheckpointInfo> {
        let path = self.cfg.journal_path().ok_or_else(|| {
            std::io::Error::other("no state dir configured (--state-dir / ECC_PARITY_SERVICE_DIR)")
        })?;
        let _serialize = self.ckpt_lock.lock().expect("checkpoint lock");
        self.barrier();
        let snaps: Vec<ShardSnapshot> = self
            .gather(ShardMsg::Snapshot, |st, shard| st.snapshot(shard))
            .into_iter()
            .map(|(_, s)| s)
            .collect();
        let nodes: u64 = snaps.iter().map(|s| s.nodes.len() as u64).sum();
        let mut records = Vec::with_capacity(snaps.len() + 2);
        records.push(JournalRecord::Header {
            schema: JOURNAL_SCHEMA.to_string(),
            campaign: self.cfg.name.clone(),
            config_key: self.cfg.geom.config_key(),
            total_shards: snaps.len() as u64,
        });
        for snap in &snaps {
            let payload = serde_json::to_string(snap)
                .map_err(|e| std::io::Error::other(format!("serialize shard snapshot: {e}")))?;
            records.push(JournalRecord::ShardDone {
                shard: format!("shard-{}", snap.shard),
                class: "completed".to_string(),
                attempts: 1,
                wall_ms: 0,
                checksum: fnv1a64(payload.as_bytes()),
                payload,
                token: 0,
            });
        }
        records.push(JournalRecord::RunComplete {
            succeeded: snaps.len() as u64,
        });
        publish_journal(&path, &records)?;
        // Only after a durable publish does this become the state
        // quarantined shards fall back to / respawn from.
        *self.last_checkpoint.lock().expect("last-checkpoint lock") =
            snaps.into_iter().flat_map(|s| s.nodes).collect();
        for slot in &self.slots {
            if slot.healthy() {
                slot.applied_since_ckpt.store(0, Ordering::SeqCst);
            }
        }
        self.checkpoints.fetch_add(1, Ordering::Relaxed);
        obs::counter!("service.checkpoints").inc();
        if obs::trace::enabled() {
            obs::trace::event(
                "service.checkpoint",
                &[
                    (
                        "journal",
                        obs::trace::Value::Str(&path.display().to_string()),
                    ),
                    ("nodes", obs::trace::Value::U64(nodes)),
                ],
            );
        }
        obs::metrics::write_snapshot_if_configured(&self.cfg.name);
        Ok(CheckpointInfo {
            path,
            shards: self.cfg.shards as u64,
            nodes,
        })
    }
}

// ---- worker ----------------------------------------------------------------

/// Apply one batch with panic containment and convergent retry. Returns
/// `true` when the chaos layer wants the worker poisoned afterwards.
fn apply_batch(inner: &EngineInner, shard: usize, state: &mut ShardState, bytes: Vec<u8>) -> bool {
    let slot = &inner.slots[shard];
    let chaos = inner.cfg.chaos;
    let batch_no = slot.batches_seen.fetch_add(1, Ordering::SeqCst);
    if let Some(ms) = chaos.batch_stall_ms(shard as u64, batch_no) {
        std::thread::sleep(Duration::from_millis(ms));
    }
    let total_lines = count_lines(&bytes);
    let batch_start_lines = state.lines_consumed();
    let mut attempt = 0u32;
    loop {
        attempt += 1;
        let before_applied = state.applied;
        let before_rejected = state.rejected;
        let before_parse = state.rejected_parse;
        let before_geom = state.rejected_geometry;
        let before_lines = state.lines_consumed();
        let t0 = Instant::now();
        // The batch bytes live *outside* this guard, so a panicked
        // attempt retains them for retry. Injected chaos panics fire
        // before any line is consumed, which is what makes the retry
        // converge to the fault-free state.
        let res = catch_unwind(AssertUnwindSafe(|| {
            if chaos.batch_panic(shard as u64, batch_no, attempt) {
                panic!("injected batch panic (service chaos)");
            }
            for line in bytes.split(|&b| b == b'\n') {
                if !line.is_empty() {
                    state.apply_line(line);
                }
            }
        }));
        let applied = state.applied - before_applied;
        let rejected = state.rejected - before_rejected;
        if obs::metrics::enabled() {
            obs::counter!("service.events_ingested").add(applied);
            obs::counter!("service.events_rejected").add(rejected);
            obs::counter!("service.reject.parse").add(state.rejected_parse - before_parse);
            obs::counter!("service.reject.geometry").add(state.rejected_geometry - before_geom);
            obs::histogram!("service.ingest.batch_events").observe(applied);
            obs::histogram!("service.ingest.batch_ns").observe(t0.elapsed().as_nanos() as u64);
        }
        match res {
            Ok(()) => {
                slot.applied_since_ckpt.fetch_add(applied, Ordering::SeqCst);
                break;
            }
            Err(_) => {
                inner.batch_panics.fetch_add(1, Ordering::Relaxed);
                obs::counter!("service.shard_panics").inc();
                obs::counter!("service.shard.batch_panics").inc();
                let consumed_this_attempt = state.lines_consumed() - before_lines;
                if consumed_this_attempt == 0 && attempt <= inner.cfg.batch_retries {
                    // No line was consumed, so a retry cannot double-apply.
                    continue;
                }
                // Mid-line panic (or retries exhausted): abandoning the
                // batch is the only safe move — count every line that
                // never landed.
                let consumed = state.lines_consumed() - batch_start_lines;
                let lost = total_lines.saturating_sub(consumed);
                slot.applied_since_ckpt.fetch_add(applied, Ordering::SeqCst);
                inner.panic_lost_lines.fetch_add(lost, Ordering::Relaxed);
                if lost > 0 {
                    obs::counter!("service.shed.panic_lines").add(lost);
                }
                eprintln!(
                    "eccparityd: shard {shard} abandoned batch {batch_no} after panic \
                     (attempt {attempt}); {lost} lines lost"
                );
                break;
            }
        }
    }
    chaos.worker_poison(shard as u64, batch_no)
}

fn run_worker(inner: &EngineInner, shard: usize, my_gen: u64, nodes: Vec<NodeSnapshot>) {
    let mut state = ShardState::restore(inner.cfg.geom, nodes);
    let slot = &inner.slots[shard];
    loop {
        match slot.queue.pop(my_gen) {
            Popped::Stale | Popped::Closed => return,
            Popped::Msg(msg) => {
                slot.busy_since_ms
                    .store(inner.now_ms().max(1), Ordering::SeqCst);
                let poison = match msg {
                    ShardMsg::Batch(bytes) => {
                        let poison = apply_batch(inner, shard, &mut state, bytes);
                        let transitions = state.take_transitions();
                        if !transitions.is_empty() && inner.push.has_subscribers() {
                            for t in &transitions {
                                inner.push.publish(t);
                            }
                        }
                        poison
                    }
                    ShardMsg::Barrier(tx) => {
                        let _ = tx.send(shard as u64);
                        false
                    }
                    ShardMsg::Agg(tx) => {
                        let _ = tx.send((shard as u64, state.agg()));
                        false
                    }
                    ShardMsg::NodeView(node, tx) => {
                        let _ = tx.send(state.node_view(node));
                        false
                    }
                    ShardMsg::TopPages(k, tx) => {
                        let _ = tx.send((shard as u64, state.top_pages(k)));
                        false
                    }
                    ShardMsg::Recommend(node, tx) => {
                        let _ = tx.send(state.recommend(node));
                        false
                    }
                    ShardMsg::Snapshot(tx) => {
                        let _ = tx.send((shard as u64, state.snapshot(shard as u64)));
                        false
                    }
                };
                slot.busy_since_ms.store(0, Ordering::SeqCst);
                if poison {
                    panic!("injected worker poison (service chaos)");
                }
            }
        }
    }
}

fn spawn_worker(
    inner: &Arc<EngineInner>,
    shard: usize,
    my_gen: u64,
    nodes: Vec<NodeSnapshot>,
) -> std::thread::JoinHandle<()> {
    let inner = Arc::clone(inner);
    std::thread::Builder::new()
        .name(format!("shard-{shard}"))
        .spawn(move || {
            let worker_inner = Arc::clone(&inner);
            let died = catch_unwind(AssertUnwindSafe(move || {
                run_worker(&worker_inner, shard, my_gen, nodes)
            }))
            .is_err();
            if died {
                inner.slots[shard].worker_died.store(true, Ordering::SeqCst);
            }
        })
        .expect("spawn shard worker")
}

// ---- maintenance threads ---------------------------------------------------

fn run_monitor(inner: Arc<EngineInner>) {
    loop {
        if inner.stop.load(Ordering::SeqCst) {
            return;
        }
        std::thread::sleep(MONITOR_TICK);
        let now = inner.now_ms();
        for (i, slot) in inner.slots.iter().enumerate() {
            match slot.status.load(Ordering::SeqCst) {
                STATUS_HEALTHY => {
                    let died = slot.worker_died.swap(false, Ordering::SeqCst);
                    let busy = slot.busy_since_ms.load(Ordering::SeqCst);
                    let hung = inner.cfg.watchdog_ms > 0
                        && busy > 0
                        && now.saturating_sub(busy) > inner.cfg.watchdog_ms;
                    if died {
                        inner.quarantine(i, "worker panicked");
                    } else if hung {
                        inner.quarantine(i, "watchdog deadline exceeded");
                    }
                }
                _ => {
                    let since = now.saturating_sub(slot.quarantined_at_ms.load(Ordering::SeqCst));
                    let failures = slot.failures.load(Ordering::SeqCst);
                    if since >= backoff_ms(inner.cfg.quarantine_backoff_ms, failures) {
                        let gen = slot.queue.generation();
                        let nodes = inner.checkpoint_partition(i);
                        let handle = spawn_worker(&inner, i, gen, nodes);
                        *slot.handle.lock().expect("slot handle lock") = Some(handle);
                        slot.worker_died.store(false, Ordering::SeqCst);
                        slot.status.store(STATUS_HEALTHY, Ordering::SeqCst);
                        inner.restarts.fetch_add(1, Ordering::Relaxed);
                        obs::counter!("service.shard.restarts").inc();
                        eprintln!(
                            "eccparityd: shard {i} respawned from last checkpoint \
                             (restart #{})",
                            inner.restarts.load(Ordering::Relaxed)
                        );
                    }
                }
            }
        }
    }
}

fn run_checkpoint_timer(inner: Arc<EngineInner>) {
    let interval = Duration::from_millis(inner.cfg.checkpoint_interval_ms);
    let mut last = Instant::now();
    loop {
        if inner.stop.load(Ordering::SeqCst) {
            return;
        }
        std::thread::sleep(MONITOR_TICK);
        if last.elapsed() < interval {
            continue;
        }
        let mut attempt = 0u32;
        loop {
            attempt += 1;
            match inner.checkpoint() {
                Ok(info) => {
                    inner.auto_checkpoints.fetch_add(1, Ordering::Relaxed);
                    obs::counter!("service.checkpoint.auto").inc();
                    if obs::trace::enabled() {
                        obs::trace::event(
                            "service.checkpoint_auto",
                            &[("nodes", obs::trace::Value::U64(info.nodes))],
                        );
                    }
                    break;
                }
                Err(e) => {
                    inner.checkpoint_failures.fetch_add(1, Ordering::Relaxed);
                    obs::counter!("service.checkpoint.failures").inc();
                    eprintln!(
                        "eccparityd: timer checkpoint failed (attempt {attempt}/{}): {e}",
                        CHECKPOINT_ATTEMPTS
                    );
                    if attempt >= CHECKPOINT_ATTEMPTS || inner.stop.load(Ordering::SeqCst) {
                        break;
                    }
                    // Bounded backoff between persist retries.
                    std::thread::sleep(Duration::from_millis(50u64 << attempt.min(6)));
                }
            }
        }
        last = Instant::now();
    }
}

// ---- engine front-end ------------------------------------------------------

impl Engine {
    /// Spawn the shard workers and maintenance threads, loading the
    /// checkpoint journal first when `cfg.resume` is set and a valid
    /// journal exists.
    pub fn start(cfg: EngineConfig) -> Engine {
        assert!(cfg.shards >= 1, "need at least one shard");
        let mut resumed: Vec<NodeSnapshot> = Vec::new();
        if cfg.resume {
            if let Some(path) = cfg.journal_path() {
                if path.exists() {
                    resumed = load_checkpoint(&path, &cfg.name, &cfg.geom.config_key());
                    obs::counter!("service.resumes").inc();
                    if obs::trace::enabled() {
                        obs::trace::event(
                            "service.resume",
                            &[
                                (
                                    "journal",
                                    obs::trace::Value::Str(&path.display().to_string()),
                                ),
                                ("nodes", obs::trace::Value::U64(resumed.len() as u64)),
                            ],
                        );
                    }
                }
            }
        }
        let resumed_nodes = resumed.len() as u64;
        let slots: Vec<ShardSlot> = (0..cfg.shards)
            .map(|_| ShardSlot {
                queue: Arc::new(ShardQueue::new(cfg.queue_depth)),
                status: AtomicU8::new(STATUS_HEALTHY),
                busy_since_ms: AtomicU64::new(0),
                worker_died: AtomicBool::new(false),
                batches_seen: AtomicU64::new(0),
                applied_since_ckpt: AtomicU64::new(0),
                failures: AtomicU64::new(0),
                quarantined_at_ms: AtomicU64::new(0),
                handle: Mutex::new(None),
            })
            .collect();
        let timer_enabled = cfg.checkpoint_interval_ms > 0 && cfg.state_dir.is_some();
        let push_queue = cfg.push_queue;
        let inner = Arc::new(EngineInner {
            cfg,
            slots,
            epoch: Instant::now(),
            stop: AtomicBool::new(false),
            ckpt_lock: Mutex::new(()),
            last_checkpoint: Mutex::new(resumed),
            reader_parse_rejects: AtomicU64::new(0),
            oversized_rejects: AtomicU64::new(0),
            conn_limit_rejects: AtomicU64::new(0),
            idle_closed: AtomicU64::new(0),
            shed_batches: AtomicU64::new(0),
            shed_lines: AtomicU64::new(0),
            panic_lost_lines: AtomicU64::new(0),
            quarantine_lost_events: AtomicU64::new(0),
            batch_panics: AtomicU64::new(0),
            quarantines: AtomicU64::new(0),
            restarts: AtomicU64::new(0),
            checkpoints: AtomicU64::new(0),
            auto_checkpoints: AtomicU64::new(0),
            checkpoint_failures: AtomicU64::new(0),
            resumed_nodes,
            push: PushHub::new(push_queue),
        });
        for i in 0..inner.cfg.shards {
            let nodes = inner.checkpoint_partition(i);
            let handle = spawn_worker(&inner, i, 0, nodes);
            *inner.slots[i].handle.lock().expect("slot handle lock") = Some(handle);
        }
        let mut maint = Vec::new();
        {
            let inner = Arc::clone(&inner);
            maint.push(
                std::thread::Builder::new()
                    .name("shard-monitor".to_string())
                    .spawn(move || run_monitor(inner))
                    .expect("spawn monitor"),
            );
        }
        if timer_enabled {
            let inner = Arc::clone(&inner);
            maint.push(
                std::thread::Builder::new()
                    .name("ckpt-timer".to_string())
                    .spawn(move || run_checkpoint_timer(inner))
                    .expect("spawn checkpoint timer"),
            );
        }
        if obs::trace::enabled() {
            obs::trace::event(
                "service.start",
                &[
                    ("shards", obs::trace::Value::U64(inner.cfg.shards as u64)),
                    ("resumed_nodes", obs::trace::Value::U64(resumed_nodes)),
                ],
            );
        }
        Engine {
            inner,
            maint: Mutex::new(maint),
        }
    }

    /// This engine's configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.inner.cfg
    }

    /// Shard owning `node`.
    pub fn shard_of(&self, node: u64) -> usize {
        (node % self.inner.cfg.shards as u64) as usize
    }

    /// Is any shard currently quarantined? Responses produced while this
    /// holds carry `"degraded":true`.
    pub fn degraded(&self) -> bool {
        self.inner.degraded()
    }

    /// Enqueue a raw batch for `shard`. Under [`OverloadPolicy::Block`]
    /// this blocks when the shard is `queue_depth` batches behind
    /// (backpressure to the socket); under [`OverloadPolicy::Shed`] the
    /// oldest queued batch is dropped instead, every line counted.
    pub fn send_batch(&self, shard: usize, bytes: Vec<u8>) {
        match self.inner.slots[shard]
            .queue
            .push_batch(bytes, self.inner.cfg.overload)
        {
            Pushed::Ok => {}
            Pushed::Shed { bytes } => {
                let lines = count_lines(&bytes);
                self.inner.shed_batches.fetch_add(1, Ordering::Relaxed);
                self.inner.shed_lines.fetch_add(lines, Ordering::Relaxed);
                obs::counter!("service.shed.batches").inc();
                obs::counter!("service.shed.lines").add(lines);
            }
            Pushed::Closed { bytes } => {
                // Engine shutting down; the server drains connections
                // first, so a straggler batch here is rare — but never
                // silent.
                let lines = count_lines(&bytes);
                self.inner.shed_batches.fetch_add(1, Ordering::Relaxed);
                self.inner.shed_lines.fetch_add(lines, Ordering::Relaxed);
                obs::counter!("service.shed.batches").inc();
                obs::counter!("service.shed.lines").add(lines);
            }
        }
    }

    /// Count a line the connection front-end rejected before routing.
    pub fn note_reject(&self, kind: RejectKind) {
        match kind {
            RejectKind::Parse => {
                self.inner
                    .reader_parse_rejects
                    .fetch_add(1, Ordering::Relaxed);
                obs::counter!("service.events_rejected").inc();
                obs::counter!("service.reject.parse").inc();
            }
            RejectKind::Oversized => {
                self.inner.oversized_rejects.fetch_add(1, Ordering::Relaxed);
                obs::counter!("service.events_rejected").inc();
                obs::counter!("service.reject.oversized").inc();
            }
            RejectKind::ConnLimit => {
                self.inner
                    .conn_limit_rejects
                    .fetch_add(1, Ordering::Relaxed);
                obs::counter!("service.reject.conn_limit").inc();
            }
        }
    }

    /// Count a connection closed by the idle timeout.
    pub fn note_idle_close(&self) {
        self.inner.idle_closed.fetch_add(1, Ordering::Relaxed);
        obs::counter!("service.conn.idle_closed").inc();
    }

    /// Wait until every healthy shard has drained everything enqueued
    /// before the call (the read-your-writes barrier queries rely on).
    pub fn barrier(&self) {
        self.inner.barrier();
    }

    /// Answer one query. The caller is responsible for flushing its
    /// router and calling [`Engine::barrier`] first. `Checkpoint`,
    /// `Shutdown`, and `Subscribe` are *not* answered here — the server
    /// owns their side effects — and render as errors if they reach this
    /// path.
    pub fn query(&self, q: &Query) -> String {
        let mut out = String::with_capacity(256);
        self.query_into(q, &mut out);
        out
    }

    /// [`Engine::query`], appending the response line (no newline) to a
    /// caller-owned buffer — the connection loops clear and reuse one
    /// buffer per connection instead of allocating a `String` per reply.
    pub fn query_into(&self, q: &Query, out: &mut String) {
        use std::fmt::Write as _;
        obs::counter!("service.queries").inc();
        let inner = &self.inner;
        let degraded = inner.degraded();
        match *q {
            Query::Ping => {
                rpc::ok_response_open(out, "ping", degraded);
                out.push_str("\"pong\"");
                rpc::ok_response_close(out);
            }
            Query::NodeRisk { node } => {
                rpc::ok_response_open(out, "node_risk", degraded);
                match inner.node_view_of(node) {
                    Some(v) => {
                        let _ = write!(
                            out,
                            "{{\"node\":{},\"known\":true,\"risk_ppm\":{},\"events\":{},\"faulty_pairs\":{},\"retired_pages\":{},\"active_counter_sum\":{}}}",
                            v.node, v.risk_ppm, v.events, v.faulty_pairs, v.retired_pages,
                            v.active_counter_sum
                        );
                    }
                    None => {
                        let _ = write!(
                            out,
                            "{{\"node\":{node},\"known\":false,\"risk_ppm\":0,\"events\":0,\"faulty_pairs\":0,\"retired_pages\":0,\"active_counter_sum\":0}}"
                        );
                    }
                }
                rpc::ok_response_close(out);
            }
            Query::Fleet => {
                let a = inner.merged_agg();
                rpc::ok_response_open(out, "fleet", degraded);
                let _ = write!(
                    out,
                    "{{\"nodes\":{},\"events\":{},\"faulty_pairs\":{},\"retired_pages\":{},\"active_counter_sum\":{},\"at_risk_nodes\":{},\"posture\":\"{}\"}}",
                    a.nodes,
                    a.events,
                    a.faulty_pairs,
                    a.retired_pages,
                    a.active_counter_sum,
                    a.at_risk_nodes,
                    a.posture()
                );
                rpc::ok_response_close(out);
            }
            Query::TopPages { k } => {
                let lists: Vec<Vec<PageRisk>> = inner
                    .gather(|tx| ShardMsg::TopPages(k, tx), |st, _| st.top_pages(k))
                    .into_iter()
                    .map(|(_, l)| l)
                    .collect();
                let top = merge_top_pages(lists, k);
                rpc::ok_response_open(out, "top_pages", degraded);
                let _ = write!(out, "{{\"k\":{k},\"pages\":[");
                for (i, p) in top.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    let _ = write!(
                        out,
                        "{{\"node\":{},\"channel\":{},\"bank\":{},\"row\":{},\"ce\":{},\"retired\":{}}}",
                        p.node, p.channel, p.bank, p.row, p.ce, p.retired
                    );
                }
                out.push_str("]}");
                rpc::ok_response_close(out);
            }
            Query::Recommend { node } => {
                rpc::ok_response_open(out, "recommend", degraded);
                match inner.recommend_of(node) {
                    Some(recs) => {
                        let _ = write!(
                            out,
                            "{{\"node\":{node},\"known\":true,\"threshold\":{},\"regions\":[",
                            inner.cfg.geom.threshold
                        );
                        for (i, r) in recs.iter().enumerate() {
                            if i > 0 {
                                out.push(',');
                            }
                            let _ = write!(
                                out,
                                "{{\"channel\":{},\"action\":\"{}\"}}",
                                r.channel, r.action
                            );
                        }
                        out.push_str("]}");
                    }
                    None => {
                        let _ = write!(
                            out,
                            "{{\"node\":{node},\"known\":false,\"threshold\":{},\"regions\":[]}}",
                            inner.cfg.geom.threshold
                        );
                    }
                }
                rpc::ok_response_close(out);
            }
            Query::Stats => {
                let a = inner.merged_agg();
                let rejected_total = a.rejected
                    + inner.reader_parse_rejects.load(Ordering::Relaxed)
                    + inner.oversized_rejects.load(Ordering::Relaxed);
                let (os_threads, rss_kb) = proc_thread_and_rss();
                rpc::ok_response_open(out, "stats", degraded);
                let _ = write!(
                    out,
                    "{{\"shards\":{},\"nodes\":{},\"events_ingested\":{},\"events_rejected\":{},\"rejected_parse\":{},\"rejected_geometry\":{},\"rejected_oversized\":{},\"rejected_conn_limit\":{},\"shed_batches\":{},\"shed_lines\":{},\"panic_lost_lines\":{},\"quarantine_lost_events\":{},\"batch_panics\":{},\"quarantines\":{},\"shard_restarts\":{},\"degraded_shards\":{},\"idle_closed_conns\":{},\"checkpoints\":{},\"auto_checkpoints\":{},\"checkpoint_failures\":{},\"resumed_nodes\":{},\"push_subscribers\":{},\"push_shed\":{},\"os_threads\":{os_threads},\"rss_kb\":{rss_kb}}}",
                    inner.cfg.shards,
                    a.nodes,
                    a.applied,
                    rejected_total,
                    a.rejected_parse + inner.reader_parse_rejects.load(Ordering::Relaxed),
                    a.rejected_geometry,
                    inner.oversized_rejects.load(Ordering::Relaxed),
                    inner.conn_limit_rejects.load(Ordering::Relaxed),
                    inner.shed_batches.load(Ordering::Relaxed),
                    inner.shed_lines.load(Ordering::Relaxed),
                    inner.panic_lost_lines.load(Ordering::Relaxed),
                    inner.quarantine_lost_events.load(Ordering::Relaxed),
                    inner.batch_panics.load(Ordering::Relaxed),
                    inner.quarantines.load(Ordering::Relaxed),
                    inner.restarts.load(Ordering::Relaxed),
                    inner.degraded_shards(),
                    inner.idle_closed.load(Ordering::Relaxed),
                    inner.checkpoints.load(Ordering::Relaxed),
                    inner.auto_checkpoints.load(Ordering::Relaxed),
                    inner.checkpoint_failures.load(Ordering::Relaxed),
                    inner.resumed_nodes,
                    inner.push.subscriber_count(),
                    inner.push.shed_total(),
                );
                rpc::ok_response_close(out);
            }
            Query::Checkpoint | Query::Shutdown | Query::Subscribe => {
                rpc::error_response_into(
                    out,
                    "checkpoint/shutdown/subscribe must be handled by the server",
                );
            }
        }
    }

    /// The posture-transition fan-out hub (for the server front-ends).
    pub fn push_hub(&self) -> &PushHub {
        &self.inner.push
    }

    /// Checkpoint every shard's partition to the journal (see
    /// [`EngineInner`-level docs]: barrier first, quarantined shards
    /// contribute their last-checkpoint partition).
    pub fn checkpoint(&self) -> std::io::Result<CheckpointInfo> {
        self.inner.checkpoint()
    }

    /// Stop maintenance threads and shard workers, draining every queued
    /// message first (close-then-drain, so nothing accepted before
    /// shutdown is silently dropped).
    pub fn shutdown(&self) {
        self.inner.stop.store(true, Ordering::SeqCst);
        // Maintenance first: no respawns may race the queue close.
        for h in self.maint.lock().expect("maint lock").drain(..) {
            let _ = h.join();
        }
        for slot in &self.inner.slots {
            slot.queue.close();
        }
        for slot in &self.inner.slots {
            if let Some(h) = slot.handle.lock().expect("slot handle lock").take() {
                let _ = h.join();
            }
        }
    }
}

/// Publish `records` to `path` atomically: one JSON line per record,
/// written to a pid-suffixed temp file, fsynced, renamed over the
/// journal — the same discipline as the campaign supervisor's journal.
fn publish_journal(path: &Path, records: &[JournalRecord]) -> std::io::Result<()> {
    use std::io::Write;
    let mut text = String::new();
    for rec in records {
        let line = serde_json::to_string(rec)
            .map_err(|e| std::io::Error::other(format!("serialize journal record: {e}")))?;
        text.push_str(&line);
        text.push('\n');
    }
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir)?;
        }
    }
    let tmp = path.with_extension(format!("tmp.{}", std::process::id()));
    let mut f = std::fs::File::create(&tmp)?;
    f.write_all(text.as_bytes())?;
    f.sync_all()?;
    drop(f);
    std::fs::rename(&tmp, path)
}

/// Load a checkpoint journal: validate the header against this daemon's
/// identity, verify each shard payload's checksum, and return every
/// recovered node snapshot. Damaged shards are skipped with a counter
/// (partial recovery beats none); a mismatched header recovers nothing.
pub fn load_checkpoint(path: &Path, name: &str, config_key: &str) -> Vec<NodeSnapshot> {
    let (records, torn) = replay_journal(path);
    if torn {
        obs::counter!("service.journal_torn_tail").inc();
        eprintln!(
            "eccparityd: checkpoint journal {} had a torn/damaged tail; replaying the intact prefix",
            path.display()
        );
    }
    let header_ok = matches!(
        records.first(),
        Some(JournalRecord::Header { schema, campaign, config_key: ck, .. })
            if schema == JOURNAL_SCHEMA && campaign == name && ck == config_key
    );
    if !header_ok {
        obs::counter!("service.journal_discarded").inc();
        eprintln!(
            "eccparityd: checkpoint journal {} does not match this instance (name/geometry); starting empty",
            path.display()
        );
        return Vec::new();
    }
    let mut nodes = Vec::new();
    for rec in &records {
        if let JournalRecord::ShardDone {
            shard,
            checksum,
            payload,
            ..
        } = rec
        {
            if *checksum != fnv1a64(payload.as_bytes()) {
                obs::counter!("service.journal_corrupt_payloads").inc();
                eprintln!("eccparityd: checkpoint shard {shard} failed its checksum; skipping");
                continue;
            }
            match serde_json::from_str::<ShardSnapshot>(payload) {
                Ok(snap) => nodes.extend(snap.nodes),
                Err(e) => {
                    obs::counter!("service.journal_corrupt_payloads").inc();
                    eprintln!(
                        "eccparityd: checkpoint shard {shard} failed to parse ({e}); skipping"
                    );
                }
            }
        }
    }
    nodes
}

// ---- router ----------------------------------------------------------------

/// Per-connection batcher: accumulates raw event lines per shard and
/// flushes them as bulk batches, amortizing channel traffic.
pub struct Router {
    bufs: Vec<Vec<u8>>,
}

impl Router {
    /// A router for `engine`'s shard count.
    pub fn new(engine: &Engine) -> Router {
        Router {
            bufs: (0..engine.config().shards).map(|_| Vec::new()).collect(),
        }
    }

    /// Route one raw request line. Event lines go to their owning shard;
    /// anything unrecognized still goes to shard 0 so rejection is
    /// counted exactly once, in one place.
    pub fn push_line(&mut self, engine: &Engine, line: &[u8]) {
        let shard = match rpc::fast_route(line) {
            Some(node) => engine.shard_of(node),
            None => match rpc::parse_line(line) {
                Ok(rpc::Request::Event(ev)) => engine.shard_of(ev.node),
                _ => 0,
            },
        };
        self.push_routed(engine, shard, line);
    }

    /// Append a line the caller has already routed (the connection reader
    /// runs [`rpc::fast_route`] once and hands the shard in, so the hot
    /// path never scans a line twice).
    pub fn push_routed(&mut self, engine: &Engine, shard: usize, line: &[u8]) {
        let buf = &mut self.bufs[shard];
        buf.extend_from_slice(line);
        buf.push(b'\n');
        if buf.len() >= BATCH_BYTES {
            engine.send_batch(shard, std::mem::take(buf));
        }
    }

    /// Flush every non-empty per-shard buffer.
    pub fn flush(&mut self, engine: &Engine) {
        for (shard, buf) in self.bufs.iter_mut().enumerate() {
            if !buf.is_empty() {
                engine.send_batch(shard, std::mem::take(buf));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rpc::Event;
    use serde_json::Value;

    fn line(node: u64, ch: u32, bank: u32, row: u32) -> String {
        rpc::render_event(&Event {
            node,
            channel: ch,
            bank,
            row,
            count: 1,
            bank_fault: false,
        })
    }

    fn drive(engine: &Engine, lines: &[String]) {
        let mut router = Router::new(engine);
        for l in lines {
            router.push_line(engine, l.as_bytes());
        }
        router.flush(engine);
        engine.barrier();
    }

    fn stats_field(engine: &Engine, field: &str) -> u64 {
        let v: Value = serde_json::from_str(&engine.query(&Query::Stats)).unwrap();
        v["result"][field]
            .as_u64()
            .unwrap_or_else(|| panic!("stats field {field} missing: {v:?}"))
    }

    #[test]
    fn queries_identical_across_shard_counts() {
        let lines: Vec<String> = (0..500)
            .map(|i| {
                line(
                    i % 37,
                    (i % 8) as u32,
                    (i % 16) as u32,
                    (i * 13 % 97) as u32,
                )
            })
            .collect();
        let mut golden: Option<Vec<String>> = None;
        for shards in [1usize, 2, 3, 8] {
            let engine = Engine::start(EngineConfig {
                shards,
                ..EngineConfig::default()
            });
            drive(&engine, &lines);
            let responses: Vec<String> = [
                Query::Fleet,
                Query::TopPages { k: 12 },
                Query::NodeRisk { node: 5 },
                Query::NodeRisk { node: 9999 },
                Query::Recommend { node: 5 },
            ]
            .iter()
            .map(|q| engine.query(q))
            .collect();
            engine.shutdown();
            match &golden {
                None => golden = Some(responses),
                Some(g) => assert_eq!(g, &responses, "shards={shards}"),
            }
        }
    }

    #[test]
    fn checkpoint_resume_round_trip_across_shard_counts() {
        let dir = std::env::temp_dir().join(format!("eccparityd-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let lines: Vec<String> = (0..300)
            .map(|i| line(i % 23, (i % 8) as u32, (i % 16) as u32, (i % 41) as u32))
            .collect();
        let cfg = EngineConfig {
            shards: 3,
            state_dir: Some(dir.clone()),
            name: "ckpt-test".to_string(),
            ..EngineConfig::default()
        };
        let engine = Engine::start(cfg.clone());
        drive(&engine, &lines);
        let queries = [
            Query::Fleet,
            Query::TopPages { k: 20 },
            Query::NodeRisk { node: 7 },
            Query::Recommend { node: 7 },
        ];
        let golden: Vec<String> = queries.iter().map(|q| engine.query(q)).collect();
        let info = engine.checkpoint().unwrap();
        assert_eq!(info.shards, 3);
        assert!(info.nodes > 0);
        engine.shutdown();

        // Restart with a different shard count: resume repartitions.
        for shards in [1usize, 5] {
            let engine = Engine::start(EngineConfig {
                shards,
                resume: true,
                ..cfg.clone()
            });
            let resumed: Vec<String> = queries.iter().map(|q| engine.query(q)).collect();
            assert_eq!(golden, resumed, "resume with shards={shards}");
            engine.shutdown();
        }

        // A mismatched geometry refuses the journal.
        let engine = Engine::start(EngineConfig {
            shards: 2,
            resume: true,
            geom: Geometry {
                channels: 4,
                banks: 8,
                threshold: 2,
            },
            ..cfg.clone()
        });
        let fleet = engine.query(&Query::Fleet);
        assert!(fleet.contains("\"nodes\":0"), "{fleet}");
        engine.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn malformed_lines_reject_with_attribution() {
        let engine = Engine::start(EngineConfig::default());
        let mut router = Router::new(&engine);
        router.push_line(&engine, b"garbage that is not json");
        router.push_line(
            &engine,
            b"{\"kind\":\"event\",\"node\":1,\"channel\":77,\"bank\":0,\"row\":0}",
        );
        router.push_line(&engine, line(1, 0, 0, 5).as_bytes());
        router.flush(&engine);
        engine.barrier();
        let stats = engine.query(&Query::Stats);
        assert!(stats.contains("\"events_ingested\":1"), "{stats}");
        assert!(stats.contains("\"events_rejected\":2"), "{stats}");
        assert_eq!(stats_field(&engine, "rejected_parse"), 1);
        assert_eq!(stats_field(&engine, "rejected_geometry"), 1);
        // Shards are still alive and answering, undegraded.
        let fleet = engine.query(&Query::Fleet);
        assert!(fleet.contains("\"events\":1"), "{fleet}");
        assert!(fleet.contains("\"degraded\":false"), "{fleet}");
        engine.shutdown();
    }

    #[test]
    fn injected_batch_panics_retry_and_converge() {
        let lines: Vec<String> = (0..400)
            .map(|i| line(i % 19, (i % 8) as u32, (i % 16) as u32, (i % 53) as u32))
            .collect();
        // Golden: no chaos.
        let engine = Engine::start(EngineConfig {
            shards: 2,
            ..EngineConfig::default()
        });
        drive(&engine, &lines);
        let queries = [
            Query::Fleet,
            Query::TopPages { k: 15 },
            Query::NodeRisk { node: 3 },
        ];
        let golden: Vec<String> = queries.iter().map(|q| engine.query(q)).collect();
        engine.shutdown();
        // Chaos: panic roughly every other batch, first attempt only.
        let engine = Engine::start(EngineConfig {
            shards: 2,
            chaos: ServiceChaos::explicit(9, 2, 0),
            ..EngineConfig::default()
        });
        // Small batches so plenty of injection sites exist.
        let mut router = Router::new(&engine);
        for (i, l) in lines.iter().enumerate() {
            router.push_line(&engine, l.as_bytes());
            if i % 16 == 15 {
                router.flush(&engine);
            }
        }
        router.flush(&engine);
        engine.barrier();
        let chaosed: Vec<String> = queries.iter().map(|q| engine.query(q)).collect();
        assert_eq!(golden, chaosed, "first-attempt panics must converge");
        assert!(
            stats_field(&engine, "batch_panics") > 0,
            "chaos must actually inject"
        );
        assert_eq!(stats_field(&engine, "panic_lost_lines"), 0);
        assert_eq!(stats_field(&engine, "quarantines"), 0);
        engine.shutdown();
    }

    #[test]
    fn shed_policy_accounts_every_dropped_line() {
        let engine = Engine::start(EngineConfig {
            shards: 1,
            queue_depth: 1,
            overload: OverloadPolicy::Shed,
            // Stall every batch 1-20 ms so the pusher outruns the worker.
            chaos: ServiceChaos::explicit(5, 0, 1),
            ..EngineConfig::default()
        });
        let total = 60u64;
        for i in 0..total {
            let mut batch = line(0, (i % 8) as u32, (i % 16) as u32, i as u32).into_bytes();
            batch.push(b'\n');
            engine.send_batch(0, batch);
        }
        engine.barrier();
        let applied = stats_field(&engine, "events_ingested");
        let shed = stats_field(&engine, "shed_lines");
        assert_eq!(applied + shed, total, "every line applied or counted shed");
        assert!(shed > 0, "depth-1 queue with stalls must shed");
        assert_eq!(stats_field(&engine, "shed_batches"), shed, "1-line batches");
        engine.shutdown();
    }

    #[test]
    fn poisoned_worker_quarantines_restarts_and_stamps_degraded() {
        let dir = std::env::temp_dir().join(format!("eccparityd-poison-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let engine = Engine::start(EngineConfig {
            shards: 1,
            state_dir: Some(dir.clone()),
            name: "poison-test".to_string(),
            // Worker dies after applying its second batch (batch_no 1).
            chaos: ServiceChaos::off().with_poison_batch(1),
            quarantine_backoff_ms: 150,
            ..EngineConfig::default()
        });
        // Batch 0: two events, then checkpoint (retained as fallback).
        engine.send_batch(
            0,
            format!("{}\n{}\n", line(0, 0, 0, 1), line(0, 1, 1, 2)).into_bytes(),
        );
        engine.barrier();
        engine.checkpoint().unwrap();
        // Batch 1: applied, then the worker dies -> its post-checkpoint
        // work is lost and the shard is quarantined.
        engine.send_batch(0, format!("{}\n", line(0, 2, 2, 3)).into_bytes());
        // Wait for the monitor to notice the death.
        let mut saw_degraded = false;
        for _ in 0..100 {
            if engine.degraded() {
                saw_degraded = true;
                break;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        assert!(saw_degraded, "monitor must quarantine the dead worker");
        // A query during quarantine answers from the checkpoint, stamped.
        let fleet = engine.query(&Query::Fleet);
        assert!(fleet.contains("\"degraded\":true"), "{fleet}");
        assert!(fleet.contains("\"events\":2"), "checkpoint state: {fleet}");
        // Wait for the respawn, then verify the shard serves again.
        for _ in 0..200 {
            if !engine.degraded() {
                break;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        assert!(!engine.degraded(), "shard must respawn after backoff");
        engine.send_batch(0, format!("{}\n", line(0, 3, 3, 4)).into_bytes());
        engine.barrier();
        let fleet = engine.query(&Query::Fleet);
        assert!(fleet.contains("\"degraded\":false"), "{fleet}");
        assert!(
            fleet.contains("\"events\":3"),
            "2 checkpointed + 1 new; poisoned batch lost: {fleet}"
        );
        assert_eq!(stats_field(&engine, "quarantines"), 1);
        assert_eq!(stats_field(&engine, "shard_restarts"), 1);
        assert_eq!(
            stats_field(&engine, "quarantine_lost_events"),
            1,
            "the event applied after the checkpoint is accounted"
        );
        engine.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn timer_checkpoints_fire_and_resume() {
        let dir = std::env::temp_dir().join(format!("eccparityd-timer-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cfg = EngineConfig {
            shards: 2,
            state_dir: Some(dir.clone()),
            name: "timer-test".to_string(),
            checkpoint_interval_ms: 100,
            ..EngineConfig::default()
        };
        let engine = Engine::start(cfg.clone());
        drive(&engine, &[line(1, 0, 0, 9), line(2, 1, 1, 9)]);
        let mut fired = false;
        for _ in 0..200 {
            if stats_field(&engine, "auto_checkpoints") > 0 {
                fired = true;
                break;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        assert!(fired, "timer checkpoint must fire without an operator");
        let golden = engine.query(&Query::Fleet);
        engine.shutdown();
        // The published journal resumes cleanly.
        let engine = Engine::start(EngineConfig {
            resume: true,
            checkpoint_interval_ms: 0,
            ..cfg
        });
        assert_eq!(engine.query(&Query::Fleet), golden);
        engine.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn timer_checkpoint_failures_are_counted_not_fatal() {
        let dir = std::env::temp_dir().join(format!("eccparityd-badckpt-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        // Make the journal path unwritable: a plain file where the state
        // *directory* should be.
        std::fs::write(&dir, b"not a directory").unwrap();
        let engine = Engine::start(EngineConfig {
            shards: 1,
            state_dir: Some(dir.clone()),
            name: "badckpt-test".to_string(),
            checkpoint_interval_ms: 80,
            ..EngineConfig::default()
        });
        drive(&engine, &[line(1, 0, 0, 3)]);
        let mut failures = 0;
        for _ in 0..200 {
            failures = stats_field(&engine, "checkpoint_failures");
            if failures > 0 {
                break;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        assert!(failures > 0, "persist failure must be counted");
        // The daemon keeps answering normally.
        let fleet = engine.query(&Query::Fleet);
        assert!(fleet.contains("\"events\":1"), "{fleet}");
        engine.shutdown();
        let _ = std::fs::remove_file(&dir);
    }
}
