//! `eccparity-push-v1`: the daemon-to-operator push channel behind the
//! `subscribe` op.
//!
//! Shard workers detect **posture transitions** while applying events: a
//! node's [`Tier`] (classification of [`NodeHealth::risk_ppm`]) moving
//! between `nominal`, `watch`, and `at_risk`. Each transition renders as
//! one `eccparity-push-v1` line and is fanned out through the
//! [`PushHub`] to every subscribed connection.
//!
//! **Determinism.** A transition line is a pure function of the node's
//! state at the moment it crosses a tier boundary (`node`, the tier
//! pair, `risk_ppm`, and the node's cumulative `events` count), and a
//! node's events are applied in arrival order by its owning shard — so
//! the *per-node subsequence* of push lines is byte-deterministic for a
//! given per-node event order, in both io modes. Interleaving *across*
//! nodes follows shard scheduling and is not specified. A daemon resumed
//! from a checkpoint re-derives tiers from restored state and emits only
//! transitions caused by post-resume events.
//!
//! **Flow control.** Every subscriber owns a bounded queue. A push that
//! finds a subscriber's queue full is dropped *for that subscriber only*
//! and counted in `service.push.shed` — a slow operator terminal can
//! never apply backpressure to shard workers or other subscribers. The
//! evented front-end applies the same shed accounting at its
//! write-outbox watermark (see `docs/OPERATIONS.md` § High
//! connection-count deployments).
//!
//! [`NodeHealth::risk_ppm`]: crate::state::NodeHealth::risk_ppm

use crate::state::AT_RISK_PPM;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};

/// Schema stamp carried by every push line.
pub const PUSH_SCHEMA: &str = "eccparity-push-v1";

/// Default bound of one subscriber's push queue, in lines.
pub const DEFAULT_PUSH_QUEUE: usize = 1024;

/// Posture classification of one node, derived from its risk score.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Tier {
    /// No recorded faults, retirements, or counter pressure.
    Nominal,
    /// Some risk accrued, below the fleet's at-risk threshold.
    Watch,
    /// [`NodeHealth::risk_ppm`] ≥ [`AT_RISK_PPM`] — the node counts
    /// toward the fleet's `at_risk_nodes`.
    ///
    /// [`NodeHealth::risk_ppm`]: crate::state::NodeHealth::risk_ppm
    AtRisk,
}

impl Tier {
    /// Classify a risk score.
    pub fn of_risk(risk_ppm: u64) -> Tier {
        if risk_ppm >= AT_RISK_PPM {
            Tier::AtRisk
        } else if risk_ppm > 0 {
            Tier::Watch
        } else {
            Tier::Nominal
        }
    }

    /// Wire name of the tier.
    pub fn name(self) -> &'static str {
        match self {
            Tier::Nominal => "nominal",
            Tier::Watch => "watch",
            Tier::AtRisk => "at_risk",
        }
    }
}

/// One node crossing a tier boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Transition {
    /// The node whose posture changed.
    pub node: u64,
    /// Tier before the event was applied.
    pub from: Tier,
    /// Tier after the event was applied.
    pub to: Tier,
    /// Risk score after the event was applied.
    pub risk_ppm: u64,
    /// The node's cumulative ingested-event count at the transition —
    /// the deterministic per-node sequence stamp.
    pub events: u64,
}

/// Render one transition as an `eccparity-push-v1` line (no newline).
pub fn render_push(t: &Transition) -> String {
    format!(
        "{{\"schema\":\"{PUSH_SCHEMA}\",\"kind\":\"push\",\"node\":{},\"from\":\"{}\",\"to\":\"{}\",\"risk_ppm\":{},\"events\":{}}}",
        t.node,
        t.from.name(),
        t.to.name(),
        t.risk_ppm,
        t.events
    )
}

/// How a subscriber's io loop learns a push is waiting in its queue.
/// Threaded-mode subscribers block on the queue itself and need none.
type WakeFn = Arc<dyn Fn() + Send + Sync>;

struct Sub {
    id: u64,
    tx: SyncSender<Arc<str>>,
    wake: Option<WakeFn>,
}

/// Fan-out registry connecting shard workers (publishers) to subscribed
/// operator connections. Cheap when idle: `publish` is only invoked by
/// workers after checking [`PushHub::has_subscribers`], so the unsubscribed
/// steady state costs one relaxed atomic load per applied batch.
pub struct PushHub {
    subs: Mutex<Vec<Sub>>,
    active: AtomicUsize,
    next_id: AtomicU64,
    queue_depth: usize,
    shed: AtomicU64,
    published: AtomicU64,
}

impl PushHub {
    /// A hub whose subscribers each buffer at most `queue_depth` lines.
    pub fn new(queue_depth: usize) -> PushHub {
        PushHub {
            subs: Mutex::new(Vec::new()),
            active: AtomicUsize::new(0),
            next_id: AtomicU64::new(1),
            queue_depth: queue_depth.max(1),
            shed: AtomicU64::new(0),
            published: AtomicU64::new(0),
        }
    }

    /// Are any subscribers registered right now?
    pub fn has_subscribers(&self) -> bool {
        self.active.load(Ordering::Relaxed) > 0
    }

    /// Current subscriber count.
    pub fn subscriber_count(&self) -> usize {
        self.active.load(Ordering::Relaxed)
    }

    /// Total push lines dropped on full subscriber queues or full write
    /// outboxes (`service.push.shed`).
    pub fn shed_total(&self) -> u64 {
        self.shed.load(Ordering::Relaxed)
    }

    /// Total transitions published to at least one subscriber.
    pub fn published_total(&self) -> u64 {
        self.published.load(Ordering::Relaxed)
    }

    /// Register a subscriber. `wake` (if any) is invoked after a line is
    /// queued, so an event loop parked in `poll` drains promptly. Returns
    /// the subscription id (for [`PushHub::unsubscribe`]) and the queue's
    /// receiving end.
    pub fn subscribe(&self, wake: Option<Arc<dyn Fn() + Send + Sync>>) -> (u64, Receiver<Arc<str>>) {
        let (tx, rx) = std::sync::mpsc::sync_channel(self.queue_depth);
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let mut subs = self.subs.lock().expect("push hub lock");
        subs.push(Sub { id, tx, wake });
        self.active.store(subs.len(), Ordering::Relaxed);
        obs::counter!("service.push.subscribes").inc();
        (id, rx)
    }

    /// Drop a subscriber (its connection closed or errored).
    pub fn unsubscribe(&self, id: u64) {
        let mut subs = self.subs.lock().expect("push hub lock");
        subs.retain(|s| s.id != id);
        self.active.store(subs.len(), Ordering::Relaxed);
    }

    /// Account outbox-level push drops (the evented front-end sheds at
    /// its write watermark *after* dequeueing) in the same counter.
    pub fn note_shed(&self, lines: u64) {
        if lines > 0 {
            self.shed.fetch_add(lines, Ordering::Relaxed);
            obs::counter!("service.push.shed").add(lines);
        }
    }

    /// Render and fan out one transition. Full subscriber queues shed
    /// (counted); disconnected subscribers are pruned.
    pub fn publish(&self, t: &Transition) {
        let line: Arc<str> = Arc::from(render_push(t).as_str());
        let mut dead: Vec<u64> = Vec::new();
        {
            let subs = self.subs.lock().expect("push hub lock");
            if subs.is_empty() {
                return;
            }
            self.published.fetch_add(1, Ordering::Relaxed);
            for sub in subs.iter() {
                match sub.tx.try_send(Arc::clone(&line)) {
                    Ok(()) => {
                        if let Some(wake) = &sub.wake {
                            wake();
                        }
                    }
                    Err(TrySendError::Full(_)) => {
                        self.shed.fetch_add(1, Ordering::Relaxed);
                        obs::counter!("service.push.shed").inc();
                    }
                    Err(TrySendError::Disconnected(_)) => dead.push(sub.id),
                }
            }
        }
        for id in dead {
            self.unsubscribe(id);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(node: u64, from: Tier, to: Tier) -> Transition {
        Transition {
            node,
            from,
            to,
            risk_ppm: 510_000,
            events: 42,
        }
    }

    #[test]
    fn tiers_classify_the_risk_scale() {
        assert_eq!(Tier::of_risk(0), Tier::Nominal);
        assert_eq!(Tier::of_risk(1), Tier::Watch);
        assert_eq!(Tier::of_risk(AT_RISK_PPM - 1), Tier::Watch);
        assert_eq!(Tier::of_risk(AT_RISK_PPM), Tier::AtRisk);
        assert_eq!(Tier::of_risk(1_000_000), Tier::AtRisk);
    }

    #[test]
    fn push_lines_are_valid_json_with_the_schema_stamp() {
        let line = render_push(&t(7, Tier::Watch, Tier::AtRisk));
        let v: serde_json::Value = serde_json::from_str(&line).unwrap();
        assert_eq!(v["schema"].as_str(), Some(PUSH_SCHEMA));
        assert_eq!(v["kind"].as_str(), Some("push"));
        assert_eq!(v["node"].as_u64(), Some(7));
        assert_eq!(v["from"].as_str(), Some("watch"));
        assert_eq!(v["to"].as_str(), Some("at_risk"));
        assert_eq!(v["risk_ppm"].as_u64(), Some(510_000));
        assert_eq!(v["events"].as_u64(), Some(42));
    }

    #[test]
    fn fanout_delivers_to_every_subscriber_and_sheds_the_slow_one() {
        let hub = PushHub::new(2);
        assert!(!hub.has_subscribers());
        let (_ida, rxa) = hub.subscribe(None);
        let (_idb, rxb) = hub.subscribe(None);
        assert_eq!(hub.subscriber_count(), 2);

        for i in 0..5 {
            hub.publish(&t(i, Tier::Nominal, Tier::Watch));
            // Fast subscriber keeps up; slow subscriber never drains.
            let got = rxa.try_recv().unwrap();
            assert!(got.contains(&format!("\"node\":{i}")), "{got}");
        }
        // Slow subscriber kept the first 2 (queue bound), shed 3.
        assert_eq!(rxb.try_iter().count(), 2);
        assert_eq!(hub.shed_total(), 3);
        assert_eq!(hub.published_total(), 5);
    }

    #[test]
    fn disconnected_subscribers_are_pruned_and_wakes_fire() {
        let hub = PushHub::new(8);
        let woke = Arc::new(AtomicU64::new(0));
        let w2 = Arc::clone(&woke);
        let (_id, rx) = hub.subscribe(Some(Arc::new(move || {
            w2.fetch_add(1, Ordering::Relaxed);
        })));
        let (_id2, rx2) = hub.subscribe(None);
        hub.publish(&t(1, Tier::Nominal, Tier::Watch));
        assert_eq!(woke.load(Ordering::Relaxed), 1);
        drop(rx);
        // Publishing into the dropped receiver prunes it.
        hub.publish(&t(2, Tier::Nominal, Tier::Watch));
        assert_eq!(hub.subscriber_count(), 1);
        assert_eq!(rx2.try_iter().count(), 2);
    }

    #[test]
    fn unsubscribe_makes_the_hub_idle_again() {
        let hub = PushHub::new(8);
        let (id, _rx) = hub.subscribe(None);
        assert!(hub.has_subscribers());
        hub.unsubscribe(id);
        assert!(!hub.has_subscribers());
    }
}
