//! Socket front-end for `eccparityd`: newline-delimited requests over a
//! Unix-domain socket or TCP.
//!
//! One thread per connection; each connection owns a [`Router`] so its
//! event lines batch per shard. Event lines get **no** response (that is
//! what makes ≥1M events/s feasible over a byte stream); query lines get
//! exactly one `eccparity-rpc-v1` response line. A query first flushes
//! the connection's router and runs an engine barrier, so every event
//! written earlier on the same connection is visible to the answer
//! (read-your-writes).
//!
//! **Hostile-client defenses** (all knobs in [`ServerConfig`]):
//!
//! - *Bounded line reads.* The per-connection read buffer never grows
//!   past `max_line_bytes`. A longer line is answered with a structured
//!   `"code":"oversized"` refusal, counted in `service.reject.oversized`,
//!   and discarded up to its terminating newline — the connection stays
//!   usable and memory stays bounded no matter what the client streams.
//! - *Admission cap.* At most `max_conns` connections are served at
//!   once; excess connections get one `"code":"overloaded"` refusal line
//!   (counted in `service.reject.conn_limit`) and are closed.
//! - *Idle timeout.* With `idle_timeout_ms` set, a connection that sends
//!   nothing for that long is closed (counted in
//!   `service.conn.idle_closed`), so abandoned sockets cannot pin the
//!   admission cap.
//! - *Drained shutdown.* After a `shutdown` request, the accept loop
//!   waits up to `drain_ms` for live connections to flush their routers
//!   and exit (they poll the stop flag every 200 ms), so the final
//!   checkpoint taken by the binary sees every in-flight event.

use crate::engine::{Engine, RejectKind, Router};
use crate::rpc::{self, Query, Request};
use std::io::{ErrorKind, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Connection readers wake at this cadence to poll the stop flag and the
/// idle deadline even when the client sends nothing.
const POLL_TICK: Duration = Duration::from_millis(200);

/// Read chunk size; also the resolution of the oversized-line check.
const READ_CHUNK: usize = 64 * 1024;

/// Where the daemon listens.
#[derive(Debug, Clone)]
pub enum Listen {
    /// Unix-domain socket at this path (created, removed on exit).
    Unix(PathBuf),
    /// TCP listener bound to this `host:port`.
    Tcp(String),
}

/// Front-end limits. Defaults are production-safe; the `eccparityd`
/// binary overrides them from flags and `ECC_PARITY_SERVICE_*` knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Connections served concurrently before refusing with
    /// `"code":"overloaded"` (minimum 1).
    pub max_conns: usize,
    /// Close a connection idle this long, in milliseconds (0 = never).
    pub idle_timeout_ms: u64,
    /// Longest request line accepted, in bytes; longer lines are refused
    /// with `"code":"oversized"` and discarded (minimum 1024).
    pub max_line_bytes: usize,
    /// After shutdown, wait this long (milliseconds) for live
    /// connections to flush and exit before `serve` returns.
    pub drain_ms: u64,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            max_conns: 1024,
            idle_timeout_ms: 0,
            max_line_bytes: 1 << 20,
            drain_ms: 5_000,
        }
    }
}

/// What the connection loop needs from a socket beyond byte I/O: a read
/// timeout, so the reader can poll the stop flag and idle deadline.
trait ConnStream: Read + Write {
    fn set_poll_timeout(&self, d: Option<Duration>) -> std::io::Result<()>;
}

impl ConnStream for UnixStream {
    fn set_poll_timeout(&self, d: Option<Duration>) -> std::io::Result<()> {
        self.set_read_timeout(d)
    }
}

impl ConnStream for TcpStream {
    fn set_poll_timeout(&self, d: Option<Duration>) -> std::io::Result<()> {
        self.set_read_timeout(d)
    }
}

fn write_line(out: &mut impl Write, resp: &str) -> std::io::Result<()> {
    out.write_all(resp.as_bytes())?;
    out.write_all(b"\n")?;
    out.flush()
}

/// What processing one request line decided about the connection.
enum LineOutcome {
    Continue,
    Shutdown,
    Closed,
}

fn process_line(
    engine: &Engine,
    router: &mut Router,
    out: &mut impl Write,
    cfg: &ServerConfig,
    mut line: &[u8],
) -> LineOutcome {
    while line.last().is_some_and(|&b| b == b'\r') {
        line = &line[..line.len() - 1];
    }
    if line.is_empty() {
        return LineOutcome::Continue;
    }
    if line.len() > cfg.max_line_bytes {
        engine.note_reject(RejectKind::Oversized);
        let resp = rpc::refusal_response(
            "oversized",
            &format!("line exceeds the {}-byte cap", cfg.max_line_bytes),
        );
        return if write_line(out, &resp).is_err() {
            LineOutcome::Closed
        } else {
            LineOutcome::Continue
        };
    }
    // Hot path: a compact event line routes without a full parse and
    // without a response.
    if let Some(node) = rpc::fast_route(line) {
        router.push_routed(engine, engine.shard_of(node), line);
        return LineOutcome::Continue;
    }
    match rpc::parse_line(line) {
        Ok(Request::Event(_)) => {
            router.push_line(engine, line);
            LineOutcome::Continue
        }
        Ok(Request::Query(q)) => {
            router.flush(engine);
            engine.barrier();
            let mut shutdown = false;
            let resp = match q {
                Query::Checkpoint => match engine.checkpoint() {
                    Ok(info) => {
                        let mut path_json = String::new();
                        rpc::push_json_str(&mut path_json, &info.path.display().to_string());
                        rpc::ok_response(
                            "checkpoint",
                            engine.degraded(),
                            &format!(
                                "{{\"path\":{},\"shards\":{},\"nodes\":{}}}",
                                path_json, info.shards, info.nodes
                            ),
                        )
                    }
                    Err(e) => rpc::error_response(&format!("checkpoint failed: {e}")),
                },
                Query::Shutdown => {
                    shutdown = true;
                    rpc::ok_response("shutdown", engine.degraded(), "\"stopping\"")
                }
                ref q => engine.query(q),
            };
            if write_line(out, &resp).is_err() {
                LineOutcome::Closed
            } else if shutdown {
                LineOutcome::Shutdown
            } else {
                LineOutcome::Continue
            }
        }
        Err(msg) => {
            engine.note_reject(RejectKind::Parse);
            if write_line(out, &rpc::error_response(&msg)).is_err() {
                LineOutcome::Closed
            } else {
                LineOutcome::Continue
            }
        }
    }
}

/// Serve one connection until EOF, I/O error, idle timeout, server stop,
/// or a `shutdown` request. Returns `true` when the client asked the
/// daemon to shut down.
fn handle_conn<S: ConnStream>(
    engine: &Engine,
    cfg: &ServerConfig,
    mut reader: S,
    mut out: S,
    stop: &AtomicBool,
) -> bool {
    obs::counter!("service.connections").inc();
    let _ = reader.set_poll_timeout(Some(POLL_TICK));
    let mut router = Router::new(engine);
    let mut chunk = vec![0u8; READ_CHUNK];
    let mut pending: Vec<u8> = Vec::with_capacity(1024);
    // Inside an oversized line: eat bytes until its newline.
    let mut discarding = false;
    let mut last_activity = Instant::now();
    let mut shutdown = false;
    'conn: loop {
        let n = match reader.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => n,
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                if stop.load(Ordering::SeqCst) {
                    break;
                }
                if cfg.idle_timeout_ms > 0
                    && last_activity.elapsed() >= Duration::from_millis(cfg.idle_timeout_ms)
                {
                    engine.note_idle_close();
                    break;
                }
                continue;
            }
            Err(_) => break,
        };
        last_activity = Instant::now();
        let mut data = &chunk[..n];
        if discarding {
            match data.iter().position(|&b| b == b'\n') {
                Some(nl) => {
                    data = &data[nl + 1..];
                    discarding = false;
                }
                None => continue,
            }
        }
        pending.extend_from_slice(data);
        let mut start = 0;
        while let Some(nl) = pending[start..].iter().position(|&b| b == b'\n') {
            let end = start + nl;
            match process_line(engine, &mut router, &mut out, cfg, &pending[start..end]) {
                LineOutcome::Continue => start = end + 1,
                LineOutcome::Shutdown => {
                    shutdown = true;
                    break 'conn;
                }
                LineOutcome::Closed => break 'conn,
            }
        }
        pending.drain(..start);
        // An incomplete line past the cap is refused *now*, before it can
        // grow without bound; the rest of it is discarded on arrival.
        if pending.len() > cfg.max_line_bytes {
            engine.note_reject(RejectKind::Oversized);
            let resp = rpc::refusal_response(
                "oversized",
                &format!("line exceeds the {}-byte cap", cfg.max_line_bytes),
            );
            if write_line(&mut out, &resp).is_err() {
                break;
            }
            pending.clear();
            discarding = true;
        }
    }
    // A truncated final line (no trailing newline at EOF) is still a
    // request: process it rather than silently dropping bytes the client
    // thinks it sent.
    if !shutdown && !discarding && !pending.is_empty() {
        let line = std::mem::take(&mut pending);
        let _ = process_line(engine, &mut router, &mut out, cfg, &line);
    }
    router.flush(engine);
    shutdown
}

/// Decrements the live-connection count even if the handler panics.
struct ConnGuard(Arc<AtomicUsize>);

impl Drop for ConnGuard {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::SeqCst);
    }
}

/// Refuse a connection over the admission cap: one structured error
/// line, then close. Runs on its own thread so a client that never
/// reads cannot wedge the accept loop.
fn refuse_conn<S: ConnStream + Send + 'static>(engine: Arc<Engine>, mut stream: S) {
    engine.note_reject(RejectKind::ConnLimit);
    std::thread::spawn(move || {
        let _ = stream.set_poll_timeout(Some(POLL_TICK));
        let resp = rpc::refusal_response("overloaded", "connection limit reached, retry later");
        let _ = write_line(&mut stream, &resp);
    });
}

/// Accept connections until a client sends `{"kind":"query","op":"shutdown"}`.
/// Each connection runs on its own thread; the shutdown flag is observed
/// by the accept loop via a self-connect nudge, and `serve` then waits up
/// to [`ServerConfig::drain_ms`] for live connections to flush their
/// routers and exit before returning — so a final checkpoint taken after
/// `serve` sees every in-flight event.
pub fn serve(engine: Arc<Engine>, listen: Listen, cfg: ServerConfig) -> std::io::Result<()> {
    let cfg = Arc::new(ServerConfig {
        max_conns: cfg.max_conns.max(1),
        max_line_bytes: cfg.max_line_bytes.max(1024),
        ..cfg
    });
    let stop = Arc::new(AtomicBool::new(false));
    let active = Arc::new(AtomicUsize::new(0));
    match listen {
        Listen::Unix(path) => {
            if let Some(dir) = path.parent() {
                if !dir.as_os_str().is_empty() {
                    std::fs::create_dir_all(dir)?;
                }
            }
            let _ = std::fs::remove_file(&path);
            let listener = UnixListener::bind(&path)?;
            eprintln!("eccparityd: listening on unix://{}", path.display());
            for conn in listener.incoming() {
                if stop.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(stream) = conn else { continue };
                if active.load(Ordering::SeqCst) >= cfg.max_conns {
                    refuse_conn(Arc::clone(&engine), stream);
                    continue;
                }
                active.fetch_add(1, Ordering::SeqCst);
                let guard = ConnGuard(Arc::clone(&active));
                let engine = Arc::clone(&engine);
                let stop = Arc::clone(&stop);
                let cfg = Arc::clone(&cfg);
                let path = path.clone();
                std::thread::spawn(move || {
                    let _guard = guard;
                    let Ok(writer) = stream.try_clone() else {
                        return;
                    };
                    if handle_conn(&engine, &cfg, stream, writer, &stop) {
                        stop.store(true, Ordering::SeqCst);
                        // Nudge the accept loop out of its blocking accept.
                        let _ = UnixStream::connect(&path);
                    }
                });
            }
            drain(&active, cfg.drain_ms);
            let _ = std::fs::remove_file(&path);
        }
        Listen::Tcp(addr) => {
            let listener = TcpListener::bind(&addr)?;
            let local = listener.local_addr()?;
            eprintln!("eccparityd: listening on tcp://{local}");
            for conn in listener.incoming() {
                if stop.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(stream) = conn else { continue };
                let _ = stream.set_nodelay(true);
                if active.load(Ordering::SeqCst) >= cfg.max_conns {
                    refuse_conn(Arc::clone(&engine), stream);
                    continue;
                }
                active.fetch_add(1, Ordering::SeqCst);
                let guard = ConnGuard(Arc::clone(&active));
                let engine = Arc::clone(&engine);
                let stop = Arc::clone(&stop);
                let cfg = Arc::clone(&cfg);
                std::thread::spawn(move || {
                    let _guard = guard;
                    let Ok(writer) = stream.try_clone() else {
                        return;
                    };
                    if handle_conn(&engine, &cfg, stream, writer, &stop) {
                        stop.store(true, Ordering::SeqCst);
                        let _ = TcpStream::connect(local);
                    }
                });
            }
            drain(&active, cfg.drain_ms);
        }
    }
    Ok(())
}

/// Wait up to `drain_ms` for every live connection thread to exit.
fn drain(active: &AtomicUsize, drain_ms: u64) {
    let deadline = Instant::now() + Duration::from_millis(drain_ms);
    while active.load(Ordering::SeqCst) > 0 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(10));
    }
    let leftover = active.load(Ordering::SeqCst);
    if leftover > 0 {
        eprintln!("eccparityd: drain deadline hit with {leftover} connection(s) still open");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EngineConfig;
    use crate::rpc::Event;
    use std::io::{BufRead, BufReader};

    fn connect_with_retry(path: &std::path::Path) -> UnixStream {
        for _ in 0..200 {
            if let Ok(s) = UnixStream::connect(path) {
                return s;
            }
            std::thread::sleep(std::time::Duration::from_millis(10));
        }
        panic!("daemon socket never appeared at {}", path.display());
    }

    fn start_daemon(
        engine: &Arc<Engine>,
        cfg: ServerConfig,
        tag: &str,
    ) -> (
        std::path::PathBuf,
        std::thread::JoinHandle<std::io::Result<()>>,
    ) {
        let sock =
            std::env::temp_dir().join(format!("eccparityd-{tag}-{}.sock", std::process::id()));
        let e2 = Arc::clone(engine);
        let s2 = sock.clone();
        let srv = std::thread::spawn(move || serve(e2, Listen::Unix(s2), cfg));
        (sock, srv)
    }

    #[test]
    fn unix_socket_round_trip_and_shutdown() {
        let engine = Arc::new(Engine::start(EngineConfig {
            shards: 2,
            ..EngineConfig::default()
        }));
        let (sock, srv) = start_daemon(&engine, ServerConfig::default(), "sock");

        let stream = connect_with_retry(&sock);
        let mut writer = stream.try_clone().unwrap();
        let mut reader = BufReader::new(stream);
        for i in 0..100u64 {
            let ev = rpc::render_event(&Event {
                node: i % 7,
                channel: (i % 8) as u32,
                bank: (i % 16) as u32,
                row: (i % 32) as u32,
                count: 1,
                bank_fault: false,
            });
            writer.write_all(ev.as_bytes()).unwrap();
            writer.write_all(b"\n").unwrap();
        }
        writer.write_all(b"not even json\n").unwrap();
        writer
            .write_all(b"{\"kind\":\"query\",\"op\":\"fleet\"}\n")
            .unwrap();
        writer.flush().unwrap();
        let mut resp = String::new();
        reader.read_line(&mut resp).unwrap();
        assert!(
            resp.contains("\"ok\":false"),
            "malformed line error first: {resp}"
        );
        resp.clear();
        reader.read_line(&mut resp).unwrap();
        assert!(resp.contains("\"op\":\"fleet\""), "{resp}");
        assert!(resp.contains("\"events\":100"), "{resp}");
        assert!(resp.contains("\"degraded\":false"), "{resp}");

        writer
            .write_all(b"{\"kind\":\"query\",\"op\":\"shutdown\"}\n")
            .unwrap();
        writer.flush().unwrap();
        resp.clear();
        reader.read_line(&mut resp).unwrap();
        assert!(resp.contains("\"op\":\"shutdown\""), "{resp}");
        srv.join().unwrap().unwrap();
        engine.shutdown();
        assert!(!sock.exists(), "socket file cleaned up");
    }

    #[test]
    fn oversized_lines_are_refused_and_the_connection_survives() {
        let engine = Arc::new(Engine::start(EngineConfig {
            shards: 1,
            ..EngineConfig::default()
        }));
        let cfg = ServerConfig {
            max_line_bytes: 4096,
            ..ServerConfig::default()
        };
        let (sock, srv) = start_daemon(&engine, cfg, "oversized");

        let stream = connect_with_retry(&sock);
        let mut writer = stream.try_clone().unwrap();
        let mut reader = BufReader::new(stream);
        // A line far past the cap, streamed in pieces like a slow loris.
        let blob = vec![b'x'; 64 * 1024];
        for part in blob.chunks(1000) {
            writer.write_all(part).unwrap();
            writer.flush().unwrap();
        }
        writer.write_all(b"\n").unwrap();
        // The connection must still serve real traffic afterwards.
        writer
            .write_all(b"{\"kind\":\"event\",\"node\":3,\"channel\":0,\"bank\":0,\"row\":1}\n")
            .unwrap();
        writer
            .write_all(b"{\"kind\":\"query\",\"op\":\"stats\"}\n")
            .unwrap();
        writer.flush().unwrap();
        let mut resp = String::new();
        reader.read_line(&mut resp).unwrap();
        assert!(resp.contains("\"code\":\"oversized\""), "{resp}");
        resp.clear();
        reader.read_line(&mut resp).unwrap();
        assert!(resp.contains("\"op\":\"stats\""), "{resp}");
        assert!(resp.contains("\"rejected_oversized\":1"), "{resp}");
        assert!(resp.contains("\"events_ingested\":1"), "{resp}");

        writer
            .write_all(b"{\"kind\":\"query\",\"op\":\"shutdown\"}\n")
            .unwrap();
        writer.flush().unwrap();
        resp.clear();
        reader.read_line(&mut resp).unwrap();
        srv.join().unwrap().unwrap();
        engine.shutdown();
    }

    #[test]
    fn admission_cap_refuses_with_structured_error() {
        let engine = Arc::new(Engine::start(EngineConfig {
            shards: 1,
            ..EngineConfig::default()
        }));
        let cfg = ServerConfig {
            max_conns: 1,
            ..ServerConfig::default()
        };
        let (sock, srv) = start_daemon(&engine, cfg, "cap");

        let first = connect_with_retry(&sock);
        // Prove the first connection is admitted (a query round-trips)
        // before the second attempt, so the cap is actually occupied.
        let mut w1 = first.try_clone().unwrap();
        let mut r1 = BufReader::new(first);
        w1.write_all(b"{\"kind\":\"query\",\"op\":\"stats\"}\n")
            .unwrap();
        w1.flush().unwrap();
        let mut resp = String::new();
        r1.read_line(&mut resp).unwrap();
        assert!(resp.contains("\"op\":\"stats\""), "{resp}");

        let second = UnixStream::connect(&sock).unwrap();
        let mut r2 = BufReader::new(second);
        resp.clear();
        r2.read_line(&mut resp).unwrap();
        assert!(resp.contains("\"code\":\"overloaded\""), "{resp}");
        resp.clear();
        assert_eq!(r2.read_line(&mut resp).unwrap(), 0, "refused conn closes");

        w1.write_all(b"{\"kind\":\"query\",\"op\":\"shutdown\"}\n")
            .unwrap();
        w1.flush().unwrap();
        resp.clear();
        r1.read_line(&mut resp).unwrap();
        srv.join().unwrap().unwrap();
        engine.shutdown();
    }

    #[test]
    fn idle_connections_are_closed_and_counted() {
        let engine = Arc::new(Engine::start(EngineConfig {
            shards: 1,
            ..EngineConfig::default()
        }));
        let cfg = ServerConfig {
            idle_timeout_ms: 150,
            ..ServerConfig::default()
        };
        let (sock, srv) = start_daemon(&engine, cfg, "idle");

        let idle = connect_with_retry(&sock);
        let mut r = BufReader::new(idle.try_clone().unwrap());
        let mut resp = String::new();
        // The server closes us without a response once the idle deadline
        // (150 ms) passes; read_line returning 0 is that close.
        assert_eq!(r.read_line(&mut resp).unwrap(), 0, "idle conn closed");
        drop(idle);

        let active = connect_with_retry(&sock);
        let mut w = active.try_clone().unwrap();
        let mut r = BufReader::new(active);
        w.write_all(b"{\"kind\":\"query\",\"op\":\"stats\"}\n")
            .unwrap();
        w.flush().unwrap();
        resp.clear();
        r.read_line(&mut resp).unwrap();
        assert!(resp.contains("\"idle_closed_conns\":1"), "{resp}");
        w.write_all(b"{\"kind\":\"query\",\"op\":\"shutdown\"}\n")
            .unwrap();
        w.flush().unwrap();
        resp.clear();
        r.read_line(&mut resp).unwrap();
        srv.join().unwrap().unwrap();
        engine.shutdown();
    }

    #[test]
    fn truncated_final_line_is_still_processed() {
        let engine = Arc::new(Engine::start(EngineConfig {
            shards: 1,
            ..EngineConfig::default()
        }));
        let (sock, srv) = start_daemon(&engine, ServerConfig::default(), "trunc");

        // One complete event, then a truncated event with no newline, EOF.
        let stream = connect_with_retry(&sock);
        let mut w = stream.try_clone().unwrap();
        w.write_all(b"{\"kind\":\"event\",\"node\":1,\"channel\":0,\"bank\":0,\"row\":1}\n")
            .unwrap();
        w.write_all(b"{\"kind\":\"event\",\"node\":2,\"channel\":0,\"bank\":0,\"row\":2}")
            .unwrap();
        w.flush().unwrap();
        drop(w);
        drop(stream);

        // Poll stats on a second connection until both events landed.
        let stream = connect_with_retry(&sock);
        let mut w = stream.try_clone().unwrap();
        let mut r = BufReader::new(stream);
        let mut resp = String::new();
        for _ in 0..100 {
            w.write_all(b"{\"kind\":\"query\",\"op\":\"stats\"}\n")
                .unwrap();
            w.flush().unwrap();
            resp.clear();
            r.read_line(&mut resp).unwrap();
            if resp.contains("\"events_ingested\":2") {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(10));
        }
        assert!(
            resp.contains("\"events_ingested\":2"),
            "truncated final line must be applied: {resp}"
        );
        w.write_all(b"{\"kind\":\"query\",\"op\":\"shutdown\"}\n")
            .unwrap();
        w.flush().unwrap();
        resp.clear();
        r.read_line(&mut resp).unwrap();
        srv.join().unwrap().unwrap();
        engine.shutdown();
    }
}
