//! Socket front-end for `eccparityd`: newline-delimited requests over a
//! Unix-domain socket or TCP.
//!
//! One thread per connection; each connection owns a [`Router`] so its
//! event lines batch per shard. Event lines get **no** response (that is
//! what makes ≥1M events/s feasible over a byte stream); query lines get
//! exactly one `eccparity-rpc-v1` response line. A query first flushes
//! the connection's router and runs an engine barrier, so every event
//! written earlier on the same connection is visible to the answer
//! (read-your-writes).

use crate::engine::{Engine, Router};
use crate::rpc::{self, Query, Request};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Where the daemon listens.
#[derive(Debug, Clone)]
pub enum Listen {
    /// Unix-domain socket at this path (created, removed on exit).
    Unix(PathBuf),
    /// TCP listener bound to this `host:port`.
    Tcp(String),
}

fn write_line(out: &mut impl Write, resp: &str) -> std::io::Result<()> {
    out.write_all(resp.as_bytes())?;
    out.write_all(b"\n")?;
    out.flush()
}

/// Serve one connection until EOF, I/O error, or a `shutdown` request.
/// Returns `true` when the client asked the daemon to shut down.
fn handle_conn<S: Read + Write>(engine: &Engine, stream_in: S, mut out: S) -> bool {
    obs::counter!("service.connections").inc();
    let mut reader = BufReader::with_capacity(1 << 20, stream_in);
    let mut router = Router::new(engine);
    let mut line: Vec<u8> = Vec::with_capacity(1024);
    let mut shutdown = false;
    loop {
        line.clear();
        match reader.read_until(b'\n', &mut line) {
            Ok(0) | Err(_) => break,
            Ok(_) => {}
        }
        while line.last().is_some_and(|&b| b == b'\n' || b == b'\r') {
            line.pop();
        }
        if line.is_empty() {
            continue;
        }
        // Hot path: a compact event line routes without a full parse and
        // without a response.
        if let Some(node) = rpc::fast_route(&line) {
            router.push_routed(engine, engine.shard_of(node), &line);
            continue;
        }
        match rpc::parse_line(&line) {
            Ok(Request::Event(_)) => router.push_line(engine, &line),
            Ok(Request::Query(q)) => {
                router.flush(engine);
                engine.barrier();
                let resp = match q {
                    Query::Checkpoint => match engine.checkpoint() {
                        Ok(info) => {
                            let mut path_json = String::new();
                            rpc::push_json_str(&mut path_json, &info.path.display().to_string());
                            rpc::ok_response(
                                "checkpoint",
                                &format!(
                                    "{{\"path\":{},\"shards\":{},\"nodes\":{}}}",
                                    path_json, info.shards, info.nodes
                                ),
                            )
                        }
                        Err(e) => rpc::error_response(&format!("checkpoint failed: {e}")),
                    },
                    Query::Shutdown => {
                        shutdown = true;
                        rpc::ok_response("shutdown", "\"stopping\"")
                    }
                    ref q => engine.query(q),
                };
                if write_line(&mut out, &resp).is_err() || shutdown {
                    break;
                }
            }
            Err(msg) => {
                engine.note_reader_reject();
                if write_line(&mut out, &rpc::error_response(&msg)).is_err() {
                    break;
                }
            }
        }
    }
    router.flush(engine);
    shutdown
}

/// Accept connections until a client sends `{"kind":"query","op":"shutdown"}`.
/// Each connection runs on its own thread; the shutdown flag is observed
/// by the accept loop via a self-connect nudge, so `serve` returns
/// promptly after the shutdown response is written.
pub fn serve(engine: Arc<Engine>, listen: Listen) -> std::io::Result<()> {
    let stop = Arc::new(AtomicBool::new(false));
    match listen {
        Listen::Unix(path) => {
            if let Some(dir) = path.parent() {
                if !dir.as_os_str().is_empty() {
                    std::fs::create_dir_all(dir)?;
                }
            }
            let _ = std::fs::remove_file(&path);
            let listener = UnixListener::bind(&path)?;
            eprintln!("eccparityd: listening on unix://{}", path.display());
            for conn in listener.incoming() {
                if stop.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(stream) = conn else { continue };
                let engine = Arc::clone(&engine);
                let stop = Arc::clone(&stop);
                let path = path.clone();
                std::thread::spawn(move || {
                    let Ok(writer) = stream.try_clone() else {
                        return;
                    };
                    if handle_conn(&engine, stream, writer) {
                        stop.store(true, Ordering::SeqCst);
                        // Nudge the accept loop out of its blocking accept.
                        let _ = UnixStream::connect(&path);
                    }
                });
            }
            let _ = std::fs::remove_file(&path);
        }
        Listen::Tcp(addr) => {
            let listener = TcpListener::bind(&addr)?;
            let local = listener.local_addr()?;
            eprintln!("eccparityd: listening on tcp://{local}");
            for conn in listener.incoming() {
                if stop.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(stream) = conn else { continue };
                let _ = stream.set_nodelay(true);
                let engine = Arc::clone(&engine);
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    let Ok(writer) = stream.try_clone() else {
                        return;
                    };
                    if handle_conn(&engine, stream, writer) {
                        stop.store(true, Ordering::SeqCst);
                        let _ = TcpStream::connect(local);
                    }
                });
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EngineConfig;
    use crate::rpc::Event;

    fn connect_with_retry(path: &std::path::Path) -> UnixStream {
        for _ in 0..200 {
            if let Ok(s) = UnixStream::connect(path) {
                return s;
            }
            std::thread::sleep(std::time::Duration::from_millis(10));
        }
        panic!("daemon socket never appeared at {}", path.display());
    }

    #[test]
    fn unix_socket_round_trip_and_shutdown() {
        let sock =
            std::env::temp_dir().join(format!("eccparityd-sock-{}.sock", std::process::id()));
        let engine = Arc::new(Engine::start(EngineConfig {
            shards: 2,
            ..EngineConfig::default()
        }));
        let e2 = Arc::clone(&engine);
        let s2 = sock.clone();
        let srv = std::thread::spawn(move || serve(e2, Listen::Unix(s2)));

        let stream = connect_with_retry(&sock);
        let mut writer = stream.try_clone().unwrap();
        let mut reader = BufReader::new(stream);
        for i in 0..100u64 {
            let ev = rpc::render_event(&Event {
                node: i % 7,
                channel: (i % 8) as u32,
                bank: (i % 16) as u32,
                row: (i % 32) as u32,
                count: 1,
                bank_fault: false,
            });
            writer.write_all(ev.as_bytes()).unwrap();
            writer.write_all(b"\n").unwrap();
        }
        writer.write_all(b"not even json\n").unwrap();
        writer
            .write_all(b"{\"kind\":\"query\",\"op\":\"fleet\"}\n")
            .unwrap();
        writer.flush().unwrap();
        let mut resp = String::new();
        std::io::BufRead::read_line(&mut reader, &mut resp).unwrap();
        assert!(
            resp.contains("\"ok\":false"),
            "malformed line error first: {resp}"
        );
        resp.clear();
        std::io::BufRead::read_line(&mut reader, &mut resp).unwrap();
        assert!(resp.contains("\"op\":\"fleet\""), "{resp}");
        assert!(resp.contains("\"events\":100"), "{resp}");

        writer
            .write_all(b"{\"kind\":\"query\",\"op\":\"shutdown\"}\n")
            .unwrap();
        writer.flush().unwrap();
        resp.clear();
        std::io::BufRead::read_line(&mut reader, &mut resp).unwrap();
        assert!(resp.contains("\"op\":\"shutdown\""), "{resp}");
        srv.join().unwrap().unwrap();
        engine.shutdown();
        assert!(!sock.exists(), "socket file cleaned up");
    }
}
