//! Socket front-end for `eccparityd`: newline-delimited requests over a
//! Unix-domain socket or TCP, in one of two worker models selected by
//! [`ServerConfig::io_mode`]:
//!
//! - [`IoMode::Evented`] (the default) — every connection is multiplexed
//!   over a handful of readiness-driven event-loop shards (see
//!   [`crate::evented`]); tens of thousands of mostly-idle fleet
//!   connections cost file descriptors, not OS threads.
//! - [`IoMode::Threads`] — one blocking thread per connection; simpler
//!   to reason about, and the baseline the evented mode's transcripts
//!   are `cmp`'d against.
//!
//! Either way each connection owns a [`Router`] so its event lines batch
//! per shard. Event lines get **no** response (that is what makes ≥1M
//! events/s feasible over a byte stream); query lines get exactly one
//! `eccparity-rpc-v1` response line. A query first flushes the
//! connection's router and runs an engine barrier, so every event
//! written earlier on the same connection is visible to the answer
//! (read-your-writes). A `subscribe` query converts the connection into
//! an `eccparity-push-v1` posture-transition stream (see [`crate::push`]).
//!
//! **Hostile-client defenses** (all knobs in [`ServerConfig`]):
//!
//! - *Bounded line reads.* The per-connection read buffer never grows
//!   past `max_line_bytes`. A longer line is answered with a structured
//!   `"code":"oversized"` refusal, counted in `service.reject.oversized`,
//!   and discarded up to its terminating newline — the connection stays
//!   usable and memory stays bounded no matter what the client streams.
//! - *Admission cap.* At most `max_conns` connections are served at
//!   once; excess connections get one `"code":"overloaded"` refusal line
//!   (counted in `service.reject.conn_limit`) and are closed.
//! - *Idle timeout.* With `idle_timeout_ms` set, a connection that sends
//!   nothing for that long is closed (counted in
//!   `service.conn.idle_closed`), so abandoned sockets cannot pin the
//!   admission cap.
//! - *Drained shutdown.* After a `shutdown` request, the accept loop
//!   waits up to `drain_ms` for live connections to flush their routers
//!   and exit, so the final checkpoint taken by the binary sees every
//!   in-flight event. The wait is condvar-based — it ends the moment the
//!   last connection drops, not at the next poll tick.

use crate::engine::{Engine, RejectKind, Router};
use crate::rpc::{self, Query, Request};
use std::io::{ErrorKind, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Connection readers wake at this cadence to poll the stop flag and the
/// idle deadline even when the client sends nothing.
pub(crate) const POLL_TICK: Duration = Duration::from_millis(200);

/// Pause after an unexpected `accept()` error (EMFILE/ENFILE when the
/// process fd budget is exhausted). Without it both accept loops spin
/// hot on the persistently-failing accept and starve live connections.
pub(crate) const ACCEPT_ERR_BACKOFF: Duration = Duration::from_millis(20);

/// Read chunk size; also the resolution of the oversized-line check.
pub(crate) const READ_CHUNK: usize = 64 * 1024;

/// Where the daemon listens.
#[derive(Debug, Clone)]
pub enum Listen {
    /// Unix-domain socket at this path (created, removed on exit).
    Unix(PathBuf),
    /// TCP listener bound to this `host:port`.
    Tcp(String),
}

/// Connection worker model (see module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IoMode {
    /// One blocking OS thread per connection.
    Threads,
    /// Readiness-driven event loops: [`ServerConfig::io_shards`] loop
    /// threads multiplex every connection via the vendored poller.
    Evented,
}

impl IoMode {
    /// Parse `"threads"` / `"evented"` (as used by `--io-mode` and
    /// `ECC_PARITY_SERVICE_IO_MODE`).
    pub fn parse(s: &str) -> Option<IoMode> {
        match s {
            "threads" => Some(IoMode::Threads),
            "evented" => Some(IoMode::Evented),
            _ => None,
        }
    }

    /// The flag spelling of this mode.
    pub fn name(self) -> &'static str {
        match self {
            IoMode::Threads => "threads",
            IoMode::Evented => "evented",
        }
    }
}

/// Front-end limits. Defaults are production-safe; the `eccparityd`
/// binary overrides them from flags and `ECC_PARITY_SERVICE_*` knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Connections served concurrently before refusing with
    /// `"code":"overloaded"` (minimum 1).
    pub max_conns: usize,
    /// Close a connection idle this long, in milliseconds (0 = never).
    pub idle_timeout_ms: u64,
    /// Longest request line accepted, in bytes; longer lines are refused
    /// with `"code":"oversized"` and discarded (minimum 1024).
    pub max_line_bytes: usize,
    /// After shutdown, wait this long (milliseconds) for live
    /// connections to flush and exit before `serve` returns.
    pub drain_ms: u64,
    /// Worker model: evented (default) or thread-per-connection.
    pub io_mode: IoMode,
    /// Event-loop shard count in [`IoMode::Evented`] (minimum 1;
    /// ignored in threads mode).
    pub io_shards: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            max_conns: 1024,
            idle_timeout_ms: 0,
            max_line_bytes: 1 << 20,
            drain_ms: 5_000,
            io_mode: IoMode::Evented,
            io_shards: 4,
        }
    }
}

/// What the connection loop needs from a socket beyond byte I/O: a read
/// timeout, so the reader can poll the stop flag and idle deadline.
pub(crate) trait ConnStream: Read + Write {
    /// Bound blocking reads so the loop can poll flags.
    fn set_poll_timeout(&self, d: Option<Duration>) -> std::io::Result<()>;
}

impl ConnStream for UnixStream {
    fn set_poll_timeout(&self, d: Option<Duration>) -> std::io::Result<()> {
        self.set_read_timeout(d)
    }
}

impl ConnStream for TcpStream {
    fn set_poll_timeout(&self, d: Option<Duration>) -> std::io::Result<()> {
        self.set_read_timeout(d)
    }
}

pub(crate) fn write_line(out: &mut impl Write, resp: &str) -> std::io::Result<()> {
    out.write_all(resp.as_bytes())?;
    out.write_all(b"\n")?;
    out.flush()
}

/// What processing one request line decided about the connection.
pub(crate) enum LineOutcome {
    /// Keep serving this connection.
    Continue,
    /// The client asked the daemon to shut down (response already sent).
    Shutdown,
    /// The connection is gone (write failed).
    Closed,
    /// The client subscribed: the connection becomes a push stream. The
    /// ack is rendered in the caller's `resp` buffer but *not yet sent*
    /// — the caller must register with the push hub first, then send it,
    /// so a client that has read the ack cannot miss a transition. Any
    /// buffered request bytes are dropped.
    Subscribe,
}

/// Render the `"code":"oversized"` refusal into a reused buffer.
pub(crate) fn oversized_refusal_into(resp: &mut String, max_line_bytes: usize) {
    resp.clear();
    rpc::refusal_response_into(
        resp,
        "oversized",
        &format!("line exceeds the {max_line_bytes}-byte cap"),
    );
}

/// The per-line state machine shared by both io modes. `resp` is the
/// connection's reused response buffer: every reply this function sends
/// is rendered into it in place, so the steady state allocates nothing
/// per line.
pub(crate) fn process_line(
    engine: &Engine,
    router: &mut Router,
    out: &mut impl Write,
    cfg: &ServerConfig,
    mut line: &[u8],
    resp: &mut String,
) -> LineOutcome {
    use std::fmt::Write as _;
    while line.last().is_some_and(|&b| b == b'\r') {
        line = &line[..line.len() - 1];
    }
    if line.is_empty() {
        return LineOutcome::Continue;
    }
    if line.len() > cfg.max_line_bytes {
        engine.note_reject(RejectKind::Oversized);
        oversized_refusal_into(resp, cfg.max_line_bytes);
        return if write_line(out, resp).is_err() {
            LineOutcome::Closed
        } else {
            LineOutcome::Continue
        };
    }
    // Hot path: a compact event line routes without a full parse and
    // without a response.
    if let Some(node) = rpc::fast_route(line) {
        router.push_routed(engine, engine.shard_of(node), line);
        return LineOutcome::Continue;
    }
    match rpc::parse_line(line) {
        Ok(Request::Event(_)) => {
            router.push_line(engine, line);
            LineOutcome::Continue
        }
        Ok(Request::Query(q)) => {
            router.flush(engine);
            engine.barrier();
            let mut outcome_if_written = LineOutcome::Continue;
            resp.clear();
            match q {
                Query::Checkpoint => match engine.checkpoint() {
                    Ok(info) => {
                        rpc::ok_response_open(resp, "checkpoint", engine.degraded());
                        resp.push_str("{\"path\":");
                        rpc::push_json_str(resp, &info.path.display().to_string());
                        write!(resp, ",\"shards\":{},\"nodes\":{}}}", info.shards, info.nodes)
                            .expect("write to String");
                        rpc::ok_response_close(resp);
                    }
                    Err(e) => rpc::error_response_into(resp, &format!("checkpoint failed: {e}")),
                },
                Query::Shutdown => {
                    outcome_if_written = LineOutcome::Shutdown;
                    rpc::ok_response_open(resp, "shutdown", engine.degraded());
                    resp.push_str("\"stopping\"");
                    rpc::ok_response_close(resp);
                }
                Query::Subscribe => {
                    // Render the ack but let the caller send it: the
                    // caller registers the subscription *first*, so a
                    // client that has read the ack is guaranteed every
                    // later transition (no registration gap).
                    rpc::ok_response_open(resp, "subscribe", engine.degraded());
                    write!(
                        resp,
                        "{{\"schema\":\"{}\",\"streaming\":true}}",
                        crate::push::PUSH_SCHEMA
                    )
                    .expect("write to String");
                    rpc::ok_response_close(resp);
                    return LineOutcome::Subscribe;
                }
                ref q => engine.query_into(q, resp),
            }
            if write_line(out, resp).is_err() {
                LineOutcome::Closed
            } else {
                outcome_if_written
            }
        }
        Err(msg) => {
            engine.note_reject(RejectKind::Parse);
            resp.clear();
            rpc::error_response_into(resp, &msg);
            if write_line(out, resp).is_err() {
                LineOutcome::Closed
            } else {
                LineOutcome::Continue
            }
        }
    }
}

/// One unit of work from a [`LineBuf`] scan.
pub(crate) enum Scan<'a> {
    /// A complete request line (newline stripped).
    Line(&'a [u8]),
    /// The buffered partial line just passed the cap.
    Oversized,
}

/// Per-connection newline reassembly shared by both io modes: chunks go
/// in, complete lines come out, and the buffer is capped — an incomplete
/// line past `max_line_bytes` is refused *now* (via `on_oversized`) and
/// the rest of it discarded as it arrives, so a hostile stream cannot
/// grow memory without bound.
pub(crate) struct LineBuf {
    pending: Vec<u8>,
    /// Inside an oversized line: eat bytes until its newline.
    discarding: bool,
}

impl LineBuf {
    pub(crate) fn new() -> LineBuf {
        LineBuf {
            pending: Vec::with_capacity(1024),
            discarding: false,
        }
    }

    /// Feed one read chunk. `on` runs with [`Scan::Line`] for each
    /// complete line (sans newline); a non-`Continue` outcome stops the
    /// scan and is returned, leaving later bytes unprocessed (the
    /// connection is ending or changing protocol). `on` runs with
    /// [`Scan::Oversized`] when the buffered partial line passes
    /// `max_line_bytes`.
    pub(crate) fn feed(
        &mut self,
        mut data: &[u8],
        max_line_bytes: usize,
        on: &mut dyn FnMut(Scan<'_>) -> LineOutcome,
    ) -> LineOutcome {
        if self.discarding {
            match data.iter().position(|&b| b == b'\n') {
                Some(nl) => {
                    data = &data[nl + 1..];
                    self.discarding = false;
                }
                None => return LineOutcome::Continue,
            }
        }
        self.pending.extend_from_slice(data);
        let mut start = 0;
        let mut outcome = LineOutcome::Continue;
        while let Some(nl) = self.pending[start..].iter().position(|&b| b == b'\n') {
            let end = start + nl;
            let res = on(Scan::Line(&self.pending[start..end]));
            start = end + 1;
            if !matches!(res, LineOutcome::Continue) {
                outcome = res;
                break;
            }
        }
        self.pending.drain(..start);
        if matches!(outcome, LineOutcome::Continue) && self.pending.len() > max_line_bytes {
            let res = on(Scan::Oversized);
            self.pending.clear();
            self.discarding = true;
            outcome = res;
        }
        outcome
    }

    /// EOF: a truncated final line (no trailing newline) is still a
    /// request — process it rather than silently dropping bytes the
    /// client thinks it sent.
    pub(crate) fn finish(&mut self, on: &mut dyn FnMut(Scan<'_>) -> LineOutcome) {
        if !self.discarding && !self.pending.is_empty() {
            let line = std::mem::take(&mut self.pending);
            let _ = on(Scan::Line(&line));
        }
    }

    /// Drop any buffered request bytes (used when a connection turns
    /// into a push stream).
    pub(crate) fn clear(&mut self) {
        self.pending.clear();
        self.discarding = false;
    }
}

/// Stream push lines to a subscribed connection until the client closes
/// it, the hub goes away, or the server stops. Registers with the hub
/// *before* sending the `ack` line, so an acked subscriber cannot miss a
/// transition. The socket read doubles as the wait (10 ms timeout): it
/// detects EOF promptly, and any bytes the client sends after
/// subscribing are discarded.
fn stream_pushes<S: ConnStream>(
    engine: &Engine,
    reader: &mut S,
    out: &mut S,
    stop: &AtomicBool,
    ack: &str,
) {
    use std::sync::mpsc::TryRecvError;
    let hub = engine.push_hub();
    let (id, rx) = hub.subscribe(None);
    if write_line(out, ack).is_err() {
        hub.unsubscribe(id);
        return;
    }
    let _ = reader.set_poll_timeout(Some(Duration::from_millis(10)));
    let mut chunk = vec![0u8; 4096];
    'stream: loop {
        loop {
            match rx.try_recv() {
                Ok(line) => {
                    if out.write_all(line.as_bytes()).is_err() || out.write_all(b"\n").is_err() {
                        break 'stream;
                    }
                }
                Err(TryRecvError::Empty) => break,
                Err(TryRecvError::Disconnected) => break 'stream,
            }
        }
        if out.flush().is_err() || stop.load(Ordering::SeqCst) {
            break;
        }
        match reader.read(&mut chunk) {
            Ok(0) => break,
            Ok(_) => {}
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {}
            Err(_) => break,
        }
    }
    hub.unsubscribe(id);
}

/// Serve one connection until EOF, I/O error, idle timeout, server stop,
/// or a `shutdown` request. Returns `true` when the client asked the
/// daemon to shut down.
fn handle_conn<S: ConnStream>(
    engine: &Engine,
    cfg: &ServerConfig,
    mut reader: S,
    mut out: S,
    stop: &AtomicBool,
) -> bool {
    obs::counter!("service.connections").inc();
    let _ = reader.set_poll_timeout(Some(POLL_TICK));
    let mut router = Router::new(engine);
    let mut chunk = vec![0u8; READ_CHUNK];
    let mut buf = LineBuf::new();
    let mut resp = String::with_capacity(256);
    let mut last_activity = Instant::now();
    let mut shutdown = false;
    let mut subscribed = false;
    let mut eof = false;
    'conn: loop {
        let n = match reader.read(&mut chunk) {
            Ok(0) => {
                eof = true;
                break;
            }
            Ok(n) => n,
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                if stop.load(Ordering::SeqCst) {
                    break;
                }
                if cfg.idle_timeout_ms > 0
                    && last_activity.elapsed() >= Duration::from_millis(cfg.idle_timeout_ms)
                {
                    engine.note_idle_close();
                    break;
                }
                continue;
            }
            Err(_) => break,
        };
        last_activity = Instant::now();
        let outcome = buf.feed(&chunk[..n], cfg.max_line_bytes, &mut |scan| match scan {
            Scan::Line(line) => process_line(engine, &mut router, &mut out, cfg, line, &mut resp),
            Scan::Oversized => {
                engine.note_reject(RejectKind::Oversized);
                oversized_refusal_into(&mut resp, cfg.max_line_bytes);
                if write_line(&mut out, &resp).is_err() {
                    LineOutcome::Closed
                } else {
                    LineOutcome::Continue
                }
            }
        });
        match outcome {
            LineOutcome::Continue => {}
            LineOutcome::Shutdown => {
                shutdown = true;
                break 'conn;
            }
            LineOutcome::Closed => break 'conn,
            LineOutcome::Subscribe => {
                subscribed = true;
                buf.clear();
                break 'conn;
            }
        }
    }
    if eof {
        buf.finish(&mut |scan| match scan {
            Scan::Line(line) => process_line(engine, &mut router, &mut out, cfg, line, &mut resp),
            Scan::Oversized => LineOutcome::Continue,
        });
    }
    router.flush(engine);
    if subscribed {
        stream_pushes(engine, &mut reader, &mut out, stop, &resp);
    }
    shutdown
}

/// Live-connection accounting shared by the accept loop and every
/// connection handler, with a condvar so drained shutdown wakes the
/// moment the count hits zero instead of sleep-polling.
pub(crate) struct ConnCount {
    count: Mutex<usize>,
    zero: Condvar,
}

impl ConnCount {
    pub(crate) fn new() -> ConnCount {
        ConnCount {
            count: Mutex::new(0),
            zero: Condvar::new(),
        }
    }

    pub(crate) fn load(&self) -> usize {
        *self.count.lock().expect("conn count lock")
    }

    pub(crate) fn inc(&self) {
        *self.count.lock().expect("conn count lock") += 1;
    }

    pub(crate) fn dec(&self) {
        let mut n = self.count.lock().expect("conn count lock");
        *n = n.saturating_sub(1);
        if *n == 0 {
            self.zero.notify_all();
        }
    }

    /// Wait until the count reaches zero or `timeout` passes; returns
    /// the leftover count (0 on a clean drain).
    pub(crate) fn wait_zero(&self, timeout: Duration) -> usize {
        let deadline = Instant::now() + timeout;
        let mut n = self.count.lock().expect("conn count lock");
        while *n > 0 {
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            let (guard, _) = self
                .zero
                .wait_timeout(n, deadline - now)
                .expect("conn count lock");
            n = guard;
        }
        *n
    }
}

/// Decrements the live-connection count even if the handler panics.
pub(crate) struct ConnGuard(pub(crate) Arc<ConnCount>);

impl Drop for ConnGuard {
    fn drop(&mut self) {
        self.0.dec();
    }
}

/// Refuse a connection over the admission cap: one structured error
/// line, then close. Runs on its own thread so a client that never
/// reads cannot wedge the accept loop.
pub(crate) fn refuse_conn<S: ConnStream + Send + 'static>(engine: Arc<Engine>, mut stream: S) {
    engine.note_reject(RejectKind::ConnLimit);
    std::thread::spawn(move || {
        let _ = stream.set_poll_timeout(Some(POLL_TICK));
        let resp = rpc::refusal_response("overloaded", "connection limit reached, retry later");
        let _ = write_line(&mut stream, &resp);
    });
}

/// Accept connections until a client sends `{"kind":"query","op":"shutdown"}`,
/// dispatching to the worker model picked by [`ServerConfig::io_mode`].
/// After shutdown, `serve` waits up to [`ServerConfig::drain_ms`] for
/// live connections to flush their routers and exit before returning —
/// so a final checkpoint taken after `serve` sees every in-flight event.
pub fn serve(engine: Arc<Engine>, listen: Listen, cfg: ServerConfig) -> std::io::Result<()> {
    let cfg = Arc::new(ServerConfig {
        max_conns: cfg.max_conns.max(1),
        max_line_bytes: cfg.max_line_bytes.max(1024),
        io_shards: cfg.io_shards.max(1),
        ..cfg
    });
    match cfg.io_mode {
        IoMode::Evented => crate::evented::serve_evented(engine, listen, cfg),
        IoMode::Threads => serve_threaded(engine, listen, cfg),
    }
}

/// Thread-per-connection accept loop ([`IoMode::Threads`]).
fn serve_threaded(
    engine: Arc<Engine>,
    listen: Listen,
    cfg: Arc<ServerConfig>,
) -> std::io::Result<()> {
    let stop = Arc::new(AtomicBool::new(false));
    let active = Arc::new(ConnCount::new());
    match listen {
        Listen::Unix(path) => {
            if let Some(dir) = path.parent() {
                if !dir.as_os_str().is_empty() {
                    std::fs::create_dir_all(dir)?;
                }
            }
            let _ = std::fs::remove_file(&path);
            let listener = UnixListener::bind(&path)?;
            eprintln!("eccparityd: listening on unix://{} (threads)", path.display());
            for conn in listener.incoming() {
                if stop.load(Ordering::SeqCst) {
                    break;
                }
                let stream = match conn {
                    Ok(s) => s,
                    Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                    Err(_) => {
                        // Persistent accept errors (EMFILE/ENFILE once the fd
                        // budget is spent) would otherwise hot-loop here; back
                        // off briefly so live connections keep the CPU.
                        std::thread::sleep(ACCEPT_ERR_BACKOFF);
                        continue;
                    }
                };
                if active.load() >= cfg.max_conns {
                    refuse_conn(Arc::clone(&engine), stream);
                    continue;
                }
                active.inc();
                let guard = ConnGuard(Arc::clone(&active));
                let engine = Arc::clone(&engine);
                let stop = Arc::clone(&stop);
                let cfg = Arc::clone(&cfg);
                let path = path.clone();
                std::thread::spawn(move || {
                    let _guard = guard;
                    let Ok(writer) = stream.try_clone() else {
                        return;
                    };
                    if handle_conn(&engine, &cfg, stream, writer, &stop) {
                        stop.store(true, Ordering::SeqCst);
                        // Nudge the accept loop out of its blocking accept.
                        let _ = UnixStream::connect(&path);
                    }
                });
            }
            drain(&active, cfg.drain_ms);
            let _ = std::fs::remove_file(&path);
        }
        Listen::Tcp(addr) => {
            let listener = TcpListener::bind(&addr)?;
            let local = listener.local_addr()?;
            eprintln!("eccparityd: listening on tcp://{local} (threads)");
            for conn in listener.incoming() {
                if stop.load(Ordering::SeqCst) {
                    break;
                }
                let stream = match conn {
                    Ok(s) => s,
                    Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                    Err(_) => {
                        std::thread::sleep(ACCEPT_ERR_BACKOFF);
                        continue;
                    }
                };
                let _ = stream.set_nodelay(true);
                if active.load() >= cfg.max_conns {
                    refuse_conn(Arc::clone(&engine), stream);
                    continue;
                }
                active.inc();
                let guard = ConnGuard(Arc::clone(&active));
                let engine = Arc::clone(&engine);
                let stop = Arc::clone(&stop);
                let cfg = Arc::clone(&cfg);
                std::thread::spawn(move || {
                    let _guard = guard;
                    let Ok(writer) = stream.try_clone() else {
                        return;
                    };
                    if handle_conn(&engine, &cfg, stream, writer, &stop) {
                        stop.store(true, Ordering::SeqCst);
                        let _ = TcpStream::connect(local);
                    }
                });
            }
            drain(&active, cfg.drain_ms);
        }
    }
    Ok(())
}

/// Wait up to `drain_ms` for every live connection to exit (condvar
/// wait — returns the instant the count hits zero).
pub(crate) fn drain(active: &ConnCount, drain_ms: u64) {
    let leftover = active.wait_zero(Duration::from_millis(drain_ms));
    if leftover > 0 {
        eprintln!("eccparityd: drain deadline hit with {leftover} connection(s) still open");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EngineConfig;
    use crate::rpc::Event;
    use std::io::{BufRead, BufReader};

    const BOTH_MODES: [IoMode; 2] = [IoMode::Threads, IoMode::Evented];

    fn connect_with_retry(path: &std::path::Path) -> UnixStream {
        for _ in 0..200 {
            if let Ok(s) = UnixStream::connect(path) {
                return s;
            }
            std::thread::sleep(std::time::Duration::from_millis(10));
        }
        panic!("daemon socket never appeared at {}", path.display());
    }

    fn start_daemon(
        engine: &Arc<Engine>,
        cfg: ServerConfig,
        tag: &str,
    ) -> (
        std::path::PathBuf,
        std::thread::JoinHandle<std::io::Result<()>>,
    ) {
        let sock =
            std::env::temp_dir().join(format!("eccparityd-{tag}-{}.sock", std::process::id()));
        let e2 = Arc::clone(engine);
        let s2 = sock.clone();
        let srv = std::thread::spawn(move || serve(e2, Listen::Unix(s2), cfg));
        (sock, srv)
    }

    #[test]
    fn unix_socket_round_trip_and_shutdown() {
        for mode in BOTH_MODES {
            let engine = Arc::new(Engine::start(EngineConfig {
                shards: 2,
                ..EngineConfig::default()
            }));
            let cfg = ServerConfig {
                io_mode: mode,
                ..ServerConfig::default()
            };
            let (sock, srv) = start_daemon(&engine, cfg, &format!("sock-{}", mode.name()));

            let stream = connect_with_retry(&sock);
            let mut writer = stream.try_clone().unwrap();
            let mut reader = BufReader::new(stream);
            for i in 0..100u64 {
                let ev = rpc::render_event(&Event {
                    node: i % 7,
                    channel: (i % 8) as u32,
                    bank: (i % 16) as u32,
                    row: (i % 32) as u32,
                    count: 1,
                    bank_fault: false,
                });
                writer.write_all(ev.as_bytes()).unwrap();
                writer.write_all(b"\n").unwrap();
            }
            writer.write_all(b"not even json\n").unwrap();
            writer
                .write_all(b"{\"kind\":\"query\",\"op\":\"fleet\"}\n")
                .unwrap();
            writer.flush().unwrap();
            let mut resp = String::new();
            reader.read_line(&mut resp).unwrap();
            assert!(
                resp.contains("\"ok\":false"),
                "[{}] malformed line error first: {resp}",
                mode.name()
            );
            resp.clear();
            reader.read_line(&mut resp).unwrap();
            assert!(resp.contains("\"op\":\"fleet\""), "[{}] {resp}", mode.name());
            assert!(resp.contains("\"events\":100"), "[{}] {resp}", mode.name());
            assert!(
                resp.contains("\"degraded\":false"),
                "[{}] {resp}",
                mode.name()
            );

            writer
                .write_all(b"{\"kind\":\"query\",\"op\":\"shutdown\"}\n")
                .unwrap();
            writer.flush().unwrap();
            resp.clear();
            reader.read_line(&mut resp).unwrap();
            assert!(
                resp.contains("\"op\":\"shutdown\""),
                "[{}] {resp}",
                mode.name()
            );
            srv.join().unwrap().unwrap();
            engine.shutdown();
            assert!(!sock.exists(), "socket file cleaned up");
        }
    }

    #[test]
    fn oversized_lines_are_refused_and_the_connection_survives() {
        for mode in BOTH_MODES {
            let engine = Arc::new(Engine::start(EngineConfig {
                shards: 1,
                ..EngineConfig::default()
            }));
            let cfg = ServerConfig {
                max_line_bytes: 4096,
                io_mode: mode,
                ..ServerConfig::default()
            };
            let (sock, srv) = start_daemon(&engine, cfg, &format!("oversized-{}", mode.name()));

            let stream = connect_with_retry(&sock);
            let mut writer = stream.try_clone().unwrap();
            let mut reader = BufReader::new(stream);
            // A line far past the cap, streamed in pieces like a slow loris.
            let blob = vec![b'x'; 64 * 1024];
            for part in blob.chunks(1000) {
                writer.write_all(part).unwrap();
                writer.flush().unwrap();
            }
            writer.write_all(b"\n").unwrap();
            // The connection must still serve real traffic afterwards.
            writer
                .write_all(b"{\"kind\":\"event\",\"node\":3,\"channel\":0,\"bank\":0,\"row\":1}\n")
                .unwrap();
            writer
                .write_all(b"{\"kind\":\"query\",\"op\":\"stats\"}\n")
                .unwrap();
            writer.flush().unwrap();
            let mut resp = String::new();
            reader.read_line(&mut resp).unwrap();
            assert!(
                resp.contains("\"code\":\"oversized\""),
                "[{}] {resp}",
                mode.name()
            );
            resp.clear();
            reader.read_line(&mut resp).unwrap();
            assert!(resp.contains("\"op\":\"stats\""), "[{}] {resp}", mode.name());
            assert!(
                resp.contains("\"rejected_oversized\":1"),
                "[{}] {resp}",
                mode.name()
            );
            assert!(
                resp.contains("\"events_ingested\":1"),
                "[{}] {resp}",
                mode.name()
            );

            writer
                .write_all(b"{\"kind\":\"query\",\"op\":\"shutdown\"}\n")
                .unwrap();
            writer.flush().unwrap();
            resp.clear();
            reader.read_line(&mut resp).unwrap();
            srv.join().unwrap().unwrap();
            engine.shutdown();
        }
    }

    #[test]
    fn admission_cap_refuses_with_structured_error() {
        for mode in BOTH_MODES {
            let engine = Arc::new(Engine::start(EngineConfig {
                shards: 1,
                ..EngineConfig::default()
            }));
            let cfg = ServerConfig {
                max_conns: 1,
                io_mode: mode,
                ..ServerConfig::default()
            };
            let (sock, srv) = start_daemon(&engine, cfg, &format!("cap-{}", mode.name()));

            let first = connect_with_retry(&sock);
            // Prove the first connection is admitted (a query round-trips)
            // before the second attempt, so the cap is actually occupied.
            let mut w1 = first.try_clone().unwrap();
            let mut r1 = BufReader::new(first);
            w1.write_all(b"{\"kind\":\"query\",\"op\":\"stats\"}\n")
                .unwrap();
            w1.flush().unwrap();
            let mut resp = String::new();
            r1.read_line(&mut resp).unwrap();
            assert!(resp.contains("\"op\":\"stats\""), "[{}] {resp}", mode.name());

            let second = UnixStream::connect(&sock).unwrap();
            let mut r2 = BufReader::new(second);
            resp.clear();
            r2.read_line(&mut resp).unwrap();
            assert!(
                resp.contains("\"code\":\"overloaded\""),
                "[{}] {resp}",
                mode.name()
            );
            resp.clear();
            assert_eq!(r2.read_line(&mut resp).unwrap(), 0, "refused conn closes");

            w1.write_all(b"{\"kind\":\"query\",\"op\":\"shutdown\"}\n")
                .unwrap();
            w1.flush().unwrap();
            resp.clear();
            r1.read_line(&mut resp).unwrap();
            srv.join().unwrap().unwrap();
            engine.shutdown();
        }
    }

    #[test]
    fn idle_connections_are_closed_and_counted() {
        for mode in BOTH_MODES {
            let engine = Arc::new(Engine::start(EngineConfig {
                shards: 1,
                ..EngineConfig::default()
            }));
            let cfg = ServerConfig {
                idle_timeout_ms: 150,
                io_mode: mode,
                ..ServerConfig::default()
            };
            let (sock, srv) = start_daemon(&engine, cfg, &format!("idle-{}", mode.name()));

            let idle = connect_with_retry(&sock);
            let mut r = BufReader::new(idle.try_clone().unwrap());
            let mut resp = String::new();
            // The server closes us without a response once the idle deadline
            // (150 ms) passes; read_line returning 0 is that close.
            assert_eq!(r.read_line(&mut resp).unwrap(), 0, "idle conn closed");
            drop(idle);

            let active = connect_with_retry(&sock);
            let mut w = active.try_clone().unwrap();
            let mut r = BufReader::new(active);
            w.write_all(b"{\"kind\":\"query\",\"op\":\"stats\"}\n")
                .unwrap();
            w.flush().unwrap();
            resp.clear();
            r.read_line(&mut resp).unwrap();
            assert!(
                resp.contains("\"idle_closed_conns\":1"),
                "[{}] {resp}",
                mode.name()
            );
            w.write_all(b"{\"kind\":\"query\",\"op\":\"shutdown\"}\n")
                .unwrap();
            w.flush().unwrap();
            resp.clear();
            r.read_line(&mut resp).unwrap();
            srv.join().unwrap().unwrap();
            engine.shutdown();
        }
    }

    #[test]
    fn truncated_final_line_is_still_processed() {
        for mode in BOTH_MODES {
            let engine = Arc::new(Engine::start(EngineConfig {
                shards: 1,
                ..EngineConfig::default()
            }));
            let cfg = ServerConfig {
                io_mode: mode,
                ..ServerConfig::default()
            };
            let (sock, srv) = start_daemon(&engine, cfg, &format!("trunc-{}", mode.name()));

            // One complete event, then a truncated event with no newline, EOF.
            let stream = connect_with_retry(&sock);
            let mut w = stream.try_clone().unwrap();
            w.write_all(b"{\"kind\":\"event\",\"node\":1,\"channel\":0,\"bank\":0,\"row\":1}\n")
                .unwrap();
            w.write_all(b"{\"kind\":\"event\",\"node\":2,\"channel\":0,\"bank\":0,\"row\":2}")
                .unwrap();
            w.flush().unwrap();
            drop(w);
            drop(stream);

            // Poll stats on a second connection until both events landed.
            let stream = connect_with_retry(&sock);
            let mut w = stream.try_clone().unwrap();
            let mut r = BufReader::new(stream);
            let mut resp = String::new();
            for _ in 0..100 {
                w.write_all(b"{\"kind\":\"query\",\"op\":\"stats\"}\n")
                    .unwrap();
                w.flush().unwrap();
                resp.clear();
                r.read_line(&mut resp).unwrap();
                if resp.contains("\"events_ingested\":2") {
                    break;
                }
                std::thread::sleep(std::time::Duration::from_millis(10));
            }
            assert!(
                resp.contains("\"events_ingested\":2"),
                "[{}] truncated final line must be applied: {resp}",
                mode.name()
            );
            w.write_all(b"{\"kind\":\"query\",\"op\":\"shutdown\"}\n")
                .unwrap();
            w.flush().unwrap();
            resp.clear();
            r.read_line(&mut resp).unwrap();
            srv.join().unwrap().unwrap();
            engine.shutdown();
        }
    }

    #[test]
    fn subscribe_streams_posture_transitions_threaded() {
        let engine = Arc::new(Engine::start(EngineConfig {
            shards: 1,
            ..EngineConfig::default()
        }));
        let cfg = ServerConfig {
            io_mode: IoMode::Threads,
            ..ServerConfig::default()
        };
        let (sock, srv) = start_daemon(&engine, cfg, "sub-threads");

        let sub = connect_with_retry(&sock);
        let mut sw = sub.try_clone().unwrap();
        let mut sr = BufReader::new(sub);
        sw.write_all(b"{\"kind\":\"query\",\"op\":\"subscribe\"}\n")
            .unwrap();
        sw.flush().unwrap();
        let mut resp = String::new();
        sr.read_line(&mut resp).unwrap();
        assert!(resp.contains("\"op\":\"subscribe\""), "{resp}");
        assert!(resp.contains("eccparity-push-v1"), "{resp}");

        // Drive node 9 into a faulty posture from a second connection.
        let feeder = connect_with_retry(&sock);
        let mut fw = feeder.try_clone().unwrap();
        let mut fr = BufReader::new(feeder);
        for row in 0..4u32 {
            let line = format!(
                "{{\"kind\":\"event\",\"node\":9,\"channel\":0,\"bank\":0,\"row\":{row},\"count\":4}}\n"
            );
            fw.write_all(line.as_bytes()).unwrap();
        }
        fw.write_all(b"{\"kind\":\"query\",\"op\":\"stats\"}\n")
            .unwrap();
        fw.flush().unwrap();
        resp.clear();
        fr.read_line(&mut resp).unwrap();
        assert!(resp.contains("\"push_subscribers\":1"), "{resp}");

        // The subscriber sees at least one transition line for node 9.
        resp.clear();
        sr.read_line(&mut resp).unwrap();
        assert!(resp.contains("\"schema\":\"eccparity-push-v1\""), "{resp}");
        assert!(resp.contains("\"node\":9"), "{resp}");
        assert!(resp.contains("\"from\":\"nominal\""), "{resp}");

        drop(sw);
        drop(sr);
        fw.write_all(b"{\"kind\":\"query\",\"op\":\"shutdown\"}\n")
            .unwrap();
        fw.flush().unwrap();
        resp.clear();
        fr.read_line(&mut resp).unwrap();
        srv.join().unwrap().unwrap();
        engine.shutdown();
    }
}
