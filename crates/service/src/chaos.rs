//! Deterministic fault injection for the daemon's own machinery.
//!
//! The campaign supervisor's chaos layer ([`eccparity_bench::chaos`])
//! attacks the *batch* infrastructure; this module attacks the *daemon*:
//! shard batch application panics, injected apply stalls (to exercise the
//! watchdog accounting), and worker poisoning (an uncaught panic that
//! kills a shard worker outright, forcing the quarantine + restart
//! path). `ECC_PARITY_SERVICE_CHAOS=<seed>` arms the first two sites
//! process-wide; poisoning is never armed from the environment — it
//! deliberately loses events applied since the last checkpoint, so only
//! tests construct it explicitly.
//!
//! Every decision is a pure function of `(seed, site, shard, batch)`,
//! so two daemons fed the same stream inject identically regardless of
//! thread schedule. Batch panics only ever fire on a batch's *first*
//! attempt and always **before** any state mutation, so the engine's
//! retry converges to the fault-free state — which is what makes the CI
//! `chaos-smoke` "chaos transcript == golden transcript" gate meaningful.

use eccparity_bench::hash::fnv1a64;
use std::sync::OnceLock;

/// A deterministic chaos source for the service layer. `Copy`, so every
/// shard worker holds its own handle; all handles with the same
/// configuration make identical decisions.
#[derive(Debug, Clone, Copy)]
pub struct ServiceChaos {
    seed: Option<u64>,
    /// Batch first-attempt panics fire with probability ~1/denom (0 = off).
    panic_denom: u64,
    /// Pre-apply stalls fire with probability ~1/denom (0 = off).
    stall_denom: u64,
    /// Poison the worker after applying exactly this (per-shard) batch
    /// number — a one-shot kill, so the respawned worker survives. Never
    /// armed from the environment.
    poison_batch: Option<u64>,
}

impl Default for ServiceChaos {
    fn default() -> Self {
        ServiceChaos::off()
    }
}

impl ServiceChaos {
    /// Chaos disarmed: every query says "no fault".
    pub fn off() -> ServiceChaos {
        ServiceChaos {
            seed: None,
            panic_denom: 0,
            stall_denom: 0,
            poison_batch: None,
        }
    }

    /// The environment profile: first-attempt batch panics (~1/8) and
    /// short pre-apply stalls (~1/16). Convergent by construction.
    pub fn from_seed(seed: u64) -> ServiceChaos {
        ServiceChaos {
            seed: Some(seed),
            panic_denom: 8,
            stall_denom: 16,
            poison_batch: None,
        }
    }

    /// A fully explicit profile for tests. A denominator of 0 disarms
    /// its site; 1 makes the site fire on every roll.
    pub fn explicit(seed: u64, panic_denom: u64, stall_denom: u64) -> ServiceChaos {
        ServiceChaos {
            seed: Some(seed),
            panic_denom,
            stall_denom,
            poison_batch: None,
        }
    }

    /// Arm the one-shot worker poison: each shard's worker dies after
    /// applying its `batch`-th batch (tests only).
    pub fn with_poison_batch(mut self, batch: u64) -> ServiceChaos {
        if self.seed.is_none() {
            self.seed = Some(0);
        }
        self.poison_batch = Some(batch);
        self
    }

    /// Is any site armed?
    pub fn enabled(&self) -> bool {
        self.seed.is_some()
    }

    /// Deterministic roll: a hash of (seed, site, shard, batch) reduced
    /// mod `denom`; true on residue 0 (probability ~1/denom).
    fn roll(&self, site: &str, shard: u64, batch: u64, denom: u64) -> bool {
        let Some(seed) = self.seed else { return false };
        if denom == 0 {
            return false;
        }
        let mut key = Vec::with_capacity(site.len() + 24);
        key.extend_from_slice(&seed.to_le_bytes());
        key.extend_from_slice(site.as_bytes());
        key.extend_from_slice(&shard.to_le_bytes());
        key.extend_from_slice(&batch.to_le_bytes());
        fnv1a64(&key).is_multiple_of(denom)
    }

    /// Should this shard's `batch`-th batch panic before applying
    /// anything? Only the first attempt is ever injected, so the retry
    /// always converges.
    pub fn batch_panic(&self, shard: u64, batch: u64, attempt: u32) -> bool {
        attempt == 1 && self.roll("shard.batch_panic", shard, batch, self.panic_denom)
    }

    /// Milliseconds to stall before applying this batch, if any. Kept
    /// short (1–20 ms) so the default 5 s watchdog deadline is never
    /// tripped by injection alone.
    pub fn batch_stall_ms(&self, shard: u64, batch: u64) -> Option<u64> {
        if self.roll("shard.batch_stall", shard, batch, self.stall_denom) {
            Some(1 + fnv1a64(&[shard as u8, batch as u8]) % 20)
        } else {
            None
        }
    }

    /// Should the worker thread itself die (panic outside the per-batch
    /// guard) after applying this batch? Exercises quarantine + restart-
    /// from-checkpoint; loses events applied since the last checkpoint,
    /// so it is never armed from the environment. One-shot per shard:
    /// batch numbering is continuous across respawns, so the replacement
    /// worker never sees the poisoned batch number again.
    pub fn worker_poison(&self, _shard: u64, batch: u64) -> bool {
        self.poison_batch == Some(batch)
    }
}

/// The process-wide service chaos handle, armed by
/// `ECC_PARITY_SERVICE_CHAOS=<seed>`. An unparsable value disarms with a
/// note on stderr rather than panicking.
pub fn global() -> ServiceChaos {
    static GLOBAL: OnceLock<ServiceChaos> = OnceLock::new();
    *GLOBAL.get_or_init(|| match std::env::var("ECC_PARITY_SERVICE_CHAOS") {
        Ok(v) => match v.trim().parse::<u64>() {
            Ok(seed) => {
                eprintln!("eccparityd: service chaos armed with seed {seed}");
                ServiceChaos::from_seed(seed)
            }
            Err(_) => {
                eprintln!(
                    "eccparityd: ECC_PARITY_SERVICE_CHAOS={v:?} is not a u64 seed; chaos disarmed"
                );
                ServiceChaos::off()
            }
        },
        Err(_) => ServiceChaos::off(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disarmed_chaos_never_fires() {
        let c = ServiceChaos::off();
        for b in 0..500u64 {
            assert!(!c.batch_panic(0, b, 1));
            assert!(c.batch_stall_ms(1, b).is_none());
            assert!(!c.worker_poison(2, b));
        }
    }

    #[test]
    fn armed_chaos_is_deterministic_and_first_attempt_only() {
        let a = ServiceChaos::from_seed(9);
        let b = ServiceChaos::from_seed(9);
        let other = ServiceChaos::from_seed(10);
        let mut fired = 0;
        let mut diverged = false;
        for batch in 0..400u64 {
            for shard in 0..4u64 {
                assert_eq!(
                    a.batch_panic(shard, batch, 1),
                    b.batch_panic(shard, batch, 1)
                );
                assert_eq!(
                    a.batch_stall_ms(shard, batch),
                    b.batch_stall_ms(shard, batch)
                );
                if a.batch_panic(shard, batch, 1) {
                    fired += 1;
                }
                if a.batch_panic(shard, batch, 1) != other.batch_panic(shard, batch, 1) {
                    diverged = true;
                }
                // Retries are never injected; the env profile never poisons.
                assert!(!a.batch_panic(shard, batch, 2));
                assert!(!a.worker_poison(shard, batch));
            }
        }
        assert!(fired > 20, "armed chaos must actually inject ({fired})");
        assert!(diverged, "different seeds must make different decisions");
    }

    #[test]
    fn poison_is_one_shot_per_batch_number() {
        let c = ServiceChaos::off().with_poison_batch(3);
        assert!(!c.worker_poison(0, 2));
        assert!(c.worker_poison(0, 3), "fires on the armed batch");
        assert!(c.worker_poison(1, 3), "every shard's batch 3");
        assert!(!c.worker_poison(0, 4), "never again");
        assert!(!c.batch_panic(0, 3, 1), "panic site stays disarmed");
    }
}
